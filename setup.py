"""Setup shim: enables legacy editable installs on environments whose
setuptools predates bundled bdist_wheel (metadata lives in pyproject.toml)."""
from setuptools import setup

setup()
