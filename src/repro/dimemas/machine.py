"""Platform configuration of the replay simulator.

Mirrors Dimemas' machine model (paper §III-B): *"The communication
model ... consists of a linear model and some nonlinear effects, such
as network congestion.  The interconnect is parametrized by bandwidth,
latency and the number of global buses (denoting how many messages are
allowed to concurrently travel throughout the network).  Also, each
processor is characterized by the number of input/output ports that
determine its injection rate to the network."*

Defaults reproduce the paper's test bed: MareNostrum nodes (PowerPC
970 @ 2.3 GHz) on Myrinet with 250 MB/s unidirectional links; the
per-application bus counts of paper Table I live in
:data:`PAPER_BUSES`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["MB", "MachineConfig", "PAPER_BUSES", "PAPER_BANDWIDTH_MBPS"]

#: One megabyte as used in network datasheets (10^6 bytes).
MB = 1e6

#: Paper Table I: number of Dimemas buses calibrated per application.
PAPER_BUSES: dict[str, int] = {
    "sweep3d": 12,
    "pop": 12,
    "alya": 11,
    "specfem3d": 8,
    "bt": 22,
    "cg": 6,
}

#: Paper test bed: Myrinet, 250 MB/s unidirectional bandwidth per link.
PAPER_BANDWIDTH_MBPS = 250.0


@dataclass(frozen=True)
class MachineConfig:
    """A simulated parallel platform.

    Attributes
    ----------
    bandwidth_mbps:
        Link bandwidth in MB/s (paper baseline: 250).
    latency:
        Per-message latency in seconds (not resource-bound — the linear
        model's constant term).  Myrinet-era default: 8 µs.
    buses:
        Number of global buses: the maximum number of messages
        concurrently occupying the network (None = unlimited).  Paper
        Table I calibrates this per application.
    input_ports / output_ports:
        Per-processor concurrent extraction/injection limits (Dimemas
        default: one of each — full-duplex single link per node).
    cpu_ratio:
        Relative CPU time scaling applied to computation bursts
        (1.0 replays bursts at the traced speed; 2.0 = half-speed CPU).
    cores_per_node:
        Processes per SMP node (Dimemas' multi-core machine model).
        Ranks ``k*cores_per_node .. (k+1)*cores_per_node - 1`` share
        node ``k``; messages between them travel through shared memory:
        ``intra_latency + size / intra_bandwidth``, bypassing the
        network's buses and ports.  Default 1 = the paper's setup (one
        process per node).
    intra_latency / intra_bandwidth_mbps:
        Shared-memory transfer parameters (defaults: 1 µs and 4x the
        network bandwidth).
    eager_threshold:
        Messages up to this many bytes use the eager protocol (sender
        completes on injection); larger ones rendezvous with the
        receiver.  Chunked messages carry an explicit per-record
        override set by the overlap transformation.
    collective_model_factor:
        Multiplier of the analytic collective cost model (only used for
        :class:`~repro.trace.records.GlobalOp` records).
    max_events:
        Watchdog: abort the replay with a
        :class:`~repro.dimemas.postmortem.SimulationTimeout` after this
        many executed events (None = unlimited).  A defence against
        runaway simulations on pathological platforms or corrupt
        traces; healthy replays execute a few events per trace record.
    max_sim_time:
        Watchdog: abort once the simulated clock would pass this many
        seconds (None = unlimited).
    perturb:
        Optional :class:`~repro.perturb.PerturbationSchedule` degrading
        the platform over simulated time (bandwidth sag, latency
        spikes, outages, CPU noise, stragglers).  Normalized on
        construction: a schedule that perturbs nothing is stored as
        ``None``, so a no-op schedule *is* the pristine platform —
        same replay, same cache keys.  Because configs flow through
        ``dataclasses.asdict`` into every result-cache key and
        checkpoint journal entry, carrying the schedule here keys all
        of those by the perturbation automatically.
    """

    bandwidth_mbps: float = PAPER_BANDWIDTH_MBPS
    latency: float = 8e-6
    buses: int | None = None
    input_ports: int = 1
    output_ports: int = 1
    cpu_ratio: float = 1.0
    cores_per_node: int = 1
    intra_latency: float = 1e-6
    intra_bandwidth_mbps: float | None = None
    eager_threshold: int = 65536
    collective_model_factor: float = 1.0
    max_events: int | None = None
    max_sim_time: float | None = None
    # A repro.perturb.PerturbationSchedule; typed loosely (and validated
    # structurally below) because repro.perturb must stay importable
    # without the simulator and vice versa.
    perturb: object | None = None

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth_mbps}")
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")
        if self.buses is not None and self.buses < 1:
            raise ValueError(f"buses must be >= 1 or None, got {self.buses}")
        if self.input_ports < 1 or self.output_ports < 1:
            raise ValueError("port counts must be >= 1")
        if self.cpu_ratio <= 0:
            raise ValueError(f"cpu_ratio must be positive, got {self.cpu_ratio}")
        if self.cores_per_node < 1:
            raise ValueError(f"cores_per_node must be >= 1, got {self.cores_per_node}")
        if self.intra_latency < 0:
            raise ValueError("intra_latency must be >= 0")
        if self.intra_bandwidth_mbps is not None and self.intra_bandwidth_mbps <= 0:
            raise ValueError("intra_bandwidth_mbps must be positive or None")
        if self.eager_threshold < 0:
            raise ValueError("eager_threshold must be >= 0")
        if self.max_events is not None and self.max_events < 1:
            raise ValueError(f"max_events must be >= 1 or None, got {self.max_events}")
        if self.max_sim_time is not None and self.max_sim_time <= 0:
            raise ValueError(
                f"max_sim_time must be positive or None, got {self.max_sim_time}"
            )
        if self.perturb is not None:
            normalized = getattr(self.perturb, "normalized", None)
            is_noop = getattr(self.perturb, "is_noop", None)
            if not (callable(normalized) and callable(is_noop)):
                raise ValueError(
                    "perturb must be a PerturbationSchedule (or None), "
                    f"got {type(self.perturb).__name__}"
                )
            schedule = normalized()
            # Canonical form: zero-magnitude schedules collapse to None
            # so the cache key and the replay are those of the pristine
            # platform.
            object.__setattr__(
                self, "perturb", None if schedule.is_noop() else schedule
            )

    @property
    def bandwidth(self) -> float:
        """Bandwidth in bytes/second."""
        return self.bandwidth_mbps * MB

    def transfer_seconds(self, size: int) -> float:
        """Pure wire occupancy of ``size`` bytes (no latency)."""
        return size / self.bandwidth

    def linear_cost(self, size: int) -> float:
        """The linear model's uncontended message cost: L + S/B."""
        return self.latency + self.transfer_seconds(size)

    @property
    def intra_bandwidth(self) -> float:
        """Shared-memory bandwidth in bytes/second (default 4x network)."""
        mbps = (
            self.intra_bandwidth_mbps
            if self.intra_bandwidth_mbps is not None
            else 4.0 * self.bandwidth_mbps
        )
        return mbps * MB

    def node_of(self, rank: int) -> int:
        """SMP node hosting ``rank``."""
        return rank // self.cores_per_node

    def same_node(self, a: int, b: int) -> bool:
        """True when both ranks share a node (shared-memory path)."""
        return self.node_of(a) == self.node_of(b)

    def intra_transfer_seconds(self, size: int) -> float:
        """Shared-memory copy time of ``size`` bytes (no latency)."""
        return size / self.intra_bandwidth

    def with_bandwidth(self, bandwidth_mbps: float) -> "MachineConfig":
        """Copy of this platform at a different bandwidth (sweeps)."""
        return replace(self, bandwidth_mbps=bandwidth_mbps)

    def with_platform(self, **overrides) -> "MachineConfig":
        """Copy with any subset of platform fields replaced.

        One call covers every experiment-side platform variation
        (bandwidth, buses, latency, ...); validation re-runs on the
        copy.  No overrides returns ``self`` (configs are frozen).
        """
        return replace(self, **overrides) if overrides else self

    @classmethod
    def paper_testbed(cls, app: str | None = None, **overrides) -> "MachineConfig":
        """The MareNostrum/Myrinet configuration of paper §IV.

        ``app`` selects the Table I bus count (case-insensitive);
        omitting it leaves buses unlimited.
        """
        buses = None
        if app is not None:
            key = app.lower()
            if key not in PAPER_BUSES:
                raise KeyError(
                    f"unknown application {app!r}; Table I lists {sorted(PAPER_BUSES)}"
                )
            buses = PAPER_BUSES[key]
        return cls(
            bandwidth_mbps=PAPER_BANDWIDTH_MBPS, buses=buses, **overrides
        )
