"""Discrete-event core of the replay simulator.

A minimal, deterministic event loop: events are ``(time, seq,
callback)`` triples on a binary heap; ties in time break by insertion
order, so replays are bit-reproducible.  The loop is deliberately
dumb — all simulation semantics live in :mod:`repro.dimemas.replay`
and :mod:`repro.dimemas.network`.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable

__all__ = ["EventLoop", "SimulationStalledError", "WatchdogExpired"]


class SimulationStalledError(RuntimeError):
    """The event queue drained while simulated processes were still blocked."""


class WatchdogExpired(RuntimeError):
    """:meth:`EventLoop.run` hit its event or simulated-time budget.

    The loop state (``now``, ``executed``, pending events) is left
    intact, so callers can build a post-mortem of the in-flight
    simulation before surfacing the failure.
    """

    def __init__(self, reason: str, now: float, executed: int):
        self.reason = reason
        self.now = now
        self.executed = executed
        super().__init__(
            f"event-loop watchdog expired ({reason}) at t={now:.9g}s "
            f"after {executed} event(s)"
        )


class EventLoop:
    """Deterministic discrete-event loop."""

    #: How often the depth sampler fires (every N executed events).
    SAMPLE_EVERY = 256

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        #: Current simulation time (seconds).
        self.now = 0.0
        #: Number of events executed so far.
        self.executed = 0
        #: Optional observability hook: called with the pending-queue
        #: depth every :attr:`SAMPLE_EVERY` executed events.  ``None``
        #: (the default) keeps the drain loop on its fast path.
        self.depth_sampler: Callable[[int], None] | None = None

    def at(self, time: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` at absolute ``time`` (>= now)."""
        now = self.now
        # Single guard for the common case: a NaN time fails this
        # comparison too, so the fast path costs one branch.
        if not time >= now:
            if math.isnan(time):
                raise ValueError("cannot schedule an event at NaN time")
            if time < now - 1e-12:
                raise ValueError(
                    f"cannot schedule into the past: t={time} < now={now}"
                )
            time = now
        heapq.heappush(self._heap, (time, self._seq, fn))
        self._seq += 1

    def after(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self.at(self.now + delay, fn)

    def run(
        self,
        max_events: int | None = None,
        max_time: float | None = None,
    ) -> float:
        """Execute events until the queue drains; returns the final time.

        ``max_events`` / ``max_time`` are watchdog budgets: exceeding
        either raises :class:`WatchdogExpired` instead of looping
        forever, converting a runaway simulation (livelock, pathological
        platform, malformed trace) into a diagnosable failure.  The
        budget is checked *before* executing each event, so the loop
        never runs an event past the limit.
        """
        budget = math.inf if max_events is None else self.executed + max_events
        time_limit = math.inf if max_time is None else max_time
        sampler = self.depth_sampler
        mask = self.SAMPLE_EVERY - 1
        heap = self._heap
        pop = heapq.heappop
        executed = self.executed
        # ``executed`` stays in a local inside the loop (one store per
        # event saved); the finally clause keeps the attribute exact on
        # every exit — normal drain, watchdog raise, or a callback
        # raising through us.
        try:
            while heap:
                if executed >= budget:
                    raise WatchdogExpired("max_events", self.now, executed)
                time, _, fn = heap[0]
                if time > time_limit:
                    raise WatchdogExpired("max_sim_time", self.now, executed)
                pop(heap)
                self.now = time
                executed += 1
                if sampler is not None and not (executed & mask):
                    self.executed = executed
                    sampler(len(heap))
                fn()
        finally:
            self.executed = executed
        return self.now

    @property
    def pending(self) -> int:
        """Number of scheduled, not-yet-executed events."""
        return len(self._heap)
