"""Discrete-event core of the replay simulator.

A minimal, deterministic event loop: events are ``(time, seq,
callback)`` triples on a binary heap; ties in time break by insertion
order, so replays are bit-reproducible.  The loop is deliberately
dumb — all simulation semantics live in :mod:`repro.dimemas.replay`
and :mod:`repro.dimemas.network`.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable

__all__ = ["EventLoop", "SimulationStalledError"]


class SimulationStalledError(RuntimeError):
    """The event queue drained while simulated processes were still blocked."""


class EventLoop:
    """Deterministic discrete-event loop."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        #: Current simulation time (seconds).
        self.now = 0.0
        #: Number of events executed so far.
        self.executed = 0

    def at(self, time: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` at absolute ``time`` (>= now)."""
        if math.isnan(time):
            raise ValueError("cannot schedule an event at NaN time")
        if time < self.now - 1e-12:
            raise ValueError(
                f"cannot schedule into the past: t={time} < now={self.now}"
            )
        heapq.heappush(self._heap, (max(time, self.now), self._seq, fn))
        self._seq += 1

    def after(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self.at(self.now + delay, fn)

    def run(self) -> float:
        """Execute events until the queue drains; returns the final time."""
        while self._heap:
            time, _, fn = heapq.heappop(self._heap)
            self.now = time
            self.executed += 1
            fn()
        return self.now

    @property
    def pending(self) -> int:
        """Number of scheduled, not-yet-executed events."""
        return len(self._heap)
