"""Trace-driven replay simulator (the framework's Dimemas stage)."""

from .engine import EventLoop, SimulationStalledError
from .machine import MB, MachineConfig, PAPER_BANDWIDTH_MBPS, PAPER_BUSES
from .network import Network, Transfer
from .replay import ReplayError, simulate
from .results import MessageFlight, STATE_NAMES, SimResult

__all__ = [
    "EventLoop", "MB", "MachineConfig", "MessageFlight", "Network",
    "PAPER_BANDWIDTH_MBPS", "PAPER_BUSES", "ReplayError", "STATE_NAMES",
    "SimResult", "SimulationStalledError", "Transfer", "simulate",
]
