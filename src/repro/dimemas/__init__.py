"""Trace-driven replay simulator (the framework's Dimemas stage)."""

from .engine import EventLoop, SimulationStalledError, WatchdogExpired
from .machine import MB, MachineConfig, PAPER_BANDWIDTH_MBPS, PAPER_BUSES
from .network import Network, PerturbedNetwork, Transfer
from .postmortem import (
    BlockedOp,
    DeadlockError,
    DeadlockReport,
    PendingMessage,
    PerturbationStall,
    SimulationTimeout,
)
from .replay import ReplayError, simulate
from .results import MessageFlight, STATE_NAMES, SimResult

__all__ = [
    "BlockedOp", "DeadlockError", "DeadlockReport", "EventLoop", "MB",
    "MachineConfig", "MessageFlight", "Network", "PAPER_BANDWIDTH_MBPS",
    "PAPER_BUSES", "PendingMessage", "PerturbationStall", "PerturbedNetwork",
    "ReplayError", "STATE_NAMES", "SimResult", "SimulationStalledError",
    "SimulationTimeout", "Transfer", "WatchdogExpired", "simulate",
]
