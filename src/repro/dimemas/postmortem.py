"""Deadlock post-mortems: structured diagnosis of stalled replays.

A replay that cannot make progress used to surface as a bare error
string; at production scale ("millions of simulations") that is not a
diagnosis, it is a shrug.  This module turns the final state of a
stalled :class:`~repro.dimemas.replay._Simulation` into a structured
:class:`DeadlockReport`:

* the blocked operation of every unfinished rank (op kind, peer, tag,
  message size, trace record index, block label);
* every pending message whose handshake never completed, classified by
  what is missing (sender never sent / receiver never posted / stuck in
  the network queue) plus records left unmatched at matching time;
* a detected **wait-chain cycle** — the classic "rank 0 waits on rank 1
  waits on rank 0" signature — derived from the wait-for graph of the
  blocked operations;
* collectives some ranks entered and others never reached.

The report rides on :class:`DeadlockError` (raised when the event
queue drains with blocked ranks) and on :class:`SimulationTimeout`
(raised when the configurable watchdog trips on ``max_events`` /
``max_sim_time`` — converting a runaway simulation into a diagnosable
failure instead of a hang).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "BlockedOp",
    "DeadlockError",
    "DeadlockReport",
    "PendingMessage",
    "PerturbationStall",
    "ReplayError",
    "SimulationTimeout",
    "build_report",
]


@dataclass(frozen=True)
class BlockedOp:
    """The operation one unfinished rank is stuck in."""

    rank: int
    #: Record class name ("Send", "Recv", "Wait", "GlobalOp", ...) or
    #: "end" when the rank ran past its last record without finishing.
    op: str
    #: Index into the rank's record stream (None once past the end).
    record_index: int | None
    #: Peer rank of a point-to-point op (None for Wait/collectives).
    peer: int | None = None
    tag: int | None = None
    size: int | None = None
    #: Timeline label the rank blocked under ("Send", "Waiting a
    #: message", "Wait/WaitAll", "Group communication", ...).
    state: str | None = None
    #: Ranks this op is waiting on (edges of the wait-for graph).
    waiting_on: tuple[int, ...] = ()
    #: Extra context ("unmatched receive", request ids, ...).
    detail: str = ""

    def describe(self) -> str:
        where = "end of trace" if self.record_index is None else f"record {self.record_index}"
        bits = [f"rank {self.rank}: blocked in {self.op} at {where}"]
        if self.peer is not None:
            bits.append(f"peer={self.peer}")
        if self.tag is not None:
            bits.append(f"tag={self.tag}")
        if self.size is not None:
            bits.append(f"size={self.size}")
        if self.waiting_on:
            bits.append("waiting on rank(s) " + ",".join(map(str, self.waiting_on)))
        if self.detail:
            bits.append(self.detail)
        return "  ".join(bits)


@dataclass(frozen=True)
class PendingMessage:
    """A message whose send/receive handshake never completed."""

    src: int
    dst: int
    tag: int
    size: int
    rendezvous: bool
    #: Did the sender execute its send record?
    sent: bool
    #: Did the receiver post the matching receive?
    recv_posted: bool
    #: Did the transfer acquire resources and hit the wire?
    started: bool

    def describe(self) -> str:
        if not self.sent and not self.recv_posted:
            missing = "neither endpoint reached"
        elif not self.sent:
            missing = "sender never sent"
        elif not self.recv_posted:
            missing = "receiver never posted"
        elif not self.started:
            missing = "queued in the network (resources never freed)"
        else:
            missing = "in flight when the simulation stopped"
        proto = "rendezvous" if self.rendezvous else "eager"
        return (
            f"message {self.src}->{self.dst} tag={self.tag} "
            f"size={self.size} ({proto}): {missing}"
        )


@dataclass
class DeadlockReport:
    """Everything known about why a replay could not complete."""

    #: Per-rank blocked operations (unfinished ranks only).
    blocked: list[BlockedOp] = field(default_factory=list)
    #: Messages with an incomplete handshake.
    pending: list[PendingMessage] = field(default_factory=list)
    #: A wait-chain cycle through the blocked ranks (``[0, 1, 0]``
    #: means rank 0 waits on rank 1 waits on rank 0); empty when the
    #: stall is not cyclic (e.g. a dropped record, a lone rank).
    cycle: list[int] = field(default_factory=list)
    #: Collectives entered by some ranks but not all.
    stuck_collectives: list[str] = field(default_factory=list)
    #: Records left unpaired by message matching (malformed trace).
    unmatched: list[str] = field(default_factory=list)
    #: Simulation clock when the replay stopped.
    sim_time: float = 0.0
    #: Events the loop executed before stopping.
    events_executed: int = 0

    @property
    def blocked_ranks(self) -> list[int]:
        """Ranks that never finished, ascending."""
        return sorted(op.rank for op in self.blocked)

    def render(self, limit: int = 16) -> str:
        """Human-readable multi-line report (bounded output)."""
        lines = [
            f"{len(self.blocked)} rank(s) blocked at t={self.sim_time:.9g}s "
            f"after {self.events_executed} event(s)"
        ]
        for op in self.blocked[:limit]:
            lines.append("  " + op.describe())
        if len(self.blocked) > limit:
            lines.append(f"  ... and {len(self.blocked) - limit} more rank(s)")
        if self.cycle:
            lines.append(
                "wait cycle: " + " -> ".join(f"rank {r}" for r in self.cycle)
            )
        if self.unmatched:
            lines.append("unmatched records (malformed trace):")
            lines.extend("  " + u for u in self.unmatched[:limit])
        if self.pending:
            lines.append("pending messages:")
            lines.extend("  " + p.describe() for p in self.pending[:limit])
            if len(self.pending) > limit:
                lines.append(f"  ... and {len(self.pending) - limit} more")
        if self.stuck_collectives:
            lines.append("stuck collectives:")
            lines.extend("  " + c for c in self.stuck_collectives[:limit])
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-friendly form (for logs and tooling)."""
        from dataclasses import asdict
        return {
            "blocked": [asdict(b) for b in self.blocked],
            "pending": [asdict(p) for p in self.pending],
            "cycle": list(self.cycle),
            "stuck_collectives": list(self.stuck_collectives),
            "unmatched": list(self.unmatched),
            "sim_time": self.sim_time,
            "events_executed": self.events_executed,
        }


class ReplayError(RuntimeError):
    """Replay could not complete (stalled ranks, malformed trace).

    Lives here (not in :mod:`repro.dimemas.replay`) so the error
    hierarchy has no import cycle; replay re-exports it, so
    ``from repro.dimemas.replay import ReplayError`` keeps working.
    """


class DeadlockError(ReplayError):
    """The event queue drained while simulated ranks were still blocked.

    Carries a :class:`DeadlockReport` as ``.report``; the message keeps
    the historical "replay stalled" wording so existing handlers and
    log filters continue to match.
    """

    def __init__(self, report: DeadlockReport):
        self.report = report
        super().__init__("replay stalled (deadlock):\n" + report.render())


class SimulationTimeout(ReplayError):
    """The watchdog stopped a runaway simulation.

    ``.report`` snapshots the in-flight state at the moment the budget
    (``max_events`` / ``max_sim_time``) was exhausted; ``.reason``
    names which budget tripped.
    """

    def __init__(self, reason: str, report: DeadlockReport, detail: str = ""):
        self.reason = reason
        self.report = report
        extra = f" {detail}" if detail else ""
        super().__init__(
            f"simulation watchdog expired ({reason}){extra} "
            f"at t={report.sim_time:.9g}s "
            f"after {report.events_executed} event(s):\n" + report.render()
        )


class PerturbationStall(SimulationTimeout):
    """The watchdog tripped while a platform perturbation was active.

    An outage or degradation window can *legitimately* stall a replay
    past its simulated-time budget; blaming a generic runaway would
    send the user chasing a phantom bug.  ``.window`` names the
    perturbation window the simulation was stuck in (or headed into)
    when the budget ran out, and the message carries it too — the
    post-mortem explains the fault that caused it.  Subclasses
    :class:`SimulationTimeout`, so every existing handler and exit-code
    mapping keeps working.
    """

    def __init__(self, reason: str, report: DeadlockReport, window: str):
        self.window = window
        super().__init__(
            reason, report,
            detail=f"while platform perturbation [{window}] was active",
        )


# --------------------------------------------------------------------------- #
# Report construction.
# --------------------------------------------------------------------------- #

def _find_cycle(edges: dict[int, tuple[int, ...]]) -> list[int]:
    """Any directed cycle in the wait-for graph, as ``[a, b, ..., a]``."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {r: WHITE for r in edges}
    parent: dict[int, int] = {}

    for start in sorted(edges):
        if color[start] != WHITE:
            continue
        stack = [(start, iter(edges.get(start, ())))]
        color[start] = GRAY
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in edges:
                    continue
                if color[nxt] == GRAY:
                    # Unwind the gray chain from node back to nxt.
                    cycle = [node]
                    cur = node
                    while cur != nxt:
                        cur = parent[cur]
                        cycle.append(cur)
                    cycle.reverse()
                    cycle.append(cycle[0])
                    return cycle
                if color[nxt] == WHITE:
                    color[nxt] = GRAY
                    parent[nxt] = node
                    stack.append((nxt, iter(edges.get(nxt, ()))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return []


def _blocked_op(runner, sim) -> BlockedOp:
    """Describe what one unfinished rank is stuck on.

    Reads the packed columns of the simulation's replay plan (see
    :mod:`repro.trace.columnar`) — the record objects no longer exist
    at replay time.
    """
    from ..trace.columnar import OP_NAMES

    rank = runner.rank
    idx = runner.idx
    plan = sim.plan
    rc = plan.col.ranks[rank]
    if idx >= rc.n:
        return BlockedOp(
            rank=rank, op="end", record_index=None, state=runner._block_label,
            detail="ran past the last record without finishing",
        )
    kind = OP_NAMES[rc.op[idx]]
    peer = tag = size = None
    if kind in ("Send", "ISend", "Recv", "IRecv"):
        peer, tag, size = rc.peer[idx], rc.tag[idx], rc.size[idx]
    waiting: list[int] = []
    detail = ""

    if kind in ("Send", "ISend"):
        tr = sim.send_tr[rank][idx]
        if tr is None:
            detail = "unmatched send (no receive pairs with it)"
        elif peer is not None:
            waiting.append(peer)
    elif kind in ("Recv", "IRecv"):
        tr = sim.recv_tr[rank][idx]
        if tr is None:
            detail = "unmatched receive (no send pairs with it)"
        elif peer is not None:
            waiting.append(peer)
    elif kind == "Wait":
        pend_peers = []
        missing = []
        for req in plan.waits[rank][idx]:
            entry = sim.req_map.get((rank, req))
            if entry is None:
                missing.append(req)
                continue
            req_kind, tr = entry
            if tr.arrived or (req_kind == "send" and not tr.rendezvous):
                continue
            pend_peers.append(tr.src if req_kind == "recv" else tr.dst)
        waiting.extend(pend_peers)
        if missing:
            detail = f"request(s) {missing[:8]} were never posted"
    elif kind == "GlobalOp":
        rec = plan.colls[rank][idx]
        group = sim.coll._groups.get((rec.context, rec.seq), [])
        entered = {r.rank for r, _, _ in group}
        waiting.extend(
            r.rank for r in sim.runners
            if not r.finished and r.rank not in entered and r.rank != rank
        )
        detail = f"collective {rec.op.value} seq={rec.seq}"

    return BlockedOp(
        rank=rank, op=kind, record_index=idx, peer=peer, tag=tag,
        size=size, state=runner._block_label,
        waiting_on=tuple(dict.fromkeys(waiting)), detail=detail,
    )


def build_report(sim, unmatched: list[str] | None = None) -> DeadlockReport:
    """Post-mortem of a stalled or watchdog-stopped ``_Simulation``."""
    blocked = [_blocked_op(r, sim) for r in sim.runners if not r.finished]
    pending = [
        PendingMessage(
            src=t.src, dst=t.dst, tag=t.tag, size=t.size,
            rendezvous=t.rendezvous,
            sent=t.send_time is not None,
            recv_posted=t.recv_post_time is not None,
            started=t.start_time is not None,
        )
        for t in sim.transfers
        if not t.arrived and (t.send_time is not None or t.recv_post_time is not None)
    ]
    edges = {op.rank: op.waiting_on for op in blocked}
    return DeadlockReport(
        blocked=blocked,
        pending=pending,
        cycle=_find_cycle(edges),
        stuck_collectives=sim.coll.stuck(),
        unmatched=list(unmatched or ()),
        sim_time=sim.loop.now,
        events_executed=sim.loop.executed,
    )
