"""Analytic collective cost model (GlobalOp replay).

The paper's configuration decomposes collectives into point-to-point
transfers (replayed by the normal network model), so this module is
only exercised when traces are produced with
``decompose_collectives=False`` — it implements Dimemas' closed-form
collective model (Girona et al., EuroPVM/MPI 2000): a collective is a
synchronization of all ranks followed by a cost of

    ``model_factor * steps(op, P) * (latency + size / bandwidth)``

where ``steps`` reflects the logical communication structure (binomial
log2 phases for tree ops, linear fan for gathers, etc.).  The
``collective-model`` ablation benchmark compares this against the
decomposed replay.
"""

from __future__ import annotations

import math

from ..trace.records import CollOp, GlobalOp
from .machine import MachineConfig

__all__ = ["collective_cost", "collective_steps"]


def collective_steps(op: CollOp, nranks: int) -> float:
    """Number of (L + S/B) phases the collective's structure implies."""
    if nranks <= 1:
        return 0.0
    lg = math.ceil(math.log2(nranks))
    if op in (CollOp.BARRIER,):
        return 2.0 * lg                      # fan-in + fan-out
    if op in (CollOp.BCAST, CollOp.REDUCE):
        return float(lg)                     # binomial tree
    if op in (CollOp.ALLREDUCE,):
        return 2.0 * lg                      # reduce + bcast
    if op in (CollOp.GATHER, CollOp.SCATTER):
        return float(nranks - 1)             # linear root fan
    if op in (CollOp.ALLGATHER, CollOp.REDUCE_SCATTER):
        return float(nranks - 1 + lg)        # linear fan + tree
    if op in (CollOp.ALLTOALL,):
        return float(nranks - 1)             # rotation schedule
    raise ValueError(f"unknown collective op: {op}")


def collective_cost(rec: GlobalOp, nranks: int, cfg: MachineConfig) -> float:
    """Seconds the collective occupies after all ranks have entered."""
    size = max(rec.send_size, rec.recv_size)
    steps = collective_steps(rec.op, nranks)
    return cfg.collective_model_factor * steps * cfg.linear_cost(size)
