"""Network resource model: buses, ports, and transfer scheduling.

Implements Dimemas' congestion semantics on top of the linear model:
a message's wire occupancy (``size/bandwidth``) simultaneously holds

* one **global bus** (bounding how many messages travel concurrently
  through the whole interconnect — paper Table I calibrates this),
* one **output port** of the source processor, and
* one **input port** of the destination processor,

while the constant ``latency`` term is pipeline depth, not a resource.
A transfer starts only when all three resources are free; queued
transfers are served FIFO by request time (a later transfer may start
earlier only if it uses entirely different ports while the earlier one
is port-blocked — matching Dimemas' per-resource queues).

Zero-byte messages (pure synchronization) bypass the network and cost
only latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .engine import EventLoop
from .machine import MachineConfig

__all__ = ["Network", "PerturbedNetwork", "Transfer"]


@dataclass(slots=True)
class Transfer:
    """One point-to-point message moving through the platform.

    Filled in progressively by the replay driver (protocol handshake)
    and the network (timing).  All times are absolute seconds; ``None``
    = not yet known.  ``slots=True``: transfer attributes are read in
    the replay inner loop, and a few thousand instances are built per
    replay.
    """

    src: int
    dst: int
    size: int
    tag: int = 0
    rendezvous: bool = False

    #: When the sender executed its send record.
    send_time: float | None = None
    #: When the receiver posted the matching receive.
    recv_post_time: float | None = None
    #: When the transfer was handed to the network.
    ready_time: float | None = None
    #: When it acquired bus+ports and started occupying the wire.
    start_time: float | None = None
    #: When injection finished (resources released; sender-side done).
    inject_time: float | None = None
    #: When the payload arrived at the destination (receiver-side done).
    arrival_time: float | None = None

    injected: bool = False
    arrived: bool = False
    #: Completion callbacks, allocated lazily — most transfers complete
    #: with no subscriber, and skipping two list allocations per
    #: transfer is measurable at replay scale.
    _inject_waiters: list[Callable[[float], None]] | None = None
    _arrival_waiters: list[Callable[[float], None]] | None = None

    # -- completion subscription ------------------------------------------------
    def on_injected(self, fn: Callable[[float], None]) -> None:
        """Call ``fn(inject_time)`` once injection completes."""
        if self.injected:
            fn(self.inject_time)  # type: ignore[arg-type]
        elif self._inject_waiters is None:
            self._inject_waiters = [fn]
        else:
            self._inject_waiters.append(fn)

    def on_arrived(self, fn: Callable[[float], None]) -> None:
        """Call ``fn(arrival_time)`` once the payload is delivered."""
        if self.arrived:
            fn(self.arrival_time)  # type: ignore[arg-type]
        elif self._arrival_waiters is None:
            self._arrival_waiters = [fn]
        else:
            self._arrival_waiters.append(fn)

    def _fire_injected(self, t: float) -> None:
        self.injected = True
        self.inject_time = t
        waiters, self._inject_waiters = self._inject_waiters, None
        if waiters:
            for fn in waiters:
                fn(t)

    def _fire_arrived(self, t: float) -> None:
        self.arrived = True
        self.arrival_time = t
        waiters, self._arrival_waiters = self._arrival_waiters, None
        if waiters:
            for fn in waiters:
                fn(t)


class Network:
    """Resource arbiter for transfers on one :class:`MachineConfig`."""

    def __init__(self, loop: EventLoop, nranks: int, cfg: MachineConfig):
        self.loop = loop
        self.cfg = cfg
        self.nranks = nranks
        self._free_buses = cfg.buses if cfg.buses is not None else float("inf")
        self._free_out = [cfg.output_ports] * nranks
        self._free_in = [cfg.input_ports] * nranks
        self._queue: list[Transfer] = []
        #: Optional :class:`repro.audit.InvariantAuditor` — when set,
        #: occupancy is cross-checked against capacity at every
        #: acquire/release (one ``is None`` branch per started transfer,
        #: nothing on the zero-byte/SMP bypass paths).
        self.auditor = None
        #: Optional :class:`repro.insight.InsightCollector` — when set,
        #: the network reports why each transfer queued and how bus
        #: occupancy evolved.  Same cost contract as the auditor hook:
        #: one ``is None`` branch per started/queued transfer only.
        self.insight = None
        #: Hoisted platform constants — read once per transfer in the
        #: replay inner loop instead of walking ``cfg`` attributes.
        self._latency = cfg.latency
        self._bandwidth = cfg.bandwidth
        #: With one core per node no pair of distinct ranks shares a
        #: node, so the SMP branch can be skipped wholesale.
        self._smp_possible = (cfg.cores_per_node or 1) > 1
        #: Peak number of simultaneously active transfers (diagnostics).
        self.peak_active = 0
        self._active = 0
        #: Total wire-occupancy seconds consumed (diagnostics).
        self.busy_seconds = 0.0

    # ------------------------------------------------------------------ #
    def submit(self, transfer: Transfer) -> None:
        """Hand a transfer to the network at the current loop time.

        Must be called at ``loop.now == transfer.ready_time`` (the
        replay driver schedules the call accordingly).
        """
        loop = self.loop
        now = loop.now
        transfer.ready_time = now
        if transfer.size == 0 or transfer.src == transfer.dst:
            # Pure sync or self-message: latency only, no resources.
            transfer.start_time = now
            loop.at(now, lambda: transfer._fire_injected(loop.now))
            lat = 0.0 if transfer.src == transfer.dst else self._latency
            loop.at(now + lat, lambda: transfer._fire_arrived(loop.now))
            return
        if self._smp_possible and self.cfg.same_node(transfer.src, transfer.dst):
            # Shared-memory path: no buses, no ports (Dimemas' SMP node
            # model) — a plain copy at intra-node latency/bandwidth.
            transfer.start_time = self.loop.now
            copy = self.cfg.intra_transfer_seconds(transfer.size)
            self.loop.after(copy, lambda: transfer._fire_injected(self.loop.now))
            self.loop.after(
                copy + self.cfg.intra_latency,
                lambda: transfer._fire_arrived(self.loop.now),
            )
            return
        # Fast path: nothing queued ahead and resources free — start
        # immediately without the FIFO rescan.
        if not self._queue and self._resources_free(transfer):
            self._start(transfer)
        else:
            self._queue.append(transfer)
            self._try_start()
            if self.insight is not None and transfer.start_time is None:
                # Still queued after the FIFO scan settled: some
                # resource is genuinely exhausted for this transfer.
                self.insight.note_queued(
                    now, transfer, self._queue_cause(transfer),
                    len(self._queue),
                )

    # ------------------------------------------------------------------ #
    def _queue_cause(self, t: Transfer) -> str:
        """Which resource class is blocking ``t`` right now.

        Checked in bus → output-port → input-port order, mirroring
        :meth:`_resources_free`; the shared bus pool blocking everyone
        is also the fallback.
        """
        if self._free_buses < 1:
            return "bus_contention"
        if self._free_out[t.src] < 1:
            return "injection_port"
        if self._free_in[t.dst] < 1:
            return "endpoint_port"
        return "bus_contention"

    def _resources_free(self, t: Transfer) -> bool:
        return (
            self._free_buses >= 1
            and self._free_out[t.src] >= 1
            and self._free_in[t.dst] >= 1
        )

    def _try_start(self) -> None:
        """Start every queued transfer whose resources are all free.

        FIFO scan: earlier-queued transfers get first pick; a later
        transfer only jumps ahead when it needs *different* ports (the
        bus pool being shared, bus exhaustion blocks everyone).
        """
        queue = self._queue
        started_any = True
        while started_any and queue:
            started_any = False
            for i, t in enumerate(queue):
                if self._resources_free(t):
                    del queue[i]
                    self._start(t)
                    started_any = True
                    break

    def _start(self, t: Transfer) -> None:
        self._free_buses -= 1
        self._free_out[t.src] -= 1
        self._free_in[t.dst] -= 1
        active = self._active + 1
        self._active = active
        if active > self.peak_active:
            self.peak_active = active
        if self.auditor is not None:
            self.auditor.check_occupancy(self, t)
        loop = self.loop
        t.start_time = loop.now
        if self.insight is not None:
            self.insight.note_start(loop.now, active, len(self._queue))
        # Same arithmetic as cfg.transfer_seconds, minus the property
        # chase — this runs once per started transfer.
        occupancy = t.size / self._bandwidth
        self.busy_seconds += occupancy
        loop.at(loop.now + occupancy, lambda: self._finish_injection(t))

    def _finish_injection(self, t: Transfer) -> None:
        self._free_buses += 1
        self._free_out[t.src] += 1
        self._free_in[t.dst] += 1
        self._active -= 1
        if self.auditor is not None:
            self.auditor.check_release(self, t)
        if self.insight is not None:
            self.insight.note_release(
                self.loop.now, self._active, len(self._queue)
            )
        loop = self.loop
        t._fire_injected(loop.now)
        loop.at(loop.now + self._latency, lambda: t._fire_arrived(loop.now))
        if self._queue:
            self._try_start()


class PerturbedNetwork(Network):
    """A :class:`Network` degraded by a perturbation schedule.

    Subclassing keeps the fast path provably untouched: ``simulate``
    builds a plain :class:`Network` whenever no schedule is active, so
    the unperturbed hot loop contains not a single perturbation branch.
    Here, wire time is the integral of a piecewise-constant effective
    bandwidth (degradation windows scale it, stall outages zero it),
    restart outages abort and re-inject in-flight transfers, no
    transfer may *start* during any outage, and latency windows add to
    the pipeline constant at delivery time.

    Everything is a pure function of ``loop.now`` and the schedule —
    no RNG, no wall clock — so perturbed replays stay bitwise
    deterministic.  Whenever a transfer takes longer than it would
    have on the pristine platform, the excess seconds are reported to
    the insight channel (:meth:`InsightCollector.note_perturbed`) so
    wait-cause attribution can carve out exactly the slice of blocked
    time the fault caused.
    """

    def __init__(self, loop: EventLoop, nranks: int, cfg: MachineConfig,
                 schedule) -> None:
        super().__init__(loop, nranks, cfg)
        self.schedule = schedule
        #: Piecewise wire profile: (t0, t1, factor) with stall outages
        #: as factor 0.0.  Restart outages are kept apart — they do not
        #: slow the integral, they void the whole attempt.
        profile = [(w.t0, w.t1, w.factor) for w in schedule.bandwidth]
        profile += [
            (w.t0, w.t1, 0.0)
            for w in schedule.outages if w.semantics == "stall"
        ]
        self._profile = sorted(profile)
        self._restarts = sorted(
            (w.t0, w.t1)
            for w in schedule.outages if w.semantics == "restart"
        )
        self._outage_spans = sorted((w.t0, w.t1) for w in schedule.outages)
        self._latency_windows = sorted(
            (w.t0, w.t1, w.extra) for w in schedule.latency
        )
        #: Outage ends with a pending wake-up already scheduled.
        self._woken: set[float] = set()
        #: Total extra seconds the schedule injected (diagnostics).
        self.perturb_excess_seconds = 0.0

    # -- schedule lookups ---------------------------------------------- #
    def _extra_latency(self, t: float) -> float:
        for w0, w1, extra in self._latency_windows:
            if w0 <= t < w1:
                return extra
        return 0.0

    def _outage_until(self, t: float) -> float | None:
        """End of the outage covering ``t`` (any semantics), or None."""
        for w0, w1 in self._outage_spans:
            if w0 <= t < w1:
                return w1
        return None

    def _note_excess(self, t: Transfer, seconds: float) -> None:
        self.perturb_excess_seconds += seconds
        if self.insight is not None:
            self.insight.note_perturbed(t, seconds)

    # -- wire-time integration ----------------------------------------- #
    def _integrate(self, start: float, occupancy: float) -> float:
        """Finish time of ``occupancy`` effective wire-seconds starting
        at ``start`` under degradation and stall windows."""
        t = start
        remaining = occupancy
        for w0, w1, factor in self._profile:
            if w1 <= t:
                continue
            if w0 > t:
                gap = w0 - t
                if remaining <= gap:
                    return t + remaining
                remaining -= gap
                t = w0
            if factor <= 0.0:
                # Stalled: the clock runs, the payload does not.
                t = w1
            else:
                cap = (w1 - t) * factor
                if remaining <= cap:
                    return t + remaining / factor
                remaining -= cap
                t = w1
        return t + remaining

    def _wire_finish(self, start: float, occupancy: float) -> float:
        """Injection-complete time including restart-outage retries."""
        t = start
        while True:
            nxt = None
            for o0, o1 in self._restarts:
                if o1 > t:
                    nxt = (o0, o1)
                    break
            if nxt is not None and nxt[0] <= t:
                # Retry landed inside a reset window (fresh starts are
                # blocked by _resources_free, so only retries get here).
                t = nxt[1]
                continue
            finish = self._integrate(t, occupancy)
            if nxt is None or finish <= nxt[0]:
                return finish
            # In flight when the link reset: abort, re-inject after.
            t = nxt[1]

    # -- Network overrides --------------------------------------------- #
    def submit(self, transfer: Transfer) -> None:
        if transfer.size == 0 or transfer.src == transfer.dst:
            # Pure sync / self-message bypasses buses and ports but not
            # the wire pipeline, so latency spikes still apply.
            loop = self.loop
            now = loop.now
            transfer.ready_time = now
            transfer.start_time = now
            loop.at(now, lambda: transfer._fire_injected(loop.now))
            if transfer.src == transfer.dst:
                lat = 0.0
            else:
                extra = self._extra_latency(now)
                lat = self._latency + extra
                if extra > 0.0:
                    self._note_excess(transfer, extra)
            loop.at(now + lat, lambda: transfer._fire_arrived(loop.now))
            return
        super().submit(transfer)

    def _resources_free(self, t: Transfer) -> bool:
        if self._outage_spans and self._outage_until(self.loop.now) is not None:
            return False
        return super()._resources_free(t)

    def _queue_cause(self, t: Transfer) -> str:
        if self._outage_spans and self._outage_until(self.loop.now) is not None:
            return "perturbation"
        return super()._queue_cause(t)

    def _try_start(self) -> None:
        super()._try_start()
        if self._queue:
            until = self._outage_until(self.loop.now)
            if until is not None and until not in self._woken:
                # Nothing else is guaranteed to poke the queue while the
                # link is down — wake it the instant the outage lifts.
                self._woken.add(until)
                self.loop.at(until, self._try_start)

    def _start(self, t: Transfer) -> None:
        self._free_buses -= 1
        self._free_out[t.src] -= 1
        self._free_in[t.dst] -= 1
        active = self._active + 1
        self._active = active
        if active > self.peak_active:
            self.peak_active = active
        if self.auditor is not None:
            self.auditor.check_occupancy(self, t)
        loop = self.loop
        t.start_time = loop.now
        if self.insight is not None:
            self.insight.note_start(loop.now, active, len(self._queue))
        occupancy = t.size / self._bandwidth
        finish = self._wire_finish(loop.now, occupancy)
        elapsed = finish - loop.now
        # Wall-on-the-wire, not nominal occupancy: a stalled or slowed
        # transfer holds its bus and ports the whole time.
        self.busy_seconds += elapsed
        excess = elapsed - occupancy
        if excess > 0.0:
            self._note_excess(t, excess)
        loop.at(finish, lambda: self._finish_injection(t))

    def _finish_injection(self, t: Transfer) -> None:
        self._free_buses += 1
        self._free_out[t.src] += 1
        self._free_in[t.dst] += 1
        self._active -= 1
        if self.auditor is not None:
            self.auditor.check_release(self, t)
        if self.insight is not None:
            self.insight.note_release(
                self.loop.now, self._active, len(self._queue)
            )
        loop = self.loop
        t._fire_injected(loop.now)
        extra = self._extra_latency(loop.now)
        if extra > 0.0:
            self._note_excess(t, extra)
        loop.at(
            loop.now + self._latency + extra,
            lambda: t._fire_arrived(loop.now),
        )
        if self._queue:
            self._try_start()
