"""Replay results: reconstructed timelines and their statistics.

The replay simulator reconstructs each rank's time-behaviour as a list
of state intervals (the exact information Paraver renders in paper
Figure 4) plus the set of message flights.  :class:`SimResult` is the
lingua franca of the analysis side: :mod:`repro.paraver` renders it,
:mod:`repro.trace.prv` serializes it, and the experiment harness reads
its ``duration``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

__all__ = ["MessageFlight", "SimResult", "STATE_NAMES"]

#: The state vocabulary of reconstructed timelines.
STATE_NAMES = (
    "Running",
    "Send",
    "Waiting a message",
    "Wait/WaitAll",
    "Group communication",
    "Idle",
)


@dataclass(frozen=True, slots=True)
class MessageFlight:
    """One delivered message: logical send/receive times and key.

    ``slots=True``: hundreds are built per replay on the hot path.
    """

    src: int
    dst: int
    t_send: float     # sender executed the send record
    t_start: float    # wire occupancy began (after resource queueing)
    t_recv: float     # payload arrived at the destination
    size: int
    tag: int

    @property
    def flight_time(self) -> float:
        """End-to-end delay from send call to delivery."""
        return self.t_recv - self.t_send

    @property
    def queue_delay(self) -> float:
        """Time spent waiting for buses/ports before hitting the wire."""
        return self.t_start - self.t_send


@dataclass
class SimResult:
    """The reconstructed execution of one trace on one platform."""

    nranks: int
    #: Simulated makespan: max over ranks of their end time (seconds).
    duration: float
    #: Per-rank completion times.
    rank_end: list[float]
    #: Per-rank state intervals ``(state, t0, t1)``, time-ordered.
    states: list[list[tuple[str, float, float]]]
    #: All delivered messages, ordered by send time.
    messages: list[MessageFlight]
    #: Per-rank user events ``(t, name, value)``.
    events: list[list[tuple[float, int | str, int]]] = field(default_factory=list)
    #: Network diagnostics (peak concurrent transfers, busy seconds).
    network_stats: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # State accounting.
    # ------------------------------------------------------------------ #
    def time_in_state(self, state: str, rank: int | None = None) -> float:
        """Total seconds spent in ``state`` (one rank or all ranks).

        A rank with no recorded intervals contributes 0 — ``states``
        may legitimately be shorter than ``nranks`` (e.g. a result
        restored from ``to_dict(include_states=False)`` output).
        """
        if rank is None:
            ranks = range(min(self.nranks, len(self.states)))
        elif 0 <= rank < len(self.states):
            ranks = (rank,)
        else:
            return 0.0
        return sum(
            t1 - t0
            for r in ranks
            for (s, t0, t1) in self.states[r]
            if s == state
        )

    def state_summary(self) -> dict[str, float]:
        """Seconds per state summed over ranks (Paraver profile view)."""
        out: dict[str, float] = defaultdict(float)
        for intervals in self.states:
            for s, t0, t1 in intervals:
                out[s] += t1 - t0
        return dict(out)

    @property
    def compute_time(self) -> float:
        """Total Running seconds over all ranks."""
        return self.time_in_state("Running")

    @property
    def blocked_time(self) -> float:
        """Total seconds blocked in any communication state."""
        return sum(
            v for k, v in self.state_summary().items() if k != "Running"
        )

    @property
    def parallel_efficiency(self) -> float:
        """Running time / (makespan * ranks) — Paraver's efficiency metric."""
        denom = self.duration * self.nranks
        return self.compute_time / denom if denom > 0 else 0.0

    # ------------------------------------------------------------------ #
    # Event helpers (iteration slicing for Figure 4-style views).
    # ------------------------------------------------------------------ #
    def event_times(self, name: str, rank: int = 0) -> list[tuple[float, int]]:
        """``(time, value)`` of every event ``name`` on ``rank``.

        Empty for a rank with no event list (empty traces, results
        restored without per-rank events) rather than an IndexError.
        """
        if not 0 <= rank < len(self.events):
            return []
        return [(t, v) for (t, n, v) in self.events[rank] if n == name]

    def window(self, t0: float, t1: float) -> "SimResult":
        """Clip the result to ``[t0, t1]`` (for per-iteration views)."""
        def clip(intervals):
            out = []
            for s, a, b in intervals:
                a2, b2 = max(a, t0), min(b, t1)
                if b2 > a2:
                    out.append((s, a2, b2))
            return out

        return SimResult(
            nranks=self.nranks,
            duration=t1 - t0,
            rank_end=[min(e, t1) - t0 for e in self.rank_end],
            states=[
                [(s, a - t0, b - t0) for s, a, b in clip(iv)] for iv in self.states
            ],
            messages=[
                MessageFlight(
                    m.src, m.dst, m.t_send - t0, m.t_start - t0,
                    m.t_recv - t0, m.size, m.tag,
                )
                for m in self.messages
                if t0 <= m.t_send and m.t_recv <= t1
            ],
            events=[
                [(t - t0, n, v) for (t, n, v) in evs if t0 <= t <= t1]
                for evs in self.events
            ],
            network_stats=dict(self.network_stats),
        )

    # ------------------------------------------------------------------ #
    # Interop.
    # ------------------------------------------------------------------ #
    def to_dict(self, include_messages: bool = True,
                include_states: bool = True) -> dict:
        """Plain-data form of the result (JSON-serializable)."""
        out: dict = {
            "nranks": self.nranks,
            "duration": self.duration,
            "rank_end": list(self.rank_end),
            "state_summary": self.state_summary(),
            "parallel_efficiency": self.parallel_efficiency,
            "network_stats": dict(self.network_stats),
        }
        if include_states:
            out["states"] = [
                [[s, t0, t1] for (s, t0, t1) in iv] for iv in self.states
            ]
        if include_messages:
            out["messages"] = [
                {
                    "src": m.src, "dst": m.dst, "t_send": m.t_send,
                    "t_start": m.t_start, "t_recv": m.t_recv,
                    "size": m.size, "tag": m.tag,
                }
                for m in self.messages
            ]
        out["events"] = [
            [[t, n, v] for (t, n, v) in evs] for evs in self.events
        ]
        return out

    @classmethod
    def from_dict(cls, doc: dict) -> "SimResult":
        """Rebuild a result from :meth:`to_dict` output.

        Floats survive the JSON round-trip exactly (``repr`` encoding),
        so a cache-restored result is bit-identical to the simulated
        one; derived keys (``state_summary``, ``parallel_efficiency``)
        are recomputed, not read.
        """
        return cls(
            nranks=int(doc["nranks"]),
            duration=doc["duration"],
            rank_end=list(doc["rank_end"]),
            states=[
                [(s, t0, t1) for s, t0, t1 in intervals]
                for intervals in doc.get("states", [])
            ],
            messages=[MessageFlight(**m) for m in doc.get("messages", [])],
            events=[
                [(t, n, v) for t, n, v in evs] for evs in doc.get("events", [])
            ],
            network_stats=dict(doc.get("network_stats", {})),
        )

    def to_json(self, fp=None, **kwargs) -> str | None:
        """Dump :meth:`to_dict` as JSON (to a string, path, or stream)."""
        import json
        from pathlib import Path

        doc = json.dumps(self.to_dict(**kwargs), indent=1)
        if fp is None:
            return doc
        if isinstance(fp, (str, Path)):
            Path(fp).write_text(doc)
        else:
            fp.write(doc)
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SimResult(nranks={self.nranks}, duration={self.duration:.6f}s, "
            f"messages={len(self.messages)})"
        )
