"""Trace-driven replay: reconstructing time-behaviour on a platform.

This is the Dimemas stage of the pipeline (paper Figure 3): it takes
the per-process traces (original or overlapped) and *"off-line
reconstructs the application's time-behavior on a configurable
parallel platform"*.

Execution model
---------------

Each rank replays its record stream sequentially on a private clock:

* ``CpuBurst`` — advances the clock by ``duration * cpu_ratio``
  (state: Running);
* ``Send`` — eager protocol (size ≤ eager threshold, or forced by the
  record): zero sender cost — the paper assumes OS-bypass NICs that
  *"perform communication operations without interrupting the main
  processor"* (§I), so an eager send only enqueues the transfer, which
  then competes for buses/ports on its own; rendezvous: the sender
  blocks until delivery, and the transfer cannot start before the
  receiver has posted;
* ``ISend`` / ``IRecv`` — zero-cost posting;
* ``Recv`` — blocks until the matching message is delivered;
* ``Wait`` — blocks until all referenced requests complete (eager send
  requests are buffered and complete immediately, everything else at
  delivery);
* ``GlobalOp`` — synchronizes all ranks, then applies the analytic
  collective cost model (only present in non-decomposed traces);
* ``Event`` — timestamps a user event.

Matching is resolved *statically* with
:func:`repro.core.matching.match_columnar` (MPI posting-order
semantics), so replay, runtime, and transformation always agree on
message pairings.  The network applies the linear cost model with
finite buses and ports (:mod:`repro.dimemas.network`).

Causality: a rank executes communication records only when the global
event clock has caught up with its private clock, so all resource
contention resolves in global time order.

Hot path
--------

Replaying is the inner loop of every experiment (a single bandwidth
bisection issues ~60 replays of the same trace), so the per-trace
preprocessing is factored into a cached :class:`_ReplayPlan` built on
the packed columnar form (:mod:`repro.trace.columnar`): message
matching and burst coalescing run once per trace *content*, and the
dispatch loop walks plain int/float lists instead of record objects.
Plans are keyed by the trace's **content digest** in a bounded LRU, so
a trace loaded from a cache (a different object with identical bytes)
reuses the existing plan instead of re-matching from scratch.

:func:`simulate` accepts either a :class:`~repro.trace.records.TraceSet`
or a :class:`~repro.trace.columnar.ColumnarTrace` — workers fed the
compact encoding replay it directly, no record objects ever built —
and both paths produce bitwise-identical results.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable

from ..obs import get_registry, is_enabled as _obs_enabled, span as _span
from ..core.matching import match_columnar
from ..trace.columnar import (
    OP_COLL as _OP_COLL,
    OP_CPU as _OP_CPU,
    OP_EVENT as _OP_EVENT,
    OP_IRECV as _OP_IRECV,
    OP_ISEND as _OP_ISEND,
    OP_RECV as _OP_RECV,
    OP_SEND as _OP_SEND,
    OP_WAIT as _OP_WAIT,
    ColumnarTrace,
    RankColumns,
    columnar_of,
)
from ..trace.records import CollOp, GlobalOp, TraceSet
from .collectives import collective_cost
from .engine import EventLoop, WatchdogExpired
from .machine import MachineConfig
from .network import Network, PerturbedNetwork, Transfer
from .postmortem import (
    DeadlockError,
    PerturbationStall,
    ReplayError,
    SimulationTimeout,
    build_report,
)
from .results import MessageFlight, SimResult

__all__ = [
    "DeadlockError",
    "PerturbationStall",
    "ReplayError",
    "SimulationTimeout",
    "simulate",
]

_EPS = 1e-15


class _CollectiveSync:
    """Barrier-style coordination of analytic GlobalOp records."""

    def __init__(self, nranks: int, cfg: MachineConfig, loop: EventLoop):
        self.nranks = nranks
        self.cfg = cfg
        self.loop = loop
        self._groups: dict[tuple, list] = {}
        #: Collectives fully synchronized (observability).
        self.completed = 0

    def enter(self, runner: "_RankRunner", rec: GlobalOp) -> None:
        group = self._groups.setdefault((rec.context, rec.seq), [])
        group.append((runner, runner.now, rec))
        expected = rec.members if rec.members > 0 else self.nranks
        if len(group) == expected:
            t_enter = max(t for _, t, _ in group)
            cost = collective_cost(rec, expected, self.cfg)
            t_done = t_enter + cost
            self.completed += 1
            del self._groups[(rec.context, rec.seq)]
            for r, _, _ in group:
                self.loop.at(t_done, _make_resume(r, t_done))

    def stuck(self) -> list[str]:
        return [
            f"collective context={key[0]} seq={key[1]}: "
            f"only {len(g)} rank(s) entered"
            for key, g in self._groups.items()
        ]


def _make_resume(runner: "_RankRunner", t: float) -> Callable[[], None]:
    return lambda: runner._resume(t)


class _RankRunner:
    """Sequential replay cursor of one rank."""

    __slots__ = (
        "sim", "rank", "ops", "durs", "events_at", "waits_at", "colls_at",
        "sizes", "rvs", "send_tr", "recv_tr", "n",
        "idx", "now", "finished", "states", "events", "cpu_ratio",
        "_block_label", "_block_start", "_aud", "_ins", "_block_trs",
    )

    def __init__(self, sim: "_Simulation", rank: int):
        self.sim = sim
        self.rank = rank
        plan = sim.plan
        self.ops = plan.ops[rank]
        self.durs = plan.durs[rank]
        #: Effective compute scaling of this rank.  Equals the platform
        #: cpu_ratio unless a perturbation schedule marks the rank as a
        #: straggler; CPU noise likewise swaps in a stretched *copy* of
        #: the plan's burst durations (the shared plan is never touched).
        self.cpu_ratio = sim.cfg.cpu_ratio
        pert = sim.pert
        if pert is not None:
            self.cpu_ratio = sim.cfg.cpu_ratio * pert.cpu_factor(rank)
            noisy = pert.scale_cpu_durations(
                rank, self.ops, self.durs, _OP_CPU
            )
            if noisy is not None:
                self.durs = noisy
        self.events_at = plan.events[rank]
        self.waits_at = plan.waits[rank]
        self.colls_at = plan.colls[rank]
        rc = plan.col.ranks[rank]
        self.sizes = rc.size
        self.rvs = rc.rv
        self.send_tr = sim.send_tr[rank]
        self.recv_tr = sim.recv_tr[rank]
        self.n = len(self.ops)
        self.idx = 0
        self.now = 0.0
        self.finished = False
        self.states: list[tuple[str, float, float]] = []
        self.events: list[tuple[float, str, int]] = []
        self._block_label: str | None = None
        self._block_start = 0.0
        # Causal ring capture only at ``full`` audit level; the common
        # unaudited replay keeps this None (one dead branch on the
        # blocking paths, nothing in the record dispatch loop).
        aud = sim.auditor
        self._aud = aud if aud is not None and aud.full else None
        # Analysis-event channel (``repro.insight``): None in the common
        # unattributed replay — same cost contract as ``_aud``, one dead
        # branch on the blocking paths only.
        self._ins = sim.insight
        self._block_trs: tuple = ()

    # -- state bookkeeping ---------------------------------------------------
    def _push_state(self, label: str, t0: float, t1: float) -> None:
        if t1 <= t0 + _EPS:
            return
        if self.states and self.states[-1][0] == label and abs(self.states[-1][2] - t0) < _EPS:
            prev = self.states[-1]
            self.states[-1] = (label, prev[1], t1)
        else:
            self.states.append((label, t0, t1))

    def _block(self, label: str) -> None:
        self._block_label = label
        self._block_start = self.now
        if self._aud is not None:
            self._aud.note(
                self.rank, self.now, f"block ({label}) at record {self.idx}"
            )

    def _resume(self, t: float) -> None:
        """Completion callback: close the blocked state and continue."""
        if self._aud is not None:
            self._aud.note(
                self.rank, t,
                f"resume from {self._block_label} at record {self.idx}",
            )
        if t < self.now:
            t = self.now
        if self._block_label is not None:
            self._push_state(self._block_label, self._block_start, t)
            if self._ins is not None:
                # Mirror _push_state's epsilon skip inside record_wait
                # so attributed wait time sums to recorded blocked time.
                self._ins.record_wait(
                    self.rank, self._block_label, self._block_start, t,
                    self._block_trs,
                )
                self._block_trs = ()
            self._block_label = None
        self.now = t
        self.idx += 1
        self.advance()

    def blocked_description(self) -> str:
        from ..trace.columnar import OP_NAMES
        kind = OP_NAMES[self.ops[self.idx]] if self.idx < self.n else "end"
        return (
            f"rank {self.rank} at record {self.idx} "
            f"({kind}), state={self._block_label}"
        )

    # -- the replay loop ------------------------------------------------------
    def advance(self) -> None:
        sim = self.sim
        loop = sim.loop
        network_submit = sim.network.submit
        cpu_ratio = self.cpu_ratio
        eager_threshold = sim.cfg.eager_threshold
        ops = self.ops
        durs = self.durs
        send_tr = self.send_tr
        recv_tr = self.recv_tr
        push_state = self._push_state
        n = self.n
        while self.idx < n:
            idx = self.idx
            op = ops[idx]
            if op == _OP_CPU:
                now = self.now
                dur = durs[idx] * cpu_ratio
                push_state("Running", now, now + dur)
                self.now = now + dur
                self.idx = idx + 1
                continue
            if op == _OP_EVENT:
                name, value = self.events_at[idx]
                self.events.append((self.now, name, value))
                self.idx = idx + 1
                continue
            # Side-effecting record: only execute once the global clock
            # has caught up (causal resource arbitration).
            if self.now > loop.now + 1e-12:
                loop.at(self.now, self.advance)
                return

            if op == _OP_SEND or op == _OP_ISEND:
                tr = send_tr[idx]
                if tr is None:
                    # Unmatched send (malformed trace): no receive will
                    # ever pair with it.  Eager sends complete locally
                    # (buffered, like MPI); a rendezvous Send blocks
                    # forever and the post-mortem names it.  An ISend's
                    # dangling request is caught at its Wait.
                    rv = self.rvs[idx]
                    rendezvous = (
                        bool(rv) if rv >= 0
                        else self.sizes[idx] > eager_threshold
                    )
                    if op == _OP_ISEND or not rendezvous:
                        self.idx = idx + 1
                        continue
                    self._block("Send")
                    return
                tr.send_time = self.now
                if not tr.rendezvous:
                    # Eager: enqueue the transfer and move on (OS-bypass
                    # NIC — zero sender cost for Send and ISend alike).
                    network_submit(tr)
                    self.idx = idx + 1
                    continue
                if tr.recv_post_time is not None:
                    network_submit(tr)
                if op == _OP_ISEND:
                    self.idx = idx + 1
                    continue
                self._block("Send")
                if self._ins is not None:
                    self._block_trs = (tr,)
                tr.on_arrived(self._resume)
                return

            if op == _OP_RECV or op == _OP_IRECV:
                tr = recv_tr[idx]
                if tr is None:
                    # Unmatched receive: nothing will ever arrive.  An
                    # IRecv's dangling request is caught at its Wait; a
                    # blocking Recv blocks forever (diagnosable).
                    if op == _OP_IRECV:
                        self.idx = idx + 1
                        continue
                    self._block("Waiting a message")
                    return
                tr.recv_post_time = self.now
                if tr.rendezvous and tr.send_time is not None and tr.ready_time is None:
                    network_submit(tr)
                if op == _OP_IRECV:
                    self.idx = idx + 1
                    continue
                if tr.arrived:
                    if tr.arrival_time > self.now:
                        self.now = tr.arrival_time
                    self.idx = idx + 1
                    continue
                self._block("Waiting a message")
                if self._ins is not None:
                    self._block_trs = (tr,)
                tr.on_arrived(self._resume)
                return

            if op == _OP_WAIT:
                # Eager send requests are buffered (complete at the send
                # call); everything else completes at message arrival.
                pend: list[Transfer] = []
                latest = self.now
                dangling = False
                req_map = sim.req_map
                rank = self.rank
                # Attribution needs every transfer the Wait inspects —
                # already-arrived ones included, since the latest
                # arrival (pending or not) defines the resume time.
                seen: list[Transfer] | None = (
                    [] if self._ins is not None else None
                )
                for req in self.waits_at[idx]:
                    entry = req_map.get((rank, req))
                    if entry is None:
                        # Request belongs to an unmatched ISend/IRecv
                        # (or was never posted): it can never complete.
                        dangling = True
                        continue
                    kind, tr = entry
                    if kind == "send" and not tr.rendezvous:
                        continue
                    if seen is not None:
                        seen.append(tr)
                    if tr.arrived:
                        if tr.arrival_time > latest:
                            latest = tr.arrival_time
                    else:
                        pend.append(tr)
                if dangling:
                    self._block("Wait/WaitAll")
                    return
                if not pend:
                    self.now = latest
                    self.idx = idx + 1
                    continue
                self._block("Wait/WaitAll")
                if seen is not None:
                    self._block_trs = tuple(seen)
                remaining = len(pend)
                acc = [latest]

                def _done(t: float) -> None:
                    nonlocal remaining
                    acc[0] = max(acc[0], t)
                    remaining -= 1
                    if remaining == 0:
                        self._resume(acc[0])

                for tr in pend:
                    tr.on_arrived(_done)
                return

            if op == _OP_COLL:
                self._block("Group communication")
                sim.coll.enter(self, self.colls_at[idx])
                return

            raise ReplayError(
                f"rank {self.rank}: cannot replay opcode {op} at index {idx}"
            )
        if not self.finished:
            self.finished = True


def _coalesce_columnar(col: ColumnarTrace) -> ColumnarTrace:
    """Columns with maximal CpuBursts (copy only when needed).

    Build-time coalescing (:meth:`ProcessTrace.append_coalesced`) keeps
    tracer output burst-maximal, but transformed traces can reacquire
    adjacency (e.g. a Wait dropped between two burst pieces).  Scans
    first so the common already-coalesced case costs no copy; rank
    blocks without adjacent bursts are shared with the input.
    """
    needs_work = False
    for rc in col.ranks:
        op = rc.op
        prev_cpu = False
        for i in range(rc.n):
            is_cpu = op[i] == _OP_CPU
            if is_cpu and prev_cpu:
                needs_work = True
                break
            prev_cpu = is_cpu
        if needs_work:
            break
    if not needs_work:
        return col

    ranks = []
    for rc in col.ranks:
        op = rc.op
        merged = RankColumns()
        cols_in = [rc.instr, rc.peer, rc.tag, rc.size, rc.channel, rc.sub,
                   rc.elements, rc.context, rc.req, rc.aux]
        cols_out = [merged.instr, merged.peer, merged.tag, merged.size,
                    merged.channel, merged.sub, merged.elements,
                    merged.context, merged.req, merged.aux]
        i = 0
        n = rc.n
        while i < n:
            if op[i] == _OP_CPU and i + 1 < n and op[i + 1] == _OP_CPU:
                dur = rc.dur[i]
                instr = rc.instr[i]
                j = i + 1
                while j < n and op[j] == _OP_CPU:
                    dur += rc.dur[j]
                    nxt = rc.instr[j]
                    instr = instr + nxt if instr >= 0 and nxt >= 0 else -1
                    j += 1
                merged.op.append(_OP_CPU)
                merged.rv.append(-1)
                merged.dur.append(dur)
                merged.instr.append(instr)
                for k in range(1, 10):
                    cols_out[k].append(cols_in[k][i])
                i = j
            else:
                merged.op.append(op[i])
                merged.rv.append(rc.rv[i])
                merged.dur.append(rc.dur[i])
                for k in range(10):
                    cols_out[k].append(cols_in[k][i])
                i += 1
        merged.n = len(merged.op)
        # Side tables are index-stable (only CpuBursts merge, and they
        # reference none); aux values still point at the right entries.
        merged.waits = rc.waits
        merged.events = rc.events
        merged.colls = rc.colls
        ranks.append(merged)
    return ColumnarTrace(ranks, col.names, col.collops, meta=col.meta)


class _ReplayPlan:
    """Platform-independent per-trace-content precomputation.

    Computed once per trace *content* (keyed by columnar digest) and
    shared by every subsequent :func:`simulate` call on equal bytes:
    the coalesced columns, per-rank opcode/duration lists for the
    dispatch loop, side-table lookups for the rare records, and the
    message matching.  Everything platform-dependent (transfer
    protocol, network state) stays in :class:`_Simulation`.
    """

    __slots__ = (
        "digest", "col", "ops", "durs", "events", "waits", "colls",
        "pairs", "unmatched", "pair_specs", "_rdv_cache",
    )

    def __init__(self, col: ColumnarTrace):
        self.digest = col.digest
        col = _coalesce_columnar(col)
        self.col = col
        #: Plain per-rank lists: the dispatch loop indexes these.
        self.ops = [list(rc.op) for rc in col.ranks]
        self.durs = [list(rc.dur) for rc in col.ranks]
        #: Per-rank side-table lookups keyed by record index.
        self.events: list[dict[int, tuple[str, int]]] = []
        self.waits: list[dict[int, tuple[int, ...]]] = []
        self.colls: list[dict[int, GlobalOp]] = []
        names = col.names
        collops = col.collops
        for rc in col.ranks:
            ev: dict[int, tuple[str, int]] = {}
            wt: dict[int, tuple[int, ...]] = {}
            cl: dict[int, GlobalOp] = {}
            op = rc.op
            aux = rc.aux
            for i in range(rc.n):
                o = op[i]
                if o == _OP_WAIT:
                    wt[i] = rc.waits[aux[i]]
                elif o == _OP_EVENT:
                    ni, val = rc.events[aux[i]]
                    ev[i] = (names[ni], val)
                elif o == _OP_COLL:
                    t = rc.colls[aux[i]]
                    cl[i] = GlobalOp(
                        op=CollOp(collops[t[0]]), root=t[1], send_size=t[2],
                        recv_size=t[3], seq=t[4], context=t[5], members=t[6],
                    )
            self.events.append(ev)
            self.waits.append(wt)
            self.colls.append(cl)
        #: Matching-key descriptions of records no partner pairs with
        #: (empty for well-formed traces).  Malformed traces keep their
        #: pairs so the replay can diagnose the resulting stall instead
        #: of aborting before it starts.
        self.pairs, self.unmatched = match_columnar(col)
        #: Flattened pair prototypes for :class:`_Simulation`: one
        #: tuple ``(src, dst, si, ri, size, tag, rv, send_req,
        #: recv_req)`` per matched message, with the request ids
        #: pre-resolved (None unless the endpoint is ISend/IRecv).
        #: The per-platform init loop then touches no columns at all.
        specs = []
        ranks = col.ranks
        for pair in self.pairs:
            src, dst = pair.src, pair.dst
            si, ri = pair.send_index, pair.recv_index
            src_rc, dst_rc = ranks[src], ranks[dst]
            specs.append((
                src, dst, si, ri, pair.size, pair.tag, src_rc.rv[si],
                src_rc.req[si] if src_rc.op[si] == _OP_ISEND else None,
                dst_rc.req[ri] if dst_rc.op[ri] == _OP_IRECV else None,
            ))
        self.pair_specs = specs
        #: Per-eager-threshold rendezvous flags (one bool per pair).
        #: A campaign sweeps bandwidth/latency far more often than the
        #: eager threshold, so this usually holds a single entry.
        self._rdv_cache: dict[float, list[bool]] = {}

    def rendezvous_flags(self, eager_threshold: float) -> list[bool]:
        """Protocol choice per matched pair under ``eager_threshold``."""
        flags = self._rdv_cache.get(eager_threshold)
        if flags is None:
            flags = [
                bool(rv) if rv >= 0 else size > eager_threshold
                for (_s, _d, _si, _ri, size, _tag, rv, _sq, _rq)
                in self.pair_specs
            ]
            if len(self._rdv_cache) >= 8:
                self._rdv_cache.clear()
            self._rdv_cache[eager_threshold] = flags
        return flags


#: Content-digest-keyed plan LRU.  Bounded: an experiment campaign
#: cycles through a handful of (app, variant) traces, but a long-lived
#: worker process may see many more over its lifetime.
_plan_lru: "OrderedDict[str, _ReplayPlan]" = OrderedDict()
_PLAN_LRU_MAX = 64


def _plan_for(trace: "TraceSet | ColumnarTrace") -> _ReplayPlan:
    try:
        col = columnar_of(trace)
    except TypeError as exc:
        raise ReplayError(str(exc)) from None
    digest = col.digest
    plan = _plan_lru.get(digest)
    if plan is not None:
        _plan_lru.move_to_end(digest)
        return plan
    with _span("replay.plan", nranks=col.nranks):
        plan = _ReplayPlan(col)
    get_registry().counter("replay.plans_built").inc()
    _plan_lru[digest] = plan
    while len(_plan_lru) > _PLAN_LRU_MAX:
        _plan_lru.popitem(last=False)
    return plan


class _Simulation:
    """Shared replay state: loop, network, transfers, runners."""

    def __init__(
        self,
        trace: "TraceSet | ColumnarTrace",
        cfg: MachineConfig,
        auditor: "InvariantAuditor | None" = None,
        insight=None,
        pert=None,
    ):
        plan = _plan_for(trace)
        self.plan = plan
        col = plan.col
        self.nranks = col.nranks
        self.unmatched = plan.unmatched
        self.cfg = cfg
        self.loop = EventLoop()
        #: Active perturbation schedule (None = pristine platform).
        self.pert = pert
        # The pristine path builds the plain Network — the perturbed
        # arbiter exists only as a subclass, so disabling perturbation
        # provably removes every perturbation branch from the replay.
        self.network = (
            Network(self.loop, col.nranks, cfg) if pert is None
            else PerturbedNetwork(self.loop, col.nranks, cfg, pert)
        )
        self.coll = _CollectiveSync(col.nranks, cfg, self.loop)
        self.auditor = auditor
        if auditor is not None:
            auditor.attach_network(self.network)
        self.insight = insight
        if insight is not None:
            self.network.insight = insight

        #: Per-rank, per-record-index transfer slots (None = unmatched
        #: or not a point-to-point record).  Flat list indexing here is
        #: the hottest lookup of the replay loop.
        self.send_tr: list[list[Transfer | None]] = [
            [None] * rc.n for rc in col.ranks
        ]
        self.recv_tr: list[list[Transfer | None]] = [
            [None] * rc.n for rc in col.ranks
        ]
        req_map: dict[tuple[int, int], tuple[str, Transfer]] = {}
        self.req_map = req_map
        transfers: list[Transfer] = []
        self.transfers = transfers

        send_tr = self.send_tr
        recv_tr = self.recv_tr
        append = transfers.append
        rdv = plan.rendezvous_flags(cfg.eager_threshold)
        for spec, rendezvous in zip(plan.pair_specs, rdv):
            src, dst, si, ri, size, tag, _rv, sreq, rreq = spec
            tr = Transfer(src, dst, size, tag, rendezvous)
            append(tr)
            send_tr[src][si] = tr
            recv_tr[dst][ri] = tr
            if sreq is not None:
                req_map[(src, sreq)] = ("send", tr)
            if rreq is not None:
                req_map[(dst, rreq)] = ("recv", tr)

        self.runners = [_RankRunner(self, r) for r in range(col.nranks)]


def simulate(
    trace: "TraceSet | ColumnarTrace",
    machine: MachineConfig | None = None,
    max_events: int | None = None,
    max_sim_time: float | None = None,
    audit=None,
    insight=None,
    perturb=None,
) -> SimResult:
    """Replay ``trace`` on ``machine`` and reconstruct its timeline.

    ``trace`` may be a record-object :class:`TraceSet` or a packed
    :class:`~repro.trace.columnar.ColumnarTrace`; the two forms replay
    bitwise-identically (the object form is packed into columns first).

    Raises :class:`~repro.dimemas.postmortem.DeadlockError` (a
    :class:`ReplayError`) when the replay stalls — e.g. a rendezvous
    cycle or an inconsistent trace — carrying a structured
    :class:`~repro.dimemas.postmortem.DeadlockReport` of the blocked
    ranks, pending messages, and any wait cycle.

    ``max_events`` / ``max_sim_time`` bound the simulation (overriding
    the same-named :class:`MachineConfig` fields); exceeding either
    raises :class:`~repro.dimemas.postmortem.SimulationTimeout` with
    the same post-mortem snapshot, so a runaway replay is always
    diagnosable, never a hang.

    ``audit`` enables the integrity auditor: an
    :class:`~repro.audit.AuditConfig`, a level string
    (``"basic"``/``"full"``), or ``None`` for off.  With a config whose
    ``strict`` flag is set, any violation raises
    :class:`~repro.audit.IntegrityError`; otherwise the report lands on
    ``audit.report``.

    ``insight`` attaches a :class:`repro.insight.InsightCollector`: the
    replay reports every wait interval (with the transfers it blocked
    on) and the network reports queueing causes and bus occupancy.
    Attribution never perturbs the simulation — an attributed replay is
    bitwise-identical to a plain one — and the ``insight=None`` default
    costs one dead branch on the blocking paths only.

    ``perturb`` applies a :class:`repro.perturb.PerturbationSchedule`
    (degraded bandwidth/latency windows, outages, CPU noise,
    stragglers) in simulated time; it overrides any schedule carried by
    ``machine.perturb``.  Perturbed replays are bitwise-reproducible
    per schedule seed; with no (or a zero-magnitude) schedule the
    replay uses the plain :class:`Network` and is bitwise-identical to
    an unperturbed one.  A watchdog expiry while a perturbation window
    is active raises the typed
    :class:`~repro.dimemas.postmortem.PerturbationStall` naming the
    window.
    """
    cfg = machine or MachineConfig()
    pert = perturb if perturb is not None else cfg.perturb
    if pert is not None:
        # MachineConfig normalizes on construction; the explicit kwarg
        # path normalizes here so both entrances agree that a no-op
        # schedule *is* the pristine platform.
        pert = pert.normalized()
        if pert.is_noop():
            pert = None
    acfg = auditor = None
    if audit is not None:
        # Imported lazily: repro.audit depends on this package for its
        # error taxonomy, and the unaudited hot path should not pay for
        # (or depend on) the audit machinery at all.
        from ..audit.auditor import AuditConfig, InvariantAuditor
        acfg = AuditConfig.coerce(audit)
        auditor = InvariantAuditor(acfg) if acfg is not None else None
    metrics = get_registry()
    t_begin = time.perf_counter()
    sp = _span("replay.simulate", nranks=trace.nranks)
    with sp:
        sim = _Simulation(trace, cfg, auditor, insight, pert)
        for runner in sim.runners:
            sim.loop.at(0.0, runner.advance)
        budget_events = max_events if max_events is not None else cfg.max_events
        budget_time = max_sim_time if max_sim_time is not None else cfg.max_sim_time
        if _obs_enabled():
            # Sampled match/event-queue depth: the only hot-loop hook,
            # and it stays None (one dead branch per event) unless
            # span collection is on.
            sim.loop.depth_sampler = (
                metrics.histogram("replay.queue_depth").observe
            )
        try:
            with _span("replay.drain_queue", nranks=sim.nranks):
                sim.loop.run(max_events=budget_events, max_time=budget_time)
        except WatchdogExpired as w:
            metrics.counter("replay.watchdog_expired").inc()
            report = build_report(sim, sim.unmatched)
            if pert is not None:
                window = pert.blocking_window(report.sim_time)
                if window is not None:
                    # A degraded platform legitimately stalling past the
                    # budget is a diagnosis, not a runaway: name the
                    # perturbation window instead of a bare timeout.
                    raise PerturbationStall(w.reason, report, window) from None
            raise SimulationTimeout(w.reason, report) from None

        if any(not r.finished for r in sim.runners) or sim.coll._groups:
            metrics.counter("replay.deadlocks").inc()
            raise DeadlockError(build_report(sim, sim.unmatched))

        # Sort raw tuples (native comparison), then build the flights in
        # final order — cheaper than sorting dataclasses through a key
        # lambda.  The enumeration index reproduces the stable-sort tie
        # order on equal (t_send, src, dst).
        raw = [
            (t.send_time, t.src, t.dst, i, t.start_time, t.arrival_time,
             t.size, t.tag)
            for i, t in enumerate(sim.transfers)
            if t.arrival_time is not None and t.send_time is not None
        ]
        raw.sort()
        messages = [
            MessageFlight(src, dst, t_send, t_start, t_recv, size, tag)
            for (t_send, src, dst, _i, t_start, t_recv, size, tag) in raw
        ]
        result = SimResult(
            nranks=sim.nranks,
            duration=max((r.now for r in sim.runners), default=0.0),
            rank_end=[r.now for r in sim.runners],
            states=[r.states for r in sim.runners],
            messages=messages,
            events=[r.events for r in sim.runners],
            network_stats={
                "peak_active_transfers": sim.network.peak_active,
                "wire_busy_seconds": sim.network.busy_seconds,
                "events_executed": sim.loop.executed,
            },
        )
        if auditor is not None:
            report = auditor.finish(sim, result)
            if acfg.strict and not report.ok:
                from ..audit.auditor import IntegrityError
                raise IntegrityError(report)
        # End-of-replay metric rollup: a handful of dict operations per
        # *replay*, never per event, so the disabled-observability path
        # stays within noise of uninstrumented code.
        wall = time.perf_counter() - t_begin
        metrics.counter("replay.runs").inc()
        metrics.counter("replay.events").inc(sim.loop.executed)
        metrics.counter("replay.collectives").inc(sim.coll.completed)
        metrics.counter("replay.messages").inc(len(messages))
        metrics.histogram("replay.wall_seconds").observe(wall)
        if wall > 0:
            metrics.histogram("replay.events_per_second").observe(
                sim.loop.executed / wall
            )
        if result.duration > 0:
            metrics.histogram("replay.bus_occupancy").observe(
                sim.network.busy_seconds / result.duration
            )
        sp.annotate(
            events=sim.loop.executed, sim_seconds=result.duration,
            messages=len(messages),
        )
        return result
