"""Trace-driven replay: reconstructing time-behaviour on a platform.

This is the Dimemas stage of the pipeline (paper Figure 3): it takes
the per-process traces (original or overlapped) and *"off-line
reconstructs the application's time-behavior on a configurable
parallel platform"*.

Execution model
---------------

Each rank replays its record stream sequentially on a private clock:

* ``CpuBurst`` — advances the clock by ``duration * cpu_ratio``
  (state: Running);
* ``Send`` — eager protocol (size ≤ eager threshold, or forced by the
  record): zero sender cost — the paper assumes OS-bypass NICs that
  *"perform communication operations without interrupting the main
  processor"* (§I), so an eager send only enqueues the transfer, which
  then competes for buses/ports on its own; rendezvous: the sender
  blocks until delivery, and the transfer cannot start before the
  receiver has posted;
* ``ISend`` / ``IRecv`` — zero-cost posting;
* ``Recv`` — blocks until the matching message is delivered;
* ``Wait`` — blocks until all referenced requests complete (eager send
  requests are buffered and complete immediately, everything else at
  delivery);
* ``GlobalOp`` — synchronizes all ranks, then applies the analytic
  collective cost model (only present in non-decomposed traces);
* ``Event`` — timestamps a user event.

Matching is resolved *statically* with
:func:`repro.core.matching.match_messages` (MPI posting-order
semantics), so replay, runtime, and transformation always agree on
message pairings.  The network applies the linear cost model with
finite buses and ports (:mod:`repro.dimemas.network`).

Causality: a rank executes communication records only when the global
event clock has caught up with its private clock, so all resource
contention resolves in global time order.
"""

from __future__ import annotations

from typing import Callable

from ..core.matching import match_messages
from ..trace.records import (
    CpuBurst,
    Event,
    GlobalOp,
    IRecv,
    ISend,
    Recv,
    Send,
    TraceSet,
    Wait,
)
from .collectives import collective_cost
from .engine import EventLoop
from .machine import MachineConfig
from .network import Network, Transfer
from .results import MessageFlight, SimResult

__all__ = ["ReplayError", "simulate"]

_EPS = 1e-15


class ReplayError(RuntimeError):
    """Replay could not complete (stalled ranks, malformed trace)."""


class _CollectiveSync:
    """Barrier-style coordination of analytic GlobalOp records."""

    def __init__(self, nranks: int, cfg: MachineConfig, loop: EventLoop):
        self.nranks = nranks
        self.cfg = cfg
        self.loop = loop
        self._groups: dict[int, list] = {}

    def enter(self, runner: "_RankRunner", rec: GlobalOp) -> None:
        group = self._groups.setdefault((rec.context, rec.seq), [])
        group.append((runner, runner.now, rec))
        expected = rec.members if rec.members > 0 else self.nranks
        if len(group) == expected:
            t_enter = max(t for _, t, _ in group)
            cost = collective_cost(rec, expected, self.cfg)
            t_done = t_enter + cost
            del self._groups[(rec.context, rec.seq)]
            for r, _, _ in group:
                self.loop.at(t_done, _make_resume(r, t_done))

    def stuck(self) -> list[str]:
        return [
            f"collective context={key[0]} seq={key[1]}: "
            f"only {len(g)} rank(s) entered"
            for key, g in self._groups.items()
        ]


def _make_resume(runner: "_RankRunner", t: float) -> Callable[[], None]:
    return lambda: runner._resume(t)


class _RankRunner:
    """Sequential replay cursor of one rank."""

    def __init__(self, sim: "_Simulation", rank: int):
        self.sim = sim
        self.rank = rank
        self.records = sim.trace[rank].records
        self.idx = 0
        self.now = 0.0
        self.finished = False
        self.states: list[tuple[str, float, float]] = []
        self.events: list[tuple[float, str, int]] = []
        self._block_label: str | None = None
        self._block_start = 0.0

    # -- state bookkeeping ---------------------------------------------------
    def _push_state(self, label: str, t0: float, t1: float) -> None:
        if t1 <= t0 + _EPS:
            return
        if self.states and self.states[-1][0] == label and abs(self.states[-1][2] - t0) < _EPS:
            prev = self.states[-1]
            self.states[-1] = (label, prev[1], t1)
        else:
            self.states.append((label, t0, t1))

    def _block(self, label: str) -> None:
        self._block_label = label
        self._block_start = self.now

    def _resume(self, t: float) -> None:
        """Completion callback: close the blocked state and continue."""
        t = max(t, self.now)
        if self._block_label is not None:
            self._push_state(self._block_label, self._block_start, t)
            self._block_label = None
        self.now = t
        self.idx += 1
        self.advance()

    def blocked_description(self) -> str:
        rec = self.records[self.idx] if self.idx < len(self.records) else None
        return (
            f"rank {self.rank} at record {self.idx} "
            f"({type(rec).__name__ if rec else 'end'}), state={self._block_label}"
        )

    # -- the replay loop ------------------------------------------------------
    def advance(self) -> None:
        loop = self.sim.loop
        cfg = self.sim.cfg
        while self.idx < len(self.records):
            rec = self.records[self.idx]
            if isinstance(rec, CpuBurst):
                dur = rec.duration * cfg.cpu_ratio
                self._push_state("Running", self.now, self.now + dur)
                self.now += dur
                self.idx += 1
                continue
            if isinstance(rec, Event):
                self.events.append((self.now, rec.name, rec.value))
                self.idx += 1
                continue
            # Side-effecting record: only execute once the global clock
            # has caught up (causal resource arbitration).
            if self.now > loop.now + 1e-12:
                loop.at(self.now, self.advance)
                return

            if isinstance(rec, (Send, ISend)):
                tr = self.sim.send_at[(self.rank, self.idx)]
                tr.send_time = self.now
                if not tr.rendezvous:
                    self.sim.network.submit(tr)
                elif tr.recv_post_time is not None:
                    self.sim.network.submit(tr)
                if isinstance(rec, ISend) or not tr.rendezvous:
                    self.idx += 1
                    continue
                self._block("Send")
                tr.on_arrived(self._resume)
                return

            if isinstance(rec, (Recv, IRecv)):
                tr = self.sim.recv_at[(self.rank, self.idx)]
                tr.recv_post_time = self.now
                if tr.rendezvous and tr.send_time is not None and tr.ready_time is None:
                    self.sim.network.submit(tr)
                if isinstance(rec, IRecv):
                    self.idx += 1
                    continue
                if tr.arrived:
                    self.now = max(self.now, tr.arrival_time)
                    self.idx += 1
                    continue
                self._block("Waiting a message")
                tr.on_arrived(self._resume)
                return

            if isinstance(rec, Wait):
                pend: list[tuple[Transfer, str]] = []
                latest = self.now
                for req in rec.requests:
                    kind, tr = self.sim.req_map[(self.rank, req)]
                    if kind == "send":
                        if not tr.rendezvous:
                            continue  # buffered: complete at the send call
                        if tr.arrived:
                            latest = max(latest, tr.arrival_time)
                        else:
                            pend.append((tr, "arrival"))
                    else:
                        if tr.arrived:
                            latest = max(latest, tr.arrival_time)
                        else:
                            pend.append((tr, "arrival"))
                if not pend:
                    self.now = latest
                    self.idx += 1
                    continue
                self._block("Wait/WaitAll")
                remaining = len(pend)
                acc = [max(latest, self.now)]

                def _done(t: float) -> None:
                    nonlocal remaining
                    acc[0] = max(acc[0], t)
                    remaining -= 1
                    if remaining == 0:
                        self._resume(acc[0])

                for tr, what in pend:
                    if what == "inject":
                        tr.on_injected(_done)
                    else:
                        tr.on_arrived(_done)
                return

            if isinstance(rec, GlobalOp):
                self._block("Group communication")
                self.sim.coll.enter(self, rec)
                return

            raise ReplayError(
                f"rank {self.rank}: cannot replay record type "
                f"{type(rec).__name__} at index {self.idx}"
            )
        if not self.finished:
            self.finished = True


class _Simulation:
    """Shared replay state: loop, network, transfers, runners."""

    def __init__(self, trace: TraceSet, cfg: MachineConfig):
        self.trace = trace
        self.cfg = cfg
        self.loop = EventLoop()
        self.network = Network(self.loop, trace.nranks, cfg)
        self.coll = _CollectiveSync(trace.nranks, cfg, self.loop)

        self.send_at: dict[tuple[int, int], Transfer] = {}
        self.recv_at: dict[tuple[int, int], Transfer] = {}
        self.req_map: dict[tuple[int, int], tuple[str, Transfer]] = {}
        self.transfers: list[Transfer] = []

        for pair in match_messages(trace):
            srec = trace[pair.src].records[pair.send_index]
            rrec = trace[pair.dst].records[pair.recv_index]
            rendezvous = (
                srec.rendezvous
                if srec.rendezvous is not None
                else srec.size > cfg.eager_threshold
            )
            tr = Transfer(
                src=pair.src, dst=pair.dst, size=pair.size,
                tag=pair.tag, rendezvous=rendezvous,
            )
            self.transfers.append(tr)
            self.send_at[(pair.src, pair.send_index)] = tr
            self.recv_at[(pair.dst, pair.recv_index)] = tr
            if isinstance(srec, ISend):
                self.req_map[(pair.src, srec.request)] = ("send", tr)
            if isinstance(rrec, IRecv):
                self.req_map[(pair.dst, rrec.request)] = ("recv", tr)

        self.runners = [_RankRunner(self, r) for r in range(trace.nranks)]


def simulate(trace: TraceSet, machine: MachineConfig | None = None) -> SimResult:
    """Replay ``trace`` on ``machine`` and reconstruct its timeline.

    Raises :class:`ReplayError` when the replay stalls (e.g. a
    rendezvous cycle or an inconsistent trace).
    """
    cfg = machine or MachineConfig()
    sim = _Simulation(trace, cfg)
    for runner in sim.runners:
        sim.loop.at(0.0, runner.advance)
    sim.loop.run()

    stuck = [r.blocked_description() for r in sim.runners if not r.finished]
    stuck += sim.coll.stuck()
    if stuck:
        raise ReplayError("replay stalled:\n" + "\n".join(stuck[:16]))

    messages = sorted(
        (
            MessageFlight(
                src=t.src, dst=t.dst,
                t_send=t.send_time, t_start=t.start_time,
                t_recv=t.arrival_time, size=t.size, tag=t.tag,
            )
            for t in sim.transfers
            if t.arrival_time is not None and t.send_time is not None
        ),
        key=lambda m: (m.t_send, m.src, m.dst),
    )
    return SimResult(
        nranks=trace.nranks,
        duration=max((r.now for r in sim.runners), default=0.0),
        rank_end=[r.now for r in sim.runners],
        states=[r.states for r in sim.runners],
        messages=messages,
        events=[r.events for r in sim.runners],
        network_stats={
            "peak_active_transfers": sim.network.peak_active,
            "wire_busy_seconds": sim.network.busy_seconds,
            "events_executed": sim.loop.executed,
        },
    )
