"""Trace-driven replay: reconstructing time-behaviour on a platform.

This is the Dimemas stage of the pipeline (paper Figure 3): it takes
the per-process traces (original or overlapped) and *"off-line
reconstructs the application's time-behavior on a configurable
parallel platform"*.

Execution model
---------------

Each rank replays its record stream sequentially on a private clock:

* ``CpuBurst`` — advances the clock by ``duration * cpu_ratio``
  (state: Running);
* ``Send`` — eager protocol (size ≤ eager threshold, or forced by the
  record): zero sender cost — the paper assumes OS-bypass NICs that
  *"perform communication operations without interrupting the main
  processor"* (§I), so an eager send only enqueues the transfer, which
  then competes for buses/ports on its own; rendezvous: the sender
  blocks until delivery, and the transfer cannot start before the
  receiver has posted;
* ``ISend`` / ``IRecv`` — zero-cost posting;
* ``Recv`` — blocks until the matching message is delivered;
* ``Wait`` — blocks until all referenced requests complete (eager send
  requests are buffered and complete immediately, everything else at
  delivery);
* ``GlobalOp`` — synchronizes all ranks, then applies the analytic
  collective cost model (only present in non-decomposed traces);
* ``Event`` — timestamps a user event.

Matching is resolved *statically* with
:func:`repro.core.matching.match_messages` (MPI posting-order
semantics), so replay, runtime, and transformation always agree on
message pairings.  The network applies the linear cost model with
finite buses and ports (:mod:`repro.dimemas.network`).

Causality: a rank executes communication records only when the global
event clock has caught up with its private clock, so all resource
contention resolves in global time order.

Hot path
--------

Replaying is the inner loop of every experiment (a single bandwidth
bisection issues ~60 replays of the same trace), so the per-trace
preprocessing is factored into a cached :class:`_ReplayPlan`: message
matching runs once per trace object (not per replay), every record is
tagged with a small integer opcode once (so the dispatch loop compares
ints instead of walking an ``isinstance`` chain), and runs of adjacent
``CpuBurst`` records are coalesced up front.
"""

from __future__ import annotations

import time
import weakref
from typing import Callable

from ..obs import get_registry, is_enabled as _obs_enabled, span as _span
from ..core.matching import (
    UnmatchedMessageError,
    match_messages_cached,
    match_messages_lenient,
)
from ..trace.records import (
    CpuBurst,
    Event,
    GlobalOp,
    IRecv,
    ISend,
    Recv,
    Send,
    TraceSet,
    Wait,
)
from .collectives import collective_cost
from .engine import EventLoop, WatchdogExpired
from .machine import MachineConfig
from .network import Network, Transfer
from .postmortem import (
    DeadlockError,
    ReplayError,
    SimulationTimeout,
    build_report,
)
from .results import MessageFlight, SimResult

__all__ = ["DeadlockError", "ReplayError", "SimulationTimeout", "simulate"]

_EPS = 1e-15

#: Opcodes of the precompiled dispatch (assigned once per trace).
_OP_CPU = 0
_OP_EVENT = 1
_OP_SEND = 2
_OP_ISEND = 3
_OP_RECV = 4
_OP_IRECV = 5
_OP_WAIT = 6
_OP_COLL = 7
_OP_UNKNOWN = 8

_OPCODE_OF: dict[type, int] = {
    CpuBurst: _OP_CPU,
    Event: _OP_EVENT,
    Send: _OP_SEND,
    ISend: _OP_ISEND,
    Recv: _OP_RECV,
    IRecv: _OP_IRECV,
    Wait: _OP_WAIT,
    GlobalOp: _OP_COLL,
}


class _CollectiveSync:
    """Barrier-style coordination of analytic GlobalOp records."""

    def __init__(self, nranks: int, cfg: MachineConfig, loop: EventLoop):
        self.nranks = nranks
        self.cfg = cfg
        self.loop = loop
        self._groups: dict[int, list] = {}
        #: Collectives fully synchronized (observability).
        self.completed = 0

    def enter(self, runner: "_RankRunner", rec: GlobalOp) -> None:
        group = self._groups.setdefault((rec.context, rec.seq), [])
        group.append((runner, runner.now, rec))
        expected = rec.members if rec.members > 0 else self.nranks
        if len(group) == expected:
            t_enter = max(t for _, t, _ in group)
            cost = collective_cost(rec, expected, self.cfg)
            t_done = t_enter + cost
            self.completed += 1
            del self._groups[(rec.context, rec.seq)]
            for r, _, _ in group:
                self.loop.at(t_done, _make_resume(r, t_done))

    def stuck(self) -> list[str]:
        return [
            f"collective context={key[0]} seq={key[1]}: "
            f"only {len(g)} rank(s) entered"
            for key, g in self._groups.items()
        ]


def _make_resume(runner: "_RankRunner", t: float) -> Callable[[], None]:
    return lambda: runner._resume(t)


class _RankRunner:
    """Sequential replay cursor of one rank."""

    def __init__(self, sim: "_Simulation", rank: int):
        self.sim = sim
        self.rank = rank
        self.records = sim.trace[rank].records
        self.ops = sim.opcodes[rank]
        self.idx = 0
        self.now = 0.0
        self.finished = False
        self.states: list[tuple[str, float, float]] = []
        self.events: list[tuple[float, str, int]] = []
        self._block_label: str | None = None
        self._block_start = 0.0

    # -- state bookkeeping ---------------------------------------------------
    def _push_state(self, label: str, t0: float, t1: float) -> None:
        if t1 <= t0 + _EPS:
            return
        if self.states and self.states[-1][0] == label and abs(self.states[-1][2] - t0) < _EPS:
            prev = self.states[-1]
            self.states[-1] = (label, prev[1], t1)
        else:
            self.states.append((label, t0, t1))

    def _block(self, label: str) -> None:
        self._block_label = label
        self._block_start = self.now

    def _resume(self, t: float) -> None:
        """Completion callback: close the blocked state and continue."""
        t = max(t, self.now)
        if self._block_label is not None:
            self._push_state(self._block_label, self._block_start, t)
            self._block_label = None
        self.now = t
        self.idx += 1
        self.advance()

    def blocked_description(self) -> str:
        rec = self.records[self.idx] if self.idx < len(self.records) else None
        return (
            f"rank {self.rank} at record {self.idx} "
            f"({type(rec).__name__ if rec else 'end'}), state={self._block_label}"
        )

    # -- the replay loop ------------------------------------------------------
    def advance(self) -> None:
        sim = self.sim
        loop = sim.loop
        cfg = sim.cfg
        records = self.records
        ops = self.ops
        n = len(records)
        while self.idx < n:
            idx = self.idx
            op = ops[idx]
            rec = records[idx]
            if op == _OP_CPU:
                dur = rec.duration * cfg.cpu_ratio
                self._push_state("Running", self.now, self.now + dur)
                self.now += dur
                self.idx = idx + 1
                continue
            if op == _OP_EVENT:
                self.events.append((self.now, rec.name, rec.value))
                self.idx = idx + 1
                continue
            # Side-effecting record: only execute once the global clock
            # has caught up (causal resource arbitration).
            if self.now > loop.now + 1e-12:
                loop.at(self.now, self.advance)
                return

            if op == _OP_SEND or op == _OP_ISEND:
                tr = sim.send_at.get((self.rank, idx))
                if tr is None:
                    # Unmatched send (malformed trace): no receive will
                    # ever pair with it.  Eager sends complete locally
                    # (buffered, like MPI); a rendezvous Send blocks
                    # forever and the post-mortem names it.  An ISend's
                    # dangling request is caught at its Wait.
                    rendezvous = (
                        rec.rendezvous
                        if rec.rendezvous is not None
                        else rec.size > cfg.eager_threshold
                    )
                    if op == _OP_ISEND or not rendezvous:
                        self.idx = idx + 1
                        continue
                    self._block("Send")
                    return
                tr.send_time = self.now
                if not tr.rendezvous:
                    # Eager: enqueue the transfer and move on (OS-bypass
                    # NIC — zero sender cost for Send and ISend alike).
                    sim.network.submit(tr)
                    self.idx = idx + 1
                    continue
                if tr.recv_post_time is not None:
                    sim.network.submit(tr)
                if op == _OP_ISEND:
                    self.idx = idx + 1
                    continue
                self._block("Send")
                tr.on_arrived(self._resume)
                return

            if op == _OP_RECV or op == _OP_IRECV:
                tr = sim.recv_at.get((self.rank, idx))
                if tr is None:
                    # Unmatched receive: nothing will ever arrive.  An
                    # IRecv's dangling request is caught at its Wait; a
                    # blocking Recv blocks forever (diagnosable).
                    if op == _OP_IRECV:
                        self.idx = idx + 1
                        continue
                    self._block("Waiting a message")
                    return
                tr.recv_post_time = self.now
                if tr.rendezvous and tr.send_time is not None and tr.ready_time is None:
                    sim.network.submit(tr)
                if op == _OP_IRECV:
                    self.idx = idx + 1
                    continue
                if tr.arrived:
                    if tr.arrival_time > self.now:
                        self.now = tr.arrival_time
                    self.idx = idx + 1
                    continue
                self._block("Waiting a message")
                tr.on_arrived(self._resume)
                return

            if op == _OP_WAIT:
                # Eager send requests are buffered (complete at the send
                # call); everything else completes at message arrival.
                pend: list[Transfer] = []
                latest = self.now
                dangling = False
                for req in rec.requests:
                    entry = sim.req_map.get((self.rank, req))
                    if entry is None:
                        # Request belongs to an unmatched ISend/IRecv
                        # (or was never posted): it can never complete.
                        dangling = True
                        continue
                    kind, tr = entry
                    if kind == "send" and not tr.rendezvous:
                        continue
                    if tr.arrived:
                        if tr.arrival_time > latest:
                            latest = tr.arrival_time
                    else:
                        pend.append(tr)
                if dangling:
                    self._block("Wait/WaitAll")
                    return
                if not pend:
                    self.now = latest
                    self.idx = idx + 1
                    continue
                self._block("Wait/WaitAll")
                remaining = len(pend)
                acc = [latest]

                def _done(t: float) -> None:
                    nonlocal remaining
                    acc[0] = max(acc[0], t)
                    remaining -= 1
                    if remaining == 0:
                        self._resume(acc[0])

                for tr in pend:
                    tr.on_arrived(_done)
                return

            if op == _OP_COLL:
                self._block("Group communication")
                sim.coll.enter(self, rec)
                return

            raise ReplayError(
                f"rank {self.rank}: cannot replay record type "
                f"{type(rec).__name__} at index {idx}"
            )
        if not self.finished:
            self.finished = True


def _coalesce_for_replay(trace: TraceSet) -> TraceSet:
    """Trace with maximal CpuBursts (copy only when needed).

    Build-time coalescing (:meth:`ProcessTrace.append_coalesced`) keeps
    tracer output burst-maximal, but transformed traces can reacquire
    adjacency (e.g. a Wait dropped between two burst pieces).  Scans
    first so the common already-coalesced case costs no copy.
    """
    for proc in trace:
        prev_cpu = False
        for rec in proc.records:
            is_cpu = type(rec) is CpuBurst
            if is_cpu and prev_cpu:
                from ..trace.filters import merge_bursts
                return merge_bursts(trace)
            prev_cpu = is_cpu
    return trace


class _ReplayPlan:
    """Platform-independent per-trace precomputation.

    Computed once per :class:`TraceSet` object and shared by every
    subsequent :func:`simulate` call on it: the coalesced record
    streams, the per-record opcode tags, and the message matching.
    Everything platform-dependent (transfer protocol, network state)
    stays in :class:`_Simulation`.
    """

    __slots__ = (
        "fingerprint", "trace", "opcodes", "pairs", "unmatched", "__weakref__",
    )

    def __init__(self, trace: TraceSet):
        #: Per-rank record counts of the *source* trace, to invalidate
        #: the memo when records are appended after the first replay.
        self.fingerprint = tuple(len(p.records) for p in trace)
        self.trace = _coalesce_for_replay(trace)
        self.opcodes = [
            [_OPCODE_OF.get(type(r), _OP_UNKNOWN) for r in p.records]
            for p in self.trace
        ]
        #: Matching-key descriptions of records no partner pairs with
        #: (empty for well-formed traces).  Malformed traces take the
        #: lenient path so the replay can diagnose the resulting stall
        #: instead of aborting before it starts.
        self.unmatched: list[str] = []
        try:
            self.pairs = match_messages_cached(self.trace)
        except UnmatchedMessageError:
            self.pairs, self.unmatched = match_messages_lenient(self.trace)


_plan_cache: "weakref.WeakKeyDictionary[TraceSet, _ReplayPlan]" = (
    weakref.WeakKeyDictionary()
)


def _plan_for(trace: TraceSet) -> _ReplayPlan:
    plan = _plan_cache.get(trace)
    if plan is None or plan.fingerprint != tuple(len(p.records) for p in trace):
        with _span("replay.plan", nranks=trace.nranks):
            plan = _ReplayPlan(trace)
        get_registry().counter("replay.plans_built").inc()
        _plan_cache[trace] = plan
    return plan


class _Simulation:
    """Shared replay state: loop, network, transfers, runners."""

    def __init__(self, trace: TraceSet, cfg: MachineConfig):
        plan = _plan_for(trace)
        self.trace = plan.trace
        self.opcodes = plan.opcodes
        self.unmatched = plan.unmatched
        self.cfg = cfg
        self.loop = EventLoop()
        self.network = Network(self.loop, self.trace.nranks, cfg)
        self.coll = _CollectiveSync(self.trace.nranks, cfg, self.loop)

        self.send_at: dict[tuple[int, int], Transfer] = {}
        self.recv_at: dict[tuple[int, int], Transfer] = {}
        self.req_map: dict[tuple[int, int], tuple[str, Transfer]] = {}
        self.transfers: list[Transfer] = []

        for pair in plan.pairs:
            srec = self.trace[pair.src].records[pair.send_index]
            rrec = self.trace[pair.dst].records[pair.recv_index]
            rendezvous = (
                srec.rendezvous
                if srec.rendezvous is not None
                else srec.size > cfg.eager_threshold
            )
            tr = Transfer(
                src=pair.src, dst=pair.dst, size=pair.size,
                tag=pair.tag, rendezvous=rendezvous,
            )
            self.transfers.append(tr)
            self.send_at[(pair.src, pair.send_index)] = tr
            self.recv_at[(pair.dst, pair.recv_index)] = tr
            if isinstance(srec, ISend):
                self.req_map[(pair.src, srec.request)] = ("send", tr)
            if isinstance(rrec, IRecv):
                self.req_map[(pair.dst, rrec.request)] = ("recv", tr)

        self.runners = [_RankRunner(self, r) for r in range(self.trace.nranks)]


def simulate(
    trace: TraceSet,
    machine: MachineConfig | None = None,
    max_events: int | None = None,
    max_sim_time: float | None = None,
) -> SimResult:
    """Replay ``trace`` on ``machine`` and reconstruct its timeline.

    Raises :class:`~repro.dimemas.postmortem.DeadlockError` (a
    :class:`ReplayError`) when the replay stalls — e.g. a rendezvous
    cycle or an inconsistent trace — carrying a structured
    :class:`~repro.dimemas.postmortem.DeadlockReport` of the blocked
    ranks, pending messages, and any wait cycle.

    ``max_events`` / ``max_sim_time`` bound the simulation (overriding
    the same-named :class:`MachineConfig` fields); exceeding either
    raises :class:`~repro.dimemas.postmortem.SimulationTimeout` with
    the same post-mortem snapshot, so a runaway replay is always
    diagnosable, never a hang.
    """
    cfg = machine or MachineConfig()
    metrics = get_registry()
    t_begin = time.perf_counter()
    sp = _span("replay.simulate", nranks=trace.nranks)
    with sp:
        sim = _Simulation(trace, cfg)
        for runner in sim.runners:
            sim.loop.at(0.0, runner.advance)
        budget_events = max_events if max_events is not None else cfg.max_events
        budget_time = max_sim_time if max_sim_time is not None else cfg.max_sim_time
        if _obs_enabled():
            # Sampled match/event-queue depth: the only hot-loop hook,
            # and it stays None (one dead branch per event) unless
            # span collection is on.
            sim.loop.depth_sampler = (
                metrics.histogram("replay.queue_depth").observe
            )
        try:
            with _span("replay.drain_queue", nranks=trace.nranks):
                sim.loop.run(max_events=budget_events, max_time=budget_time)
        except WatchdogExpired as w:
            metrics.counter("replay.watchdog_expired").inc()
            raise SimulationTimeout(
                w.reason, build_report(sim, sim.unmatched)
            ) from None

        if any(not r.finished for r in sim.runners) or sim.coll._groups:
            metrics.counter("replay.deadlocks").inc()
            raise DeadlockError(build_report(sim, sim.unmatched))

        messages = sorted(
            (
                MessageFlight(
                    src=t.src, dst=t.dst,
                    t_send=t.send_time, t_start=t.start_time,
                    t_recv=t.arrival_time, size=t.size, tag=t.tag,
                )
                for t in sim.transfers
                if t.arrival_time is not None and t.send_time is not None
            ),
            key=lambda m: (m.t_send, m.src, m.dst),
        )
        result = SimResult(
            nranks=trace.nranks,
            duration=max((r.now for r in sim.runners), default=0.0),
            rank_end=[r.now for r in sim.runners],
            states=[r.states for r in sim.runners],
            messages=messages,
            events=[r.events for r in sim.runners],
            network_stats={
                "peak_active_transfers": sim.network.peak_active,
                "wire_busy_seconds": sim.network.busy_seconds,
                "events_executed": sim.loop.executed,
            },
        )
        # End-of-replay metric rollup: a handful of dict operations per
        # *replay*, never per event, so the disabled-observability path
        # stays within noise of uninstrumented code.
        wall = time.perf_counter() - t_begin
        metrics.counter("replay.runs").inc()
        metrics.counter("replay.events").inc(sim.loop.executed)
        metrics.counter("replay.collectives").inc(sim.coll.completed)
        metrics.counter("replay.messages").inc(len(messages))
        metrics.histogram("replay.wall_seconds").observe(wall)
        if wall > 0:
            metrics.histogram("replay.events_per_second").observe(
                sim.loop.executed / wall
            )
        if result.duration > 0:
            metrics.histogram("replay.bus_occupancy").observe(
                sim.network.busy_seconds / result.duration
            )
        sp.annotate(
            events=sim.loop.executed, sim_seconds=result.duration,
            messages=len(messages),
        )
        return result
