"""Profile statistics over reconstructed timelines.

The numeric counterpart of Paraver's profile views: time per state per
rank, communication statistics, and plain-text tables used by the
experiment reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dimemas.results import SimResult, STATE_NAMES

__all__ = ["CommStats", "comm_stats", "profile_table", "state_matrix"]


def state_matrix(result: SimResult) -> tuple[np.ndarray, list[str]]:
    """Seconds per (rank, state) as a dense matrix plus the state order.

    Well-defined on degenerate results: a rank with no recorded state
    list contributes a zero row, and a zero-rank result yields an empty
    matrix rather than raising.
    """
    names = [s for s in STATE_NAMES if s != "Idle"]
    mat = np.zeros((result.nranks, len(names)))
    index = {n: j for j, n in enumerate(names)}
    for rank in range(min(result.nranks, len(result.states))):
        for s, t0, t1 in result.states[rank]:
            j = index.get(s)
            if j is not None:
                mat[rank, j] += t1 - t0
    return mat, names


def profile_table(result: SimResult, percent: bool = True) -> str:
    """Text table: per-rank time (or %) in each state + totals row."""
    mat, names = state_matrix(result)
    denom = result.duration if result.duration > 0 else 1.0
    header = f"{'rank':>6} " + " ".join(f"{n[:12]:>14}" for n in names)
    lines = [header]
    for rank in range(result.nranks):
        cells = []
        for j in range(len(names)):
            v = mat[rank, j]
            cells.append(
                f"{100 * v / denom:>13.2f}%" if percent else f"{v:>14.6f}"
            )
        lines.append(f"{rank:>6} " + " ".join(cells))
    tot = mat.sum(axis=0)
    # nranks can be zero (empty trace replayed): keep the totals row
    # well-defined zeros instead of dividing by zero.
    tot_denom = denom * result.nranks if result.nranks > 0 else 1.0
    cells = [
        f"{100 * v / tot_denom:>13.2f}%" if percent else f"{v:>14.6f}"
        for v in tot
    ]
    lines.append(f"{'all':>6} " + " ".join(cells))
    return "\n".join(lines)


@dataclass(frozen=True)
class CommStats:
    """Aggregate statistics over the message flights of a run."""

    count: int
    total_bytes: int
    mean_flight: float
    max_flight: float
    mean_queue_delay: float
    max_queue_delay: float

    def __str__(self) -> str:
        return (
            f"{self.count} messages, {self.total_bytes} bytes, "
            f"flight mean/max = {self.mean_flight * 1e6:.2f}/"
            f"{self.max_flight * 1e6:.2f} us, "
            f"queueing mean/max = {self.mean_queue_delay * 1e6:.2f}/"
            f"{self.max_queue_delay * 1e6:.2f} us"
        )


def comm_stats(result: SimResult) -> CommStats:
    """Reduce the message list to :class:`CommStats`."""
    msgs = result.messages
    if not msgs:
        return CommStats(0, 0, 0.0, 0.0, 0.0, 0.0)
    flights = np.array([m.flight_time for m in msgs])
    queues = np.array([m.queue_delay for m in msgs])
    return CommStats(
        count=len(msgs),
        total_bytes=int(sum(m.size for m in msgs)),
        mean_flight=float(flights.mean()),
        max_flight=float(flights.max()),
        mean_queue_delay=float(queues.mean()),
        max_queue_delay=float(queues.max()),
    )
