"""Histogram views over reconstructed timelines.

Paraver's second workhorse (besides timelines) is its histogram/2-D
analyzer.  These reductions cover the uses the overlap study needs:
distribution of state durations (how long are the waits?), message
sizes and flight times, and a rank-vs-time activity heatmap — each with
a plain-text renderer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dimemas.results import SimResult
from .timeline import sample_states

__all__ = [
    "Histogram",
    "flight_time_histogram",
    "message_size_histogram",
    "render_heatmap",
    "render_histogram",
    "state_duration_histogram",
]

_BLOCKS = " .:-=+*#%@"


@dataclass(frozen=True)
class Histogram:
    """Binned counts with edges (``len(edges) == len(counts) + 1``)."""

    label: str
    edges: np.ndarray
    counts: np.ndarray

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    def mean(self) -> float:
        """Mean of the underlying samples (midpoint approximation)."""
        if self.total == 0:
            return 0.0
        mids = 0.5 * (self.edges[:-1] + self.edges[1:])
        return float((mids * self.counts).sum() / self.total)


def _make(label: str, samples: np.ndarray, bins: int,
          log: bool = False) -> Histogram:
    if samples.size == 0:
        return Histogram(label, np.array([0.0, 1.0]), np.zeros(1, dtype=int))
    lo, hi = float(samples.min()), float(samples.max())
    if hi <= lo:
        hi = lo + max(abs(lo), 1.0) * 1e-9 + 1e-30
    if log and lo > 0:
        edges = np.geomspace(lo, hi, bins + 1)
    else:
        edges = np.linspace(lo, hi, bins + 1)
    counts, edges = np.histogram(samples, bins=edges)
    return Histogram(label, edges, counts)


def state_duration_histogram(
    result: SimResult, state: str, bins: int = 12, log: bool = False,
) -> Histogram:
    """Distribution of individual interval durations of one state."""
    samples = np.array([
        t1 - t0
        for intervals in result.states
        for (s, t0, t1) in intervals
        if s == state
    ])
    return _make(f"{state} interval durations (s)", samples, bins, log)


def message_size_histogram(result: SimResult, bins: int = 12) -> Histogram:
    """Distribution of message sizes (bytes)."""
    samples = np.array([m.size for m in result.messages], dtype=float)
    return _make("message sizes (bytes)", samples, bins)


def flight_time_histogram(result: SimResult, bins: int = 12) -> Histogram:
    """Distribution of end-to-end message delays."""
    samples = np.array([m.flight_time for m in result.messages])
    return _make("message flight times (s)", samples, bins)


def render_histogram(hist: Histogram, width: int = 48) -> str:
    """Horizontal-bar text rendering of a histogram."""
    lines = [f"{hist.label}  (n={hist.total}, mean={hist.mean():.3g})"]
    peak = int(hist.counts.max()) if hist.counts.size else 0
    for k in range(hist.counts.size):
        n = int(hist.counts[k])
        bar = "#" * (round(n / peak * width) if peak else 0)
        lines.append(
            f"[{hist.edges[k]:>10.3g}, {hist.edges[k + 1]:>10.3g})"
            f" {n:>7} |{bar}"
        )
    return "\n".join(lines)


def render_heatmap(
    result: SimResult,
    state: str = "Running",
    width: int = 64,
    t0: float | None = None,
    t1: float | None = None,
) -> str:
    """Rank-vs-time density of one state (Paraver's 2-D analyzer view).

    Each cell shows what share of the bin the rank spent in ``state``,
    using a 10-level character ramp.
    """
    grid, lo, hi = sample_states(result, width, t0, t1)
    bin_w = (hi - lo) / width
    lines = [f"share of '{state}' per (rank, {bin_w * 1e6:.1f} us bin)"]
    for rank in range(result.nranks):
        cover = np.zeros(width)
        for s, a, b in result.states[rank]:
            if s != state:
                continue
            a, b = max(a, lo), min(b, hi)
            if b <= a:
                continue
            first = int((a - lo) / bin_w)
            last = min(int((b - lo) / bin_w), width - 1)
            for k in range(first, last + 1):
                ka, kb = lo + k * bin_w, lo + (k + 1) * bin_w
                cover[k] += min(b, kb) - max(a, ka)
        frac = np.clip(cover / bin_w, 0.0, 1.0)
        row = "".join(_BLOCKS[int(round(f * (len(_BLOCKS) - 1)))] for f in frac)
        lines.append(f"rank {rank:>3} |{row}|")
    lines.append(f"ramp: '{_BLOCKS}' = 0%..100%")
    return "\n".join(lines)
