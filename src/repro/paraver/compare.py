"""Side-by-side comparison of non-overlapped vs overlapped executions.

Bundles the qualitative (Gantt/SVG) and quantitative (state-profile
delta) comparisons the paper performs with Paraver in §V ("With the
Paraver tool we can easily investigate the cause of this
improvement").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.metrics import Comparison
from ..dimemas.results import SimResult
from .gantt import render_comparison
from .stats import comm_stats

__all__ = ["ExecutionComparison", "compare"]


@dataclass
class ExecutionComparison:
    """Everything needed to explain where an improvement came from."""

    original: SimResult
    overlapped: SimResult

    @property
    def timing(self) -> Comparison:
        """Makespan comparison (speedup / % improvement)."""
        return Comparison(self.original.duration, self.overlapped.duration)

    def state_delta(self) -> dict[str, float]:
        """Per-state change in total seconds (negative = time removed).

        For NAS-CG the paper attributes the gain to *"reducing
        significantly the Wait phases"* — visible here as negative
        deltas on the waiting states.
        """
        a = self.original.state_summary()
        b = self.overlapped.state_summary()
        return {k: b.get(k, 0.0) - a.get(k, 0.0) for k in sorted(set(a) | set(b))}

    def report(self, width: int = 96, t0: float | None = None,
               t1: float | None = None) -> str:
        """Full text report: stacked Gantt + timing + state deltas."""
        lines = [
            render_comparison(self.original, self.overlapped, width, t0, t1),
            "",
            f"timing : {self.timing}",
            "state deltas (overlapped - original, seconds over all ranks):",
        ]
        for state, delta in self.state_delta().items():
            lines.append(f"  {state:<22} {delta:+.6f}")
        lines.append(f"comm (original)  : {comm_stats(self.original)}")
        lines.append(f"comm (overlapped): {comm_stats(self.overlapped)}")
        return "\n".join(lines)


def compare(original: SimResult, overlapped: SimResult) -> ExecutionComparison:
    """Build an :class:`ExecutionComparison` of two replays."""
    if original.nranks != overlapped.nranks:
        raise ValueError(
            f"cannot compare runs of different sizes: "
            f"{original.nranks} vs {overlapped.nranks} ranks"
        )
    return ExecutionComparison(original, overlapped)
