"""Timeline visualization and profiling (the framework's Paraver stage)."""

from .compare import ExecutionComparison, compare
from .critical import (
    CriticalPath,
    CriticalPathError,
    PathSegment,
    critical_path,
    render_path,
)
from .gantt import STATE_CHARS, render_comparison, render_gantt
from .histogram import (
    Histogram,
    flight_time_histogram,
    message_size_histogram,
    render_heatmap,
    render_histogram,
    state_duration_histogram,
)
from .stats import CommStats, comm_stats, profile_table, state_matrix
from .svg import STATE_COLORS, render_svg, write_svg
from .timeline import iteration_bounds, sample_states

__all__ = [
    "CommStats", "CriticalPath", "CriticalPathError", "ExecutionComparison",
    "Histogram",
    "PathSegment", "STATE_CHARS", "STATE_COLORS", "critical_path", "render_path",
    "flight_time_histogram", "message_size_histogram", "render_heatmap",
    "render_histogram", "state_duration_histogram",
    "comm_stats", "compare", "iteration_bounds", "profile_table",
    "render_comparison", "render_gantt", "render_svg", "sample_states",
    "state_matrix", "write_svg",
]
