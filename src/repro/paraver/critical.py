"""Critical-path analysis of reconstructed executions.

The paper positions the framework as development support: implementers
*"can use the framework ... because Paraver visualization could help
them identify specific bottlenecks in their implementations"* (§VII).
This module automates that inspection: it walks the makespan-defining
dependency chain backwards through the reconstructed timeline —
following each blocking interval to the message whose arrival released
it, hopping to that message's sender — and attributes every second of
the critical path to compute, wire occupancy, network queueing,
latency, or collective synchronization.

The resulting breakdown answers the overlap study's key question
directly: what fraction of the remaining runtime could still be hidden
(wire/queueing/latency) versus what is irreducible computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dimemas.results import MessageFlight, SimResult

__all__ = ["CriticalPath", "CriticalPathError", "PathSegment",
           "critical_path", "render_path"]

_EPS = 1e-12


class CriticalPathError(RuntimeError):
    """The backward walk exhausted its hop budget before reaching t=0.

    Raised instead of silently returning a truncated path (a truncated
    breakdown understates every category and is indistinguishable from
    a complete one).  Carries the partial :attr:`path` walked so far
    and the exhausted :attr:`max_hops` budget so callers can still
    report what was covered.
    """

    def __init__(self, path: "CriticalPath", max_hops: int):
        self.path = path
        self.max_hops = max_hops
        super().__init__(
            f"critical-path walk exhausted {max_hops} message hops "
            f"({path.length * 1e3:.3f} ms walked, incomplete); raise "
            f"max_hops or inspect .path for the partial chain"
        )


@dataclass(frozen=True)
class PathSegment:
    """One hop of the critical path (on one rank, time-descending)."""

    rank: int
    t0: float
    t1: float
    kind: str          # "compute" | "wire" | "queue" | "latency" | "collective" | "idle"

    @property
    def span(self) -> float:
        return self.t1 - self.t0


@dataclass
class CriticalPath:
    """The makespan-defining chain and its cost attribution."""

    segments: list[PathSegment] = field(default_factory=list)
    hops: int = 0

    def breakdown(self) -> dict[str, float]:
        """Seconds of the critical path per cost category."""
        out: dict[str, float] = {}
        for seg in self.segments:
            out[seg.kind] = out.get(seg.kind, 0.0) + seg.span
        return out

    @property
    def length(self) -> float:
        return sum(seg.span for seg in self.segments)

    def fraction(self, kind: str) -> float:
        """Share of the path attributed to one category."""
        total = self.length
        return self.breakdown().get(kind, 0.0) / total if total > 0 else 0.0


def _message_arriving(result: SimResult, dst: int, t: float) -> MessageFlight | None:
    """The message into ``dst`` delivered closest to (and not after) t."""
    best = None
    for m in result.messages:
        if m.dst != dst or m.t_recv > t + 1e-9:
            continue
        if best is None or m.t_recv > best.t_recv:
            best = m
    return best


def critical_path(result: SimResult, max_hops: int = 100_000) -> CriticalPath:
    """Walk the critical path backwards from the last-finishing rank.

    Within a rank, Running time is attributed to ``compute`` and
    collective blocking to ``collective``; a blocking interval that a
    message release ends is decomposed into the sender-side pieces:
    queueing (send -> wire start), wire occupancy, and latency, after
    which the walk continues on the sending rank at the send time.

    Raises :class:`CriticalPathError` when ``max_hops`` message hops
    are exhausted before the walk reaches time zero — the partial path
    rides on the exception rather than masquerading as a complete one.
    """
    path = CriticalPath()
    rank = max(range(result.nranks), key=lambda r: result.rank_end[r])
    t = result.rank_end[rank]

    while t > _EPS and path.hops < max_hops:
        intervals = result.states[rank]
        # the interval covering (t - eps)
        current = None
        for s, a, b in reversed(intervals):
            if a < t - _EPS and b >= t - 1e-9:
                current = (s, a, min(b, t))
                break
        if current is None:
            # gap before the first interval (or between intervals):
            # attribute as idle back to the previous interval end
            prev_end = 0.0
            for s, a, b in intervals:
                if b <= t - _EPS:
                    prev_end = max(prev_end, b)
            path.segments.append(PathSegment(rank, prev_end, t, "idle"))
            t = prev_end
            continue
        state, a, b = current
        if state == "Running":
            path.segments.append(PathSegment(rank, a, b, "compute"))
            t = a
            continue
        if state == "Group communication":
            path.segments.append(PathSegment(rank, a, b, "collective"))
            t = a
            continue
        # Blocking communication: find the releasing message and
        # decompose its delay into wire+latency (t_start -> t_recv) and
        # resource queueing (t_send -> t_start), then hop to the sender.
        msg = _message_arriving(result, rank, b)
        if msg is None:
            path.segments.append(PathSegment(rank, a, b, "idle"))
            t = a
            continue
        path.segments.append(
            PathSegment(rank, msg.t_start, msg.t_recv, "wire")
        )
        if msg.t_start > msg.t_send + _EPS:
            path.segments.append(
                PathSegment(msg.src, msg.t_send, msg.t_start, "queue")
            )
        path.hops += 1
        rank = msg.src
        t = msg.t_send

    if t > _EPS and path.hops >= max_hops:
        raise CriticalPathError(path, max_hops)
    return path


def render_path(path: CriticalPath, top: int = 12) -> str:
    """Text summary: category breakdown + the longest segments."""
    lines = [
        f"critical path: {path.length * 1e3:.3f} ms over {path.hops} "
        f"message hops",
    ]
    total = path.length or 1.0
    for kind, sec in sorted(path.breakdown().items(), key=lambda kv: -kv[1]):
        lines.append(f"  {kind:<10} {sec * 1e3:9.3f} ms  ({sec / total * 100:5.1f}%)")
    longest = sorted(path.segments, key=lambda s: -s.span)[:top]
    lines.append(f"longest segments (top {len(longest)}):")
    for seg in longest:
        lines.append(
            f"  rank {seg.rank:>3} {seg.kind:<10} "
            f"{seg.t0 * 1e6:10.1f} .. {seg.t1 * 1e6:10.1f} us "
            f"({seg.span * 1e6:8.1f} us)"
        )
    return "\n".join(lines)
