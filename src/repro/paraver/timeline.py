"""Timeline sampling utilities shared by the renderers.

Paraver draws each process as a horizontal band whose colour encodes
the process state over time.  For text/SVG rendering we discretize a
:class:`~repro.dimemas.results.SimResult` into fixed-width bins; each
bin takes the state that covers most of it (majority resampling, which
is also what Paraver does when zoomed out).
"""

from __future__ import annotations

from collections import defaultdict

from ..dimemas.results import SimResult

__all__ = ["iteration_bounds", "sample_states"]


def sample_states(
    result: SimResult,
    bins: int,
    t0: float | None = None,
    t1: float | None = None,
) -> tuple[list[list[str | None]], float, float]:
    """Majority-resample every rank's states into ``bins`` columns.

    Returns ``(grid, t0, t1)`` where ``grid[rank][b]`` is the dominant
    state name of bin ``b`` (None = idle/no coverage).
    """
    if bins < 1:
        raise ValueError("bins must be >= 1")
    lo = 0.0 if t0 is None else t0
    hi = result.duration if t1 is None else t1
    if hi <= lo:
        hi = lo + 1e-12
    width = (hi - lo) / bins

    grid: list[list[str | None]] = []
    for rank in range(result.nranks):
        cover: list[dict[str, float]] = [defaultdict(float) for _ in range(bins)]
        for state, a, b in result.states[rank]:
            a, b = max(a, lo), min(b, hi)
            if b <= a:
                continue
            first = int((a - lo) / width)
            last = min(int((b - lo) / width), bins - 1)
            for k in range(first, last + 1):
                ka, kb = lo + k * width, lo + (k + 1) * width
                cover[k][state] += min(b, kb) - max(a, ka)
        row: list[str | None] = []
        for k in range(bins):
            if cover[k]:
                row.append(max(cover[k].items(), key=lambda kv: kv[1])[0])
            else:
                row.append(None)
        grid.append(row)
    return grid, lo, hi


def iteration_bounds(
    result: SimResult, first: int, count: int, name: str = "iteration",
    rank: int = 0,
) -> tuple[float, float]:
    """Time window covering iterations ``first .. first+count-1``.

    Iteration boundaries come from the user events the applications
    emit (``comm.event("iteration", i)``) — this is how the Figure 4
    view ("the first five iterations") is sliced.
    """
    marks = result.event_times(name, rank=rank)
    if not marks:
        raise ValueError(f"no {name!r} events on rank {rank}")
    times = [t for t, v in marks if first <= v < first + count + 1]
    if not times:
        raise ValueError(f"iterations {first}..{first + count - 1} not found")
    lo = min(times)
    after = [t for t, v in marks if v >= first + count]
    hi = min(after) if after else result.duration
    return lo, hi
