"""SVG rendering of reconstructed timelines.

Produces a self-contained SVG close to the Paraver window of paper
Figure 4: one horizontal band per rank coloured by state, with message
lines drawn from the sender's send time to the receiver's delivery
time (the "synchronization lines" the paper points at when explaining
where NAS-CG's 8 % improvement comes from).
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import TextIO

from ..dimemas.results import SimResult

__all__ = ["STATE_COLORS", "write_svg", "render_svg"]

#: Classic Paraver palette (state -> fill colour).
STATE_COLORS: dict[str, str] = {
    "Running": "#2f7ed8",
    "Send": "#c94f4f",
    "Waiting a message": "#e8b54d",
    "Wait/WaitAll": "#b07aa1",
    "Group communication": "#76b043",
    "Idle": "#d9d9d9",
}

_ROW_H = 22
_ROW_GAP = 6
_MARGIN_L = 72
_MARGIN_T = 28
_MARGIN_B = 34


def render_svg(
    result: SimResult,
    width: int = 900,
    t0: float | None = None,
    t1: float | None = None,
    title: str = "",
    draw_messages: bool = True,
    max_message_lines: int = 400,
) -> str:
    """Render a timeline window as an SVG document string."""
    lo = 0.0 if t0 is None else t0
    hi = result.duration if t1 is None else t1
    if hi <= lo:
        hi = lo + 1e-12

    def x(t: float) -> float:
        return _MARGIN_L + (max(min(t, hi), lo) - lo) / (hi - lo) * width

    def y(rank: int) -> float:
        return _MARGIN_T + rank * (_ROW_H + _ROW_GAP)

    height = _MARGIN_T + result.nranks * (_ROW_H + _ROW_GAP) + _MARGIN_B
    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{width + _MARGIN_L + 16}" height="{height}" '
        f'font-family="monospace" font-size="12">',
        f'<text x="{_MARGIN_L}" y="16">{html.escape(title)}</text>',
    ]
    for rank in range(result.nranks):
        parts.append(
            f'<text x="4" y="{y(rank) + _ROW_H * 0.7:.1f}">rank {rank}</text>'
        )
        for state, a, b in result.states[rank]:
            a2, b2 = max(a, lo), min(b, hi)
            if b2 <= a2:
                continue
            color = STATE_COLORS.get(state, "#999999")
            parts.append(
                f'<rect x="{x(a2):.2f}" y="{y(rank):.1f}" '
                f'width="{max(x(b2) - x(a2), 0.4):.2f}" height="{_ROW_H}" '
                f'fill="{color}"><title>{html.escape(state)} '
                f'{(b2 - a2) * 1e6:.2f}us</title></rect>'
            )
    if draw_messages:
        shown = 0
        for m in result.messages:
            if m.t_recv < lo or m.t_send > hi or m.src == m.dst:
                continue
            parts.append(
                f'<line x1="{x(m.t_send):.2f}" y1="{y(m.src) + _ROW_H / 2:.1f}" '
                f'x2="{x(m.t_recv):.2f}" y2="{y(m.dst) + _ROW_H / 2:.1f}" '
                f'stroke="#404040" stroke-width="0.8" opacity="0.6"/>'
            )
            shown += 1
            if shown >= max_message_lines:
                break
    # Axis and legend.
    ybase = _MARGIN_T + result.nranks * (_ROW_H + _ROW_GAP) + 4
    parts.append(
        f'<text x="{_MARGIN_L}" y="{ybase + 12}">'
        f'{lo * 1e6:.1f} us</text>'
    )
    parts.append(
        f'<text x="{_MARGIN_L + width - 70}" y="{ybase + 12}">'
        f'{hi * 1e6:.1f} us</text>'
    )
    lx = _MARGIN_L + 90
    for state, color in STATE_COLORS.items():
        parts.append(
            f'<rect x="{lx}" y="{ybase + 4}" width="10" height="10" fill="{color}"/>'
            f'<text x="{lx + 14}" y="{ybase + 13}">{html.escape(state)}</text>'
        )
        lx += 14 + 8 * len(state) + 22
    parts.append("</svg>")
    return "\n".join(parts)


def write_svg(result: SimResult, fp: TextIO | str | Path, **kwargs) -> None:
    """Write :func:`render_svg` output to a path or stream."""
    doc = render_svg(result, **kwargs)
    if isinstance(fp, (str, Path)):
        Path(fp).write_text(doc, encoding="utf-8")
    else:
        fp.write(doc)
