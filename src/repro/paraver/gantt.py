"""ASCII Gantt rendering of reconstructed timelines.

A terminal stand-in for the Paraver window of paper Figure 4: one row
per rank, one character per time bin, colour replaced by a character
per state.  Good enough to *"qualitatively inspect differences between
the non-overlapped and overlapped executions"* right in a test log.
"""

from __future__ import annotations

from ..dimemas.results import SimResult
from .timeline import sample_states

__all__ = ["STATE_CHARS", "render_gantt", "render_comparison"]

#: Character legend of the Gantt view.
STATE_CHARS: dict[str | None, str] = {
    "Running": "#",
    "Send": "s",
    "Waiting a message": "r",
    "Wait/WaitAll": "w",
    "Group communication": "g",
    "Idle": ".",
    None: " ",
}

_LEGEND = "legend: # running   s send-blocked   r recv-wait   w waitall   g collective"


def render_gantt(
    result: SimResult,
    width: int = 96,
    t0: float | None = None,
    t1: float | None = None,
    title: str | None = None,
    legend: bool = True,
) -> str:
    """Render one timeline as text.

    ``t0``/``t1`` clip the view (defaults: the whole run).  Each rank
    becomes a row of ``width`` state characters.
    """
    grid, lo, hi = sample_states(result, width, t0, t1)
    lines: list[str] = []
    if title:
        lines.append(title)
    span_us = (hi - lo) * 1e6
    lines.append(f"time window: {lo * 1e6:.1f} .. {hi * 1e6:.1f} us  ({span_us:.1f} us)")
    for rank, row in enumerate(grid):
        body = "".join(STATE_CHARS.get(s, "?") for s in row)
        lines.append(f"rank {rank:>3} |{body}|")
    if legend:
        lines.append(_LEGEND)
    return "\n".join(lines)


def render_comparison(
    original: SimResult,
    overlapped: SimResult,
    width: int = 96,
    t0: float | None = None,
    t1: float | None = None,
    labels: tuple[str, str] = ("non-overlapped", "overlapped"),
) -> str:
    """Stacked view of two executions on a shared time axis.

    The shared axis makes the makespan difference directly visible —
    the comparison the paper draws in Figure 4 for NAS-CG.
    """
    hi = t1 if t1 is not None else max(original.duration, overlapped.duration)
    a = render_gantt(original, width, t0, hi, title=f"--- {labels[0]} ---", legend=False)
    b = render_gantt(overlapped, width, t0, hi, title=f"--- {labels[1]} ---", legend=False)
    dur_a, dur_b = original.duration, overlapped.duration
    pct = 100.0 * (dur_a - dur_b) / dur_a if dur_a > 0 else 0.0
    tail = (
        f"makespan: {dur_a * 1e6:.1f} us -> {dur_b * 1e6:.1f} us "
        f"({pct:+.1f}% improvement)"
    )
    return "\n".join([a, "", b, "", tail, _LEGEND])
