"""Request objects for non-blocking simulated MPI operations."""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["Request"]


class Request:
    """Handle of a non-blocking operation (mpi4py-style).

    Simulated sends buffer eagerly, so send requests are born complete;
    receive requests complete when a matching message arrives.  The
    *functional* completion modelled here is separate from the *timed*
    completion decided later by the replay simulator.
    """

    __slots__ = ("comm", "rank", "req_id", "kind", "_pr", "_buf", "_token", "_done", "_value")

    def __init__(self, comm, rank: int, req_id: int, kind: str,
                 pr=None, buf=None, token=None):
        if kind not in ("isend", "irecv"):
            raise ValueError(f"invalid request kind {kind!r}")
        self.comm = comm
        self.rank = rank
        self.req_id = req_id
        self.kind = kind
        self._pr = pr
        self._buf = buf
        self._token = token
        self._done = kind == "isend"
        self._value: Any = None

    # -- completion ---------------------------------------------------------
    def _functionally_complete(self) -> bool:
        if self._done:
            return True
        return self.comm.runtime.board.is_complete(self._pr)

    def _finish(self) -> None:
        """Extract the payload of a completed receive (idempotent)."""
        if self._done:
            return
        env = self.comm.runtime.board.take(self._pr)
        if self._buf is not None:
            np.copyto(np.asarray(self._buf).reshape(-1), np.asarray(env.payload).reshape(-1))
            self._value = self._buf
        else:
            self._value = env.payload
        obs = self.comm.runtime.observers[self.rank]
        obs.on_recv_complete(
            self.rank, self._token, env.src, env.tag, env.size, env.elements,
        )
        self._done = True

    def test(self) -> bool:
        """Non-blocking completion probe; finalizes on success."""
        if self._functionally_complete():
            self._finish()
            return True
        return False

    def wait(self) -> Any:
        """Block until complete; returns the received object (irecv)."""
        return self.comm.wait(self)

    @property
    def done(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        """Payload delivered by a completed receive (None for sends)."""
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Request(rank={self.rank}, id={self.req_id}, kind={self.kind}, done={self._done})"
