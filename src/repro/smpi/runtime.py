"""Deterministic cooperative runtime for simulated MPI programs.

The paper runs each MPI process inside its own Valgrind virtual
machine; the tracer observes the process from inside.  Our substitute
runs each simulated rank as a Python thread under a *baton-passing*
scheduler: exactly one rank executes at any instant, ranks switch only
at blocking communication points, and the scheduler resumes ranks in a
fixed, documented order.  Execution is therefore fully deterministic —
the same program yields byte-identical traces on every run, which the
trace-driven methodology requires (and which we verify with an
ablation: scheduling order must not change replayed times).

The runtime is purely *functional*: it moves real data between ranks
and maintains each rank's **virtual clock** in executed instructions,
but attaches no cost to communication.  Timing is the job of the
replay simulator (:mod:`repro.dimemas`), exactly as in the original
tool chain.
"""

from __future__ import annotations

import threading
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

__all__ = [
    "AccessBatch",
    "DeadlockError",
    "Observer",
    "RankFailedError",
    "Runtime",
    "RuntimeError_",
]


class RuntimeError_(RuntimeError):
    """Base class for smpi runtime errors."""


class DeadlockError(RuntimeError_):
    """No rank can make progress and at least one has not finished.

    ``blocked`` carries the structured per-rank state: a list of
    ``(rank, description)`` pairs, where the description is the
    blocking call's own account of what it waits for (e.g.
    ``"recv(source=3, tag=0, ...)"``).
    """

    def __init__(self, blocked: list[tuple[int, str]]):
        self.blocked = list(blocked)
        super().__init__(
            "simulated MPI deadlock; blocked ranks:\n"
            + "\n".join(f"  rank {r}: {d or '<unknown>'}" for r, d in self.blocked)
        )


class RankFailedError(RuntimeError_):
    """A rank raised an exception; carries the original traceback."""

    def __init__(self, rank: int, exc: BaseException, tb: str):
        super().__init__(f"rank {rank} failed: {exc!r}\n{tb}")
        self.rank = rank
        self.original = exc


class _Abort(BaseException):
    """Internal: unwinds worker threads on runtime shutdown."""


@dataclass(frozen=True)
class AccessBatch:
    """A vectorized batch of memory accesses inside one compute burst.

    Attributes
    ----------
    buf:
        The communication buffer (typically a NumPy array) the accesses
        touch.  Identity (``id(buf)``) links accesses to transfers, so
        applications must load/store and send/recv the *same object*.
    offsets:
        Integer element indices into ``buf``.
    at:
        Fractions in ``[0, 1]`` locating each access within the burst
        (0 = burst start, 1 = burst end), aligned with ``offsets``.
        ``None`` distributes the accesses uniformly over the burst in
        the order given.
    """

    buf: Any
    offsets: Any
    at: Any = None


class Observer:
    """Instrumentation hooks — the seam where the tracer attaches.

    All callbacks run on the observed rank's thread while it holds the
    scheduler baton, so implementations need no locking.  The default
    implementation ignores everything, making the runtime usable as a
    plain message-passing simulator.
    """

    def on_start(self, rank: int, size: int) -> None:
        """Rank began execution."""

    def on_compute(
        self,
        rank: int,
        start_icount: int,
        instructions: int,
        loads: Sequence[AccessBatch],
        stores: Sequence[AccessBatch],
    ) -> None:
        """A compute burst of ``instructions`` beginning at ``start_icount``."""

    def on_send(
        self, rank: int, buf: Any, dest: int, tag: int, size: int,
        elements: int, channel: int, sub: int, request: int | None,
        context: int = 0,
    ) -> None:
        """A send was initiated (``request is None`` for blocking sends)."""

    def on_recv_post(
        self, rank: int, buf: Any, source: int, tag: int, size: int,
        elements: int, channel: int, sub: int, request: int | None,
        context: int = 0,
    ) -> "object | None":
        """A receive was posted.  May return a token passed back on completion."""

    def on_recv_complete(
        self, rank: int, token: object, source: int, tag: int, size: int, elements: int,
    ) -> None:
        """A posted receive matched and delivered (actual source/size known)."""

    def on_wait(self, rank: int, requests: Sequence[int]) -> None:
        """The rank blocked in wait for the given request ids."""

    def on_collective(
        self, rank: int, op: str, root: int, send_size: int, recv_size: int,
        seq: int, send_buf: Any, recv_buf: Any,
        context: int = 0, members: int = 0,
    ) -> None:
        """An analytically-modelled collective executed (decompose=False)."""

    def on_event(self, rank: int, name: str, value: int) -> None:
        """A user event (iteration marker) was emitted."""

    def on_finish(self, rank: int) -> None:
        """Rank finished execution."""


@dataclass
class _RankState:
    rank: int
    thread: threading.Thread | None = None
    turn: threading.Event = field(default_factory=threading.Event)
    blocked_on: Callable[[], bool] | None = None
    blocked_desc: str = ""
    finished: bool = False
    result: Any = None
    failure: tuple[BaseException, str] | None = None
    icount: int = 0  # virtual clock in executed instructions


class Runtime:
    """Runs ``nranks`` simulated MPI processes to completion.

    Parameters
    ----------
    nranks:
        Number of ranks.
    fn:
        ``fn(comm) -> result`` executed by every rank, or a sequence of
        per-rank callables (SPMD vs MPMD).
    observers:
        Optional per-rank :class:`Observer` list, or a single factory
        ``factory(rank) -> Observer``.
    decompose_collectives:
        When True (default, the paper's setting) collectives are run as
        point-to-point trees and observed as such; when False they
        execute out-of-band and are observed via
        :meth:`Observer.on_collective`.
    """

    def __init__(
        self,
        nranks: int,
        fn: Callable | Sequence[Callable],
        observers: Sequence[Observer] | Callable[[int], Observer] | None = None,
        decompose_collectives: bool = True,
    ):
        if nranks < 1:
            raise ValueError("nranks must be >= 1")
        self.nranks = nranks
        if callable(fn):
            self._fns = [fn] * nranks
        else:
            self._fns = list(fn)
            if len(self._fns) != nranks:
                raise ValueError(f"need {nranks} rank functions, got {len(self._fns)}")
        if observers is None:
            self.observers: list[Observer] = [Observer() for _ in range(nranks)]
        elif callable(observers):
            self.observers = [observers(r) for r in range(nranks)]
        else:
            self.observers = list(observers)
            if len(self.observers) != nranks:
                raise ValueError("need one observer per rank")
        self.decompose_collectives = decompose_collectives

        from .matching import MessageBoard  # local import to avoid cycle
        self.board = MessageBoard()
        self._ranks = [_RankState(r) for r in range(nranks)]
        self._sched_turn = threading.Event()
        self._ready: list[int] = []
        self._abort = False
        self._req_counter = [0] * nranks
        self._contexts: dict = {}

    # ------------------------------------------------------------------ #
    # Scheduler side.
    # ------------------------------------------------------------------ #
    def run(self) -> list[Any]:
        """Execute all ranks; returns their return values by rank.

        Raises :class:`DeadlockError` if no progress is possible and
        :class:`RankFailedError` if any rank raised.
        """
        from ..obs import get_registry, span
        from .api import Comm

        with span("smpi.run", nranks=self.nranks):
            out = self._run_scheduled()
        reg = get_registry()
        reg.counter("smpi.runs").inc()
        reg.counter("smpi.ranks_run").inc(self.nranks)
        return out

    def _run_scheduled(self) -> list[Any]:
        """The baton-passing scheduler loop behind :meth:`run`."""
        from .api import Comm

        for st in self._ranks:
            comm = Comm(self, st.rank)
            st.thread = threading.Thread(
                target=self._worker, args=(st, comm), daemon=True,
                name=f"smpi-rank-{st.rank}",
            )
            st.thread.start()
        self._ready = list(range(self.nranks))

        try:
            while True:
                # Promote unblocked ranks, in rank order (deterministic).
                for st in self._ranks:
                    if (
                        st.blocked_on is not None
                        and st.rank not in self._ready
                        and st.blocked_on()
                    ):
                        st.blocked_on = None
                        self._ready.append(st.rank)
                if not self._ready:
                    unfinished = [st for st in self._ranks if not st.finished]
                    if not unfinished:
                        break
                    raise DeadlockError(
                        [(st.rank, st.blocked_desc) for st in unfinished]
                    )
                rank = self._ready.pop(0)
                st = self._ranks[rank]
                if st.finished:
                    continue
                st.turn.set()
                self._sched_turn.wait()
                self._sched_turn.clear()
                if st.failure is not None:
                    exc, tb = st.failure
                    raise RankFailedError(st.rank, exc, tb)
        finally:
            self._shutdown()
        return [st.result for st in self._ranks]

    def _shutdown(self) -> None:
        self._abort = True
        for st in self._ranks:
            st.turn.set()
        for st in self._ranks:
            if st.thread is not None and st.thread is not threading.current_thread():
                st.thread.join(timeout=5.0)

    # ------------------------------------------------------------------ #
    # Worker side (runs on rank threads, holding the baton).
    # ------------------------------------------------------------------ #
    def _worker(self, st: _RankState, comm) -> None:
        st.turn.wait()
        st.turn.clear()
        if self._abort:
            return
        try:
            self.observers[st.rank].on_start(st.rank, self.nranks)
            st.result = self._fns[st.rank](comm)
            self.observers[st.rank].on_finish(st.rank)
        except _Abort:
            return
        except BaseException as exc:  # noqa: BLE001 - reported to driver
            st.failure = (exc, traceback.format_exc())
        finally:
            st.finished = True
            if not self._abort:
                self._sched_turn.set()

    def yield_to_scheduler(self, st: _RankState) -> None:
        """Hand the baton back and wait for the next turn (worker side)."""
        self._sched_turn.set()
        st.turn.wait()
        st.turn.clear()
        if self._abort:
            raise _Abort()

    def block(self, rank: int, predicate: Callable[[], bool], desc: str) -> None:
        """Block the calling rank until ``predicate()`` is true.

        The predicate is evaluated by the scheduler with the baton held,
        so it may freely inspect shared state.
        """
        st = self._ranks[rank]
        while not predicate():
            st.blocked_on = predicate
            st.blocked_desc = desc
            self.yield_to_scheduler(st)
        st.blocked_on = None
        st.blocked_desc = ""

    def advance_clock(self, rank: int, instructions: int) -> int:
        """Advance the rank's virtual clock; returns the burst start icount."""
        st = self._ranks[rank]
        start = st.icount
        st.icount += int(instructions)
        return start

    def icount(self, rank: int) -> int:
        """Current virtual clock of ``rank`` in instructions."""
        return self._ranks[rank].icount

    def next_request_id(self, rank: int) -> int:
        """Allocate a fresh per-rank request id."""
        self._req_counter[rank] += 1
        return self._req_counter[rank]

    def context_id(self, key: tuple) -> int:
        """Stable communicator-context id for a split descriptor.

        All members of a split compute the same ``key`` (parent
        context, split sequence number, color), so they all receive the
        same id; ids are allocated in first-request order, which the
        deterministic scheduler makes reproducible.
        """
        if key not in self._contexts:
            self._contexts[key] = len(self._contexts) + 1
        return self._contexts[key]
