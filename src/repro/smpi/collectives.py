"""Collective operations built from point-to-point transfers.

Paper §III-C: *"collective communication operations are performed in
Dimemas without assuming any collective hardware support on the
network, so they are implemented as usual using multiple point-to-point
MPI transfers."*  We follow the classic MPICH-era algorithms: binomial
trees for broadcast/reduce (and reduce+broadcast for their all-
variants), linear trees for (un)rooted gathers, and a rotation schedule
for all-to-all.  All internal traffic is sent on
:data:`~repro.trace.records.CHANNEL_COLLECTIVE` with the collective's
sequence number as the tag, so the tracer records the decomposition
exactly as the simulator will replay it.

When the runtime is configured with ``decompose_collectives=False``,
the same algorithms still move the data (the runtime stays functional)
but the observer instead sees a single
:meth:`~repro.smpi.runtime.Observer.on_collective` event per rank, to
be replayed with Dimemas' analytic collective model — used by the
collective-model ablation benchmark.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Sequence

import numpy as np

from ..trace.records import CHANNEL_COLLECTIVE
from .datatypes import measure

__all__ = [
    "allgather",
    "allreduce",
    "alltoall",
    "barrier",
    "bcast",
    "combine",
    "gather",
    "reduce",
    "reduce_scatter",
    "scatter",
]

_SCALAR_OPS: dict[str, Callable] = {
    "sum": operator.add,
    "prod": operator.mul,
    "max": max,
    "min": min,
}
_ARRAY_OPS: dict[str, Callable] = {
    "sum": np.add,
    "prod": np.multiply,
    "max": np.maximum,
    "min": np.minimum,
}


def combine(op: str | Callable, a: Any, b: Any) -> Any:
    """Combine two reduction operands with ``op``.

    ``op`` may be one of ``"sum" | "prod" | "max" | "min"`` or a binary
    callable.  Arrays combine elementwise (never in place — operands
    may alias application buffers).
    """
    if callable(op):
        return op(a, b)
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        try:
            return _ARRAY_OPS[op](a, b)
        except KeyError:
            raise ValueError(f"unknown reduction op {op!r}") from None
    try:
        return _SCALAR_OPS[op](a, b)
    except KeyError:
        raise ValueError(f"unknown reduction op {op!r}") from None


def _analytic(comm, name: str, root: int, send_size: int, recv_size: int,
              seq: int, send_buf: Any = None, recv_buf: Any = None):
    """Report a collective to the observer and mute internal traffic."""
    if comm._observing:
        comm._obs.on_collective(
            comm.rank, name, root, send_size, recv_size, seq,
            send_buf, recv_buf, comm._context, comm.size,
        )

    class _Muted:
        def __enter__(self_inner):
            self_inner.prev = comm._observing
            comm._observing = False

        def __exit__(self_inner, *exc):
            comm._observing = self_inner.prev

    return _Muted()


class _Passthrough:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


def _mode(comm, name, root, send_size, recv_size, seq,
          send_buf=None, recv_buf=None):
    if comm.runtime.decompose_collectives or not comm._observing:
        return _Passthrough()
    return _analytic(comm, name, root, send_size, recv_size, seq,
                     send_buf, recv_buf)


# --------------------------------------------------------------------------- #
# Rooted collectives (binomial trees).
# --------------------------------------------------------------------------- #

def bcast(comm, obj: Any, root: int = 0, buf: Any = None) -> Any:
    """Binomial-tree broadcast from ``root``.

    ``buf`` optionally receives the payload in place on non-root ranks
    (mpi4py ``Bcast`` style); receiving into a persistent buffer is what
    lets the tracer attach consumption profiles to collective results.
    """
    size, rank = comm.size, comm.rank
    seq = comm._next_coll_seq()
    nbytes = measure(obj)[0] if rank == root else 0
    with _mode(comm, "bcast", root, nbytes, nbytes, seq, send_buf=obj):
        if size == 1:
            return obj
        rel = (rank - root) % size
        mask = 1
        while mask < size:
            if rel & mask:
                src = (rel - mask + root) % size
                obj = comm.recv(src, tag=seq, channel=CHANNEL_COLLECTIVE, buf=buf)
                break
            mask <<= 1
        mask >>= 1
        while mask > 0:
            if rel + mask < size and not rel & mask:
                dst = (rel + mask + root) % size
                comm.send(obj, dst, tag=seq, channel=CHANNEL_COLLECTIVE)
            mask >>= 1
        return obj


def reduce(comm, value: Any, op: str | Callable = "sum", root: int = 0) -> Any:
    """Binomial-tree reduction to ``root`` (returns ``None`` elsewhere)."""
    size, rank = comm.size, comm.rank
    seq = comm._next_coll_seq()
    nbytes = measure(value)[0]
    with _mode(comm, "reduce", root, nbytes, nbytes if rank == root else 0,
               seq, send_buf=value):
        if size == 1:
            return value
        rel = (rank - root) % size
        acc = value
        mask = 1
        while mask < size:
            if rel & mask == 0:
                child_rel = rel | mask
                if child_rel < size:
                    child = (child_rel + root) % size
                    other = comm.recv(child, tag=seq, channel=CHANNEL_COLLECTIVE)
                    acc = combine(op, acc, other)
            else:
                parent = (rel - mask + root) % size
                comm.send(acc, parent, tag=seq, channel=CHANNEL_COLLECTIVE)
                break
            mask <<= 1
        return acc if rank == root else None


def barrier(comm) -> None:
    """Synchronization barrier: zero-byte binomial reduce + broadcast."""
    size, rank = comm.size, comm.rank
    seq = comm._next_coll_seq()
    with _mode(comm, "barrier", 0, 0, 0, seq):
        if size == 1:
            return
        # Fan-in to rank 0.
        rel = rank
        mask = 1
        while mask < size:
            if rel & mask == 0:
                if rel | mask < size:
                    comm.recv(rel | mask, tag=seq, channel=CHANNEL_COLLECTIVE)
            else:
                comm.send(None, rel - mask, tag=seq, channel=CHANNEL_COLLECTIVE)
                break
            mask <<= 1
        # Fan-out from rank 0 (same tree, reused tag on a second sub id).
        mask = 1
        while mask < size:
            if rel & mask:
                comm.recv(rel - mask, tag=seq, channel=CHANNEL_COLLECTIVE, sub=1)
                break
            mask <<= 1
        mask >>= 1
        while mask > 0:
            if rel + mask < size and not rel & mask:
                comm.send(None, rel + mask, tag=seq, channel=CHANNEL_COLLECTIVE, sub=1)
            mask >>= 1


def allreduce(comm, value: Any, op: str | Callable = "sum", buf: Any = None) -> Any:
    """Reduce to rank 0 then broadcast (Dimemas' non-hardware model).

    ``buf`` optionally receives the combined result in place (mpi4py
    ``Allreduce`` style).
    """
    seq_guard = None
    if not comm.runtime.decompose_collectives:
        nbytes = measure(value)[0]
        seq = comm._next_coll_seq()
        seq_guard = _analytic(comm, "allreduce", 0, nbytes, nbytes, seq,
                              send_buf=value)
    if seq_guard is not None:
        with seq_guard:
            acc = reduce(comm, value, op, root=0)
            out = bcast(comm, acc, root=0, buf=buf)
    else:
        acc = reduce(comm, value, op, root=0)
        out = bcast(comm, acc, root=0, buf=buf)
    if buf is not None and comm.rank == 0:
        np.copyto(np.asarray(buf).reshape(-1), np.asarray(out).reshape(-1))
        return buf
    return out


# --------------------------------------------------------------------------- #
# Gather family (linear trees) and all-to-all.
# --------------------------------------------------------------------------- #

def gather(comm, value: Any, root: int = 0) -> list[Any] | None:
    """Linear gather of one value per rank into a list at ``root``."""
    size, rank = comm.size, comm.rank
    seq = comm._next_coll_seq()
    nbytes = measure(value)[0]
    with _mode(comm, "gather", root, nbytes, nbytes * size if rank == root else 0,
               seq, send_buf=value):
        if rank != root:
            comm.send(value, root, tag=seq, channel=CHANNEL_COLLECTIVE)
            return None
        out: list[Any] = []
        for r in range(size):
            if r == rank:
                out.append(value)
            else:
                out.append(comm.recv(r, tag=seq, channel=CHANNEL_COLLECTIVE))
        return out


def scatter(comm, values: Sequence[Any] | None, root: int = 0) -> Any:
    """Linear scatter of ``values[r]`` to every rank ``r`` from ``root``."""
    size, rank = comm.size, comm.rank
    seq = comm._next_coll_seq()
    if rank == root:
        if values is None or len(values) != size:
            raise ValueError(f"scatter root needs exactly {size} values")
        nbytes = sum(measure(v)[0] for v in values)
    else:
        nbytes = 0
    with _mode(comm, "scatter", root, nbytes, 0, seq, send_buf=values):
        if rank == root:
            own = None
            for r in range(size):
                if r == rank:
                    own = values[r]
                else:
                    comm.send(values[r], r, tag=seq, channel=CHANNEL_COLLECTIVE)
            return own
        return comm.recv(root, tag=seq, channel=CHANNEL_COLLECTIVE)


def allgather(comm, value: Any) -> list[Any]:
    """Gather at rank 0 followed by a broadcast of the list."""
    if comm.runtime.decompose_collectives:
        out = gather(comm, value, root=0)
        return bcast(comm, out, root=0)
    nbytes = measure(value)[0]
    seq = comm._next_coll_seq()
    with _analytic(comm, "allgather", 0, nbytes, nbytes * comm.size, seq,
                   send_buf=value):
        out = gather(comm, value, root=0)
        return bcast(comm, out, root=0)


def alltoall(comm, values: Sequence[Any]) -> list[Any]:
    """Rotation-scheduled personalized exchange (``values[r]`` to rank r)."""
    size, rank = comm.size, comm.rank
    if len(values) != size:
        raise ValueError(f"alltoall needs exactly {size} values, got {len(values)}")
    seq = comm._next_coll_seq()
    nbytes = sum(measure(v)[0] for v in values)
    with _mode(comm, "alltoall", 0, nbytes, nbytes, seq, send_buf=values):
        out: list[Any] = [None] * size
        out[rank] = values[rank]
        for k in range(1, size):
            dst = (rank + k) % size
            src = (rank - k) % size
            comm.send(values[dst], dst, tag=seq, channel=CHANNEL_COLLECTIVE)
            out[src] = comm.recv(src, tag=seq, channel=CHANNEL_COLLECTIVE)
        return out


def reduce_scatter(comm, values: Sequence[Any], op: str | Callable = "sum") -> Any:
    """Elementwise reduce of per-rank lists, then scatter block ``rank``."""
    size = comm.size
    if len(values) != size:
        raise ValueError(f"reduce_scatter needs exactly {size} values")

    def _list_op(a: Sequence[Any], b: Sequence[Any]) -> list[Any]:
        return [combine(op, x, y) for x, y in zip(a, b)]

    if comm.runtime.decompose_collectives:
        combined = reduce(comm, list(values), _list_op, root=0)
        return scatter(comm, combined, root=0)
    nbytes = sum(measure(v)[0] for v in values)
    seq = comm._next_coll_seq()
    with _analytic(comm, "reduce_scatter", 0, nbytes, nbytes // max(size, 1),
                   seq, send_buf=values):
        combined = reduce(comm, list(values), _list_op, root=0)
        return scatter(comm, combined, root=0)
