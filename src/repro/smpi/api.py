"""The mpi4py-like communicator API of the simulated runtime.

Application skeletons (:mod:`repro.apps`) are written against this
class exactly as real codes are written against ``mpi4py.MPI.Comm``:
lower-case methods move Python objects, :meth:`Recv` fills a
preallocated NumPy buffer, non-blocking calls return
:class:`~repro.smpi.requests.Request` handles.

Two extensions support the tracing methodology:

* :meth:`compute` advances the rank's virtual clock by an instruction
  count and reports vectorized load/store batches on communication
  buffers — the information Valgrind extracts from real binaries;
* :meth:`event` emits user events (iteration markers) that end up in
  Paraver timelines.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from . import collectives as _coll
from .datatypes import measure
from .matching import ANY_SOURCE, ANY_TAG
from .requests import Request
from .runtime import AccessBatch, Runtime

__all__ = ["ANY_SOURCE", "ANY_TAG", "Comm"]


def _normalize_batches(batches: Iterable) -> list[AccessBatch]:
    out: list[AccessBatch] = []
    for b in batches:
        if isinstance(b, AccessBatch):
            out.append(b)
        else:
            buf, offsets, *rest = b
            out.append(AccessBatch(buf, offsets, rest[0] if rest else None))
    return out


class Comm:
    """Communicator bound to one simulated rank.

    Create via :class:`~repro.smpi.runtime.Runtime`; one instance is
    handed to each rank function.
    """

    def __init__(self, runtime: Runtime, rank: int):
        self.runtime = runtime
        self._rank = rank          # world rank (observer/board identity)
        self._local_rank = rank    # rank within this communicator
        self._group: list[int] | None = None  # None = COMM_WORLD identity
        self._context = 0
        self._coll_seq = 0
        self._split_seq = 0
        #: When False, observer callbacks are suppressed (used by the
        #: non-decomposed collective path to hide its internal traffic).
        self._observing = True

    # -- identity -------------------------------------------------------------
    @property
    def rank(self) -> int:
        """This process' rank within the communicator (``Get_rank()``)."""
        return self._local_rank

    @property
    def size(self) -> int:
        """Number of ranks in the communicator (``Get_size()``)."""
        return len(self._group) if self._group is not None else self.runtime.nranks

    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.size

    def _world(self, peer: int) -> int:
        """Translate a communicator-local peer rank to a world rank."""
        return self._group[peer] if self._group is not None else peer

    @property
    def _obs(self):
        return self.runtime.observers[self._rank]

    # -- virtual computation ----------------------------------------------------
    def compute(
        self,
        instructions: int,
        loads: Iterable = (),
        stores: Iterable = (),
    ) -> None:
        """Execute a virtual compute burst of ``instructions``.

        ``loads``/``stores`` are :class:`~repro.smpi.runtime.AccessBatch`
        instances (or ``(buf, offsets[, at])`` tuples) describing the
        accesses this burst performs on communication buffers.  ``at``
        positions each access within the burst as a fraction in
        ``[0, 1]``.  Accesses to non-communication data need not (and
        should not) be reported.
        """
        instructions = int(instructions)
        if instructions < 0:
            raise ValueError("instructions must be >= 0")
        start = self.runtime.advance_clock(self._rank, instructions)
        if self._observing:
            self._obs.on_compute(
                self._rank, start, instructions,
                _normalize_batches(loads), _normalize_batches(stores),
            )

    def event(self, name: str, value: int = 0) -> None:
        """Emit a user event (e.g. ``comm.event("iteration", i)``)."""
        if self._observing:
            self._obs.on_event(self._rank, name, int(value))

    # -- point-to-point ---------------------------------------------------------
    def _check_peer(self, peer: int, wildcard_ok: bool = False) -> None:
        if wildcard_ok and peer == ANY_SOURCE:
            return
        if not 0 <= peer < self.size:
            raise ValueError(f"peer rank {peer} out of range [0, {self.size})")

    def send(self, obj: Any, dest: int, tag: int = 0,
             channel: int = 0, sub: int = 0) -> None:
        """Blocking standard-mode send (eagerly buffered, returns at once)."""
        self._check_peer(dest)
        dest = self._world(dest)
        size, elements, _ = measure(obj)
        if self._observing:
            self._obs.on_send(self._rank, obj, dest, tag, size, elements,
                              channel, sub, None, self._context)
        self.runtime.board.post_send(
            self._rank, dest, tag, obj, channel=channel, sub=sub,
            size=size, elements=elements, context=self._context,
        )

    def isend(self, obj: Any, dest: int, tag: int = 0,
              channel: int = 0, sub: int = 0) -> Request:
        """Non-blocking send; complete with :meth:`wait`."""
        self._check_peer(dest)
        dest = self._world(dest)
        size, elements, _ = measure(obj)
        req_id = self.runtime.next_request_id(self._rank)
        if self._observing:
            self._obs.on_send(self._rank, obj, dest, tag, size, elements,
                              channel, sub, req_id, self._context)
        self.runtime.board.post_send(
            self._rank, dest, tag, obj, channel=channel, sub=sub,
            size=size, elements=elements, context=self._context,
        )
        return Request(self, self._rank, req_id, "isend")

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             channel: int = 0, sub: int = 0, buf: Any = None) -> Any:
        """Blocking receive; returns the object (or fills ``buf``)."""
        self._check_peer(source, wildcard_ok=True)
        source = source if source == ANY_SOURCE else self._world(source)
        board = self.runtime.board
        token = None
        if self._observing:
            token = self._obs.on_recv_post(
                self._rank, buf, source, tag,
                -1, -1, channel, sub, None, self._context,
            )
        pr = board.post_recv(self._rank, source, tag, channel=channel,
                             sub=sub, context=self._context)
        self.runtime.block(
            self._rank, lambda: board.is_complete(pr),
            f"recv(source={source}, tag={tag}, channel={channel}, "
            f"sub={sub}, context={self._context})",
        )
        env = board.take(pr)
        if buf is not None:
            np.copyto(np.asarray(buf).reshape(-1),
                      np.asarray(env.payload).reshape(-1))
            value = buf
        else:
            value = env.payload
        if self._observing:
            self._obs.on_recv_complete(
                self._rank, token, env.src, env.tag, env.size, env.elements,
            )
        return value

    def Recv(self, buf: np.ndarray, source: int = ANY_SOURCE,
             tag: int = ANY_TAG, channel: int = 0, sub: int = 0) -> np.ndarray:
        """Receive into a preallocated array (mpi4py upper-case style)."""
        return self.recv(source, tag, channel=channel, sub=sub, buf=buf)

    def Send(self, buf: np.ndarray, dest: int, tag: int = 0,
             channel: int = 0, sub: int = 0) -> None:
        """Send an array (alias of :meth:`send`, for mpi4py symmetry)."""
        self.send(buf, dest, tag, channel=channel, sub=sub)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              channel: int = 0, sub: int = 0, buf: Any = None) -> Request:
        """Non-blocking receive; :meth:`wait` returns the object."""
        self._check_peer(source, wildcard_ok=True)
        source = source if source == ANY_SOURCE else self._world(source)
        req_id = self.runtime.next_request_id(self._rank)
        token = None
        if self._observing:
            token = self._obs.on_recv_post(
                self._rank, buf, source, tag, -1, -1, channel, sub, req_id,
                self._context,
            )
        pr = self.runtime.board.post_recv(
            self._rank, source, tag, channel=channel, sub=sub,
            context=self._context,
        )
        return Request(self, self._rank, req_id, "irecv",
                       pr=pr, buf=buf, token=token)

    def Irecv(self, buf: np.ndarray, source: int = ANY_SOURCE,
              tag: int = ANY_TAG, channel: int = 0, sub: int = 0) -> Request:
        """Non-blocking receive into a preallocated array."""
        return self.irecv(source, tag, channel=channel, sub=sub, buf=buf)

    def Isend(self, buf: np.ndarray, dest: int, tag: int = 0,
              channel: int = 0, sub: int = 0) -> Request:
        """Non-blocking array send (alias of :meth:`isend`)."""
        return self.isend(buf, dest, tag, channel=channel, sub=sub)

    def wait(self, request: Request) -> Any:
        """Complete one request; returns the received object (irecv)."""
        return self.waitall([request])[0]

    def waitall(self, requests: Sequence[Request]) -> list[Any]:
        """Complete several requests in one waiting phase."""
        requests = list(requests)
        if not requests:
            return []
        if self._observing:
            self._obs.on_wait(self._rank, [r.req_id for r in requests])
        for r in requests:
            self.runtime.block(
                self._rank, r._functionally_complete,
                f"wait(request={r.req_id}, kind={r.kind})",
            )
            r._finish()
        return [r.value for r in requests]

    def waitany(self, requests: Sequence[Request]) -> tuple[int, Any]:
        """Block until any one request completes (``MPI_Waitany``).

        Returns ``(index, value)`` of the completed request; ties
        resolve to the lowest index (deterministic).  The completed
        request is finalized; the others stay pending.
        """
        requests = list(requests)
        if not requests:
            raise ValueError("waitany needs at least one request")
        self.runtime.block(
            self._rank,
            lambda: any(r._functionally_complete() for r in requests),
            f"waitany({[r.req_id for r in requests]})",
        )
        for i, r in enumerate(requests):
            if r._functionally_complete():
                # The trace records a wait for the *winner* only: the
                # other requests stay pending and will be waited later,
                # and replaying Wait(winner) blocks until the earliest
                # arrival — the same synchronization waitany performs.
                if self._observing:
                    self._obs.on_wait(self._rank, [r.req_id])
                r._finish()
                return i, r.value
        raise RuntimeError("waitany unblocked without a complete request")

    def testall(self, requests: Sequence[Request]) -> bool:
        """Non-blocking: finalize and report True iff all are complete.

        A successful testall is a completion point, so it records the
        same Wait the blocking form would (replay waits there for the
        arrivals the polling loop eventually saw).

        The runtime is cooperative: a pure busy-wait on testall never
        yields the scheduler and livelocks.  Interleave a blocking call
        in polling loops (as real codes interleave useful work).
        """
        requests = list(requests)
        if not all(r._functionally_complete() for r in requests):
            return False
        if requests and self._observing:
            self._obs.on_wait(self._rank, [r.req_id for r in requests])
        for r in requests:
            r._finish()
        return True

    def sendrecv(self, obj: Any, dest: int, sendtag: int = 0,
                 source: int = ANY_SOURCE, recvtag: int = ANY_TAG) -> Any:
        """Combined send+receive (deadlock-free, like ``MPI_Sendrecv``)."""
        self.send(obj, dest, sendtag)
        return self.recv(source, recvtag)

    def Sendrecv_replace(self, buf: np.ndarray, dest: int, sendtag: int = 0,
                         source: int = ANY_SOURCE,
                         recvtag: int = ANY_TAG) -> np.ndarray:
        """Exchange ``buf`` in place (``MPI_Sendrecv_replace``)."""
        self.send(buf, dest, sendtag)
        return self.recv(source, recvtag, buf=buf)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
               channel: int = 0, sub: int = 0) -> bool:
        """Non-blocking probe: has a matching message already been sent?

        Functional-level semantics (the simulated network delivers
        eagerly); no trace record is emitted — probing is free in the
        replay model.
        """
        src = source if source == ANY_SOURCE else self._world(source)
        return self.runtime.board.probe(
            self._rank, src, tag, channel=channel, sub=sub,
            context=self._context,
        ) is not None

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              channel: int = 0, sub: int = 0) -> tuple[int, int, int]:
        """Blocking probe: waits for a matching message and returns its
        ``(source, tag, size)`` without consuming it."""
        src = source if source == ANY_SOURCE else self._world(source)
        board = self.runtime.board

        def found():
            return board.probe(self._rank, src, tag, channel=channel,
                               sub=sub, context=self._context) is not None

        self.runtime.block(
            self._rank, found,
            f"probe(source={source}, tag={tag}, context={self._context})",
        )
        env = board.probe(self._rank, src, tag, channel=channel, sub=sub,
                          context=self._context)
        return (env.src, env.tag, env.size)

    # -- collectives ---------------------------------------------------------
    def _next_coll_seq(self) -> int:
        self._coll_seq += 1
        return self._coll_seq

    def barrier(self) -> None:
        """Synchronize all ranks."""
        _coll.barrier(self)

    def bcast(self, obj: Any = None, root: int = 0) -> Any:
        """Broadcast from ``root``; every rank returns the object."""
        return _coll.bcast(self, obj, root)

    def Bcast(self, buf: np.ndarray, root: int = 0) -> np.ndarray:
        """In-place broadcast of an array (mpi4py upper-case style).

        Receiving into a persistent buffer lets the tracer attribute
        subsequent loads to the broadcast (consumption profiles).
        """
        _coll.bcast(self, buf if self.rank == root else None, root, buf=buf)
        return buf

    def Allreduce(self, sendbuf: np.ndarray, recvbuf: np.ndarray,
                  op: str = "sum") -> np.ndarray:
        """Array allreduce into ``recvbuf`` (mpi4py upper-case style)."""
        _coll.allreduce(self, sendbuf, op, buf=recvbuf)
        return recvbuf

    def reduce(self, value: Any, op: str = "sum", root: int = 0) -> Any:
        """Reduce to ``root`` (returns None elsewhere)."""
        return _coll.reduce(self, value, op, root)

    def allreduce(self, value: Any, op: str = "sum") -> Any:
        """Reduce + broadcast; every rank returns the combined value."""
        return _coll.allreduce(self, value, op)

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        """Gather one value per rank into a list at ``root``."""
        return _coll.gather(self, value, root)

    def allgather(self, value: Any) -> list[Any]:
        """Gather at every rank."""
        return _coll.allgather(self, value)

    def scatter(self, values: Sequence[Any] | None = None, root: int = 0) -> Any:
        """Scatter one value per rank from ``root``."""
        return _coll.scatter(self, values, root)

    def alltoall(self, values: Sequence[Any]) -> list[Any]:
        """Personalized all-to-all exchange."""
        return _coll.alltoall(self, values)

    def reduce_scatter(self, values: Sequence[Any], op: str = "sum") -> Any:
        """Elementwise reduce of per-rank lists, scattering block ``rank``."""
        return _coll.reduce_scatter(self, values, op)

    def Gatherv(self, sendbuf: np.ndarray, recvbuf: np.ndarray | None,
                counts: Sequence[int] | None = None,
                root: int = 0) -> np.ndarray | None:
        """Variable-count gather of array blocks into ``recvbuf`` at root.

        ``counts`` (checked at root when given) are the per-rank element
        counts; blocks pack contiguously in rank order (displacements
        are the prefix sums).
        """
        parts = _coll.gather(self, sendbuf, root=root)
        if self.rank != root:
            return None
        if recvbuf is None:
            raise ValueError("root must pass a recvbuf")
        sizes = [int(np.asarray(p).size) for p in parts]
        if counts is not None and sizes != list(counts):
            raise ValueError(
                f"counts {list(counts)} disagree with gathered sizes {sizes}"
            )
        flat = np.concatenate([np.asarray(p).reshape(-1) for p in parts])
        np.copyto(np.asarray(recvbuf).reshape(-1)[: flat.size], flat)
        return recvbuf

    def Scatterv(self, sendbuf: np.ndarray | None,
                 counts: Sequence[int] | None, recvbuf: np.ndarray,
                 root: int = 0) -> np.ndarray:
        """Variable-count scatter of contiguous blocks from root."""
        if self.rank == root:
            if sendbuf is None or counts is None:
                raise ValueError("root must pass sendbuf and counts")
            if len(counts) != self.size:
                raise ValueError(f"need {self.size} counts, got {len(counts)}")
            flat = np.asarray(sendbuf).reshape(-1)
            offs = np.concatenate([[0], np.cumsum(counts)]).astype(int)
            blocks = [flat[offs[i]:offs[i + 1]].copy() for i in range(self.size)]
        else:
            blocks = None
        mine = np.asarray(_coll.scatter(self, blocks, root=root))
        np.copyto(np.asarray(recvbuf).reshape(-1)[: mine.size], mine)
        return recvbuf

    # -- communicator management ---------------------------------------------
    def dup(self) -> "Comm":
        """Duplicate the communicator (``MPI_Comm_dup``): same members,
        fresh isolated matching context."""
        dup = self.split(color=0, key=self.rank)
        assert dup is not None
        return dup

    def split(self, color, key: int = 0) -> "Comm | None":
        """Partition the communicator (``MPI_Comm_split``).

        Collective over this communicator: every member must call it.
        Ranks passing the same ``color`` end up in the same new
        communicator, ordered by ``(key, old rank)``; ``color=None``
        (MPI_UNDEFINED) participates but receives no communicator.

        Sub-communicators have their own matching context, so traffic
        on them never collides with the parent's — including in traces,
        where records carry the context id.
        """
        triples = self.allgather((color, key, self.rank))
        self._split_seq += 1
        if color is None:
            return None
        ordered = sorted(
            (k, r) for c, k, r in triples if c == color
        )
        group_world = [self._world(r) for _, r in ordered]
        ctx = self.runtime.context_id(
            (self._context, self._split_seq, repr(color))
        )
        sub = Comm(self.runtime, self._rank)
        sub._group = group_world
        sub._local_rank = group_world.index(self._rank)
        sub._context = ctx
        return sub
