"""Payload size accounting for the simulated runtime.

MPI messages have a wire size; the tracer turns it into the ``size``
field of trace records and the replay simulator charges
``latency + size/bandwidth`` for it.  NumPy arrays use their exact
buffer size (the mpi4py "upper-case" fast path); generic Python
objects are measured by their pickled length (the "lower-case" path).
"""

from __future__ import annotations

import pickle
from typing import Any

import numpy as np

__all__ = ["measure"]


def measure(payload: Any) -> tuple[int, int, int]:
    """Return ``(size_bytes, elements, elem_size)`` of a payload.

    * ndarray: ``(nbytes, size, itemsize)``;
    * bytes-like: ``(len, len, 1)``;
    * None: ``(0, 0, 1)`` (pure synchronization);
    * anything else: pickled length, counted as one element.
    """
    if payload is None:
        return (0, 0, 1)
    if isinstance(payload, np.ndarray):
        return (int(payload.nbytes), int(payload.size), int(payload.itemsize))
    if isinstance(payload, (bytes, bytearray, memoryview)):
        n = len(payload)
        return (n, n, 1)
    if isinstance(payload, (bool, int, float, complex)):
        return (8, 1, 8)
    n = len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    return (n, 1, n)
