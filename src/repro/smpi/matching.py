"""MPI message matching for the simulated runtime.

Implements the MPI point-to-point matching rules:

* messages between a given (source, destination) pair on the same
  (channel, tag) match in posting order (non-overtaking);
* ``ANY_SOURCE`` / ``ANY_TAG`` receives match the pending message with
  the lowest global arrival sequence number, which makes wildcard
  matching deterministic under the baton scheduler.

Payloads are copied on send (value semantics, like a real eager
protocol buffer), so a sender may immediately reuse its buffer.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = ["ANY_SOURCE", "ANY_TAG", "Envelope", "MessageBoard"]

#: Wildcard source rank for receives.
ANY_SOURCE = -1
#: Wildcard tag for receives.
ANY_TAG = -1


def _freeze(payload: Any) -> Any:
    """Copy a payload with value semantics (ndarray fast path)."""
    if isinstance(payload, np.ndarray):
        return payload.copy()
    if isinstance(payload, (int, float, complex, str, bytes, bool, type(None))):
        return payload
    return copy.deepcopy(payload)


@dataclass
class Envelope:
    """A message in flight: matching key, payload, and arrival order."""

    src: int
    dst: int
    tag: int
    channel: int
    sub: int
    payload: Any
    seq: int
    size: int
    elements: int
    context: int = 0


@dataclass
class _PendingRecv:
    dst: int
    src: int        # may be ANY_SOURCE
    tag: int        # may be ANY_TAG
    channel: int
    sub: int
    seq: int
    context: int = 0
    matched: Envelope | None = None


class MessageBoard:
    """Global store of in-flight messages and posted receives."""

    def __init__(self) -> None:
        self._pending_sends: list[Envelope] = []
        self._pending_recvs: list[_PendingRecv] = []
        self._seq = 0

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # -- send side ---------------------------------------------------------
    def post_send(
        self, src: int, dst: int, tag: int, payload: Any,
        channel: int = 0, sub: int = 0, size: int = 0, elements: int = 1,
        context: int = 0,
    ) -> Envelope:
        """Buffer an outgoing message and try to satisfy a posted receive."""
        env = Envelope(
            src=src, dst=dst, tag=tag, channel=channel, sub=sub,
            payload=_freeze(payload), seq=self._next_seq(),
            size=size, elements=elements, context=context,
        )
        # Non-overtaking: a posted receive can only take this message if
        # no earlier unmatched message also matches it; since receives
        # scan pending sends in seq order on their side, it suffices to
        # hand the message to the earliest-posted compatible receive.
        for pr in self._pending_recvs:
            if pr.matched is None and self._compatible(pr, env):
                # But only if no earlier pending send also matches pr —
                # those would have been taken already when pr was posted.
                pr.matched = env
                return env
        self._pending_sends.append(env)
        return env

    # -- receive side --------------------------------------------------------
    def post_recv(
        self, dst: int, src: int, tag: int, channel: int = 0, sub: int = 0,
        context: int = 0,
    ) -> _PendingRecv:
        """Post a receive; matches the oldest compatible pending send."""
        pr = _PendingRecv(
            dst=dst, src=src, tag=tag, channel=channel, sub=sub,
            seq=self._next_seq(), context=context,
        )
        for i, env in enumerate(self._pending_sends):
            if self._compatible(pr, env):
                pr.matched = env
                del self._pending_sends[i]
                break
        else:
            self._pending_recvs.append(pr)
        return pr

    def is_complete(self, pr: _PendingRecv) -> bool:
        """True once the posted receive has been matched to a message."""
        return pr.matched is not None

    def take(self, pr: _PendingRecv) -> Envelope:
        """Consume a completed receive, removing it from the board."""
        if pr.matched is None:
            raise RuntimeError("take() on an unmatched receive")
        try:
            self._pending_recvs.remove(pr)
        except ValueError:
            pass  # matched eagerly at post time, never listed
        return pr.matched

    # -- introspection -------------------------------------------------------
    @staticmethod
    def _compatible(pr: _PendingRecv, env: Envelope) -> bool:
        return (
            pr.dst == env.dst
            and pr.context == env.context
            and pr.channel == env.channel
            and pr.sub == env.sub
            and (pr.src == ANY_SOURCE or pr.src == env.src)
            and (pr.tag == ANY_TAG or pr.tag == env.tag)
        )

    def probe(self, dst: int, src: int, tag: int, channel: int = 0,
              sub: int = 0, context: int = 0) -> Envelope | None:
        """Peek at the oldest pending message a receive would match.

        Non-destructive: the message stays buffered.  Returns None when
        nothing compatible has been sent yet.
        """
        peek = _PendingRecv(
            dst=dst, src=src, tag=tag, channel=channel, sub=sub,
            seq=0, context=context,
        )
        for env in self._pending_sends:
            if self._compatible(peek, env):
                return env
        return None

    def pending_send_count(self) -> int:
        """Number of buffered messages not yet matched."""
        return len(self._pending_sends)

    def pending_recv_count(self) -> int:
        """Number of posted receives not yet matched."""
        return sum(1 for pr in self._pending_recvs if pr.matched is None)
