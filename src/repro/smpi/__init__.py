"""Simulated MPI runtime: deterministic, observable, mpi4py-flavoured.

This package replaces the role of "a real MPI application running under
Valgrind" in the original framework: simulated applications written
against :class:`~repro.smpi.api.Comm` execute for real (data actually
moves between ranks) while an :class:`~repro.smpi.runtime.Observer`
watches every MPI call, compute burst, and buffer access.
"""

from .api import ANY_SOURCE, ANY_TAG, Comm
from .matching import MessageBoard
from .requests import Request
from .runtime import (
    AccessBatch,
    DeadlockError,
    Observer,
    RankFailedError,
    Runtime,
)

__all__ = [
    "ANY_SOURCE", "ANY_TAG", "AccessBatch", "Comm", "DeadlockError",
    "MessageBoard", "Observer", "RankFailedError", "Request", "Runtime",
]
