"""Paraver ``.prv`` export of simulated timelines.

Paraver is the visualizer of the original framework: Dimemas writes a
``.prv`` trace of the reconstructed execution and Paraver draws it
(paper Figure 4).  This module writes the simulated timeline produced
by :mod:`repro.dimemas` in the classic Paraver three-record text
format so the output remains inspectable by the real tool family,
while :mod:`repro.paraver` renders the same data natively.

Record shapes (Paraver trace format v2.1, one application, one thread
per task, times in integer microseconds):

* state:  ``1:cpu:appl:task:thread:begin:end:state``
* event:  ``2:cpu:appl:task:thread:time:type:value``
* comm:   ``3:cpu_s:appl:task_s:thread:lsend:psend:cpu_r:appl:task_r:thread:lrecv:precv:size:tag``

The accompanying ``.pcf`` (config) text maps state numbers to names.
"""

from __future__ import annotations

from pathlib import Path
from typing import TextIO

__all__ = ["STATE_CODES", "write_prv", "write_pcf"]

#: Paraver state numbering (subset of the standard MPI state palette).
STATE_CODES: dict[str, int] = {
    "Idle": 0,
    "Running": 1,
    "Not created": 2,
    "Waiting a message": 3,
    "Blocked": 9,
    "Send": 4,
    "Receive": 5,
    "Group communication": 10,
    "Wait/WaitAll": 8,
}

#: Event type used for user events (iteration markers etc.).
USER_EVENT_TYPE = 40000000


def _us(t: float) -> int:
    """Seconds -> integer microseconds (Paraver time unit)."""
    return int(round(t * 1e6))


def write_prv(result, fp: TextIO | str | Path, app_name: str = "repro") -> None:
    """Write a simulated timeline as a Paraver ``.prv`` trace.

    ``result`` is duck-typed and must expose:

    * ``nranks`` — number of tasks;
    * ``duration`` — simulated end time (seconds);
    * ``states`` — per-rank list of ``(state_name, t0, t1)`` intervals;
    * ``messages`` — iterable of message tuples with attributes/fields
      ``(src, dst, t_send, t_recv, size, tag)``;
    * ``events`` — per-rank list of ``(t, name, value)``.

    State names are mapped through :data:`STATE_CODES`; unknown names
    map to ``Blocked``.  Event names are hashed into values of a single
    user event type and listed in the ``.pcf`` written by
    :func:`write_pcf`.
    """
    if isinstance(fp, (str, Path)):
        with open(fp, "w", encoding="ascii") as f:
            write_prv(result, f, app_name=app_name)
        return

    nranks = result.nranks
    ftime = _us(result.duration)
    # Header: date stamp is fixed for reproducibility of golden files.
    node_list = f"{nranks}({','.join('1' for _ in range(nranks))})"
    appl = f"1:{nranks}({','.join(f'1:{i + 1}' for i in range(nranks))})"
    fp.write(f"#Paraver (01/01/10 at 00:00):{ftime}_us:{node_list}:1:{appl}\n")

    lines: list[tuple[int, str]] = []
    for rank, intervals in enumerate(result.states):
        cpu = task = rank + 1
        for name, t0, t1 in intervals:
            code = STATE_CODES.get(name, STATE_CODES["Blocked"])
            lines.append((_us(t0), f"1:{cpu}:1:{task}:1:{_us(t0)}:{_us(t1)}:{code}"))
    for rank, events in enumerate(getattr(result, "events", [[] for _ in range(nranks)])):
        cpu = task = rank + 1
        for t, name, value in events:
            etype = USER_EVENT_TYPE + (abs(hash(name)) % 1000)
            lines.append((_us(t), f"2:{cpu}:1:{task}:1:{_us(t)}:{etype}:{value}"))
    for msg in result.messages:
        src, dst, t_send, t_recv, size, tag = (
            msg.src, msg.dst, msg.t_send, msg.t_recv, msg.size, msg.tag,
        )
        lines.append((
            _us(t_send),
            f"3:{src + 1}:1:{src + 1}:1:{_us(t_send)}:{_us(t_send)}"
            f":{dst + 1}:1:{dst + 1}:1:{_us(t_recv)}:{_us(t_recv)}:{size}:{tag}",
        ))

    for _, line in sorted(lines, key=lambda x: x[0]):
        fp.write(line + "\n")


def write_pcf(fp: TextIO | str | Path) -> None:
    """Write the Paraver config (``.pcf``) naming the states we emit."""
    if isinstance(fp, (str, Path)):
        with open(fp, "w", encoding="ascii") as f:
            write_pcf(f)
        return
    fp.write("DEFAULT_OPTIONS\n\nLEVEL               THREAD\nUNITS               MICROSEC\n\n")
    fp.write("STATES\n")
    for name, code in sorted(STATE_CODES.items(), key=lambda kv: kv[1]):
        fp.write(f"{code}    {name}\n")
    fp.write(f"\nEVENT_TYPE\n0    {USER_EVENT_TYPE}    User event\n")
