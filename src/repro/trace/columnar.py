"""Packed columnar trace representation with a versioned binary codec.

The record objects of :mod:`repro.trace.records` are the *authoring*
format of the framework: convenient to build and transform, but slow to
walk (attribute lookups per record) and very expensive to serialize —
the ``dim`` text form of a 16-rank CG trace is tens of megabytes once
access profiles are base64-encoded, which made content digests and
worker dispatch the dominant cost of cold experiment grids.

This module provides the *execution* format: per-rank record streams
laid out as parallel :mod:`array`-module columns (opcode, peer, size,
tag, duration, request id, ...) plus small side tables for the rare
variable-length payloads (wait request lists, events, collectives,
access profiles).  The layout is

* **cheap to digest** — the replay-semantic core is a few hundred
  kilobytes of packed integers, hashed in microseconds;
* **cheap to ship** — one compact byte string crosses the process
  boundary instead of thousands of pickled dataclass instances;
* **cheap to replay** — the simulator iterates int opcodes and flat
  columns instead of walking Python objects.

Round-tripping is lossless for every simulation-relevant field of every
record type.  Like the ``dim`` text format, record-level ``meta``
dictionaries and raw :attr:`AccessProfile.stream` payloads are *not*
serialized (they never influence simulated results); trace-level
``meta`` round-trips through JSON exactly as it does in ``dim``.

Binary layout (version 1, all little-endian)::

    "RCOL"  magic
    u32     schema version (= 1)
    u64     core length
    core    header JSON (event names, collective op names) + nranks +
            per-rank column blocks
    32B     SHA-256 of (magic + version + core)
    u32     meta length,  meta JSON,  u32 CRC-32
    u8      flags (bit 0: profile section follows)
    [u64    profile payload length,  payload,  u32 CRC-32]

The **content digest** of a trace (:attr:`ColumnarTrace.digest`) covers
only the replay-semantic core — two encodings of the same trace with
and without access profiles share a digest, so plan caches and result
caches keyed by it never miss on presentation-only differences.
"""

from __future__ import annotations

import hashlib
import json
import struct
import sys
import weakref
import zlib
from array import array

import numpy as np

from ..audit.limits import ingest_limits
from .records import (
    AccessProfile,
    CollOp,
    CpuBurst,
    Event,
    GlobalOp,
    IRecv,
    ISend,
    ProcessTrace,
    Recv,
    Send,
    TraceSet,
    Wait,
)

__all__ = [
    "OP_CPU",
    "OP_EVENT",
    "OP_SEND",
    "OP_ISEND",
    "OP_RECV",
    "OP_IRECV",
    "OP_WAIT",
    "OP_COLL",
    "OP_NAMES",
    "ColumnarFormatError",
    "ColumnarTrace",
    "RankColumns",
    "columnar_of",
    "decode",
    "from_traceset",
]

#: Replay opcodes, shared with :mod:`repro.dimemas.replay`.
OP_CPU = 0
OP_EVENT = 1
OP_SEND = 2
OP_ISEND = 3
OP_RECV = 4
OP_IRECV = 5
OP_WAIT = 6
OP_COLL = 7

#: Record class name per opcode (diagnostics and post-mortems).
OP_NAMES = (
    "CpuBurst", "Event", "Send", "ISend", "Recv", "IRecv", "Wait", "GlobalOp",
)

MAGIC = b"RCOL"
VERSION = 1

_VERSION_SALT = MAGIC + struct.pack("<I", VERSION)

#: Opcodes that carry point-to-point columns (peer/tag/size/...).
_PTP_OPS = frozenset((OP_SEND, OP_ISEND, OP_RECV, OP_IRECV))

#: The ten i64 columns, in serialization order.
_Q_COLUMNS = (
    "instr", "peer", "tag", "size", "channel", "sub", "elements",
    "context", "req", "aux",
)


class ColumnarFormatError(ValueError):
    """A byte string is not a valid columnar trace (truncated, corrupt,
    or produced by an incompatible schema version)."""


if sys.byteorder == "little":
    def _le_bytes(a: array) -> bytes:
        return a.tobytes()

    def _arr_from(typecode: str, data: bytes) -> array:
        a = array(typecode)
        a.frombytes(data)
        return a
else:  # pragma: no cover - big-endian hosts
    def _le_bytes(a: array) -> bytes:
        b = array(a.typecode, a)
        if b.itemsize > 1:
            b.byteswap()
        return b.tobytes()

    def _arr_from(typecode: str, data: bytes) -> array:
        a = array(typecode)
        a.frombytes(data)
        if a.itemsize > 1:
            a.byteswap()
        return a


class _Cursor:
    """Bounds-checked reader over a byte string."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    @property
    def remaining(self) -> int:
        return len(self.data) - self.pos

    def take(self, n: int) -> bytes:
        if n < 0 or self.pos + n > len(self.data):
            raise ColumnarFormatError(
                f"truncated payload: wanted {n} bytes at offset {self.pos}, "
                f"have {self.remaining}"
            )
        out = self.data[self.pos:self.pos + n]
        self.pos += n
        return out

    def u8(self) -> int:
        return self.take(1)[0]

    def u32(self) -> int:
        return struct.unpack("<I", self.take(4))[0]

    def u64(self) -> int:
        return struct.unpack("<Q", self.take(8))[0]

    def f64(self) -> float:
        return struct.unpack("<d", self.take(8))[0]


class RankColumns:
    """The packed record stream of one rank.

    Parallel columns, one entry per record: ``op`` (u8 opcode), ``rv``
    (i8: -1 platform-decided, 0 eager, 1 rendezvous), ``dur`` (f8 CPU
    burst seconds) and ten i64 columns (``instr`` with -1 = unknown,
    ``peer``, ``tag``, ``size``, ``channel``, ``sub``, ``elements``,
    ``context``, ``req``, ``aux``).  ``aux`` indexes into the side
    tables for the rare variable-length records: ``waits`` (request-id
    tuples), ``events`` (``(name_index, value)``), ``colls``
    (7-tuples ``(op_index, root, send_size, recv_size, seq, context,
    members)``) and ``profiles`` (``(record_index, kind, interval
    bounds, float64 times)`` with kind 0 = production, 1 = consumption).
    """

    __slots__ = (
        "n", "op", "rv", "dur", "instr", "peer", "tag", "size", "channel",
        "sub", "elements", "context", "req", "aux",
        "waits", "events", "colls", "profiles",
    )

    def __init__(self) -> None:
        self.n = 0
        self.op = array("B")
        self.rv = array("b")
        self.dur = array("d")
        for name in _Q_COLUMNS:
            setattr(self, name, array("q"))
        self.waits: list[tuple[int, ...]] = []
        self.events: list[tuple[int, int]] = []
        self.colls: list[tuple[int, int, int, int, int, int, int]] = []
        self.profiles: list[tuple[int, int, float, float, np.ndarray]] = []


class ColumnarTrace:
    """A complete trace in packed columnar form.

    Carries the per-rank :class:`RankColumns`, the interned event /
    collective-op name tables, and the trace-level ``meta`` dict.  The
    :attr:`digest` is the content address used by plan caches, result
    caches and the worker dispatch store.
    """

    __slots__ = ("ranks", "names", "collops", "meta", "_core", "_digest")

    def __init__(
        self,
        ranks: list[RankColumns],
        names: list[str],
        collops: list[str],
        meta: dict | None = None,
    ):
        self.ranks = ranks
        self.names = names
        self.collops = collops
        self.meta: dict = dict(meta or {})
        self._core: bytes | None = None
        self._digest: str | None = None

    @property
    def nranks(self) -> int:
        return len(self.ranks)

    def total_records(self) -> int:
        return sum(rc.n for rc in self.ranks)

    # ------------------------------------------------------------------ #
    # Content digest.
    # ------------------------------------------------------------------ #
    @property
    def digest(self) -> str:
        """24-hex content address of the replay-semantic core.

        Excludes trace meta and access profiles: everything the replay
        simulator reads is covered, nothing else is.
        """
        if self._digest is None:
            core = self._build_core()
            self._digest = hashlib.sha256(
                _VERSION_SALT + core
            ).hexdigest()[:24]
        return self._digest

    def _build_core(self) -> bytes:
        if self._core is not None:
            return self._core
        hdr = json.dumps(
            {"collops": self.collops, "names": self.names},
            sort_keys=True, separators=(",", ":"),
        ).encode("utf-8")
        parts = [
            struct.pack("<I", len(hdr)), hdr,
            struct.pack("<I", len(self.ranks)),
        ]
        for rc in self.ranks:
            parts.append(struct.pack("<I", rc.n))
            parts.append(_le_bytes(rc.op))
            parts.append(_le_bytes(rc.rv))
            parts.append(_le_bytes(rc.dur))
            for name in _Q_COLUMNS:
                parts.append(_le_bytes(getattr(rc, name)))
            counts = array("q", (len(w) for w in rc.waits))
            flat = array("q")
            for w in rc.waits:
                flat.extend(w)
            parts.append(struct.pack("<II", len(rc.waits), len(flat)))
            parts.append(_le_bytes(counts))
            parts.append(_le_bytes(flat))
            ev = array("q")
            for ni, val in rc.events:
                ev.append(ni)
                ev.append(val)
            parts.append(struct.pack("<I", len(rc.events)))
            parts.append(_le_bytes(ev))
            cl = array("q")
            for t in rc.colls:
                cl.extend(t)
            parts.append(struct.pack("<I", len(rc.colls)))
            parts.append(_le_bytes(cl))
        self._core = b"".join(parts)
        return self._core

    # ------------------------------------------------------------------ #
    # Codec.
    # ------------------------------------------------------------------ #
    def encode(self) -> bytes:
        """Serialize to the versioned, checksummed binary form."""
        core = self._build_core()
        sha = hashlib.sha256(_VERSION_SALT + core).digest()
        meta_json = json.dumps(
            self.meta, sort_keys=True, default=str
        ).encode("utf-8")
        parts = [
            MAGIC, struct.pack("<I", VERSION),
            struct.pack("<Q", len(core)), core, sha,
            struct.pack("<I", len(meta_json)), meta_json,
            struct.pack("<I", zlib.crc32(meta_json)),
        ]
        has_profiles = any(rc.profiles for rc in self.ranks)
        parts.append(struct.pack("<B", 1 if has_profiles else 0))
        if has_profiles:
            prof_parts = []
            count = 0
            for rank, rc in enumerate(self.ranks):
                for idx, kind, istart, iend, times in rc.profiles:
                    t = np.ascontiguousarray(times, dtype="<f8")
                    prof_parts.append(struct.pack(
                        "<IIBddQ", rank, idx, kind, istart, iend, t.shape[0],
                    ))
                    prof_parts.append(t.tobytes())
                    count += 1
            payload = struct.pack("<I", count) + b"".join(prof_parts)
            parts.append(struct.pack("<Q", len(payload)))
            parts.append(payload)
            parts.append(struct.pack("<I", zlib.crc32(payload)))
        return b"".join(parts)

    # ------------------------------------------------------------------ #
    # Back to record objects.
    # ------------------------------------------------------------------ #
    def to_traceset(self) -> TraceSet:
        """Rebuild the record-object form (lossless, see module doc)."""
        names = self.names
        collops = self.collops
        procs = []
        for rank, rc in enumerate(self.ranks):
            prof: dict[int, AccessProfile] = {}
            for idx, kind, istart, iend, times in rc.profiles:
                prof[idx] = AccessProfile(
                    kind="production" if kind == 0 else "consumption",
                    times=times, interval_start=istart, interval_end=iend,
                )
            records = []
            push = records.append
            for i in range(rc.n):
                o = rc.op[i]
                if o == OP_CPU:
                    instr = rc.instr[i]
                    push(CpuBurst(
                        rc.dur[i],
                        instructions=None if instr < 0 else instr,
                    ))
                elif o in _PTP_OPS:
                    args = (
                        rc.peer[i], rc.tag[i], rc.size[i], rc.channel[i],
                        rc.sub[i], rc.elements[i], rc.context[i],
                    )
                    rv = rc.rv[i]
                    rendezvous = None if rv < 0 else bool(rv)
                    if o == OP_SEND:
                        push(Send(*args, rendezvous=rendezvous,
                                  production=prof.get(i)))
                    elif o == OP_ISEND:
                        push(ISend(*args, request=rc.req[i],
                                   rendezvous=rendezvous,
                                   production=prof.get(i)))
                    elif o == OP_RECV:
                        push(Recv(*args, consumption=prof.get(i)))
                    else:
                        push(IRecv(*args, request=rc.req[i],
                                   consumption=prof.get(i)))
                elif o == OP_WAIT:
                    push(Wait(rc.waits[rc.aux[i]]))
                elif o == OP_COLL:
                    t = rc.colls[rc.aux[i]]
                    push(GlobalOp(
                        op=CollOp(collops[t[0]]), root=t[1], send_size=t[2],
                        recv_size=t[3], seq=t[4], context=t[5], members=t[6],
                    ))
                elif o == OP_EVENT:
                    ni, val = rc.events[rc.aux[i]]
                    push(Event(names[ni], value=val))
                else:
                    raise ColumnarFormatError(f"unknown opcode {o}")
            procs.append(ProcessTrace(rank, records))
        return TraceSet(procs, meta=dict(self.meta))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"ColumnarTrace(nranks={self.nranks}, "
                f"records={self.total_records()})")


# --------------------------------------------------------------------------- #
# Building columns from record objects.
# --------------------------------------------------------------------------- #
def from_traceset(trace: TraceSet, with_profiles: bool = True) -> ColumnarTrace:
    """Pack a record-object trace into columns.

    ``with_profiles=False`` skips the access-profile side tables — the
    replay simulator never reads them, and the content digest is
    identical either way.

    Raises :class:`TypeError` for record types the codec does not know.
    """
    names: list[str] = []
    name_idx: dict[str, int] = {}
    collops: list[str] = []
    collop_idx: dict[str, int] = {}
    ranks = []
    for proc in trace.processes:
        rc = RankColumns()
        op_a, rv_a, dur_a = rc.op, rc.rv, rc.dur
        cols = [getattr(rc, name) for name in _Q_COLUMNS]
        (instr_a, peer_a, tag_a, size_a, channel_a, sub_a, elements_a,
         context_a, req_a, aux_a) = cols

        def push(op, rv=-1, dur=0.0, instr=-1, peer=-1, tag=0, size=0,
                 channel=0, sub=0, elements=0, context=0, req=-1, aux=-1):
            op_a.append(op)
            rv_a.append(rv)
            dur_a.append(dur)
            instr_a.append(instr)
            peer_a.append(peer)
            tag_a.append(tag)
            size_a.append(size)
            channel_a.append(channel)
            sub_a.append(sub)
            elements_a.append(elements)
            context_a.append(context)
            req_a.append(req)
            aux_a.append(aux)

        for i, rec in enumerate(proc.records):
            t = type(rec)
            if t is CpuBurst:
                push(OP_CPU, dur=rec.duration,
                     instr=-1 if rec.instructions is None else rec.instructions)
            elif t is Send or t is ISend:
                rv = -1 if rec.rendezvous is None else int(rec.rendezvous)
                push(OP_ISEND if t is ISend else OP_SEND, rv=rv,
                     peer=rec.peer, tag=rec.tag, size=rec.size,
                     channel=rec.channel, sub=rec.sub, elements=rec.elements,
                     context=rec.context,
                     req=rec.request if t is ISend else -1)
                if with_profiles and rec.production is not None:
                    p = rec.production
                    rc.profiles.append((
                        i, 0 if p.kind == "production" else 1,
                        p.interval_start, p.interval_end, p.times,
                    ))
            elif t is Recv or t is IRecv:
                push(OP_IRECV if t is IRecv else OP_RECV,
                     peer=rec.peer, tag=rec.tag, size=rec.size,
                     channel=rec.channel, sub=rec.sub, elements=rec.elements,
                     context=rec.context,
                     req=rec.request if t is IRecv else -1)
                if with_profiles and rec.consumption is not None:
                    p = rec.consumption
                    rc.profiles.append((
                        i, 0 if p.kind == "production" else 1,
                        p.interval_start, p.interval_end, p.times,
                    ))
            elif t is Wait:
                push(OP_WAIT, aux=len(rc.waits))
                rc.waits.append(rec.requests)
            elif t is GlobalOp:
                key = rec.op.value
                oi = collop_idx.get(key)
                if oi is None:
                    oi = collop_idx[key] = len(collops)
                    collops.append(key)
                push(OP_COLL, aux=len(rc.colls))
                rc.colls.append((
                    oi, rec.root, rec.send_size, rec.recv_size, rec.seq,
                    rec.context, rec.members,
                ))
            elif t is Event:
                ni = name_idx.get(rec.name)
                if ni is None:
                    ni = name_idx[rec.name] = len(names)
                    names.append(rec.name)
                push(OP_EVENT, aux=len(rc.events))
                rc.events.append((ni, rec.value))
            else:
                raise TypeError(
                    f"columnar codec cannot encode record type {t.__name__}"
                )
        rc.n = len(rc.op)
        ranks.append(rc)
    return ColumnarTrace(ranks, names, collops, meta=dict(trace.meta))


# --------------------------------------------------------------------------- #
# Decoding.
# --------------------------------------------------------------------------- #
def decode(data: bytes) -> ColumnarTrace:
    """Parse and verify a byte string produced by :meth:`encode`.

    Raises :class:`ColumnarFormatError` on bad magic, an unsupported
    schema version, truncation, checksum mismatch or trailing garbage —
    a damaged entry is never partially decoded.
    """
    if len(data) > ingest_limits().max_trace_bytes:
        raise ColumnarFormatError(
            f"columnar payload is {len(data)} bytes, over the "
            f"{ingest_limits().max_trace_bytes:.0f}-byte ingest cap "
            "(REPRO_MAX_TRACE_MB)"
        )
    cur = _Cursor(data)
    if cur.take(4) != MAGIC:
        raise ColumnarFormatError("not a columnar trace (bad magic)")
    version = cur.u32()
    if version != VERSION:
        raise ColumnarFormatError(
            f"unsupported columnar schema version {version} "
            f"(this codec reads version {VERSION})"
        )
    core = cur.take(cur.u64())
    sha = cur.take(32)
    if hashlib.sha256(_VERSION_SALT + core).digest() != sha:
        raise ColumnarFormatError("core checksum mismatch")

    meta_json = cur.take(cur.u32())
    if zlib.crc32(meta_json) != cur.u32():
        raise ColumnarFormatError("meta checksum mismatch")
    try:
        meta = json.loads(meta_json.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ColumnarFormatError(f"undecodable meta: {exc}") from None

    flags = cur.u8()
    if flags & ~1:
        raise ColumnarFormatError(f"unknown flags 0x{flags:02x}")
    profile_payload = None
    if flags & 1:
        profile_payload = cur.take(cur.u64())
        if zlib.crc32(profile_payload) != cur.u32():
            raise ColumnarFormatError("profile checksum mismatch")
    if cur.remaining:
        raise ColumnarFormatError(
            f"{cur.remaining} trailing byte(s) after payload"
        )

    col = _decode_core(core)
    col._digest = hashlib.sha256(_VERSION_SALT + core).hexdigest()[:24]
    col.meta = meta if isinstance(meta, dict) else {}
    if profile_payload is not None:
        _decode_profiles(col, profile_payload)
    return col


def _decode_core(core: bytes) -> ColumnarTrace:
    cur = _Cursor(core)
    try:
        hdr = json.loads(cur.take(cur.u32()).decode("utf-8"))
        names = list(hdr["names"])
        collops = list(hdr["collops"])
    except (UnicodeDecodeError, ValueError, KeyError, TypeError) as exc:
        raise ColumnarFormatError(f"undecodable core header: {exc}") from None
    limits = ingest_limits()
    nranks = cur.u32()
    if nranks > limits.max_ranks:
        raise ColumnarFormatError(
            f"{nranks} ranks, over the {limits.max_ranks:.0f}-rank "
            "ingest cap (REPRO_MAX_RANKS)"
        )
    total_records = 0
    ranks = []
    for _ in range(nranks):
        rc = RankColumns()
        n = rc.n = cur.u32()
        total_records += n
        if total_records > limits.max_records:
            raise ColumnarFormatError(
                f"more than {limits.max_records:.0f} records "
                "(REPRO_MAX_RECORDS)"
            )
        rc.op = _arr_from("B", cur.take(n))
        rc.rv = _arr_from("b", cur.take(n))
        rc.dur = _arr_from("d", cur.take(8 * n))
        for name in _Q_COLUMNS:
            setattr(rc, name, _arr_from("q", cur.take(8 * n)))
        n_waits = cur.u32()
        flat_len = cur.u32()
        counts = _arr_from("q", cur.take(8 * n_waits))
        flat = _arr_from("q", cur.take(8 * flat_len))
        pos = 0
        for c in counts:
            if c < 0 or pos + c > flat_len:
                raise ColumnarFormatError("inconsistent wait table")
            rc.waits.append(tuple(flat[pos:pos + c]))
            pos += c
        n_events = cur.u32()
        ev = _arr_from("q", cur.take(16 * n_events))
        rc.events = [(ev[2 * i], ev[2 * i + 1]) for i in range(n_events)]
        n_colls = cur.u32()
        cl = _arr_from("q", cur.take(56 * n_colls))
        rc.colls = [tuple(cl[7 * i:7 * i + 7]) for i in range(n_colls)]
        ranks.append(rc)
    if cur.remaining:
        raise ColumnarFormatError("trailing bytes inside core section")
    col = ColumnarTrace(ranks, names, collops)
    col._core = core
    return col


def _decode_profiles(col: ColumnarTrace, payload: bytes) -> None:
    cur = _Cursor(payload)
    count = cur.u32()
    for _ in range(count):
        head = cur.take(struct.calcsize("<IIBddQ"))
        rank, idx, kind, istart, iend, nelem = struct.unpack("<IIBddQ", head)
        times = np.frombuffer(cur.take(8 * nelem), dtype="<f8").copy()
        if rank >= col.nranks or idx >= col.ranks[rank].n:
            raise ColumnarFormatError(
                f"profile references record {idx} of rank {rank} "
                "which does not exist"
            )
        col.ranks[rank].profiles.append((idx, kind, istart, iend, times))
    if cur.remaining:
        raise ColumnarFormatError("trailing bytes inside profile section")


# --------------------------------------------------------------------------- #
# Weak memoization for the object -> columns conversion.
# --------------------------------------------------------------------------- #
_memo: "weakref.WeakKeyDictionary[TraceSet, tuple]" = weakref.WeakKeyDictionary()


def columnar_of(trace: "TraceSet | ColumnarTrace") -> ColumnarTrace:
    """The columnar form of a trace, weak-memoized per TraceSet.

    Profiles are skipped (the conversion feeds replay planning and
    content digests, neither reads them).  The memo is fingerprinted by
    record counts so the common in-place mutation (appending records)
    invalidates it; callers treat traces as immutable by convention.
    """
    if isinstance(trace, ColumnarTrace):
        return trace
    fp = tuple(len(p.records) for p in trace.processes)
    hit = _memo.get(trace)
    if hit is not None and hit[0] == fp:
        return hit[1]
    col = from_traceset(trace, with_profiles=False)
    _memo[trace] = (fp, col)
    return col
