"""Trace slicing, projection, and normalization utilities.

Analysis often wants a *piece* of a trace: the first five iterations
(paper Figure 4), a subset of ranks, or a normalized record stream
after transformation.  These utilities cut trace sets while repairing
the structural invariants the cut breaks (unmatched messages, dangling
requests), so the result still validates and replays.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import replace as dc_replace

from .records import (
    CpuBurst,
    Event,
    GlobalOp,
    IRecv,
    ISend,
    ProcessTrace,
    Recv,
    Record,
    Send,
    TraceSet,
    Wait,
)

__all__ = [
    "merge_bursts",
    "repair",
    "select_ranks",
    "slice_iterations",
    "trace_stats",
]


def merge_bursts(trace: TraceSet, min_gap: float = 0.0) -> TraceSet:
    """Coalesce adjacent CpuBurst records (normalization).

    The overlap transformation splits bursts at chunk boundaries; for
    size/entropy comparisons it is convenient to re-merge them.  The
    instruction counts are summed when both sides carry them.
    """
    procs = []
    for proc in trace:
        out: list[Record] = []
        for rec in proc:
            if (
                isinstance(rec, CpuBurst)
                and out
                and isinstance(out[-1], CpuBurst)
            ):
                prev = out[-1]
                instr = (
                    prev.instructions + rec.instructions
                    if prev.instructions is not None and rec.instructions is not None
                    else None
                )
                out[-1] = CpuBurst(prev.duration + rec.duration, instructions=instr)
            else:
                out.append(dc_replace(rec))
        procs.append(ProcessTrace(proc.rank, out))
    return TraceSet(procs, meta=dict(trace.meta))


def repair(trace: TraceSet) -> TraceSet:
    """Restore structural invariants after an arbitrary cut.

    * drops sends/receives whose partner is missing (global matching);
    * drops non-blocking records whose Wait was cut, and strips waited
      requests whose posting was cut;
    * drops collective records that not all ranks retain.

    Dropping one record can orphan another (a dangling non-blocking
    send takes its partner's receive with it), so the pass iterates to
    a fixpoint.
    """
    out = _repair_once(trace)
    while out.total_records() != trace.total_records():
        trace, out = out, _repair_once(out)
    return out


def _repair_once(trace: TraceSet) -> TraceSet:
    # Pass 1: count sends/recvs per key and collectives per seq.
    sends: dict[tuple, int] = defaultdict(int)
    recvs: dict[tuple, int] = defaultdict(int)
    coll_count: dict[int, int] = defaultdict(int)
    for proc in trace:
        for rec in proc:
            if isinstance(rec, (Send, ISend)):
                sends[(proc.rank, rec.peer, rec.channel, rec.tag, rec.sub)] += 1
            elif isinstance(rec, (Recv, IRecv)):
                recvs[(rec.peer, proc.rank, rec.channel, rec.tag, rec.sub)] += 1
            elif isinstance(rec, GlobalOp):
                coll_count[rec.seq] += 1

    keep_coll = {seq for seq, n in coll_count.items() if n == trace.nranks}

    procs = []
    for proc in trace:
        # Per-key quota of keepable records (min of both sides, FIFO).
        quota: dict[tuple, int] = {}
        posted: set[int] = set()
        out: list[Record] = []
        for rec in proc:
            if isinstance(rec, (Send, ISend)):
                key = (proc.rank, rec.peer, rec.channel, rec.tag, rec.sub)
                quota.setdefault(key, min(sends[key], recvs.get(key, 0)))
                if quota[key] <= 0:
                    continue
                quota[key] -= 1
                if isinstance(rec, ISend):
                    posted.add(rec.request)
            elif isinstance(rec, (Recv, IRecv)):
                key = (rec.peer, proc.rank, rec.channel, rec.tag, rec.sub)
                quota.setdefault(key, min(sends.get(key, 0), recvs[key]))
                if quota[key] <= 0:
                    continue
                quota[key] -= 1
                if isinstance(rec, IRecv):
                    posted.add(rec.request)
            elif isinstance(rec, Wait):
                kept = tuple(q for q in rec.requests if q in posted)
                posted.difference_update(kept)
                if not kept:
                    continue
                rec = Wait(kept, meta=dict(rec.meta))
            elif isinstance(rec, GlobalOp) and rec.seq not in keep_coll:
                continue
            out.append(dc_replace(rec) if not isinstance(rec, Wait) else rec)
        # Drop dangling requests entirely: remove posted-but-unwaited.
        if posted:
            out = [
                r for r in out
                if not (isinstance(r, (ISend, IRecv)) and r.request in posted)
            ]
        procs.append(ProcessTrace(proc.rank, out))
    return TraceSet(procs, meta=dict(trace.meta))


def slice_iterations(
    trace: TraceSet,
    first: int,
    count: int,
    name: str = "iteration",
) -> TraceSet:
    """Cut iterations ``first .. first+count-1`` out of every rank.

    Boundaries come from the applications' iteration events; the result
    is repaired so it validates and replays on its own (messages that
    crossed the cut are dropped on both sides).
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    procs = []
    for proc in trace:
        out: list[Record] = []
        keeping = False
        seen_any = False
        for rec in proc:
            if isinstance(rec, Event) and rec.name == name:
                keeping = first <= rec.value < first + count
                seen_any = seen_any or keeping
            if keeping:
                out.append(rec)
        if not seen_any:
            # Rank without iteration markers: keep nothing (repair will
            # drop its partners' halves too).
            out = []
        procs.append(ProcessTrace(proc.rank, out))
    cut = TraceSet(procs, meta={**trace.meta, "slice": (first, count)})
    return repair(cut)


def select_ranks(trace: TraceSet, ranks: list[int]) -> TraceSet:
    """Project the trace onto a rank subset (renumbered densely).

    Messages to/from dropped ranks are removed (with their waits) by
    :func:`repair`; collectives are dropped entirely (they involved the
    full communicator).
    """
    keep = sorted(set(ranks))
    if not keep:
        raise ValueError("need at least one rank")
    if keep[0] < 0 or keep[-1] >= trace.nranks:
        raise ValueError(f"ranks out of range [0, {trace.nranks})")
    renum = {old: new for new, old in enumerate(keep)}

    procs = []
    for old in keep:
        out: list[Record] = []
        for rec in trace[old]:
            if isinstance(rec, GlobalOp):
                continue
            if isinstance(rec, (Send, ISend, Recv, IRecv)):
                if rec.peer not in renum:
                    continue
                rec = dc_replace(rec, peer=renum[rec.peer])
            else:
                rec = dc_replace(rec)
            out.append(rec)
        procs.append(ProcessTrace(renum[old], out))
    cut = TraceSet(procs, meta={**trace.meta, "ranks": keep})
    return repair(cut)


def trace_stats(trace: TraceSet) -> dict:
    """Summary statistics of a trace (record mix, bytes, channels)."""
    kinds: dict[str, int] = defaultdict(int)
    bytes_per_channel: dict[int, int] = defaultdict(int)
    messages = 0
    for proc in trace:
        for rec in proc:
            kinds[type(rec).__name__] += 1
            if isinstance(rec, (Send, ISend)):
                messages += 1
                bytes_per_channel[rec.channel] += rec.size
    return {
        "nranks": trace.nranks,
        "records": trace.total_records(),
        "record_kinds": dict(kinds),
        "messages": messages,
        "bytes_per_channel": dict(bytes_per_channel),
        "virtual_compute_seconds": trace.total_virtual_compute(),
    }
