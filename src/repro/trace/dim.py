"""Dimemas-style text serialization of trace sets.

The original framework stores traces in the Dimemas ``.dim`` text
format.  We define a line-oriented dialect, ``DIMEMAS-REPRO:1``, that
round-trips every field of :mod:`repro.trace.records`, including the
per-element access profiles the overlap transformation needs (these are
the framework's equivalent of the extra information the paper's
Valgrind tool embeds in its traces).

Grammar (one record per line, ``:``-separated fields)::

    #DIMEMAS-REPRO:1
    #META:<json object>                  (optional, once)
    P:<rank>                             process header
    B:<duration>:<instructions|->        cpu burst
    S:<peer>:<tag>:<size>:<chan>:<sub>:<elems>:<ctx>:<rv>        blocking send
    IS:<peer>:<tag>:<size>:<chan>:<sub>:<elems>:<ctx>:<req>:<rv> immediate send
    R:<peer>:<tag>:<size>:<chan>:<sub>:<elems>:<ctx>             blocking recv
    IR:<peer>:<tag>:<size>:<chan>:<sub>:<elems>:<ctx>:<req>      immediate recv
    W:<req>[,<req>...]                   wait
    G:<op>:<root>:<send>:<recv>:<seq>:<ctx>:<members>  collective (analytic form)
    E:<name>:<value>                     user event
    AP:<kind>:<istart>:<iend>:<n>:<b64>  access profile -> previous record

``rv`` is ``0``/``1``/``-`` (force eager / force rendezvous / platform
default).  ``AP`` lines attach to the immediately preceding S/IS (kind
``production``) or R/IR (kind ``consumption``) record; the ``b64``
payload is the little-endian float64 ``times`` array.

Ingestion is hardened (see :mod:`repro.audit.limits`): total input
size, line length, process count, and record count are capped before
allocation, and :func:`loads`/:func:`load` accept
``errors="quarantine"`` to skip malformed *record* lines (collected
with line attribution in ``trace.meta["quarantined_records"]``)
instead of aborting the whole file.  Structural damage — a missing
magic, a broken ``#META``/``P:`` header, or a blown cap — stays fatal
in both modes.
"""

from __future__ import annotations

import base64
import io
import json
import os
from pathlib import Path
from typing import TextIO

import numpy as np

from ..audit.limits import ingest_limits
from ..obs import span as _span
from .records import (
    AccessProfile,
    CollOp,
    CpuBurst,
    Event,
    GlobalOp,
    IRecv,
    ISend,
    ProcessTrace,
    Recv,
    Record,
    Send,
    TraceSet,
    Wait,
)

__all__ = ["dump", "dumps", "load", "loads", "TraceFormatError"]

_MAGIC = "#DIMEMAS-REPRO:1"


class TraceFormatError(ValueError):
    """Raised when parsing an invalid or corrupt trace file."""


def _fmt_rv(rv: bool | None) -> str:
    return "-" if rv is None else ("1" if rv else "0")


def _parse_rv(s: str) -> bool | None:
    if s == "-":
        return None
    if s in ("0", "1"):
        return s == "1"
    raise TraceFormatError(f"invalid rendezvous flag {s!r}")


def _profile_lines(profile: AccessProfile | None) -> list[str]:
    if profile is None:
        return []
    payload = base64.b64encode(
        np.ascontiguousarray(profile.times, dtype="<f8").tobytes()
    ).decode("ascii")
    return [
        f"AP:{profile.kind}:{profile.interval_start!r}:{profile.interval_end!r}"
        f":{profile.elements}:{payload}"
    ]


def _record_lines(rec: Record) -> list[str]:
    if isinstance(rec, CpuBurst):
        instr = "-" if rec.instructions is None else str(rec.instructions)
        return [f"B:{rec.duration!r}:{instr}"]
    if isinstance(rec, ISend):
        return [
            f"IS:{rec.peer}:{rec.tag}:{rec.size}:{rec.channel}:{rec.sub}"
            f":{rec.elements}:{rec.context}:{rec.request}:{_fmt_rv(rec.rendezvous)}"
        ] + _profile_lines(rec.production)
    if isinstance(rec, Send):
        return [
            f"S:{rec.peer}:{rec.tag}:{rec.size}:{rec.channel}:{rec.sub}"
            f":{rec.elements}:{rec.context}:{_fmt_rv(rec.rendezvous)}"
        ] + _profile_lines(rec.production)
    if isinstance(rec, IRecv):
        return [
            f"IR:{rec.peer}:{rec.tag}:{rec.size}:{rec.channel}:{rec.sub}"
            f":{rec.elements}:{rec.context}:{rec.request}"
        ] + _profile_lines(rec.consumption)
    if isinstance(rec, Recv):
        return [
            f"R:{rec.peer}:{rec.tag}:{rec.size}:{rec.channel}:{rec.sub}"
            f":{rec.elements}:{rec.context}"
        ] + _profile_lines(rec.consumption)
    if isinstance(rec, Wait):
        return ["W:" + ",".join(str(r) for r in rec.requests)]
    if isinstance(rec, GlobalOp):
        return [f"G:{rec.op.value}:{rec.root}:{rec.send_size}:{rec.recv_size}:{rec.seq}:{rec.context}:{rec.members}"]
    if isinstance(rec, Event):
        return [f"E:{rec.name}:{rec.value}"]
    raise TypeError(f"unsupported record type: {type(rec).__name__}")


def dump(trace: TraceSet, fp: TextIO | str | Path) -> None:
    """Serialize ``trace`` to a file path or text stream."""
    if isinstance(fp, (str, Path)):
        with _span("trace.dim.dump", nranks=trace.nranks):
            with open(fp, "w", encoding="ascii") as f:
                dump(trace, f)
        return
    fp.write(_MAGIC + "\n")
    if trace.meta:
        fp.write("#META:" + json.dumps(trace.meta, sort_keys=True, default=str) + "\n")
    for proc in trace:
        fp.write(f"P:{proc.rank}\n")
        for rec in proc:
            for line in _record_lines(rec):
                fp.write(line + "\n")


def dumps(trace: TraceSet) -> str:
    """Serialize ``trace`` to a string."""
    buf = io.StringIO()
    dump(trace, buf)
    return buf.getvalue()


def _parse_profile(parts: list[str]) -> AccessProfile:
    if len(parts) != 5:
        raise TraceFormatError(f"malformed AP line: expected 5 fields, got {len(parts)}")
    kind, istart, iend, n, payload = parts
    times = np.frombuffer(base64.b64decode(payload), dtype="<f8").astype(np.float64)
    if times.shape[0] != int(n):
        raise TraceFormatError(
            f"AP element count mismatch: header says {n}, payload has {times.shape[0]}"
        )
    return AccessProfile(
        kind=kind,
        times=times,
        interval_start=float(istart),
        interval_end=float(iend),
    )


def load(fp: TextIO | str | Path, errors: str = "raise") -> TraceSet:
    """Parse a trace from a file path or text stream.

    For paths, the file size is checked against the ingest cap
    *before* the bytes are read, so an oversized file never reaches
    memory.  ``errors`` is forwarded to :func:`loads`.
    """
    if isinstance(fp, (str, Path)):
        limits = ingest_limits()
        size = os.stat(fp).st_size
        if size > limits.max_trace_bytes:
            raise TraceFormatError(
                f"trace file is {size} bytes, over the "
                f"{limits.max_trace_bytes:.0f}-byte ingest cap "
                "(REPRO_MAX_TRACE_MB)"
            )
        with _span("trace.dim.load"):
            with open(fp, "r", encoding="ascii") as f:
                return load(f, errors=errors)
    return loads(fp.read(), errors=errors)


def loads(text: str, errors: str = "raise") -> TraceSet:
    """Parse a trace from a string.

    ``errors="quarantine"`` skips malformed *record* lines instead of
    aborting: each skipped line is collected (rank, line number, record
    kind, reason, a clip of the text) in
    ``trace.meta["quarantined_records"]``.  Structural errors — bad
    magic, broken ``#META`` or ``P:`` headers, blown resource caps —
    are fatal in both modes.
    """
    if errors not in ("raise", "quarantine"):
        raise ValueError(f"errors must be 'raise' or 'quarantine', got {errors!r}")
    limits = ingest_limits()
    if len(text) > limits.max_trace_bytes:
        raise TraceFormatError(
            f"trace text is {len(text)} bytes, over the "
            f"{limits.max_trace_bytes:.0f}-byte ingest cap (REPRO_MAX_TRACE_MB)"
        )
    lines = text.splitlines()
    if not lines or lines[0].strip() != _MAGIC:
        raise TraceFormatError(f"missing magic header {_MAGIC!r}")
    meta: dict = {}
    processes: list[ProcessTrace] = []
    current: ProcessTrace | None = None
    last_record: Record | None = None
    quarantined: list[dict] = []
    nrecords = 0

    for lineno, raw in enumerate(lines[1:], start=2):
        if len(raw) > limits.max_line_len:
            raise TraceFormatError(
                f"line {lineno}: {len(raw)} characters, over the "
                f"{limits.max_line_len:.0f}-character line cap "
                "(REPRO_MAX_LINE_LEN)"
            )
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#META:"):
            try:
                meta = json.loads(line[len("#META:"):])
            except ValueError as exc:
                raise TraceFormatError(
                    f"line {lineno}: malformed #META json: {exc}"
                ) from None
            if not isinstance(meta, dict):
                raise TraceFormatError(
                    f"line {lineno}: #META must be a json object"
                )
            continue
        if line.startswith("#"):
            continue
        kind, _, rest = line.partition(":")
        parts = rest.split(":") if rest else []
        if kind == "P":
            if len(processes) >= limits.max_ranks:
                raise TraceFormatError(
                    f"line {lineno}: more than {limits.max_ranks:.0f} "
                    "processes (REPRO_MAX_RANKS)"
                )
            try:
                current = ProcessTrace(int(parts[0]))
            except (IndexError, ValueError) as exc:
                raise TraceFormatError(
                    f"line {lineno}: malformed 'P' record: {exc}"
                ) from exc
            processes.append(current)
            last_record = None
            continue
        nrecords += 1
        if nrecords > limits.max_records:
            raise TraceFormatError(
                f"line {lineno}: more than {limits.max_records:.0f} "
                "records (REPRO_MAX_RECORDS)"
            )
        try:
            if current is None:
                raise TraceFormatError("record before first process header")
            if kind == "AP":
                profile = _parse_profile(parts)
                if isinstance(last_record, (Send, ISend)) and profile.kind == "production":
                    last_record.production = profile
                elif isinstance(last_record, (Recv, IRecv)) and profile.kind == "consumption":
                    last_record.consumption = profile
                else:
                    raise TraceFormatError(
                        f"AP:{profile.kind} does not attach to "
                        f"{type(last_record).__name__}"
                    )
                continue
            rec: Record
            if kind == "B":
                instr = None if parts[1] == "-" else int(parts[1])
                rec = CpuBurst(float(parts[0]), instructions=instr)
            elif kind == "S":
                rec = Send(
                    peer=int(parts[0]), tag=int(parts[1]), size=int(parts[2]),
                    channel=int(parts[3]), sub=int(parts[4]), elements=int(parts[5]),
                    context=int(parts[6]), rendezvous=_parse_rv(parts[7]),
                )
            elif kind == "IS":
                rec = ISend(
                    peer=int(parts[0]), tag=int(parts[1]), size=int(parts[2]),
                    channel=int(parts[3]), sub=int(parts[4]), elements=int(parts[5]),
                    context=int(parts[6]), request=int(parts[7]),
                    rendezvous=_parse_rv(parts[8]),
                )
            elif kind == "R":
                rec = Recv(
                    peer=int(parts[0]), tag=int(parts[1]), size=int(parts[2]),
                    channel=int(parts[3]), sub=int(parts[4]), elements=int(parts[5]),
                    context=int(parts[6]),
                )
            elif kind == "IR":
                rec = IRecv(
                    peer=int(parts[0]), tag=int(parts[1]), size=int(parts[2]),
                    channel=int(parts[3]), sub=int(parts[4]), elements=int(parts[5]),
                    context=int(parts[6]), request=int(parts[7]),
                )
            elif kind == "W":
                rec = Wait(tuple(int(x) for x in parts[0].split(",")))
            elif kind == "G":
                rec = GlobalOp(
                    op=CollOp(parts[0]), root=int(parts[1]),
                    send_size=int(parts[2]), recv_size=int(parts[3]),
                    seq=int(parts[4]), context=int(parts[5]),
                    members=int(parts[6]),
                )
            elif kind == "E":
                rec = Event(name=parts[0], value=int(parts[1]))
            else:
                raise TraceFormatError(f"unknown record kind {kind!r}")
        except (IndexError, ValueError) as exc:
            if isinstance(exc, TraceFormatError):
                message = str(exc)
            else:
                message = f"malformed {kind!r} record: {exc}"
            if errors == "quarantine" and current is not None:
                quarantined.append({
                    "rank": current.rank,
                    "line": lineno,
                    "kind": kind,
                    "reason": message,
                    "text": line[:200],
                })
                # A following AP line must not attach to the record
                # *before* the one we just dropped.
                last_record = None
                continue
            if isinstance(exc, TraceFormatError):
                raise TraceFormatError(f"line {lineno}: {exc}") from None
            raise TraceFormatError(f"line {lineno}: {message}") from exc
        current.append(rec)
        last_record = rec

    if not processes:
        raise TraceFormatError("trace contains no processes")
    if quarantined:
        meta = dict(meta)
        meta["quarantined_records"] = quarantined
    try:
        return TraceSet(processes, meta=meta)
    except ValueError as exc:
        # e.g. duplicate or out-of-order 'P' headers: still a parse
        # error of this text, not an internal failure.
        raise TraceFormatError(f"inconsistent process table: {exc}") from exc
