"""Typed trace records — the common language of the framework.

The simulation framework of Subotic et al. (CLUSTER 2010) passes
*Dimemas traces* between its three stages:

1. the Valgrind-based tracer emits one trace per MPI process,
2. the overlap transformation rewrites those traces, and
3. the Dimemas simulator replays them on a configurable platform.

This module defines the in-memory representation of those traces.  A
trace is, per process, an ordered list of records.  Record *durations*
are expressed in seconds of **virtual process time**: pure computation
time obtained by scaling instruction counts with a MIPS rate (see
:mod:`repro.tracer.timestamps`).  Communication records carry no
duration — their cost is decided by the replay simulator's platform
model.

Records may carry an :class:`AccessProfile` describing when, in virtual
time, each element of the communicated buffer was produced (last store)
or consumed (first load).  The overlap transformation
(:mod:`repro.core.transform`) uses these profiles to place chunked
sends at production points and chunk waits at consumption points.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

__all__ = [
    "AccessProfile",
    "CollOp",
    "CpuBurst",
    "Event",
    "GlobalOp",
    "IRecv",
    "ISend",
    "Marker",
    "ProcessTrace",
    "Recv",
    "Record",
    "Send",
    "TraceSet",
    "Wait",
    "CHANNEL_APP",
    "CHANNEL_COLLECTIVE",
    "CHANNEL_CHUNK",
]

#: Communication channel of application-level point-to-point messages.
CHANNEL_APP = 0
#: Channel used for the point-to-point decomposition of collectives.
CHANNEL_COLLECTIVE = 1
#: Channel used for chunked messages created by the overlap transformation.
CHANNEL_CHUNK = 2


class CollOp(enum.Enum):
    """Collective operations supported by the trace model.

    The tracer decomposes these into point-to-point records
    (paper §III-C: collectives are "implemented as usual using multiple
    point-to-point MPI transfers"), but the record type is kept so that
    analytically-modelled collectives can be replayed as well (used by
    the ``collective-model`` ablation).
    """

    BARRIER = "barrier"
    BCAST = "bcast"
    REDUCE = "reduce"
    ALLREDUCE = "allreduce"
    GATHER = "gather"
    ALLGATHER = "allgather"
    SCATTER = "scatter"
    ALLTOALL = "alltoall"
    REDUCE_SCATTER = "reduce_scatter"


@dataclass(frozen=True)
class AccessProfile:
    """Per-element access times of a communicated buffer.

    Attributes
    ----------
    kind:
        ``"production"`` (times are per-element *last store*) or
        ``"consumption"`` (times are per-element *first load*).
    times:
        Array of shape ``(elements,)`` with absolute virtual times in
        seconds.  ``NaN`` marks an element that was never accessed
        inside the interval.
    interval_start, interval_end:
        Bounds of the production/consumption interval in absolute
        virtual time.  Production intervals run from the previous send
        of the same buffer (or process start) to the current send;
        consumption intervals run from the current receive to the next
        receive of the same buffer (or process end).  Paper §V-A.
    """

    kind: str
    times: np.ndarray
    interval_start: float
    interval_end: float
    #: Optional raw access stream ``(offsets, times)`` with one entry
    #: per individual access (not just the last store / first load) —
    #: recorded on demand for pattern scatter plots (paper Figure 5).
    stream: tuple | None = dataclasses.field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.kind not in ("production", "consumption"):
            raise ValueError(f"invalid AccessProfile kind: {self.kind!r}")
        t = np.asarray(self.times, dtype=np.float64)
        object.__setattr__(self, "times", t)
        object.__setattr__(self, "interval_start", float(self.interval_start))
        object.__setattr__(self, "interval_end", float(self.interval_end))
        if self.interval_end < self.interval_start:
            raise ValueError(
                "interval_end must be >= interval_start "
                f"({self.interval_end} < {self.interval_start})"
            )

    @property
    def elements(self) -> int:
        """Number of elements covered by the profile."""
        return int(self.times.shape[0])

    @property
    def span(self) -> float:
        """Length of the interval in virtual seconds."""
        return self.interval_end - self.interval_start

    def normalized(self) -> np.ndarray:
        """Times mapped to ``[0, 1]`` within the interval.

        A zero-length interval maps every access to ``0.0`` (the access
        cannot be earlier or later than the interval itself).
        """
        if self.span <= 0.0:
            out = np.zeros_like(self.times)
            out[np.isnan(self.times)] = np.nan
            return out
        out = (self.times - self.interval_start) / self.span
        return np.clip(out, 0.0, 1.0, out=out)

    def clipped(self) -> np.ndarray:
        """Absolute times clipped into the interval bounds (NaN kept)."""
        return np.clip(self.times, self.interval_start, self.interval_end)

    def normalized_stream(self) -> tuple[np.ndarray, np.ndarray] | None:
        """Raw access stream as ``(offsets, normalized_times)``.

        Returns None when the tracer ran without stream recording.
        """
        if self.stream is None:
            return None
        offsets, times = self.stream
        if self.span <= 0.0:
            return offsets, np.zeros_like(times)
        norm = (times - self.interval_start) / self.span
        return offsets, np.clip(norm, 0.0, 1.0)


@dataclass
class _Base:
    """Fields shared by every record (dataclass mixin)."""

    #: Free-form metadata (buffer ids, app annotations...).  Not part of
    #: equality-relevant simulation semantics; serialized best-effort.
    meta: dict = field(default_factory=dict, kw_only=True, compare=False, repr=False)


@dataclass
class CpuBurst(_Base):
    """A computation burst of ``duration`` virtual seconds.

    ``instructions`` optionally records the raw instruction count the
    duration was derived from (``duration = instructions / (MIPS*1e6)``).
    """

    duration: float
    instructions: int | None = None

    def __post_init__(self) -> None:
        self.duration = float(self.duration)
        if not math.isfinite(self.duration) or self.duration < 0.0:
            raise ValueError(f"CpuBurst duration must be finite and >= 0, got {self.duration}")


@dataclass
class _Ptp(_Base):
    """Common fields of point-to-point records."""

    peer: int
    tag: int
    size: int
    #: Communication channel (see CHANNEL_* constants).
    channel: int = CHANNEL_APP
    #: Sub-id disambiguating messages on the same (peer, tag, channel) —
    #: chunk index for chunked messages, step index for collective
    #: decompositions.  Part of the matching key.
    sub: int = 0
    #: Number of data elements in the message (from the MPI datatype
    #: parameters the tracer reads off the call); 0 = unknown.  A
    #: message cannot be chunked finer than its elements (paper: Alya's
    #: one-element reductions "cannot be chunked into partial ones").
    elements: int = 0
    #: Communicator context id (0 = COMM_WORLD).  Messages only match
    #: within a context — the MPI communicator isolation rule.  Peer
    #: ranks are always *world* ranks regardless of context.
    context: int = 0

    def __post_init__(self) -> None:
        if self.peer < 0:
            raise ValueError(f"peer rank must be >= 0, got {self.peer}")
        if self.size < 0:
            raise ValueError(f"message size must be >= 0, got {self.size}")


@dataclass
class Send(_Ptp):
    """Blocking send of ``size`` bytes to rank ``peer``.

    ``rendezvous=None`` lets the platform's eager threshold decide; a
    boolean forces the protocol.  ``production`` is attached by the
    tracer for application messages.
    """

    rendezvous: bool | None = None
    production: AccessProfile | None = field(default=None, compare=False)

    @property
    def dest(self) -> int:
        return self.peer


@dataclass
class ISend(_Ptp):
    """Non-blocking (immediate) send; completion via :class:`Wait`."""

    request: int = -1
    rendezvous: bool | None = None
    production: AccessProfile | None = field(default=None, compare=False)

    @property
    def dest(self) -> int:
        return self.peer


@dataclass
class Recv(_Ptp):
    """Blocking receive of ``size`` bytes from rank ``peer``."""

    consumption: AccessProfile | None = field(default=None, compare=False)

    @property
    def source(self) -> int:
        return self.peer


@dataclass
class IRecv(_Ptp):
    """Non-blocking receive posting; completion via :class:`Wait`."""

    request: int = -1
    consumption: AccessProfile | None = field(default=None, compare=False)

    @property
    def source(self) -> int:
        return self.peer


@dataclass
class Wait(_Base):
    """Wait for completion of one or more previously posted requests."""

    requests: tuple[int, ...]

    def __post_init__(self) -> None:
        self.requests = tuple(int(r) for r in self.requests)
        if not self.requests:
            raise ValueError("Wait must reference at least one request")


@dataclass
class GlobalOp(_Base):
    """A collective operation (analytic replay form).

    The default tracer configuration decomposes collectives into
    point-to-point records on :data:`CHANNEL_COLLECTIVE`; this record is
    emitted instead when ``decompose_collectives=False`` and is replayed
    with Dimemas' analytic collective model
    (:mod:`repro.dimemas.collectives`).
    """

    op: CollOp
    root: int = 0
    send_size: int = 0
    recv_size: int = 0
    #: Identifier grouping the records of the same collective instance
    #: across ranks (sequence number per communicator).
    seq: int = 0
    #: Communicator context id (0 = COMM_WORLD).
    context: int = 0
    #: Number of participating ranks (0 = the whole world).
    members: int = 0

    def __post_init__(self) -> None:
        if self.send_size < 0 or self.recv_size < 0:
            raise ValueError("collective sizes must be >= 0")
        if self.members < 0:
            raise ValueError("members must be >= 0")


@dataclass
class Event(_Base):
    """A zero-duration user event (e.g. iteration begin/end marker).

    Exported to Paraver traces; used to slice timelines per iteration
    (Figure 4 shows "the first five iterations").
    """

    name: str
    value: int = 0


#: Back-compat alias: markers are plain events.
Marker = Event

Record = CpuBurst | Send | ISend | Recv | IRecv | Wait | GlobalOp | Event


class ProcessTrace:
    """The ordered record stream of one MPI process.

    Provides list-like access plus virtual-time bookkeeping: the
    *virtual start time* of record ``i`` is the sum of CpuBurst
    durations of records ``0..i-1`` (communication records are
    zero-duration in trace time — their real cost is added by replay).
    """

    __slots__ = ("rank", "records", "_starts_cache")

    def __init__(self, rank: int, records: Iterable[Record] | None = None):
        if rank < 0:
            raise ValueError("rank must be >= 0")
        self.rank = int(rank)
        self.records: list[Record] = list(records or [])
        self._starts_cache: np.ndarray | None = None

    # -- list-like interface -------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self.records)

    def __getitem__(self, idx):
        return self.records[idx]

    def append(self, record: Record) -> None:
        """Append a record, invalidating cached prefix times."""
        self.records.append(record)
        self._starts_cache = None

    def extend(self, records: Iterable[Record]) -> None:
        for r in records:
            self.append(r)

    def append_coalesced(self, record: Record) -> None:
        """Append, merging a CpuBurst into a trailing CpuBurst.

        Trace builders (the tracer, synthetic app generators) call this
        instead of :meth:`append` so back-to-back computation never
        produces runs of adjacent bursts — every burst the replay
        simulator walks is maximal, which keeps the per-record dispatch
        loop short.  Instruction counts are summed when both sides carry
        them; metadata dictionaries are merged (later keys win).
        """
        if (
            type(record) is CpuBurst
            and self.records
            and type(self.records[-1]) is CpuBurst
        ):
            prev = self.records[-1]
            instructions = (
                prev.instructions + record.instructions
                if prev.instructions is not None and record.instructions is not None
                else None
            )
            merged = CpuBurst(
                prev.duration + record.duration,
                instructions=instructions,
                meta={**prev.meta, **record.meta},
            )
            self.records[-1] = merged
            self._starts_cache = None
        else:
            self.append(record)

    # -- virtual-time bookkeeping ---------------------------------------------
    def virtual_starts(self) -> np.ndarray:
        """Virtual start time of every record (shape ``(len+1,)``).

        The final entry is the total virtual compute time of the
        process.  Cached; mutate only through :meth:`append` /
        :meth:`extend` or call :meth:`invalidate` after direct edits.
        """
        if self._starts_cache is None or len(self._starts_cache) != len(self.records) + 1:
            durs = np.fromiter(
                (r.duration if isinstance(r, CpuBurst) else 0.0 for r in self.records),
                dtype=np.float64,
                count=len(self.records),
            )
            starts = np.empty(len(self.records) + 1, dtype=np.float64)
            starts[0] = 0.0
            np.cumsum(durs, out=starts[1:])
            self._starts_cache = starts
        return self._starts_cache

    def invalidate(self) -> None:
        """Drop cached prefix sums after in-place record mutation."""
        self._starts_cache = None

    @property
    def virtual_duration(self) -> float:
        """Total virtual compute time of the process."""
        return float(self.virtual_starts()[-1])

    def count(self, record_type: type) -> int:
        """Number of records of the given type."""
        return sum(1 for r in self.records if isinstance(r, record_type))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ProcessTrace(rank={self.rank}, records={len(self.records)})"


class TraceSet:
    """A complete trace: one :class:`ProcessTrace` per rank plus metadata.

    ``meta`` carries provenance (application name, parameters, MIPS
    rate, chunking configuration) that formats and reports propagate.
    """

    def __init__(
        self,
        processes: Sequence[ProcessTrace],
        meta: Mapping[str, object] | None = None,
    ):
        procs = list(processes)
        if not procs:
            raise ValueError("TraceSet requires at least one process")
        ranks = [p.rank for p in procs]
        if ranks != list(range(len(procs))):
            raise ValueError(f"process ranks must be 0..n-1 in order, got {ranks}")
        self.processes: list[ProcessTrace] = procs
        self.meta: dict = dict(meta or {})

    @property
    def nranks(self) -> int:
        """Number of processes in the trace."""
        return len(self.processes)

    def __iter__(self) -> Iterator[ProcessTrace]:
        return iter(self.processes)

    def __getitem__(self, rank: int) -> ProcessTrace:
        return self.processes[rank]

    def __len__(self) -> int:
        return len(self.processes)

    def total_records(self) -> int:
        """Total number of records across all ranks."""
        return sum(len(p) for p in self.processes)

    def total_virtual_compute(self) -> float:
        """Sum of virtual compute time over all ranks (seconds)."""
        return float(sum(p.virtual_duration for p in self.processes))

    def copy(self) -> "TraceSet":
        """Deep-ish copy: record objects are shallow-copied (records are
        treated as immutable by convention), containers are new."""
        return TraceSet(
            [ProcessTrace(p.rank, [dataclasses.replace(r) for r in p.records]) for p in self.processes],
            meta=dict(self.meta),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TraceSet(nranks={self.nranks}, records={self.total_records()})"
