"""Trace model and formats (Dimemas-style records, ``.dim``, ``.prv``)."""

from .records import (
    AccessProfile,
    CHANNEL_APP,
    CHANNEL_CHUNK,
    CHANNEL_COLLECTIVE,
    CollOp,
    CpuBurst,
    Event,
    GlobalOp,
    IRecv,
    ISend,
    ProcessTrace,
    Recv,
    Record,
    Send,
    TraceSet,
    Wait,
)
from .validate import ValidationError, ValidationIssue, ValidationReport, validate
from .columnar import ColumnarFormatError, ColumnarTrace, columnar_of
from . import columnar, dim, filters, prv

__all__ = [
    "AccessProfile", "CHANNEL_APP", "CHANNEL_CHUNK", "CHANNEL_COLLECTIVE",
    "CollOp", "ColumnarFormatError", "ColumnarTrace", "CpuBurst", "Event",
    "GlobalOp", "IRecv", "ISend",
    "ProcessTrace", "Recv", "Record", "Send", "TraceSet", "Wait",
    "ValidationError", "ValidationIssue", "ValidationReport", "validate",
    "columnar", "columnar_of", "dim", "filters", "prv",
]
