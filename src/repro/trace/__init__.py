"""Trace model and formats (Dimemas-style records, ``.dim``, ``.prv``)."""

from .records import (
    AccessProfile,
    CHANNEL_APP,
    CHANNEL_CHUNK,
    CHANNEL_COLLECTIVE,
    CollOp,
    CpuBurst,
    Event,
    GlobalOp,
    IRecv,
    ISend,
    ProcessTrace,
    Recv,
    Record,
    Send,
    TraceSet,
    Wait,
)
from .validate import ValidationError, ValidationIssue, ValidationReport, validate
from . import dim, filters, prv

__all__ = [
    "AccessProfile", "CHANNEL_APP", "CHANNEL_CHUNK", "CHANNEL_COLLECTIVE",
    "CollOp", "CpuBurst", "Event", "GlobalOp", "IRecv", "ISend",
    "ProcessTrace", "Recv", "Record", "Send", "TraceSet", "Wait",
    "ValidationError", "ValidationIssue", "ValidationReport", "validate",
    "dim", "filters", "prv",
]
