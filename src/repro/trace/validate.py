"""Structural validation of trace sets.

The replay simulator assumes well-formed traces: every non-blocking
request is waited exactly once, every send has a matching receive with
an identical size on the same matching key, and collective records line
up across ranks.  Malformed traces would deadlock (or worse, silently
mis-match) during replay, so both the tracer and the overlap
transformation validate their outputs in tests.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field

from .records import (
    CpuBurst,
    Event,
    GlobalOp,
    IRecv,
    ISend,
    Recv,
    Send,
    TraceSet,
    Wait,
)

__all__ = ["ValidationError", "ValidationIssue", "ValidationReport", "validate"]


class ValidationIssue(str):
    """One validation finding: a message with a structured location.

    A ``str`` subclass, so code that formats or substring-matches
    issues keeps working unchanged; ``rank`` and ``record`` expose the
    location machine-readably (``None`` when the finding is global or
    not tied to one record), letting fault-injection tests assert that
    the *right* rank/record was blamed.
    """

    rank: int | None
    record: int | None

    def __new__(
        cls, msg: str, rank: int | None = None, record: int | None = None,
    ) -> "ValidationIssue":
        self = super().__new__(cls, msg)
        self.rank = rank
        self.record = record
        return self


class ValidationError(ValueError):
    """Raised by :func:`validate` in strict mode when issues are found.

    ``report`` carries the full :class:`ValidationReport` (the message
    shows at most the first 20 issues).
    """

    def __init__(self, msg: str, report: "ValidationReport | None" = None):
        super().__init__(msg)
        self.report = report


@dataclass
class ValidationReport:
    """Outcome of trace validation.

    ``issues`` is empty for a well-formed trace.  Each issue is a
    :class:`ValidationIssue` — a human-readable string prefixed with
    ``rank=`` or ``global:`` that also carries ``rank`` / ``record``
    attributes locating the finding.
    """

    issues: list[ValidationIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    def add(
        self, msg: str, rank: int | None = None, record: int | None = None,
    ) -> None:
        self.issues.append(ValidationIssue(msg, rank=rank, record=record))

    def for_rank(self, rank: int) -> list[ValidationIssue]:
        """The issues attributed to one rank."""
        return [i for i in self.issues if i.rank == rank]

    def __bool__(self) -> bool:
        return self.ok


def _matching_key(rank_from: int, rank_to: int, rec) -> tuple:
    return (rank_from, rank_to, rec.context, rec.channel, rec.tag, rec.sub)


def validate(trace: TraceSet, strict: bool = False) -> ValidationReport:
    """Validate a :class:`~repro.trace.records.TraceSet`.

    Checks performed:

    * request discipline per rank (unique ids; waits reference posted,
      not-yet-waited requests; no dangling requests at process end);
    * global point-to-point matching: for every key
      ``(src, dst, channel, tag, sub)`` the send and receive sequences
      have equal length and pairwise-equal sizes (FIFO matching,
      mirroring both MPI ordering semantics and the replay matcher);
    * collective alignment: every rank observes the same ordered
      sequence of ``(op, root, seq)`` GlobalOp records;
    * burst sanity: finite, non-negative durations.

    With ``strict=True`` raises :class:`ValidationError` listing the
    first issues instead of returning a failing report.
    """
    report = ValidationReport()

    sends: dict[tuple, deque] = defaultdict(deque)
    recvs: dict[tuple, deque] = defaultdict(deque)
    collectives: list[list[tuple]] = []

    for proc in trace:
        posted: set[int] = set()
        completed: set[int] = set()
        coll_seq: list[tuple] = []
        for i, rec in enumerate(proc):
            where = f"rank={proc.rank} record={i}"
            if isinstance(rec, CpuBurst):
                if rec.duration < 0:
                    report.add(
                        f"{where}: negative burst duration {rec.duration}",
                        rank=proc.rank, record=i,
                    )
            elif isinstance(rec, (Send, ISend)):
                sends[_matching_key(proc.rank, rec.peer, rec)].append(
                    (proc.rank, i, rec.size)
                )
                if rec.peer >= trace.nranks:
                    report.add(
                        f"{where}: send to out-of-range rank {rec.peer}",
                        rank=proc.rank, record=i,
                    )
                if isinstance(rec, ISend):
                    if rec.request in posted or rec.request in completed:
                        report.add(
                            f"{where}: duplicate request id {rec.request}",
                            rank=proc.rank, record=i,
                        )
                    posted.add(rec.request)
            elif isinstance(rec, (Recv, IRecv)):
                recvs[_matching_key(rec.peer, proc.rank, rec)].append(
                    (proc.rank, i, rec.size)
                )
                if rec.peer >= trace.nranks:
                    report.add(
                        f"{where}: recv from out-of-range rank {rec.peer}",
                        rank=proc.rank, record=i,
                    )
                if isinstance(rec, IRecv):
                    if rec.request in posted or rec.request in completed:
                        report.add(
                            f"{where}: duplicate request id {rec.request}",
                            rank=proc.rank, record=i,
                        )
                    posted.add(rec.request)
            elif isinstance(rec, Wait):
                for req in rec.requests:
                    if req in completed:
                        report.add(
                            f"{where}: request {req} waited twice",
                            rank=proc.rank, record=i,
                        )
                    elif req not in posted:
                        report.add(
                            f"{where}: wait on unknown request {req}",
                            rank=proc.rank, record=i,
                        )
                    else:
                        posted.discard(req)
                        completed.add(req)
            elif isinstance(rec, GlobalOp):
                coll_seq.append((rec.context, rec.op, rec.root, rec.seq, rec.members))
            elif isinstance(rec, Event):
                pass
            else:  # pragma: no cover - defensive
                report.add(
                    f"{where}: unknown record type {type(rec).__name__}",
                    rank=proc.rank, record=i,
                )
        if posted:
            report.add(
                f"rank={proc.rank}: {len(posted)} request(s) never waited: "
                f"{sorted(posted)[:8]}",
                rank=proc.rank,
            )
        collectives.append(coll_seq)

    # Point-to-point matching.
    for key in sorted(set(sends) | set(recvs)):
        s, r = sends.get(key, deque()), recvs.get(key, deque())
        if len(s) != len(r):
            report.add(
                f"global: key {key}: {len(s)} send(s) vs {len(r)} recv(s)"
            )
        for (srank, srec, ssize), (rrank, rrec, rsize) in zip(s, r):
            if ssize != rsize:
                report.add(
                    f"global: size mismatch on key {key}: "
                    f"rank={srank} record={srec} sends {ssize} bytes, "
                    f"rank={rrank} record={rrec} expects {rsize}",
                    rank=srank, record=srec,
                )

    # Collective alignment, per communicator context: every rank that
    # participates in a context must observe the same ordered sequence
    # of operations, and the participant count must match ``members``
    # when it is recorded (0 = the whole world).
    per_context: dict[int, dict[int, list]] = defaultdict(dict)
    for rank, seq in enumerate(collectives):
        for ctx, op, root, sq, members in seq:
            per_context[ctx].setdefault(rank, []).append((op, root, sq, members))
    for ctx, by_rank in sorted(per_context.items()):
        participants = sorted(by_rank)
        ref_rank = participants[0]
        ref = by_rank[ref_rank]
        for rank in participants[1:]:
            if by_rank[rank] != ref:
                report.add(
                    f"global: context {ctx}: collective sequence of rank "
                    f"{rank} differs from rank {ref_rank}"
                )
        declared = {m for ops in by_rank.values() for (_, _, _, m) in ops}
        for m in declared:
            expected = m if m > 0 else trace.nranks
            if len(participants) != expected:
                report.add(
                    f"global: context {ctx}: {len(participants)} "
                    f"participant(s) but collectives declare {expected}"
                )

    if strict and not report.ok:
        raise ValidationError(
            f"trace validation failed with {len(report.issues)} issue(s):\n"
            + "\n".join(report.issues[:20]),
            report=report,
        )
    return report
