"""repro — reproduction of Subotic et al., "A Simulation Framework to
Automatically Analyze the Communication-Computation Overlap in
Scientific Applications" (IEEE CLUSTER 2010).

Pipeline (mirrors the paper's Figure 3):

1. :mod:`repro.smpi` + :mod:`repro.tracer` — run a simulated MPI
   application under instrumentation (the Valgrind stage) and emit the
   original trace with per-element access profiles;
2. :mod:`repro.core` — the paper's contribution: the automatic overlap
   transformation (message chunking, advancing sends, double buffering,
   post-postponed receptions) plus the ideal-pattern variant and
   production/consumption pattern analysis;
3. :mod:`repro.dimemas` — trace-driven replay on a configurable
   platform (CPU ratio, latency, bandwidth, buses, ports);
4. :mod:`repro.paraver` — timelines, Gantt/SVG rendering, profiles.

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
