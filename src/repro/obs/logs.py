"""Structured logging for the framework's own diagnostics.

The framework logs through the stdlib under the ``repro.`` namespace
(caches, engine, and observability already do).  This module owns the
one place that attaches a handler: :func:`configure` maps the CLI's
``-v`` / ``--quiet`` to levels and installs a single stderr handler
with a structured ``time level logger: message`` format, tagged with
the active run ID when a manifest is open.

Library code must *log*, never ``print()`` — stdout belongs to the
commands' actual output (tables, reports), which is what the
``tools/check_print.py`` lint enforces.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["configure", "get_logger"]

_HANDLER: logging.Handler | None = None


class _RunIdFormatter(logging.Formatter):
    """Stamps each record with the active run ID (when one is open)."""

    def format(self, record: logging.LogRecord) -> str:
        from .manifest import current_run
        run = current_run()
        record.run = f" [{run.run_id}]" if run is not None else ""
        return super().format(record)


def configure(verbosity: int = 0, quiet: bool = False,
              stream=None) -> logging.Logger:
    """Install (or retune) the framework's stderr log handler.

    ``verbosity`` counts ``-v`` flags: 0 -> WARNING, 1 -> INFO,
    2+ -> DEBUG.  ``quiet`` forces ERROR regardless.  Idempotent: a
    second call adjusts the existing handler instead of stacking one.
    """
    global _HANDLER
    root = logging.getLogger("repro")
    if quiet:
        level = logging.ERROR
    else:
        level = {0: logging.WARNING, 1: logging.INFO}.get(
            verbosity, logging.DEBUG
        )
    if _HANDLER is None:
        _HANDLER = logging.StreamHandler(stream or sys.stderr)
        _HANDLER.setFormatter(_RunIdFormatter(
            "%(asctime)s %(levelname)s%(run)s %(name)s: %(message)s",
            datefmt="%H:%M:%S",
        ))
        root.addHandler(_HANDLER)
    elif stream is not None:
        _HANDLER.setStream(stream)
    root.setLevel(level)
    root.propagate = False
    return root


def get_logger(name: str) -> logging.Logger:
    """A logger in the framework namespace (``repro.<name>``)."""
    return logging.getLogger(name if name.startswith("repro") else
                             f"repro.{name}")
