"""``repro.obs`` — the framework's self-observability layer.

The paper's methodology makes an opaque execution observable; this
package does the same for our own pipeline.  Four pieces, collection
decoupled from aggregation and export (the Caliper/Benchpark shape):

* :mod:`~repro.obs.spans` — hierarchical span tracer with a
  near-zero-cost disabled path (``span("replay.drain_queue")``);
* :mod:`~repro.obs.metrics` — process-global registry of counters,
  gauges, and histograms with a cross-process delta funnel;
* :mod:`~repro.obs.manifest` — run IDs, JSONL event logs, and final
  ``manifest.json`` documents; pool workers funnel their events and
  metrics back through task results so one run means one log;
* :mod:`~repro.obs.export` — Perfetto/Chrome trace JSON (with the
  simulated-Dimemas-time overlay) and plain-text summary tables;
* :mod:`~repro.obs.logs` — the structured stderr logger behind the
  CLI's ``-v`` / ``--quiet``.

Enabling everything costs microseconds per pipeline *stage*; enabling
nothing costs one global check per instrumentation point, which is the
contract the fast-path benchmark tests pin down.
"""

from .manifest import (
    RunContext,
    collect_worker_payload,
    configure_worker,
    current_run,
    git_revision,
    new_run_id,
    worker_config,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    merge_counter_totals,
)
from .spans import SpanRecord, disable, enable, flush, is_enabled, span, traced
from .export import (
    insight_to_chrome,
    metrics_table,
    span_summary_table,
    spans_to_chrome,
    write_chrome_trace,
    write_insight_trace,
    write_metrics,
)
from .logs import configure as configure_logging
from .logs import get_logger

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunContext",
    "SpanRecord",
    "collect_worker_payload",
    "configure_logging",
    "configure_worker",
    "current_run",
    "disable",
    "enable",
    "flush",
    "get_logger",
    "get_registry",
    "git_revision",
    "insight_to_chrome",
    "is_enabled",
    "merge_counter_totals",
    "metrics_table",
    "new_run_id",
    "span",
    "span_summary_table",
    "spans_to_chrome",
    "traced",
    "worker_config",
    "write_chrome_trace",
    "write_insight_trace",
    "write_metrics",
]
