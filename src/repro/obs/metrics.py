"""Metrics registry: counters, gauges, and histograms with a funnel.

One process-global :class:`MetricsRegistry` absorbs the framework's
operational counters — replayed events, cache hits/misses/rebuilds,
retries, quarantines, per-stage wall-clock — so they stop living as
ad-hoc attributes scattered over cache and engine instances and start
surviving process boundaries.

Cross-process funnel
--------------------

Pool workers accumulate into their own process-local registry and
periodically ship a **delta** (:meth:`MetricsRegistry.flush_delta`):
counter increments, gauge last-values, and raw histogram observations
since the previous flush.  The parent merges deltas with
:meth:`MetricsRegistry.merge_delta`; because deltas are disjoint
increments, merging is order-independent and idempotent-per-delta, and
an aggregate over N workers equals a single-process run of the same
work.  Histograms keep raw observations (these are stage-granularity
series — hundreds of points, not millions), so merged percentiles are
exact rather than approximated from buckets.
"""

from __future__ import annotations

import math
import threading
from typing import Iterable

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "get_registry",
    "merge_counter_totals",
]


def merge_counter_totals(prior: dict | None, snapshot: dict | None) -> dict:
    """Fold a snapshot's counters into prior cross-sequence totals.

    Used by resumed run manifests: ``prior`` holds the counter totals
    accumulated by earlier sequences of the same run ID, ``snapshot``
    is this session's :meth:`MetricsRegistry.snapshot`.  Returns a new
    ``{name: total}`` map; non-numeric values are ignored.
    """
    merged = {
        str(k): float(v) for k, v in (prior or {}).items()
        if isinstance(v, (int, float))
    }
    for name, value in ((snapshot or {}).get("counters") or {}).items():
        if isinstance(value, (int, float)):
            merged[name] = merged.get(name, 0.0) + value
    return merged


class Counter:
    """Monotonically increasing count (plus the delta since last flush)."""

    __slots__ = ("value", "_delta")

    def __init__(self) -> None:
        self.value = 0
        self._delta = 0

    def inc(self, n: int = 1) -> None:
        self.value += n
        self._delta += n


class Gauge:
    """Last-written value (bus occupancy, queue depth, ...)."""

    __slots__ = ("value", "_dirty")

    def __init__(self) -> None:
        self.value: float | None = None
        self._dirty = False

    def set(self, v: float) -> None:
        self.value = v
        self._dirty = True


class Histogram:
    """Raw-observation histogram with exact percentiles."""

    __slots__ = ("values", "_flushed")

    def __init__(self) -> None:
        self.values: list[float] = []
        self._flushed = 0

    def observe(self, v: float) -> None:
        self.values.append(v)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def sum(self) -> float:
        return math.fsum(self.values)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile (``p`` in [0, 100]); NaN when empty."""
        if not self.values:
            return math.nan
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        ordered = sorted(self.values)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def summary(self) -> dict:
        """Count/sum/min/mean/percentiles/max digest for export."""
        if not self.values:
            return {"count": 0}
        total = self.sum
        return {
            "count": len(self.values),
            "sum": total,
            "min": min(self.values),
            "mean": total / len(self.values),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": max(self.values),
        }


class MetricsRegistry:
    """Named metric instruments, created on first use.

    ``counter``/``gauge``/``histogram`` are get-or-create and safe to
    call from the smpi runtime's rank threads (creation is locked;
    updates on the returned instruments are simple attribute writes,
    atomic enough under the GIL for our integer/append operations).
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # -- instruments --------------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(name, Counter())
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.setdefault(name, Gauge())
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            with self._lock:
                h = self._histograms.setdefault(name, Histogram())
        return h

    # -- snapshots and the cross-process funnel -----------------------------
    def counters(self, prefix: str = "") -> dict[str, int]:
        """Current counter values (optionally filtered by name prefix)."""
        return {
            n: c.value for n, c in self._counters.items()
            if n.startswith(prefix)
        }

    def snapshot(self) -> dict:
        """Full JSON-ready snapshot (histograms as summaries)."""
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {
                n: g.value for n, g in self._gauges.items()
                if g.value is not None
            },
            "histograms": {
                n: h.summary() for n, h in self._histograms.items()
            },
        }

    def flush_delta(self) -> dict:
        """Changes since the previous flush (the worker -> parent unit).

        Returns ``{"counters": {name: increment}, "gauges": {name:
        value}, "histograms": {name: [observations]}}`` — empty maps
        when nothing changed, so an idle flush is a tiny payload.
        """
        counters = {}
        for n, c in self._counters.items():
            if c._delta:
                counters[n] = c._delta
                c._delta = 0
        gauges = {}
        for n, g in self._gauges.items():
            if g._dirty:
                gauges[n] = g.value
                g._dirty = False
        histograms = {}
        for n, h in self._histograms.items():
            if len(h.values) > h._flushed:
                histograms[n] = h.values[h._flushed:]
                h._flushed = len(h.values)
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def merge_delta(self, delta: dict | None) -> None:
        """Absorb a :meth:`flush_delta` payload from another process."""
        if not delta:
            return
        for n, inc in delta.get("counters", {}).items():
            self.counter(n).inc(inc)
        for n, v in delta.get("gauges", {}).items():
            self.gauge(n).set(v)
        for n, values in delta.get("histograms", {}).items():
            self.histogram(n).values.extend(values)

    def observe_many(self, name: str, values: Iterable[float]) -> None:
        """Bulk histogram observation (merge and import paths)."""
        self.histogram(name).values.extend(values)

    def reset(self) -> None:
        """Drop every instrument (test isolation)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-global registry all framework instrumentation writes to.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global :class:`MetricsRegistry`."""
    return _REGISTRY
