"""Exporters: Perfetto/Chrome trace JSON and plain-text summaries.

The span tree collected by :mod:`repro.obs.spans` (parent process and
pool workers alike) exports to the Chrome trace-event format, which
both ``chrome://tracing`` and https://ui.perfetto.dev load directly.
Each OS process becomes a Perfetto process track and each thread a
thread track; replay spans that carry ``sim_seconds`` additionally
paint a *simulated-time* track, so the Dimemas-clock cost of a replay
sits visually next to its host wall-clock cost.

For terminals, :func:`span_summary_table` aggregates the same spans
into a per-stage table in the style of
:func:`repro.paraver.stats.profile_table`, and
:func:`metrics_table` renders the registry snapshot.
"""

from __future__ import annotations

import json
from pathlib import Path

from .metrics import MetricsRegistry

__all__ = [
    "insight_to_chrome", "metrics_table", "span_summary_table",
    "spans_to_chrome", "write_chrome_trace", "write_insight_trace",
    "write_metrics",
]

#: Synthetic thread id of the simulated-time overlay track.
_SIM_TID = 999_999

#: Synthetic process id base of the wait-attribution overlay tracks
#: (one Perfetto process per analyzed replay variant, counting down).
INSIGHT_PID = 999_998


def _as_dicts(span_records) -> list[dict]:
    return [s if isinstance(s, dict) else s.to_dict() for s in span_records]


def spans_to_chrome(span_records, sim_overlay: bool = True) -> dict:
    """Chrome trace-event document of a span set.

    ``span_records`` may mix :class:`~repro.obs.spans.SpanRecord`
    objects and their dict form (worker spans arrive as dicts).  With
    ``sim_overlay`` on, every span annotated with ``sim_seconds`` also
    emits an event on a dedicated "simulated time" track of the same
    process, anchored at the span's start.
    """
    records = _as_dicts(span_records)
    if not records:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    origin = min(s["t0"] for s in records)
    events: list[dict] = []
    seen: set[tuple] = set()

    def meta(pid: int, tid: int, what: str, name: str) -> None:
        if (pid, tid, what) in seen:
            return
        seen.add((pid, tid, what))
        events.append({
            "ph": "M", "pid": pid, "tid": tid, "name": what,
            "args": {"name": name},
        })

    tids: dict[tuple, int] = {}
    for s in records:
        pid = s.get("pid") or 0
        tid = tids.setdefault((pid, s.get("tid")), len(
            [k for k in tids if k[0] == pid]
        ) + 1)
        meta(pid, 0, "process_name", f"repro pid {pid}")
        meta(pid, tid, "thread_name", f"thread {tid}")
        ts = (s["t0"] - origin) * 1e6
        dur = max(s["t1"] - s["t0"], 0.0) * 1e6
        events.append({
            "ph": "X", "pid": pid, "tid": tid, "name": s["name"],
            "cat": s["name"].split(".", 1)[0], "ts": ts, "dur": dur,
            "args": dict(s.get("attrs") or {}),
        })
        sim = (s.get("attrs") or {}).get("sim_seconds")
        if sim_overlay and sim is not None:
            meta(pid, _SIM_TID, "thread_name", "simulated (Dimemas) time")
            events.append({
                "ph": "X", "pid": pid, "tid": _SIM_TID,
                "name": f"{s['name']} [simulated]", "cat": "simulated",
                "ts": ts, "dur": float(sim) * 1e6,
                "args": {"host_wall_seconds": s["t1"] - s["t0"],
                         "sim_seconds": sim},
            })
    events.sort(key=lambda e: (e["ph"] != "M", e.get("ts", 0.0)))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str | Path, span_records,
                       sim_overlay: bool = True) -> Path:
    """Write the Perfetto-loadable trace JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(spans_to_chrome(span_records, sim_overlay)))
    return path


def insight_to_chrome(tracks) -> dict:
    """Chrome trace of wait-attribution overlays on *simulated* time.

    ``tracks`` is an iterable of ``(label, attribution, collector)``
    triples — a :class:`repro.insight.WaitAttribution` plus its
    optional :class:`repro.insight.InsightCollector` (duck-typed: this
    module stays import-independent of :mod:`repro.insight`).  Each
    triple becomes one Perfetto process (pid counting down from
    :data:`INSIGHT_PID`) holding

    * one thread track per rank painting its cause-labelled wait
      slices, and
    * ``active transfers`` / ``queued transfers`` counter tracks from
      the collector's occupancy timeline.

    Timestamps are simulated seconds rendered as microseconds, so the
    overlay aligns with the simulated-time track
    :func:`spans_to_chrome` emits.
    """
    events: list[dict] = []
    for i, (label, attr, col) in enumerate(tracks):
        pid = INSIGHT_PID - i
        events.append({
            "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
            "args": {"name": f"insight: {label} (simulated time)"},
        })
        ranks_seen: set[int] = set()
        for seg in attr.segments:
            tid = seg.rank + 1
            if seg.rank not in ranks_seen:
                ranks_seen.add(seg.rank)
                events.append({
                    "ph": "M", "pid": pid, "tid": tid,
                    "name": "thread_name",
                    "args": {"name": f"rank {seg.rank} wait causes"},
                })
            events.append({
                "ph": "X", "pid": pid, "tid": tid, "name": seg.cause,
                "cat": "wait", "ts": seg.t0 * 1e6,
                "dur": (seg.t1 - seg.t0) * 1e6,
                "args": {"state": seg.state, "src": seg.src,
                         "size": seg.size},
            })
        if col is not None:
            for t, active, queued in col.occupancy:
                events.append({
                    "ph": "C", "pid": pid, "tid": 0,
                    "name": "network occupancy", "ts": t * 1e6,
                    "args": {"active": active, "queued": queued},
                })
    events.sort(key=lambda e: (e["ph"] != "M", e.get("ts", 0.0)))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_insight_trace(path: str | Path, tracks) -> Path:
    """Write the wait-attribution overlay trace JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(insight_to_chrome(tracks)))
    return path


def span_summary_table(span_records, width: int = 28) -> str:
    """Per-stage aggregate of a span set (profile_table style).

    One row per span name: calls, total/mean/max wall, and the share
    of the observed interval (first start to last end) the stage
    covered.  Shares can exceed 100 % — stages nest and workers run
    concurrently; the column answers "where would tuning pay", not
    "what sums to one".
    """
    records = _as_dicts(span_records)
    if not records:
        return "(no spans recorded)"
    t_lo = min(s["t0"] for s in records)
    t_hi = max(s["t1"] for s in records)
    wall = max(t_hi - t_lo, 1e-12)
    agg: dict[str, list[float]] = {}
    for s in records:
        dur = max(s["t1"] - s["t0"], 0.0)
        row = agg.setdefault(s["name"], [0, 0.0, 0.0])
        row[0] += 1
        row[1] += dur
        row[2] = max(row[2], dur)
    header = (f"{'stage':<{width}} {'calls':>7} {'total s':>10} "
              f"{'mean ms':>10} {'max ms':>10} {'% wall':>7}")
    lines = [header]
    for name in sorted(agg, key=lambda n: -agg[n][1]):
        calls, total, peak = agg[name]
        lines.append(
            f"{name[:width]:<{width}} {int(calls):>7} {total:>10.3f} "
            f"{1e3 * total / calls:>10.3f} {1e3 * peak:>10.3f} "
            f"{100 * total / wall:>6.1f}%"
        )
    lines.append(f"observed wall-clock: {wall:.3f} s "
                 f"({len(records)} spans)")
    return "\n".join(lines)


def metrics_table(registry: MetricsRegistry, prefix: str = "") -> str:
    """Plain-text rendering of the registry snapshot."""
    snap = registry.snapshot()
    lines: list[str] = []
    counters = {n: v for n, v in snap["counters"].items()
                if n.startswith(prefix)}
    if counters:
        lines.append("counters:")
        lines += [f"  {n:<38} {v:>12}" for n, v in sorted(counters.items())]
    gauges = {n: v for n, v in snap["gauges"].items() if n.startswith(prefix)}
    if gauges:
        lines.append("gauges:")
        lines += [f"  {n:<38} {v:>12.6g}" for n, v in sorted(gauges.items())]
    hists = {n: s for n, s in snap["histograms"].items()
             if n.startswith(prefix) and s.get("count")}
    if hists:
        lines.append("histograms:                                   "
                     "count       mean        p50        p90        max")
        for n, s in sorted(hists.items()):
            lines.append(
                f"  {n:<38} {s['count']:>9} {s['mean']:>10.4g} "
                f"{s['p50']:>10.4g} {s['p90']:>10.4g} {s['max']:>10.4g}"
            )
    return "\n".join(lines) if lines else "(no metrics recorded)"


def write_metrics(path: str | Path, registry: MetricsRegistry,
                  run_id: str | None = None) -> Path:
    """Write the registry snapshot as JSON; returns the path."""
    doc = {"run_id": run_id, "metrics": registry.snapshot()}
    path = Path(path)
    path.write_text(json.dumps(doc, indent=1, default=repr) + "\n")
    return path
