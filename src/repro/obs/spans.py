"""Hierarchical span tracer: who spent the wall-clock, and inside what.

The pipeline's cost structure is a tree — a ``repro-report`` run
contains grid executions, which contain grid points, which contain
trace builds, transforms, and replays, which contain matching and the
event-queue drain.  A *span* marks one node of that tree::

    with span("replay.simulate", nranks=64) as sp:
        ...
        sp.annotate(events=loop.executed)

Cost model
----------

Collection is **off by default** and the disabled path is a single
module-global check returning a shared no-op context manager — no
allocation, no clock read, no stack maintenance.  Instrumentation is
deliberately *coarse* (stage granularity, never per simulated event),
so even the enabled path costs microseconds per span against
milliseconds of replaying.  The inner replay loop is observed through
sampled gauges (:mod:`repro.dimemas.engine`'s depth sampler) rather
than spans, following the Caliper always-on-annotation idea: cheap
collection in the hot path, aggregation and export decoupled from it.

Timestamps are ``time.perf_counter()`` values plus a per-process epoch
offset, so spans recorded in different worker processes land on one
comparable wall-clock axis when merged by the run manifest.
"""

from __future__ import annotations

import functools
import itertools
import threading
import time
from typing import Any, Callable

__all__ = [
    "SpanRecord", "disable", "enable", "flush", "is_enabled", "span",
    "take_epoch", "traced",
]

#: Offset turning ``perf_counter`` readings into absolute wall-clock
#: seconds (comparable across processes on one host).
_EPOCH = time.time() - time.perf_counter()


def take_epoch() -> float:
    """This process's perf_counter -> wall-clock offset."""
    return _EPOCH


class SpanRecord:
    """One finished span (plain data, cheap to pickle as a dict)."""

    __slots__ = ("name", "t0", "t1", "parent", "sid", "tid", "attrs")

    def __init__(self, name: str, t0: float, t1: float, parent: int | None,
                 sid: int, tid: int, attrs: dict):
        self.name = name
        self.t0 = t0
        self.t1 = t1
        self.parent = parent
        self.sid = sid
        self.tid = tid
        self.attrs = attrs

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def to_dict(self) -> dict:
        """Picklable/JSON form (timestamps shifted to wall-clock)."""
        return {
            "name": self.name,
            "t0": self.t0 + _EPOCH,
            "t1": self.t1 + _EPOCH,
            "parent": self.parent,
            "sid": self.sid,
            "tid": self.tid,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"SpanRecord({self.name!r}, {self.duration * 1e3:.3f} ms, "
                f"sid={self.sid}, parent={self.parent})")


class _NullSpan:
    """Shared do-nothing span: the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def annotate(self, **attrs) -> None:
        pass


#: The singleton every disabled ``span()`` call returns.
NULL_SPAN = _NullSpan()


class _Tracer:
    """Per-process span collector (one global instance)."""

    def __init__(self) -> None:
        self.enabled = False
        self.records: list[SpanRecord] = []
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._lock = threading.Lock()

    def stack(self) -> list:
        st = getattr(self._local, "stack", None)
        if st is None:
            st = self._local.stack = []
        return st


_TRACER = _Tracer()


class _Span:
    """Live span context manager (enabled path)."""

    __slots__ = ("name", "attrs", "sid", "_parent", "_t0")

    def __init__(self, name: str, attrs: dict):
        self.name = name
        self.attrs = attrs
        self.sid = next(_TRACER._ids)
        self._parent: int | None = None
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        stack = _TRACER.stack()
        self._parent = stack[-1] if stack else None
        stack.append(self.sid)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        t1 = time.perf_counter()
        stack = _TRACER.stack()
        if stack and stack[-1] == self.sid:
            stack.pop()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        rec = SpanRecord(
            self.name, self._t0, t1, self._parent, self.sid,
            threading.get_ident(), self.attrs,
        )
        with _TRACER._lock:
            _TRACER.records.append(rec)
        return False

    def annotate(self, **attrs) -> None:
        """Attach result attributes (events replayed, cache outcome, ...)."""
        self.attrs.update(attrs)


def span(name: str, **attrs: Any):
    """Open a span named ``name`` (context manager).

    With collection disabled (the default) this returns a shared no-op
    object; with it enabled, a :class:`_Span` that records its wall
    interval, nesting parent, and attributes on exit.
    """
    if not _TRACER.enabled:
        return NULL_SPAN
    return _Span(name, attrs)


def traced(name: str | None = None) -> Callable:
    """Decorator form: trace every call of the wrapped function."""

    def decorate(fn: Callable) -> Callable:
        label = name or f"{fn.__module__.rsplit('.', 1)[-1]}.{fn.__qualname__}"

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _TRACER.enabled:
                return fn(*args, **kwargs)
            with span(label):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def enable() -> None:
    """Turn span collection on (idempotent)."""
    _TRACER.enabled = True


def disable() -> None:
    """Turn span collection off and drop any active nesting state."""
    _TRACER.enabled = False
    _TRACER._local = threading.local()


def is_enabled() -> bool:
    return _TRACER.enabled


def flush() -> list[SpanRecord]:
    """Drain and return the finished spans collected so far."""
    with _TRACER._lock:
        out, _TRACER.records = _TRACER.records, []
    return out
