"""Run manifests: one ID, one event log, one summary per run.

Every observed CLI/engine run gets a **run ID** and a directory::

    <obs-dir>/<run-id>/
        events.jsonl     # append-only structured event log
        manifest.json    # written at finalize: args, git rev, timings,
                         # metric snapshot, failure detail
        trace.json       # Perfetto/Chrome trace of the span tree
                         # (written by the CLI when profiling)

Worker processes of the parallel experiment engine do not write here
directly — their spans, metric deltas, and events ride back to the
parent piggy-backed on task results (:func:`collect_worker_payload` /
:meth:`RunContext.absorb_worker`), so a parallel grid produces *one*
coherent event log and metric set instead of N partial ones.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
import uuid
from pathlib import Path
from typing import Any, TextIO

from .. import __version__
from . import spans
from .metrics import get_registry, merge_counter_totals

__all__ = [
    "RunContext", "collect_worker_payload", "configure_worker",
    "current_run", "git_revision", "new_run_id", "worker_config",
]


def new_run_id() -> str:
    """Sortable, collision-proof run identifier."""
    stamp = time.strftime("%Y%m%d-%H%M%S", time.localtime())
    return f"{stamp}-{uuid.uuid4().hex[:8]}"


def git_revision() -> str | None:
    """The repository revision this run executed, when discoverable."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=5.0,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


#: The active run of this process (at most one; None when unobserved).
_CURRENT: "RunContext | None" = None


def current_run() -> "RunContext | None":
    """The process's active :class:`RunContext`, if a run is open."""
    return _CURRENT


class RunContext:
    """Lifecycle and sinks of one observed run.

    Opens the run directory and the JSONL event log immediately;
    :meth:`finalize` snapshots the metrics registry, drains the span
    tracer, and publishes ``manifest.json``.  Reentrant use is not
    supported — one run per process at a time.
    """

    def __init__(
        self,
        out_dir: str | Path,
        argv: list[str] | None = None,
        command: str | None = None,
        run_id: str | None = None,
        seed: int | None = None,
        resume: bool = False,
    ):
        global _CURRENT
        if resume and run_id is None:
            raise ValueError("resume requires an explicit run_id")
        self.run_id = run_id or new_run_id()
        self.dir = Path(out_dir) / self.run_id
        if resume and not self.dir.is_dir():
            raise FileNotFoundError(
                f"cannot resume run {self.run_id!r}: no run directory "
                f"under {out_dir}"
            )
        self.dir.mkdir(parents=True, exist_ok=True)
        self.command = command
        self.argv = list(argv) if argv is not None else list(sys.argv)
        self.seed = seed
        self.started = time.time()
        self._t0 = time.perf_counter()
        self.worker_events = 0
        self.worker_pids: set[int] = set()
        self.spans: list[dict] = []
        #: Monotone run-sequence number: 1 for a fresh run, previous+1
        #: for every resume of the same run ID.
        self.run_seq = 1
        #: Metric totals accumulated by earlier sequences of this run
        #: (merged into the *manifest document* at finalize; the live
        #: registry stays session-local so per-session assertions like
        #: "zero points re-executed" keep meaning something).
        self._prior_counters: dict[str, float] = {}
        self._events_path = self.dir / "events.jsonl"
        self.manifest_path = self.dir / "manifest.json"
        if resume:
            prior = self._load_prior_manifest()
            self.run_seq = int(prior.get("run_seq", 1)) + 1
            # merged_counters already folds every earlier sequence in;
            # fall back to the plain snapshot for pre-resume manifests.
            merged = (prior.get("merged_counters")
                      or (prior.get("metrics") or {}).get("counters") or {})
            self._prior_counters = {
                str(k): float(v) for k, v in merged.items()
                if isinstance(v, (int, float))
            }
        self._events: TextIO | None = self._events_path.open(
            "a", buffering=1, encoding="utf-8",
        )
        _CURRENT = self
        self.record("run_start", command=command, argv=self.argv,
                    pid=os.getpid(), run_seq=self.run_seq)
        if resume:
            self.record("resumed_from", run_id=self.run_id,
                        prior_seq=self.run_seq - 1)

    def _load_prior_manifest(self) -> dict:
        """The previous sequence's manifest ({} when absent/corrupt)."""
        try:
            doc = json.loads(self.manifest_path.read_text())
        except (OSError, ValueError):
            return {}
        return doc if isinstance(doc, dict) else {}

    # -- event log -----------------------------------------------------------
    def record(self, kind: str, **fields: Any) -> None:
        """Append one structured event to ``events.jsonl``."""
        if self._events is None:
            return
        event = {"ts": time.time(), "kind": kind, "run": self.run_id}
        event.update(fields)
        try:
            self._events.write(json.dumps(event, default=repr) + "\n")
        except (OSError, ValueError):
            pass  # a full disk must never take the run down

    # -- the worker funnel ---------------------------------------------------
    def absorb_worker(self, payload: dict | None) -> None:
        """Merge one worker task's observability payload into this run.

        ``payload`` is what :func:`collect_worker_payload` produced in
        the worker: metric deltas feed the parent registry, spans join
        the parent's span set (keeping the worker PID for per-process
        Perfetto tracks), and events append to the shared log.
        """
        if not payload:
            return
        pid = payload.get("pid")
        if pid is not None:
            self.worker_pids.add(pid)
        get_registry().merge_delta(payload.get("metrics"))
        for sp in payload.get("spans", ()):
            sp.setdefault("pid", pid)
            self.spans.append(sp)
        for ev in payload.get("events", ()):
            self.worker_events += 1
            self.record("worker", pid=pid, **ev)

    def drain_spans(self) -> list[dict]:
        """All spans of the run so far: local (drained now) + absorbed."""
        pid = os.getpid()
        for rec in spans.flush():
            d = rec.to_dict()
            d["pid"] = pid
            self.spans.append(d)
        return self.spans

    # -- finalize ------------------------------------------------------------
    def finalize(self, status: str = "ok", **extra: Any) -> dict:
        """Write ``manifest.json`` and close the event log.

        Returns the manifest document.  Idempotent: a second call
        rewrites the manifest with updated timings.
        """
        global _CURRENT
        self.drain_spans()
        wall = time.perf_counter() - self._t0
        snapshot = get_registry().snapshot()
        merged = merge_counter_totals(self._prior_counters, snapshot)
        manifest = {
            "run_id": self.run_id,
            "command": self.command,
            "argv": self.argv,
            "seed": self.seed,
            "status": status,
            "version": __version__,
            "python": sys.version.split()[0],
            "git_rev": git_revision(),
            "started": self.started,
            "wall_seconds": wall,
            "pid": os.getpid(),
            "run_seq": self.run_seq,
            "worker_pids": sorted(self.worker_pids),
            "worker_events": self.worker_events,
            "spans": len(self.spans),
            "metrics": snapshot,
            # Counter totals across every sequence of this run ID (the
            # per-session snapshot above stays untouched so session
            # assertions keep their meaning).
            "merged_counters": merged,
        }
        manifest.update(extra)
        self.record("run_end", status=status, wall_seconds=wall)
        tmp = self.manifest_path.with_name(
            f"{self.manifest_path.name}.{os.getpid()}.tmp"
        )
        tmp.write_text(json.dumps(manifest, indent=1, default=repr) + "\n")
        tmp.replace(self.manifest_path)
        if self._events is not None:
            self._events.close()
            self._events = None
        if _CURRENT is self:
            _CURRENT = None
        return manifest


# --------------------------------------------------------------------------- #
# Worker-process side of the funnel.
# --------------------------------------------------------------------------- #

def worker_config() -> dict:
    """Picklable observability spec for pool-worker initializers."""
    return {"spans": spans.is_enabled()}


def configure_worker(spec: dict | None) -> None:
    """Apply a :func:`worker_config` spec inside a worker process.

    A forked worker inherits the parent registry mid-flight, including
    its un-flushed counter deltas and span buffer; both are drained
    here (and discarded) so the worker's first payload ships only what
    *this process* observed — otherwise every worker would re-report
    the parent's pre-fork activity and the funnel would double-count.
    """
    get_registry().flush_delta()
    spans.flush()
    if spec and spec.get("spans"):
        spans.enable()
    else:
        spans.disable()


def collect_worker_payload(events: list[dict] | None = None) -> dict:
    """Everything a worker observed since its last task completed.

    Cheap when idle: an empty metrics delta and no spans serialize to
    a few bytes riding the existing result pickle.
    """
    return {
        "pid": os.getpid(),
        "metrics": get_registry().flush_delta(),
        "spans": [rec.to_dict() for rec in spans.flush()],
        "events": events or [],
    }
