"""Crash-safe campaign state: write-ahead journal + atomic resume.

The paper's evaluation campaigns (bandwidth/latency/bus sweeps, the
full report, scaling ladders, calibrations) are long grids of replays.
This module makes every such campaign *killable and resumable*:

* :class:`CheckpointJournal` — an append-only, checksummed, fsync'd
  ``journal.jsonl`` under the run directory.  Every grid-point
  completion (results, durations, and :class:`PointFailure`
  quarantine decisions alike) is appended as one self-verifying line
  *before* the campaign proceeds, so a SIGKILL at any instant loses at
  most the points whose completions had not yet been journaled.
* :func:`replay_journal` — reads a journal back, verifying each line's
  checksum and schema; a truncated or garbled line (torn write of a
  killed process, bit flip) is detected, counted, and dropped — the
  affected point simply re-runs.  Replay is idempotent: replaying a
  journal twice yields exactly the state of replaying it once.
* :func:`graceful_drain` — SIGTERM/SIGINT turn into a *drain*: the
  engine stops dispatching, journals in-flight completions, and raises
  :class:`CampaignInterrupted`, which the CLI maps to the distinct
  "interrupted, resumable" exit code 5.  A second signal forces the
  old hard-interrupt path (exit 130).
* :func:`free_disk_bytes` / :func:`disk_low` — the low-water guard:
  journal (and cache) writes degrade to warnings instead of crashing
  the campaign when the disk is nearly full.
* :func:`list_runs` — enumerate resumable runs under an obs dir with
  their point-completion progress (``repro-report --list-runs``).

On ``--resume <run-id>`` the engine replays the journal, verifies each
entry against the requesting point's spec digest, serves verified
completions without re-execution (``checkpoint.replayed`` counts
them), and re-enqueues only missing or corrupt points — under the
*same* run manifest (merged metric totals, a ``resumed_from`` event,
monotone run-sequence numbers).
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import logging
import os
import signal
import threading
from pathlib import Path
from typing import Any, Iterator

from ..obs import get_registry
from .cache import content_key, disk_low, free_disk_bytes, min_free_bytes

__all__ = [
    "CampaignInterrupted",
    "CheckpointJournal",
    "JournalEntry",
    "disk_low",
    "free_disk_bytes",
    "graceful_drain",
    "list_runs",
    "min_free_bytes",
    "point_key",
    "replay_journal",
]

_log = logging.getLogger("repro.experiments.checkpoint")

#: Journal line schema.  Bumping it invalidates (drops, re-runs) every
#: entry written by earlier code instead of misreading it.
JOURNAL_SCHEMA = 1


class CampaignInterrupted(RuntimeError):
    """The campaign drained after SIGTERM/SIGINT and can be resumed.

    ``run_id`` names the run to pass to ``--resume`` (None when the
    campaign ran without a journal and is therefore *not* resumable —
    the CLI then falls back to the conventional 130 exit).
    ``remaining`` counts grid points that had not completed when the
    drain finished.
    """

    def __init__(self, run_id: str | None = None, remaining: int = 0):
        self.run_id = run_id
        self.remaining = remaining
        self.resumable = run_id is not None
        what = f"run {run_id}" if run_id else "campaign"
        super().__init__(
            f"{what} interrupted; {remaining} grid point(s) left undone"
        )


# --------------------------------------------------------------------------- #
# Point identity: the spec digest journal entries are verified against.
# --------------------------------------------------------------------------- #

def point_key(point) -> str:
    """Versioned content digest of a grid point's full spec.

    Covers every field of the point — app, variant, scale, chunk
    count, platform overrides (perturbation schedule included), app
    parameters, and the machine config itself — so no two distinct
    replays can alias one journal entry.
    """
    machine = point.machine
    perturb = getattr(point, "perturb", None)
    return content_key(
        kind="grid_point",
        app=point.app,
        variant=point.variant,
        nranks=point.nranks,
        chunks=point.chunks,
        bandwidth_mbps=point.bandwidth_mbps,
        buses=point.buses,
        latency=point.latency,
        app_params=point.app_params,
        machine=None if machine is None else dataclasses.asdict(machine),
        perturb=None if perturb is None else perturb.to_dict(),
    )


# --------------------------------------------------------------------------- #
# The journal.
# --------------------------------------------------------------------------- #

def _seal_line(seq: int, entry: dict) -> str:
    """One self-verifying journal line (checksum covers seq + entry)."""
    body = json.dumps({"seq": seq, "entry": entry},
                      sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(body.encode()).hexdigest()
    return json.dumps(
        {"schema": JOURNAL_SCHEMA, "sha256": digest, "seq": seq,
         "entry": entry},
        sort_keys=True, separators=(",", ":"),
    )


def _verify_line(line: str) -> tuple[int, dict] | None:
    """Parse and verify one journal line; None when torn or garbled."""
    try:
        doc = json.loads(line)
    except ValueError:
        return None
    if not isinstance(doc, dict) or doc.get("schema") != JOURNAL_SCHEMA:
        return None
    seq, entry = doc.get("seq"), doc.get("entry")
    if not isinstance(seq, int) or not isinstance(entry, dict):
        return None
    body = json.dumps({"seq": seq, "entry": entry},
                      sort_keys=True, separators=(",", ":"))
    if doc.get("sha256") != hashlib.sha256(body.encode()).hexdigest():
        return None
    return seq, entry


@dataclasses.dataclass(frozen=True)
class JournalEntry:
    """One verified point completion restored from a journal."""

    seq: int
    point: str              # the point's spec digest (:func:`point_key`)
    mode: str               # "result" | "duration" | "failure"
    payload: dict


def replay_journal(path: str | Path) -> tuple[dict[tuple[str, str], JournalEntry], int, int]:
    """Read a journal back: ``({(point, mode): entry}, max_seq, dropped)``.

    Every line is checksum-verified; torn/garbled/foreign-schema lines
    are dropped (and counted) so the affected points re-run instead of
    poisoning the campaign.  Later duplicates win, making replay
    idempotent: replaying twice equals replaying once.
    """
    entries: dict[tuple[str, str], JournalEntry] = {}
    max_seq = 0
    dropped = 0
    try:
        text = Path(path).read_text(encoding="utf-8")
    except FileNotFoundError:
        return entries, max_seq, dropped
    except OSError as exc:
        _log.warning("journal %s unreadable (%s); starting fresh", path, exc)
        return entries, max_seq, dropped
    for line in text.splitlines():
        if not line.strip():
            continue
        verified = _verify_line(line)
        if verified is None:
            dropped += 1
            continue
        seq, entry = verified
        max_seq = max(max_seq, seq)
        pt, mode = entry.get("point"), entry.get("mode")
        if not isinstance(pt, str) or mode not in ("result", "duration",
                                                   "failure"):
            dropped += 1
            continue
        entries[(pt, mode)] = JournalEntry(
            seq=seq, point=pt, mode=mode,
            payload=entry.get("payload") or {},
        )
    if dropped:
        _log.warning(
            "journal %s: dropped %d torn/garbled line(s); the affected "
            "points will re-run", path, dropped,
        )
        get_registry().counter("checkpoint.lines_dropped").inc(dropped)
    return entries, max_seq, dropped


class CheckpointJournal:
    """Write-ahead journal of grid-point completions for one run.

    Opening an existing journal replays it (verified lines only), so a
    resumed engine can serve journaled points without re-execution.
    Appends are checksummed, flushed, and fsync'd before returning —
    the write-ahead contract — unless the disk falls below the
    low-water mark, in which case the journal *degrades*: appends
    become no-ops with a single structured warning and a
    ``checkpoint.degraded`` metric, and the campaign continues
    (resumability is lost for new points, correctness is not).
    """

    def __init__(self, path: str | Path, run_id: str | None = None,
                 fsync: bool | None = None):
        self.path = Path(path)
        self.run_id = run_id
        if fsync is None:
            fsync = os.environ.get("REPRO_JOURNAL_FSYNC", "1") != "0"
        self.fsync = fsync
        self.degraded = False
        self.entries, self._seq, self.dropped = replay_journal(self.path)
        self._appends = 0
        self._lock = threading.Lock()
        self._fh = None
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        except OSError as exc:
            self._degrade(f"journal unwritable: {exc}")

    # -- degradation ---------------------------------------------------------
    def _degrade(self, reason: str) -> None:
        if self.degraded:
            return
        self.degraded = True
        get_registry().counter("checkpoint.degraded").inc()
        _log.warning(
            "checkpoint journal degraded (%s); new completions will NOT "
            "be resumable", reason,
        )

    # -- reads ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    def lookup(self, key: str, mode: str) -> JournalEntry | None:
        """The journaled completion serving (point ``key``, ``mode``).

        A ``result`` entry also serves a ``duration`` request (the
        duration rides inside the result payload); ``failure`` entries
        are returned for either mode — the caller decides whether a
        quarantined point is replayable (degraded engines) or should
        get a fresh chance (strict engines).
        """
        hit = self.entries.get((key, mode))
        if hit is None and mode == "duration":
            hit = self.entries.get((key, "result"))
        if hit is None:
            hit = self.entries.get((key, "failure"))
        return hit

    # -- the write-ahead append ---------------------------------------------
    def record(self, key: str, mode: str, payload: dict) -> None:
        """Append one completion (fsync'd) and index it for lookups."""
        with self._lock:
            self._seq += 1
            seq = self._seq
            self.entries[(key, mode)] = JournalEntry(
                seq=seq, point=key, mode=mode, payload=payload,
            )
            if self._fh is None:
                return
            if disk_low(self.path):
                self._degrade("disk below low-water mark")
                return
            line = _seal_line(seq, {"point": key, "mode": mode,
                                    "payload": payload})
            try:
                self._fh.write(line + "\n")
                self._fh.flush()
                if self.fsync:
                    os.fsync(self._fh.fileno())
            except (OSError, ValueError) as exc:
                self._degrade(f"append failed: {exc}")
                return
            get_registry().counter("checkpoint.journaled").inc()
            self._appends += 1
            _maybe_selfkill_after_append(self._appends)

    def close(self) -> None:
        """Flush and close the journal file (idempotent)."""
        fh, self._fh = self._fh, None
        if fh is not None:
            try:
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())
            except (OSError, ValueError):
                pass
            fh.close()

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _maybe_selfkill_after_append(appends: int) -> None:
    """Chaos-test hook: SIGKILL this process after the Nth append.

    Armed via ``$REPRO_TEST_SELFKILL_AFTER_APPEND``; used by the chaos
    harness to land a kill deterministically *between* a journaled
    completion and the campaign acting on it.
    """
    raw = os.environ.get("REPRO_TEST_SELFKILL_AFTER_APPEND")
    if raw and appends >= int(raw):
        os.kill(os.getpid(), signal.SIGKILL)


# --------------------------------------------------------------------------- #
# Graceful drain: SIGTERM/SIGINT -> stop dispatching, journal, exit 5.
# --------------------------------------------------------------------------- #

@contextlib.contextmanager
def graceful_drain(engine, run_id: str | None = None) -> Iterator[None]:
    """Install drain-on-signal handling around a campaign.

    The first SIGTERM or SIGINT asks ``engine`` to drain: no new grid
    points are dispatched, in-flight completions are journaled, and
    the engine raises :class:`CampaignInterrupted` (CLI exit code 5,
    resumable).  A second signal escalates to ``KeyboardInterrupt``
    (the conventional hard-interrupt path, exit 130).

    Outside the main thread — or wherever ``signal.signal`` is
    unavailable — this is a no-op wrapper; the engine can still be
    drained programmatically via :meth:`ExperimentEngine.request_drain`.
    """
    seen = {"count": 0}

    def _handler(signum, frame):
        seen["count"] += 1
        if seen["count"] == 1:
            name = signal.Signals(signum).name
            _log.warning(
                "%s received: draining campaign (journal + caches); "
                "signal again to force-quit", name,
            )
            engine.request_drain()
            return
        raise KeyboardInterrupt

    previous: dict[int, Any] = {}
    try:
        for sig in (signal.SIGTERM, signal.SIGINT):
            previous[sig] = signal.signal(sig, _handler)
    except ValueError:
        # Not the main thread: signals cannot be routed here.
        previous = {}
    try:
        yield
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)


# --------------------------------------------------------------------------- #
# Operator tooling: which runs can I resume?
# --------------------------------------------------------------------------- #

def list_runs(obs_dir: str | Path) -> list[dict]:
    """Enumerate runs under an obs dir with point-completion progress.

    One record per run directory, newest first: ``run_id``, ``command``
    and ``status`` from the manifest (when present), journaled-point
    counts by kind, ``run_seq``, and whether the run looks resumable
    (has a journal and did not finish with status ``ok``).
    """
    root = Path(obs_dir)
    out: list[dict] = []
    if not root.is_dir():
        return out
    for run_dir in sorted((d for d in root.iterdir() if d.is_dir()),
                          reverse=True):
        journal = run_dir / "journal.jsonl"
        manifest_path = run_dir / "manifest.json"
        if not journal.exists() and not manifest_path.exists():
            continue
        manifest: dict = {}
        if manifest_path.exists():
            try:
                manifest = json.loads(manifest_path.read_text())
            except (OSError, ValueError):
                manifest = {}
        entries, _, dropped = replay_journal(journal)
        modes = {"result": 0, "duration": 0, "failure": 0}
        for (_, mode) in entries:
            modes[mode] = modes.get(mode, 0) + 1
        status = manifest.get("status", "unknown")
        out.append({
            "run_id": run_dir.name,
            "command": manifest.get("command"),
            "status": status,
            "run_seq": manifest.get("run_seq", 1),
            "points": len(entries),
            "failures": modes["failure"],
            "dropped_lines": dropped,
            "resumable": journal.exists() and status != "ok",
            "started": manifest.get("started"),
        })
    return out


def render_runs_table(runs: list[dict]) -> str:
    """Human-readable ``--list-runs`` table."""
    if not runs:
        return "no runs found"
    lines = [f"{'run-id':<26} {'seq':>3} {'status':<12} {'points':>6} "
             f"{'failed':>6} {'resumable':>9}  command"]
    for r in runs:
        lines.append(
            f"{r['run_id']:<26} {r['run_seq']:>3} {r['status']:<12} "
            f"{r['points']:>6} {r['failures']:>6} "
            f"{'yes' if r['resumable'] else 'no':>9}  {r['command'] or '-'}"
        )
    return "\n".join(lines)
