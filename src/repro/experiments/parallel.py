"""Parallel experiment engine: fan grids of replays across processes.

The paper's whole evaluation is a grid of replays — every
bandwidth-bisection step, bus count, chunk count, and app variant
re-runs :func:`repro.dimemas.replay.simulate` on some platform.  This
module turns that grid into a schedulable unit:

* :class:`GridPoint` — one fully-described replay: ``(app, variant,
  bandwidth, buses, latency, chunks, nranks, app_params, machine)``;
* :class:`ExperimentEngine` — runs grids serially (``jobs=1``) or on a
  process pool (``jobs=N``), with per-process experiment reuse and
  optional on-disk caches (:class:`~repro.experiments.cache.TraceCache`
  and :class:`~repro.experiments.cache.SimResultCache`) shared by all
  workers, so repeated points are free across processes *and* sessions;
* :func:`expand_grid` / :func:`speedup_grid` — grid builders for the
  Figure 6 style evaluations.

Replay is deterministic, so a parallel grid returns results identical
to the serial run, point for point; scheduling only changes wall-clock.
The engine also powers *speculative batched bisection*
(:func:`repro.experiments.bandwidth.bisect_bandwidth_batched`): instead
of one sequential midpoint probe per round, the whole midpoint tree of
the next few bisection levels is evaluated concurrently, descending
several levels per round with bitwise-identical thresholds.
"""

from __future__ import annotations

import gc
import hashlib
import itertools
import logging
import os
import random as _random
import signal
import tempfile
import threading
import time
import traceback as _tb
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence

from ..dimemas.machine import MachineConfig
from ..dimemas.replay import simulate
from ..dimemas.results import SimResult
from ..obs import (
    collect_worker_payload,
    configure_worker,
    current_run,
    get_registry,
    span as _span,
    worker_config,
)
from .cache import SimResultCache, TraceCache, TraceStore
from .checkpoint import CampaignInterrupted, CheckpointJournal, point_key
from .pipeline import AppExperiment

__all__ = [
    "DegradedBracketError",
    "ExperimentEngine",
    "GridExecutionError",
    "GridPoint",
    "PointFailure",
    "RetryPolicy",
    "WorkerMemoryError",
    "expand_grid",
    "speedup_grid",
]

_log = logging.getLogger("repro.experiments.parallel")


def _normalize_params(params: Mapping | Iterable | None) -> tuple:
    """App parameters as a sorted, hashable, picklable tuple of pairs."""
    if params is None:
        return ()
    items = params.items() if isinstance(params, Mapping) else params
    return tuple(sorted((str(k), v) for k, v in items))


@dataclass(frozen=True)
class GridPoint:
    """One replay of the experiment grid (hashable and picklable).

    ``bandwidth_mbps`` / ``buses`` / ``latency`` override the baseline
    platform exactly like the corresponding
    :meth:`~repro.experiments.pipeline.AppExperiment.simulate` keyword
    arguments (``"default"`` buses = keep the baseline).  ``machine``
    overrides the baseline platform itself; ``None`` uses the
    application's paper test bed.  ``perturb`` is an optional
    :class:`~repro.perturb.PerturbationSchedule` applied at replay time
    (degraded platform, same trace).
    """

    app: str
    variant: str = "original"
    nranks: int = 64
    chunks: int = 4
    bandwidth_mbps: float | None = None
    buses: int | None | str = "default"
    latency: float | None = None
    app_params: tuple = ()
    machine: MachineConfig | None = None
    perturb: object | None = None

    def experiment_key(self) -> tuple:
        """Identity of the underlying traced experiment (platform
        overrides excluded — they share one trace; perturbation is a
        replay-time platform override too)."""
        return (self.app, self.nranks, self.chunks, self.app_params, self.machine)


def expand_grid(
    apps: Sequence[str],
    variants: Sequence[str] = ("original",),
    bandwidths: Sequence[float | None] = (None,),
    buses: Sequence[int | None | str] = ("default",),
    latencies: Sequence[float | None] = (None,),
    chunks: Sequence[int] = (4,),
    nranks: int = 64,
    app_params: Mapping | None = None,
    machine: MachineConfig | None = None,
    perturbs: Sequence[object | None] = (None,),
) -> list[GridPoint]:
    """Cartesian grid of points, in deterministic iteration order."""
    params = _normalize_params(app_params)
    return [
        GridPoint(
            app=a, variant=v, nranks=nranks, chunks=c,
            bandwidth_mbps=bw, buses=b, latency=lat,
            app_params=params, machine=machine, perturb=pert,
        )
        for a, v, c, bw, b, lat, pert in itertools.product(
            apps, variants, chunks, bandwidths, buses, latencies, perturbs
        )
    ]


# --------------------------------------------------------------------------- #
# Failure handling: retry policy, quarantine sentinel, grid errors.
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class RetryPolicy:
    """How the engine reacts when a grid point fails in a worker.

    ``max_attempts`` bounds how often one point is tried before it is
    quarantined; between attempts the engine sleeps
    ``backoff * backoff_factor ** (attempt - 1)`` seconds.
    ``jitter`` (0..1) spreads that sleep uniformly over
    ``[base * (1 - jitter), base]`` — full jitter at ``1.0`` — so
    simultaneous failures (a recycled pool resubmitting every in-flight
    point) do not retry in lockstep.  ``point_timeout`` (seconds of
    wall clock per in-flight point, ``None`` = unlimited) converts a
    hung worker into a recoverable failure: the pool is recycled and
    the point charged one attempt.
    """

    max_attempts: int = 3
    backoff: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.0
    point_timeout: float | None = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.point_timeout is not None and self.point_timeout <= 0:
            raise ValueError(
                f"point_timeout must be positive, got {self.point_timeout}"
            )

    def delay(self, attempt: int, rng=None) -> float:
        """Backoff (seconds) after failed attempt number ``attempt``.

        With ``jitter`` and an ``rng`` (any object with ``random()``),
        draws uniformly from ``[base * (1 - jitter), base]``; without
        either, the exact exponential base.
        """
        base = self.backoff * self.backoff_factor ** (attempt - 1)
        if self.jitter > 0.0 and rng is not None:
            return base * (1.0 - self.jitter) + rng.random() * base * self.jitter
        return base


@dataclass(frozen=True)
class PointFailure:
    """Sentinel standing in for a grid point that exhausted its retries.

    In degraded mode (:class:`ExperimentEngine` with ``degraded=True``)
    these appear in :meth:`ExperimentEngine.run_grid` /
    :meth:`~ExperimentEngine.durations` output slots instead of results;
    in strict mode they ride inside :class:`GridExecutionError`.
    ``kind`` is ``"exception"`` (the replay raised), ``"timeout"`` (the
    point blew its wall-clock budget), or ``"pool_crash"`` (a worker
    process died while the point was in flight).

    ``attempt_history`` keeps one ``(kind, seconds, error)`` triple per
    attempt, in order, and ``traceback`` the formatted traceback of the
    last attempt when one was available (remote tracebacks from pool
    workers included) — :meth:`describe` stays a one-liner,
    :meth:`detail` renders the full post-mortem.
    """

    point: GridPoint
    kind: str
    error: str
    attempts: int
    attempt_history: tuple = field(default=())
    traceback: str = ""

    def describe(self) -> str:
        return (
            f"{self.point.app}/{self.point.variant} "
            f"(bw={self.point.bandwidth_mbps}, buses={self.point.buses}, "
            f"lat={self.point.latency}): {self.kind} after "
            f"{self.attempts} attempt(s): {self.error}"
        )

    def detail(self) -> str:
        """Multi-line account: every attempt's fate plus the traceback."""
        lines = [self.describe()]
        for i, (kind, secs, error) in enumerate(self.attempt_history, 1):
            lines.append(f"  attempt {i}: {kind} after {secs:.3f}s: {error}")
        if self.traceback:
            lines.append("  worker traceback (last attempt):")
            lines.extend(
                "    " + ln for ln in self.traceback.rstrip().splitlines()
            )
        return "\n".join(lines)


class GridExecutionError(RuntimeError):
    """One or more grid points kept failing (strict mode).

    ``failures`` lists one :class:`PointFailure` per dead point; the
    points that did succeed are not reported here — re-run in degraded
    mode to get them alongside the sentinels.
    """

    def __init__(self, failures: Sequence[PointFailure]):
        self.failures = list(failures)
        lines = "\n".join(f"  {f.describe()}" for f in self.failures)
        super().__init__(
            f"{len(self.failures)} grid point(s) failed permanently:\n{lines}"
        )


class DegradedBracketError(RuntimeError):
    """A bisection bracket depends on probes that failed.

    Bisection walks a decision tree: a missing probe answer would
    silently bias the threshold, so a degraded engine refuses the
    bracket outright instead of guessing.
    """

    def __init__(self, failures: Sequence[PointFailure]):
        self.failures = list(failures)
        lines = "\n".join(f"  {f.describe()}" for f in self.failures)
        super().__init__(
            f"bisection bracket degraded — {len(self.failures)} probe(s) "
            f"failed:\n{lines}"
        )


# --------------------------------------------------------------------------- #
# Point execution (shared by the in-process path and pool workers).
# --------------------------------------------------------------------------- #

def _resolve_experiment(
    point: GridPoint,
    cache_dir: str | None,
    store: dict,
    with_trace_cache: bool = True,
) -> AppExperiment:
    """The (process-local) experiment bundle behind a grid point.

    ``with_trace_cache=False`` skips the persistent trace cache: the
    parent's ship path uses it because the dispatch store already
    persists the packed columns — also publishing the (much larger,
    profile-bearing) original trace would put tens of MB of encoding
    and writing on the dispatch critical path for no campaign benefit.
    """
    key = point.experiment_key()
    exp = store.get(key)
    if exp is None:
        trace_cache = sim_cache = None
        if cache_dir is not None:
            if with_trace_cache:
                trace_cache = TraceCache(Path(cache_dir) / "traces")
            sim_cache = SimResultCache(Path(cache_dir) / "replays")
        exp = AppExperiment(
            point.app,
            nranks=point.nranks,
            chunks=point.chunks,
            app_params=dict(point.app_params),
            machine=point.machine,
            cache=trace_cache,
            sim_cache=sim_cache,
        )
        store[key] = exp
    return exp


def _simulate_point(point: GridPoint, cache_dir: str | None, store: dict) -> SimResult:
    exp = _resolve_experiment(point, cache_dir, store)
    return exp.simulate(
        point.variant,
        bandwidth_mbps=point.bandwidth_mbps,
        buses=point.buses,
        latency=point.latency,
        perturb=point.perturb,
    )


class WorkerMemoryError(MemoryError):
    """The per-worker RSS watchdog tripped before the OOM killer could.

    Raised *inside* a worker (or the serial path) when its resident set
    exceeds the engine's ``rss_limit_mb`` budget — converting an
    impending out-of-memory kill (which would break the whole pool)
    into an ordinary, retryable, journaled point failure.
    """


def _rss_mb() -> float | None:
    """This process's resident set size in MiB (None when unknowable).

    ``$REPRO_TEST_FAKE_RSS_MB`` overrides the reading for deterministic
    watchdog tests.
    """
    fake = os.environ.get("REPRO_TEST_FAKE_RSS_MB")
    if fake:
        try:
            return float(fake)
        except ValueError:
            pass
    try:
        with open("/proc/self/statm") as fh:
            pages = int(fh.read().split()[1])
        return pages * os.sysconf("SC_PAGESIZE") / (1024.0 * 1024.0)
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    except (ImportError, OSError, ValueError):
        return None


def _check_rss_budget(limit_mb: float | None) -> None:
    """Fail the current point when this process is about to OOM."""
    if not limit_mb:
        return
    rss = _rss_mb()
    if rss is not None and rss > limit_mb:
        get_registry().counter("engine.rss_guard_trips").inc()
        raise WorkerMemoryError(
            f"process RSS {rss:.0f} MiB exceeds the {limit_mb:.0f} MiB "
            f"budget; failing this point before the OOM killer fires"
        )


def _maybe_selfkill(env_var: str) -> None:
    """Chaos-test hook: SIGKILL this process when ``env_var`` is set."""
    if os.environ.get(env_var):
        os.kill(os.getpid(), signal.SIGKILL)


def _failure_payload(failure: PointFailure) -> dict:
    """JSON-ready journal payload of a quarantine decision."""
    return {
        "kind": failure.kind,
        "error": failure.error,
        "attempts": failure.attempts,
        "attempt_history": [list(t) for t in failure.attempt_history],
        "traceback": failure.traceback,
    }


def _failure_from_payload(point: GridPoint, payload: dict) -> PointFailure:
    """Rebuild a journaled :class:`PointFailure` for ``point``."""
    return PointFailure(
        point=point,
        kind=payload.get("kind", "exception"),
        error=payload.get("error", ""),
        attempts=int(payload.get("attempts", 1)),
        attempt_history=tuple(
            tuple(t) for t in payload.get("attempt_history", ())
        ),
        traceback=payload.get("traceback", ""),
    )


#: Per-worker-process state, set once by the pool initializer.
_WORKER: dict = {
    "cache_dir": None, "store_dir": None, "experiments": {},
    "rss_limit_mb": None, "store": None, "sim_cache": None,
}


def _worker_init(cache_dir: str | None, store_dir: str | None = None,
                 obs_spec: dict | None = None,
                 rss_limit_mb: float | None = None) -> None:
    # Freeze every object inherited from the parent into the permanent
    # generation: the cyclic GC's periodic traversals would otherwise
    # write into the header of each inherited object, copy-on-writing
    # the parent's entire heap into every forked worker a page at a
    # time (this grows with parent heap size — long campaigns got
    # slower with every engine run).  Workers never need to collect
    # parent-built cycles, so the trade is pure win.
    gc.freeze()
    _WORKER.update(
        cache_dir=cache_dir, store_dir=store_dir, experiments={},
        rss_limit_mb=rss_limit_mb, store=None, sim_cache=None,
    )
    configure_worker(obs_spec)


def _worker_store() -> TraceStore | None:
    """This worker's handle on the dispatch store (lazy)."""
    store = _WORKER.get("store")
    if store is None and _WORKER.get("store_dir") is not None:
        store = TraceStore(_WORKER["store_dir"])
        _WORKER["store"] = store
    return store


def _worker_sim_cache() -> SimResultCache | None:
    """This worker's handle on the shared result cache (lazy)."""
    cache = _WORKER.get("sim_cache")
    if cache is None and _WORKER.get("cache_dir") is not None:
        cache = SimResultCache(Path(_WORKER["cache_dir"]) / "replays")
        _WORKER["sim_cache"] = cache
    return cache


def _claim_marker(env_var: str) -> bool:
    """Atomically claim the marker file named by ``env_var`` (test hook).

    The resilience tests arm a fault by creating a file and exporting
    its path; exactly one worker wins the unlink and misbehaves, so a
    "worker dies mid-grid" scenario is deterministic without patching
    multiprocessing internals.
    """
    marker = os.environ.get(env_var)
    if not marker:
        return False
    try:
        os.unlink(marker)
    except FileNotFoundError:
        return False
    return True


def _maybe_fault_for_tests() -> None:
    if _claim_marker("REPRO_TEST_KILL_WORKER_ONCE"):
        os._exit(13)  # hard death: parent sees BrokenProcessPool
    if _claim_marker("REPRO_TEST_RAISE_ONCE"):
        raise RuntimeError("injected worker failure (test hook)")
    if _claim_marker("REPRO_TEST_HANG_ONCE"):
        time.sleep(600.0)


def _run_shipped(digest: str, cfg: MachineConfig, mode: str):
    """Replay a dispatch-store trace on ``cfg`` (the zero-copy path).

    The worker never sees record objects: a warm point answers from the
    shared result cache by digest, a cold one decodes the packed trace
    straight into a replay plan.  A digest the store cannot produce
    (corruption was quarantined, or the parent's store degraded after
    dispatch) raises — the parent retries the point by spec.
    """
    sim_cache = _worker_sim_cache()
    key = (
        SimResultCache.key_for_digest(digest, cfg)
        if sim_cache is not None else None
    )
    if sim_cache is not None:
        if mode == "duration":
            dur = sim_cache.load_duration(key)
            if dur is not None:
                return dur
        else:
            hit = sim_cache.load(key)
            if hit is not None:
                return hit
    store = _worker_store()
    col = store.get(digest) if store is not None else None
    if col is None:
        raise RuntimeError(
            f"dispatch store cannot produce trace {digest}; "
            f"point must be re-dispatched by spec"
        )
    res = simulate(col, cfg)
    if sim_cache is not None:
        sim_cache.store(key, res)
    return res if mode == "result" else res.duration


def _run_task(task: tuple, mode: str):
    """Execute one dispatched task: ``("ship", digest, cfg)`` replays a
    pre-published packed trace; ``("spec", point)`` rebuilds everything
    from the grid-point spec (fallback and retry path)."""
    if task[0] == "ship":
        return _run_shipped(task[1], task[2], mode)
    point = task[1]
    res = _simulate_point(point, _WORKER["cache_dir"], _WORKER["experiments"])
    return res if mode == "result" else res.duration


def _worker_warmup() -> None:
    """No-op task whose submission forces the executor to fork its
    worker processes immediately (see the pre-fork note in
    ``_map_points``)."""
    return None


def _worker_run_batch(tasks: list[tuple], mode: str) -> tuple[list, dict]:
    """Run a batch of dispatched tasks; one outcome per task, in order.

    Outcomes are ``("ok", value)`` or ``("err", error, traceback)`` —
    a failing task never poisons its batch siblings.  The second return
    element is the observability payload (metric deltas, spans, pid)
    riding the result pickle back to the parent, which merges it into
    its registry and — when a run is open — the run's event log.  This
    is how cache hit/miss counters and worker spans survive the process
    boundary.
    """
    _maybe_fault_for_tests()
    outcomes: list = []
    for task in tasks:
        try:
            _check_rss_budget(_WORKER["rss_limit_mb"])
            outcomes.append(("ok", _run_task(task, mode)))
        except Exception as exc:  # noqa: BLE001 - reported to the parent
            outcomes.append((
                "err", f"{type(exc).__name__}: {exc}",
                "".join(_tb.format_exception(exc)),
            ))
    return outcomes, collect_worker_payload()


def _absorb_payload(payload: dict | None) -> None:
    """Parent side of the worker funnel.

    With a run open the payload feeds the run (registry + span set +
    event log); without one the metric deltas still merge into the
    process registry so counters like ``cache.replay.hits`` aggregate
    across workers even when nobody asked for a run directory.
    """
    if not payload:
        return
    run = current_run()
    if run is not None:
        run.absorb_worker(payload)
    else:
        get_registry().merge_delta(payload.get("metrics"))


# --------------------------------------------------------------------------- #
# The engine.
# --------------------------------------------------------------------------- #

class ExperimentEngine:
    """Process-pool scheduler for grids of replays.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) runs everything in-process —
        same code path, no pool, useful as the deterministic reference.
    cache_dir:
        Directory for the persistent caches (created on demand):
        ``<cache_dir>/traces`` for :class:`TraceCache`,
        ``<cache_dir>/replays`` for :class:`SimResultCache`, and
        ``<cache_dir>/dispatch`` for the zero-copy
        :class:`~repro.experiments.cache.TraceStore`.  Shared by all
        workers; ``None`` disables persistence (each process still
        memoizes in memory, and the dispatch store lives in a temporary
        directory for the engine's lifetime).
    retry:
        :class:`RetryPolicy` governing worker failures (default: three
        attempts, 50 ms exponential backoff, no per-point timeout).
        A dead worker process (``BrokenProcessPool``) restarts the pool
        and charges every in-flight point one attempt; a hung worker is
        detected via ``retry.point_timeout`` and handled the same way.
    degraded:
        When True, points that exhaust their retries come back as
        :class:`PointFailure` sentinels in the result list (and are
        recorded in :attr:`quarantine`); when False (default) the grid
        raises :class:`GridExecutionError` listing them.
    checkpoint:
        A :class:`~repro.experiments.checkpoint.CheckpointJournal`.
        Every grid-point completion (quarantine decisions included) is
        write-ahead journaled; points already present in the journal
        are served from it without re-execution (the ``--resume``
        path), counted by the ``checkpoint.replayed`` metric.
    rss_limit_mb:
        Per-process resident-set budget (MiB).  A worker (or the
        serial path) whose RSS exceeds it fails the current point with
        :class:`WorkerMemoryError` — a retryable, journalable failure —
        instead of dying to the OOM killer and breaking the pool.
        Defaults to ``$REPRO_WORKER_RSS_LIMIT_MB`` (unset = no budget).
    verify_sample:
        Determinism certification rate in ``[0, 1]`` (default
        ``$REPRO_VERIFY_SAMPLE``, unset = 0 = off).  A deterministic
        per-point hash selects roughly this fraction of cache hits and
        executed points; each selected point is re-replayed in the
        parent and compared content-digest-for-digest
        (:func:`repro.audit.result_digest`).  A mismatching cached
        entry is quarantined and the point re-executed; every mismatch
        lands in :attr:`verify_mismatches` and the run manifest.

    The engine is a context manager; :meth:`close` shuts the pool down.
    :meth:`request_drain` (wired to SIGTERM/SIGINT by
    :func:`~repro.experiments.checkpoint.graceful_drain`) makes the
    next grid stop dispatching, journal in-flight completions, and
    raise :class:`~repro.experiments.checkpoint.CampaignInterrupted`.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: str | Path | None = None,
        retry: RetryPolicy | None = None,
        degraded: bool = False,
        checkpoint: CheckpointJournal | None = None,
        rss_limit_mb: float | None = None,
        verify_sample: float | None = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.retry = retry if retry is not None else RetryPolicy()
        self.degraded = bool(degraded)
        self.checkpoint = checkpoint
        if rss_limit_mb is None:
            raw = os.environ.get("REPRO_WORKER_RSS_LIMIT_MB")
            if raw:
                try:
                    rss_limit_mb = float(raw)
                except ValueError:
                    rss_limit_mb = None
        self.rss_limit_mb = rss_limit_mb
        if verify_sample is None:
            raw = os.environ.get("REPRO_VERIFY_SAMPLE")
            if raw:
                try:
                    verify_sample = float(raw)
                except ValueError:
                    verify_sample = None
        self.verify_sample = (
            min(1.0, max(0.0, float(verify_sample))) if verify_sample else 0.0
        )
        #: Seeded RNG behind retry-backoff jitter: deterministic per
        #: engine, never consulted when the policy has ``jitter == 0``.
        self._retry_rng = _random.Random(0)
        #: One dict per determinism-verification mismatch this engine
        #: caught (point identity, expected/actual digest, source).
        self.verify_mismatches: list[dict] = []
        #: Points that exhausted their retry budget, by grid point.
        self.quarantine: dict[GridPoint, PointFailure] = {}
        self._experiments: dict = {}
        #: Ship-path experiment bundles (no trace cache — the dispatch
        #: store persists the columns; see :meth:`_dispatch_task`).
        self._dispatch_experiments: dict = {}
        self._pool: ProcessPoolExecutor | None = None
        self._store: TraceStore | None = None
        self._store_tmp: tempfile.TemporaryDirectory | None = None
        self._drain = threading.Event()

    # -- drain (graceful SIGTERM/SIGINT) -------------------------------------
    def request_drain(self) -> None:
        """Stop dispatching new grid points; journal what completes.

        Async-signal safe (sets an event); the running grid notices at
        its next scheduling step and raises
        :class:`~repro.experiments.checkpoint.CampaignInterrupted`
        after journaling every completion already in flight.
        """
        self._drain.set()

    @property
    def drain_requested(self) -> bool:
        return self._drain.is_set()

    @property
    def mediated(self) -> bool:
        """True when work should route through the engine even for one
        serial process — a parallel pool, degraded bookkeeping, a
        checkpoint journal, or sampled re-verification all need to see
        every point."""
        return (self.jobs > 1 or self.degraded
                or self.checkpoint is not None
                or self.verify_sample > 0.0)

    def _interrupted(self, remaining: int) -> CampaignInterrupted:
        run_id = self.checkpoint.run_id if self.checkpoint is not None else None
        get_registry().counter("engine.drains").inc()
        run = current_run()
        if run is not None:
            run.record("campaign_drained", remaining=remaining)
        return CampaignInterrupted(run_id, remaining=remaining)

    # -- checkpoint serve/record ---------------------------------------------
    def _serve_checkpoint(self, point: GridPoint, mode: str):
        """The journaled value for ``point`` (result, duration, or —
        in degraded mode — a restored :class:`PointFailure`); None
        when the journal cannot answer and the point must run."""
        if self.checkpoint is None:
            return None
        hit = self.checkpoint.lookup(point_key(point), mode)
        if hit is None:
            return None
        if hit.mode == "failure":
            # Strict engines give journaled failures a fresh chance;
            # degraded engines reproduce the quarantine decision.
            if not self.degraded:
                return None
            failure = _failure_from_payload(point, hit.payload)
            self.quarantine[point] = failure
            get_registry().counter("checkpoint.replayed").inc()
            return failure
        if hit.mode == "result":
            try:
                res = SimResult.from_dict(hit.payload["result"])
            except (KeyError, TypeError, ValueError):
                return None  # corrupt payload: re-run the point
            get_registry().counter("checkpoint.replayed").inc()
            return res if mode == "result" else res.duration
        if mode != "duration" or "duration" not in hit.payload:
            return None
        get_registry().counter("checkpoint.replayed").inc()
        return hit.payload["duration"]

    def _journal_value(self, point: GridPoint, mode: str, value) -> None:
        """Write-ahead journal one completion (results and failures)."""
        if self.checkpoint is None:
            return
        key = point_key(point)
        if isinstance(value, PointFailure):
            self.checkpoint.record(key, "failure", _failure_payload(value))
        elif mode == "result":
            if self.checkpoint.lookup(key, "result") is None:
                self.checkpoint.record(key, "result",
                                       {"result": value.to_dict()})
        elif self.checkpoint.entries.get((key, "duration")) is None:
            self.checkpoint.record(key, "duration", {"duration": value})

    # -- determinism certification (--verify-sample) -------------------------
    def _verify_sampled(self, point: GridPoint) -> bool:
        """Deterministic sampling: the same point is always (not)
        selected at a given rate, so re-runs and resumes verify the
        same subset instead of a random one."""
        rate = self.verify_sample
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        h = hashlib.sha256(repr(point_key(point)).encode()).digest()
        return int.from_bytes(h[:8], "big") / 2.0 ** 64 < rate

    def _maybe_verify(self, point: GridPoint, mode: str, value, source: str):
        """Certify one value by independent re-replay; heal on mismatch.

        Re-simulates the point's trace directly (no memo, no caches)
        and compares content digests (result mode) / exact makespans
        (duration mode).  On mismatch the cached entry is quarantined
        as untrusted, the fresh result is stored and returned, and the
        mismatch is recorded in :attr:`verify_mismatches`, the metrics
        (``audit.verify.*``), and the run manifest.
        """
        if isinstance(value, PointFailure) or value is None:
            return value
        if not self._verify_sampled(point):
            return value
        from ..audit.certify import result_digest
        reg = get_registry()
        reg.counter("audit.verify.sampled").inc()
        exp = _resolve_experiment(point, self.cache_dir, self._experiments)
        cfg = exp.platform(
            bandwidth_mbps=point.bandwidth_mbps, buses=point.buses,
            latency=point.latency, perturb=point.perturb,
        )
        trace = exp.trace(point.variant)
        with _span("engine.verify_point", app=point.app,
                   variant=point.variant):
            fresh = simulate(trace, cfg)
        if mode == "duration":
            ok = fresh.duration == value
            expected, actual = repr(fresh.duration), repr(value)
        else:
            expected, actual = result_digest(fresh), result_digest(value)
            ok = expected == actual
        if ok:
            reg.counter("audit.verify.ok").inc()
            return value
        reg.counter("audit.verify.mismatched").inc()
        key = None
        if exp.sim_cache is not None:
            from .cache import trace_digest
            key = exp.sim_cache.key_for_digest(trace_digest(trace), cfg)
            exp.sim_cache.quarantine_entry(
                key, f"verify-sample digest mismatch "
                     f"(expected {expected}, cached {actual})",
            )
            exp.sim_cache.store(key, fresh)
        # Heal the in-process memo too, or the corrupt value would
        # keep answering this experiment for the rest of the run.
        exp._sims[(point.variant, cfg)] = fresh
        record = {
            "app": point.app,
            "variant": point.variant,
            "mode": mode,
            "source": source,
            "expected": expected,
            "actual": actual,
            "cache_key": key,
        }
        self.verify_mismatches.append(record)
        run = current_run()
        if run is not None:
            run.record("verify_mismatch", **record)
        _log.error(
            "determinism verification FAILED for %s/%s (%s value from %s): "
            "expected %s, got %s; entry quarantined and re-executed",
            point.app, point.variant, mode, source, expected, actual,
        )
        return fresh if mode == "result" else fresh.duration

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Shut down the worker pool and dispatch store (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        for exp in self._experiments.values():
            if exp.cache is not None:
                exp.cache.flush()  # land async publishes before teardown
        self._store = None
        if self._store_tmp is not None:
            try:
                self._store_tmp.cleanup()
            except OSError:
                pass
            self._store_tmp = None

    def _discard_pool(self, reason: str) -> None:
        """Tear down a broken or hung pool so the next submit rebuilds it.

        Workers are terminated outright: after a crash the survivors
        hold no state worth draining (results travel through futures we
        have already abandoned), and after a hang the stuck worker
        would block a graceful shutdown forever.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        _log.warning("experiment pool %s; recycling workers", reason)
        get_registry().counter("engine.pool_recycles").inc()
        run = current_run()
        if run is not None:
            run.record("pool_recycle", reason=reason)
        procs = getattr(pool, "_processes", None) or {}
        for proc in list(procs.values()):
            if proc.is_alive():
                proc.terminate()
        pool.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "ExperimentEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            store = self._dispatch_store()
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_worker_init,
                initargs=(self.cache_dir, str(store.directory),
                          worker_config(), self.rss_limit_mb),
            )
        return self._pool

    # -- dispatch preparation ------------------------------------------------
    def _dispatch_store(self) -> TraceStore:
        """The digest-addressed trace store shared with pool workers.

        Lives under ``<cache_dir>/dispatch`` when the engine has a cache
        directory (doubling as a persistent trace cache); otherwise in a
        temporary directory torn down by :meth:`close`.
        """
        if self._store is None:
            if self.cache_dir is not None:
                root = Path(self.cache_dir) / "dispatch"
            else:
                self._store_tmp = tempfile.TemporaryDirectory(
                    prefix="repro-dispatch-"
                )
                root = Path(self._store_tmp.name)
            self._store = TraceStore(root)
        return self._store

    def _dispatch_task(self, point: GridPoint) -> tuple:
        """Prepare a point's pool task: ship-by-digest when possible.

        The zero-copy path: resolve (and trace) the experiment once in
        the parent, publish its packed encoding in the dispatch store,
        and hand workers just ``(digest, platform)`` — a few dozen bytes
        instead of a pickled record forest.  Any preparation trouble —
        unknown app, degraded store — falls back to shipping the spec,
        where the worker reproduces (and properly attributes) the
        failure itself.
        """
        reg = get_registry()
        store = self._dispatch_store()
        if not store.degraded:
            t0 = time.monotonic()
            try:
                # Prefer an experiment somebody already traced (the
                # bracket-search seed path); otherwise build one without
                # a trace cache — the dispatch store is the cold path's
                # persistence, and the original trace's profile payload
                # is orders of magnitude bigger than the columns.
                exp = self._experiments.get(point.experiment_key())
                if exp is None:
                    exp = _resolve_experiment(
                        point, self.cache_dir, self._dispatch_experiments,
                        with_trace_cache=False,
                    )
                cfg = exp.platform(
                    point.bandwidth_mbps, point.buses, point.latency,
                    point.perturb,
                )
                digest = store.put(exp.columnar(point.variant))
            except Exception:  # noqa: BLE001 - worker will attribute it
                pass
            else:
                reg.histogram("engine.dispatch.prep_seconds").observe(
                    time.monotonic() - t0
                )
                reg.counter("engine.dispatch.ship_points").inc()
                return ("ship", digest, cfg)
        reg.counter("engine.dispatch.spec_points").inc()
        return ("spec", point)

    # -- core scheduling ----------------------------------------------------
    def _map_points(self, points: list[GridPoint], mode: str) -> list:
        """Fan the points across the pool, preserving input order.

        Points answerable without execution are resolved directly in
        the parent — first from the checkpoint journal (the resume
        path), then from the persistent cache (warm hits; duration mode
        reads only the one-line sidecar) — and only actual misses pay
        worker dispatch.  The misses are sorted by experiment identity
        and grouped into batches, so one worker tends to replay all
        platform variations of the same trace and per-task pool
        overhead amortizes across a batch; results come back in the
        input order.

        Worker failures are retried per :attr:`retry`; permanently dead
        points surface per :attr:`degraded` (sentinel or raise).  Every
        completion — warm hits included — is write-ahead journaled when
        a checkpoint is attached.
        """
        out: list = [None] * len(points)
        miss: list[int] = []
        for i, p in enumerate(points):
            served = self._serve_checkpoint(p, mode)
            if served is not None:
                out[i] = served
                continue
            hit = None
            if self.cache_dir is not None:
                exp = _resolve_experiment(p, self.cache_dir, self._experiments)
                if mode == "duration":
                    hit = exp.cached_duration(
                        p.variant, bandwidth_mbps=p.bandwidth_mbps,
                        buses=p.buses, latency=p.latency, perturb=p.perturb,
                    )
                else:
                    hit = exp.cached_result(
                        p.variant, bandwidth_mbps=p.bandwidth_mbps,
                        buses=p.buses, latency=p.latency, perturb=p.perturb,
                    )
            if hit is not None:
                hit = self._maybe_verify(p, mode, hit, "cache")
                out[i] = hit
                self._journal_value(p, mode, hit)
            else:
                miss.append(i)
        if not miss:
            return out
        if self._drain.is_set():
            raise self._interrupted(remaining=len(miss))
        order = sorted(
            miss,
            key=lambda i: (repr(points[i].experiment_key()),
                           points[i].variant, i),
        )
        entries = [(i, points[i]) for i in order]
        # Fork the pool *before* dispatch preparation builds any trace:
        # workers forked against a small parent heap stay small, while
        # forking after tracing copies-on-write the whole record forest
        # (and its profile arrays) into every worker as soon as the GC
        # touches refcounts.  The warmup task forces the executor to
        # spawn its processes now rather than lazily at first submit.
        self._ensure_pool().submit(_worker_warmup)
        # Batches never straddle a (experiment, variant) group: all
        # points of one trace digest go to as few workers as the job
        # budget allows, so each worker decodes the columns and builds
        # the replay plan for a digest at most once.  Each group is
        # split across about jobs/ngroups workers (capped batch size
        # keeps huge groups responsive); distinct experiments never
        # share a batch, so a poisoned spec cannot waste a sibling
        # experiment's retry budget.
        grouped = [
            list(grp) for _, grp in itertools.groupby(
                entries,
                key=lambda e: (repr(e[1].experiment_key()), e[1].variant),
            )
        ]
        per_group = max(1, -(-self.jobs // len(grouped)))
        batches = []
        for g in grouped:
            size = max(1, min(16, -(-len(g) // per_group)))
            batches.extend(g[j:j + size] for j in range(0, len(g), size))
        failures: list[PointFailure] = []
        self._run_resilient(mode, batches, out, failures)
        if failures and not self.degraded:
            raise GridExecutionError(failures)
        if self.verify_sample > 0.0:
            # Worker-returned values get the same certification as
            # cache hits: a nondeterministic worker replay is caught by
            # an independent parent-side re-replay.
            for i in miss:
                out[i] = self._maybe_verify(points[i], mode, out[i], "worker")
        return out

    def _run_resilient(
        self,
        mode: str,
        batches: list[list[tuple[int, GridPoint]]],
        out: list,
        failures: list[PointFailure],
    ) -> None:
        """Submit every batch of ``(slot, point)`` entries and babysit.

        First attempts ride the prepared dispatch tasks (ship-by-digest
        where possible); every retry re-dispatches its point by spec, so
        even dispatch-store damage can only cost one attempt.  Failures
        inside a batch are per-entry (a sibling's exception never wastes
        a finished replay); three whole-batch failure shapes are also
        recovered: a worker *raising* before task execution (charge and
        retry each entry), a worker *dying* (``BrokenProcessPool``
        poisons every in-flight future — recycle the pool, charge each
        in-flight entry one attempt, resubmit singly), and a worker
        *hanging* (per-batch wall-clock budget exceeded — same recycle,
        charge only the expired batches).  A point that spends its
        attempt budget is quarantined; its slot receives a
        :class:`PointFailure`.

        A drain request (:meth:`request_drain`) is honored at the next
        scheduling step: queued futures are cancelled, running ones are
        awaited and journaled, and the grid raises
        :class:`~repro.experiments.checkpoint.CampaignInterrupted`.
        """
        retry = self.retry
        reg = get_registry()
        pending: dict[
            Future, tuple[list[tuple[int, GridPoint]], int, float]
        ] = {}
        #: Per-slot (kind, seconds, error) of every failed attempt so
        #: far — becomes PointFailure.attempt_history on quarantine.
        history: dict[int, list[tuple[str, float, str]]] = {}
        #: Per-slot first-attempt task, prepared once at dispatch time.
        prepared: dict[int, tuple] = {}

        def submit(entries: list[tuple[int, GridPoint]], attempt: int) -> None:
            tasks = [
                prepared[slot] if attempt == 1 else ("spec", point)
                for slot, point in entries
            ]
            try:
                fut = self._ensure_pool().submit(_worker_run_batch, tasks, mode)
            except BrokenProcessPool:
                # A worker died between submissions (batch preparation
                # gives it time to): recycle and submit to a fresh pool.
                # In-flight futures of the dead pool surface their own
                # crash through the recovery path below.
                self._discard_pool("broken (worker process died)")
                fut = self._ensure_pool().submit(_worker_run_batch, tasks, mode)
            pending[fut] = (entries, attempt, time.monotonic())
            reg.counter("engine.dispatch.batches").inc()

        def settle(slot: int, point: GridPoint, attempt: int,
                   kind: str, error: str, elapsed: float,
                   tb: str = "") -> None:
            history.setdefault(slot, []).append((kind, elapsed, error))
            if attempt < retry.max_attempts and not self._drain.is_set():
                delay = retry.delay(attempt, self._retry_rng)
                _log.warning(
                    "grid point %s/%s failed (%s, attempt %d/%d): %s; "
                    "retrying in %.3fs",
                    point.app, point.variant, kind, attempt,
                    retry.max_attempts, error, delay,
                )
                reg.counter("engine.retries").inc()
                if delay > 0:
                    time.sleep(delay)
                submit([(slot, point)], attempt + 1)
                return
            if attempt < retry.max_attempts:
                # Draining: don't burn the point's remaining attempts —
                # leave its slot empty so a resume re-runs it fresh.
                return
            failure = PointFailure(
                point=point, kind=kind, error=error, attempts=attempt,
                attempt_history=tuple(history.get(slot, ())), traceback=tb,
            )
            self.quarantine[point] = failure
            failures.append(failure)
            out[slot] = failure
            self._journal_value(point, mode, failure)
            reg.counter("engine.quarantined").inc()
            run = current_run()
            if run is not None:
                run.record("point_quarantined", app=point.app,
                           variant=point.variant, kind=kind,
                           attempts=attempt, error=error)
            _log.error("grid point quarantined: %s", failure.describe())

        for entries in batches:
            if self._drain.is_set():
                break
            for slot, point in entries:
                prepared[slot] = self._dispatch_task(point)
            submit(entries, 1)

        all_slots = [slot for entries in batches for slot, _ in entries]
        while pending:
            if self._drain.is_set():
                self._drain_inflight(mode, pending, out)
                remaining = sum(1 for slot in all_slots if out[slot] is None)
                raise self._interrupted(remaining=remaining)
            timeout = None
            if retry.point_timeout is not None:
                oldest = min(t0 for (_, _, t0) in pending.values())
                timeout = max(
                    0.0, oldest + retry.point_timeout - time.monotonic()
                )
            done, _ = wait(
                list(pending), timeout=timeout, return_when=FIRST_COMPLETED
            )
            if not done:
                # A batch blew its wall-clock budget: its worker is
                # stuck, so the pool must go.  Innocent in-flight
                # batches are resubmitted without being charged an
                # attempt.
                now = time.monotonic()
                states = list(pending.values())
                pending.clear()
                self._discard_pool("hung (per-point timeout exceeded)")
                for entries, attempt, t0 in states:
                    if now - t0 >= retry.point_timeout:
                        for slot, point in entries:
                            settle(
                                slot, point, attempt, "timeout",
                                f"exceeded {retry.point_timeout:.3g}s "
                                f"wall clock",
                                now - t0,
                            )
                    else:
                        submit(entries, attempt)
                continue
            for fut in done:
                if fut not in pending:
                    continue  # cleared by a pool-crash recovery below
                entries, attempt, t0 = pending.pop(fut)
                elapsed = time.monotonic() - t0
                try:
                    outcomes, payload = fut.result()
                except BrokenProcessPool as exc:
                    # The dead worker poisons every in-flight future and
                    # the parent cannot tell which point killed it, so
                    # each one is charged an attempt (this bounds a
                    # reproducibly-crashing point to max_attempts pool
                    # restarts) and everything is resubmitted.
                    now = time.monotonic()
                    victims = list(pending.values())
                    pending.clear()
                    self._discard_pool("broken (worker process died)")
                    err = f"{type(exc).__name__}: {exc}" if str(exc) else (
                        "worker process died unexpectedly"
                    )
                    for slot, point in entries:
                        settle(slot, point, attempt, "pool_crash", err,
                               elapsed)
                    for v_entries, v_attempt, v_t0 in victims:
                        for slot, point in v_entries:
                            settle(slot, point, v_attempt, "pool_crash", err,
                                   now - v_t0)
                except Exception as exc:  # noqa: BLE001 - retried/reported
                    # A raise before task execution (fault hooks, pickle
                    # trouble); format_exception includes the
                    # _RemoteTraceback the pool chains in, i.e. the
                    # worker-side stack.
                    err = f"{type(exc).__name__}: {exc}"
                    tb = "".join(_tb.format_exception(exc))
                    for slot, point in entries:
                        settle(slot, point, attempt, "exception", err,
                               elapsed, tb=tb)
                else:
                    _absorb_payload(payload)
                    per_point = elapsed / max(1, len(entries))
                    for (slot, point), outcome in zip(entries, outcomes):
                        if outcome[0] == "ok":
                            out[slot] = outcome[1]
                            self._journal_value(point, mode, outcome[1])
                            reg.counter("engine.points_executed").inc()
                            reg.histogram(
                                "engine.point_wall_seconds"
                            ).observe(per_point)
                        else:
                            settle(slot, point, attempt, "exception",
                                   outcome[1], per_point, tb=outcome[2])

        if self._drain.is_set():
            remaining = sum(1 for slot in all_slots if out[slot] is None)
            if remaining:
                raise self._interrupted(remaining=remaining)

    def _drain_inflight(self, mode: str, pending: dict, out: list) -> None:
        """Drain step: cancel what never started, journal what finishes.

        Queued futures are cancelled (their points re-run on resume);
        futures already executing are awaited so their completions are
        journaled — a drain loses no finished work.
        """
        running: dict[
            Future, tuple[list[tuple[int, GridPoint]], int, float]
        ] = {}
        for fut, state in list(pending.items()):
            if not fut.cancel():
                running[fut] = state
        pending.clear()
        reg = get_registry()
        for fut, (entries, _attempt, t0) in running.items():
            try:
                outcomes, payload = fut.result(timeout=self.retry.point_timeout)
            except Exception:  # noqa: BLE001 - drained points just re-run
                continue
            _absorb_payload(payload)
            per_point = (time.monotonic() - t0) / max(1, len(entries))
            for (slot, point), outcome in zip(entries, outcomes):
                if outcome[0] != "ok":
                    continue
                out[slot] = outcome[1]
                self._journal_value(point, mode, outcome[1])
                reg.counter("engine.points_executed").inc()
                reg.histogram("engine.point_wall_seconds").observe(per_point)

    def _run_serial(self, points: list[GridPoint], mode: str) -> list:
        """In-process reference path with the same failure contract."""
        out: list = []
        failures: list[PointFailure] = []
        reg = get_registry()
        for p in points:
            if self._drain.is_set():
                raise self._interrupted(remaining=len(points) - len(out))
            served = self._serve_checkpoint(p, mode)
            if served is not None:
                out.append(served)
                continue
            t0 = time.monotonic()
            try:
                _check_rss_budget(self.rss_limit_mb)
                res = _simulate_point(p, self.cache_dir, self._experiments)
                value = res if mode == "result" else res.duration
                value = self._maybe_verify(p, mode, value, "serial")
                out.append(value)
                self._journal_value(p, mode, value)
                reg.counter("engine.points_executed").inc()
                reg.histogram("engine.point_wall_seconds").observe(
                    time.monotonic() - t0
                )
            except Exception as exc:  # noqa: BLE001 - uniform grid contract
                err = f"{type(exc).__name__}: {exc}"
                failure = PointFailure(
                    point=p, kind="exception", error=err, attempts=1,
                    attempt_history=(("exception", time.monotonic() - t0, err),),
                    traceback="".join(_tb.format_exception(exc)),
                )
                self.quarantine[p] = failure
                self._journal_value(p, mode, failure)
                reg.counter("engine.quarantined").inc()
                if not self.degraded:
                    raise GridExecutionError([failure]) from exc
                _log.warning("degraded grid: %s", failure.describe())
                failures.append(failure)
                out.append(failure)
        return out

    def run_grid(self, points: Iterable[GridPoint]) -> list[SimResult]:
        """Replay every grid point; results in input order.

        Deterministic: identical to running the same points serially.
        In degraded mode, slots whose point kept failing hold a
        :class:`PointFailure` instead of a :class:`SimResult`; in
        strict mode such points raise :class:`GridExecutionError`.
        """
        points = list(points)
        _maybe_selfkill("REPRO_TEST_SELFKILL_BEFORE_DISPATCH")
        with _span("engine.run_grid", points=len(points), jobs=self.jobs):
            if self.jobs <= 1 or len(points) <= 1:
                return self._run_serial(points, "result")
            return self._map_points(points, "result")

    def durations(self, points: Iterable[GridPoint]) -> list[float]:
        """Simulated makespans of every grid point, in input order.

        Cheaper than :meth:`run_grid` across a pool: only a float per
        point crosses the process boundary.  Failure contract as in
        :meth:`run_grid`.
        """
        points = list(points)
        _maybe_selfkill("REPRO_TEST_SELFKILL_BEFORE_DISPATCH")
        with _span("engine.durations", points=len(points), jobs=self.jobs):
            if self.jobs <= 1 or len(points) <= 1:
                return self._run_serial(points, "duration")
            return self._map_points(points, "duration")

    # -- experiment interop -------------------------------------------------
    def experiment(self, point: GridPoint) -> AppExperiment:
        """In-process experiment bundle for a point (cached)."""
        return _resolve_experiment(point, self.cache_dir, self._experiments)

    @staticmethod
    def point_for(exp: AppExperiment, variant: str = "original") -> GridPoint:
        """Grid point describing an existing experiment bundle."""
        return GridPoint(
            app=exp.app_name,
            variant=variant,
            nranks=exp.nranks,
            chunks=exp.chunks,
            app_params=_normalize_params(exp.app_params),
            machine=exp.machine,
        )

    def duration_predicate_many(
        self,
        exp: AppExperiment,
        variant: str,
        threshold: float,
    ) -> Callable[[Sequence[float]], list[bool]]:
        """Batched bandwidth predicate for the bisection searches.

        Returns ``predicate_many(bandwidths) -> [duration <= threshold]``
        evaluated through the engine (concurrently when ``jobs > 1``;
        directly on ``exp`` when serial, reusing its memo).

        A degraded engine refuses to guess: when any probe comes back
        as a :class:`PointFailure` the predicate raises
        :class:`DegradedBracketError` instead of returning a bracket
        built on missing answers.
        """
        base = self.point_for(exp, variant)
        # Let the engine's warm-hit and serial paths reuse the caller's
        # already-traced experiment instead of rebuilding it.
        self._experiments.setdefault(base.experiment_key(), exp)

        def predicate_many(bandwidths: Sequence[float]) -> list[bool]:
            if not self.mediated:
                return [
                    exp.duration(variant, bandwidth_mbps=float(bw)) <= threshold
                    for bw in bandwidths
                ]
            pts = [replace(base, bandwidth_mbps=float(bw)) for bw in bandwidths]
            durs = self.durations(pts)
            bad = [d for d in durs if isinstance(d, PointFailure)]
            if bad:
                raise DegradedBracketError(bad)
            return [d <= threshold for d in durs]

        return predicate_many


def speedup_grid(
    engine: ExperimentEngine,
    apps: Sequence[str],
    nranks: int = 64,
    chunks: int = 4,
) -> dict[str, dict[str, float]]:
    """Fig. 6(a) speedups for a pool of applications, engine-scheduled.

    Returns ``{app: {"real": s, "ideal": s}}`` — the same numbers as
    :meth:`AppExperiment.speedups` per app, computed as one grid.
    """
    variants = ("original", "real", "ideal")
    points = [
        GridPoint(app=a, variant=v, nranks=nranks, chunks=chunks)
        for a in apps
        for v in variants
    ]
    durs = engine.durations(points)
    by_point = dict(zip(points, durs))
    out: dict[str, dict[str, float]] = {}
    for a in apps:
        base = by_point[GridPoint(app=a, variant="original", nranks=nranks, chunks=chunks)]
        out[a] = {
            "real": base / by_point[GridPoint(app=a, variant="real", nranks=nranks, chunks=chunks)],
            "ideal": base / by_point[GridPoint(app=a, variant="ideal", nranks=nranks, chunks=chunks)],
        }
    return out
