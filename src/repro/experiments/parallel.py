"""Parallel experiment engine: fan grids of replays across processes.

The paper's whole evaluation is a grid of replays — every
bandwidth-bisection step, bus count, chunk count, and app variant
re-runs :func:`repro.dimemas.replay.simulate` on some platform.  This
module turns that grid into a schedulable unit:

* :class:`GridPoint` — one fully-described replay: ``(app, variant,
  bandwidth, buses, latency, chunks, nranks, app_params, machine)``;
* :class:`ExperimentEngine` — runs grids serially (``jobs=1``) or on a
  process pool (``jobs=N``), with per-process experiment reuse and
  optional on-disk caches (:class:`~repro.experiments.cache.TraceCache`
  and :class:`~repro.experiments.cache.SimResultCache`) shared by all
  workers, so repeated points are free across processes *and* sessions;
* :func:`expand_grid` / :func:`speedup_grid` — grid builders for the
  Figure 6 style evaluations.

Replay is deterministic, so a parallel grid returns results identical
to the serial run, point for point; scheduling only changes wall-clock.
The engine also powers *speculative batched bisection*
(:func:`repro.experiments.bandwidth.bisect_bandwidth_batched`): instead
of one sequential midpoint probe per round, the whole midpoint tree of
the next few bisection levels is evaluated concurrently, descending
several levels per round with bitwise-identical thresholds.
"""

from __future__ import annotations

import itertools
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence

from ..dimemas.machine import MachineConfig
from ..dimemas.results import SimResult
from .cache import SimResultCache, TraceCache
from .pipeline import AppExperiment

__all__ = ["ExperimentEngine", "GridPoint", "expand_grid", "speedup_grid"]


def _normalize_params(params: Mapping | Iterable | None) -> tuple:
    """App parameters as a sorted, hashable, picklable tuple of pairs."""
    if params is None:
        return ()
    items = params.items() if isinstance(params, Mapping) else params
    return tuple(sorted((str(k), v) for k, v in items))


@dataclass(frozen=True)
class GridPoint:
    """One replay of the experiment grid (hashable and picklable).

    ``bandwidth_mbps`` / ``buses`` / ``latency`` override the baseline
    platform exactly like the corresponding
    :meth:`~repro.experiments.pipeline.AppExperiment.simulate` keyword
    arguments (``"default"`` buses = keep the baseline).  ``machine``
    overrides the baseline platform itself; ``None`` uses the
    application's paper test bed.
    """

    app: str
    variant: str = "original"
    nranks: int = 64
    chunks: int = 4
    bandwidth_mbps: float | None = None
    buses: int | None | str = "default"
    latency: float | None = None
    app_params: tuple = ()
    machine: MachineConfig | None = None

    def experiment_key(self) -> tuple:
        """Identity of the underlying traced experiment (platform
        overrides excluded — they share one trace)."""
        return (self.app, self.nranks, self.chunks, self.app_params, self.machine)


def expand_grid(
    apps: Sequence[str],
    variants: Sequence[str] = ("original",),
    bandwidths: Sequence[float | None] = (None,),
    buses: Sequence[int | None | str] = ("default",),
    latencies: Sequence[float | None] = (None,),
    chunks: Sequence[int] = (4,),
    nranks: int = 64,
    app_params: Mapping | None = None,
    machine: MachineConfig | None = None,
) -> list[GridPoint]:
    """Cartesian grid of points, in deterministic iteration order."""
    params = _normalize_params(app_params)
    return [
        GridPoint(
            app=a, variant=v, nranks=nranks, chunks=c,
            bandwidth_mbps=bw, buses=b, latency=lat,
            app_params=params, machine=machine,
        )
        for a, v, c, bw, b, lat in itertools.product(
            apps, variants, chunks, bandwidths, buses, latencies
        )
    ]


# --------------------------------------------------------------------------- #
# Point execution (shared by the in-process path and pool workers).
# --------------------------------------------------------------------------- #

def _resolve_experiment(
    point: GridPoint,
    cache_dir: str | None,
    store: dict,
) -> AppExperiment:
    """The (process-local) experiment bundle behind a grid point."""
    key = point.experiment_key()
    exp = store.get(key)
    if exp is None:
        trace_cache = sim_cache = None
        if cache_dir is not None:
            trace_cache = TraceCache(Path(cache_dir) / "traces")
            sim_cache = SimResultCache(Path(cache_dir) / "replays")
        exp = AppExperiment(
            point.app,
            nranks=point.nranks,
            chunks=point.chunks,
            app_params=dict(point.app_params),
            machine=point.machine,
            cache=trace_cache,
            sim_cache=sim_cache,
        )
        store[key] = exp
    return exp


def _simulate_point(point: GridPoint, cache_dir: str | None, store: dict) -> SimResult:
    exp = _resolve_experiment(point, cache_dir, store)
    return exp.simulate(
        point.variant,
        bandwidth_mbps=point.bandwidth_mbps,
        buses=point.buses,
        latency=point.latency,
    )


#: Per-worker-process state, set once by the pool initializer.
_WORKER: dict = {"cache_dir": None, "experiments": {}}


def _worker_init(cache_dir: str | None) -> None:
    _WORKER["cache_dir"] = cache_dir
    _WORKER["experiments"] = {}


def _worker_result(point: GridPoint) -> SimResult:
    return _simulate_point(point, _WORKER["cache_dir"], _WORKER["experiments"])


def _worker_duration(point: GridPoint) -> float:
    return _simulate_point(point, _WORKER["cache_dir"], _WORKER["experiments"]).duration


# --------------------------------------------------------------------------- #
# The engine.
# --------------------------------------------------------------------------- #

class ExperimentEngine:
    """Process-pool scheduler for grids of replays.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) runs everything in-process —
        same code path, no pool, useful as the deterministic reference.
    cache_dir:
        Directory for the persistent caches (created on demand):
        ``<cache_dir>/traces`` for :class:`TraceCache` and
        ``<cache_dir>/replays`` for :class:`SimResultCache`.  Shared by
        all workers; ``None`` disables persistence (each process still
        memoizes in memory).

    The engine is a context manager; :meth:`close` shuts the pool down.
    """

    def __init__(self, jobs: int = 1, cache_dir: str | Path | None = None):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self._experiments: dict = {}
        self._pool: ProcessPoolExecutor | None = None

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ExperimentEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_worker_init,
                initargs=(self.cache_dir,),
            )
        return self._pool

    # -- core scheduling ----------------------------------------------------
    def _map_points(self, pool_fn: Callable, points: list[GridPoint]) -> list:
        """Fan ``pool_fn`` over the points via the pool, preserving order.

        Warm points — answerable from the persistent cache without
        building a trace or replaying — are resolved directly in the
        parent; only actual misses pay worker dispatch.  The misses are
        sorted by experiment identity so one worker tends to replay all
        platform variations of the same trace (per-process experiment
        reuse); results come back in the input order.
        """
        out: list = [None] * len(points)
        miss: list[int] = []
        for i, p in enumerate(points):
            hit = None
            if self.cache_dir is not None:
                exp = _resolve_experiment(p, self.cache_dir, self._experiments)
                hit = exp.cached_result(
                    p.variant, bandwidth_mbps=p.bandwidth_mbps,
                    buses=p.buses, latency=p.latency,
                )
            if hit is not None:
                out[i] = hit if pool_fn is _worker_result else hit.duration
            else:
                miss.append(i)
        if not miss:
            return out
        order = sorted(miss, key=lambda i: (repr(points[i].experiment_key()), i))
        grouped = [points[i] for i in order]
        chunksize = max(1, -(-len(grouped) // (self.jobs * 2)))
        mapped = list(self._ensure_pool().map(pool_fn, grouped, chunksize=chunksize))
        for pos, i in enumerate(order):
            out[i] = mapped[pos]
        return out

    def run_grid(self, points: Iterable[GridPoint]) -> list[SimResult]:
        """Replay every grid point; results in input order.

        Deterministic: identical to running the same points serially.
        """
        points = list(points)
        if self.jobs <= 1 or len(points) <= 1:
            return [
                _simulate_point(p, self.cache_dir, self._experiments)
                for p in points
            ]
        return self._map_points(_worker_result, points)

    def durations(self, points: Iterable[GridPoint]) -> list[float]:
        """Simulated makespans of every grid point, in input order.

        Cheaper than :meth:`run_grid` across a pool: only a float per
        point crosses the process boundary.
        """
        points = list(points)
        if self.jobs <= 1 or len(points) <= 1:
            return [
                _simulate_point(p, self.cache_dir, self._experiments).duration
                for p in points
            ]
        return self._map_points(_worker_duration, points)

    # -- experiment interop -------------------------------------------------
    def experiment(self, point: GridPoint) -> AppExperiment:
        """In-process experiment bundle for a point (cached)."""
        return _resolve_experiment(point, self.cache_dir, self._experiments)

    @staticmethod
    def point_for(exp: AppExperiment, variant: str = "original") -> GridPoint:
        """Grid point describing an existing experiment bundle."""
        return GridPoint(
            app=exp.app_name,
            variant=variant,
            nranks=exp.nranks,
            chunks=exp.chunks,
            app_params=_normalize_params(exp.app_params),
            machine=exp.machine,
        )

    def duration_predicate_many(
        self,
        exp: AppExperiment,
        variant: str,
        threshold: float,
    ) -> Callable[[Sequence[float]], list[bool]]:
        """Batched bandwidth predicate for the bisection searches.

        Returns ``predicate_many(bandwidths) -> [duration <= threshold]``
        evaluated through the engine (concurrently when ``jobs > 1``;
        directly on ``exp`` when serial, reusing its memo).
        """
        base = self.point_for(exp, variant)

        def predicate_many(bandwidths: Sequence[float]) -> list[bool]:
            if self.jobs <= 1:
                return [
                    exp.duration(variant, bandwidth_mbps=float(bw)) <= threshold
                    for bw in bandwidths
                ]
            pts = [replace(base, bandwidth_mbps=float(bw)) for bw in bandwidths]
            return [d <= threshold for d in self.durations(pts)]

        return predicate_many


def speedup_grid(
    engine: ExperimentEngine,
    apps: Sequence[str],
    nranks: int = 64,
    chunks: int = 4,
) -> dict[str, dict[str, float]]:
    """Fig. 6(a) speedups for a pool of applications, engine-scheduled.

    Returns ``{app: {"real": s, "ideal": s}}`` — the same numbers as
    :meth:`AppExperiment.speedups` per app, computed as one grid.
    """
    variants = ("original", "real", "ideal")
    points = [
        GridPoint(app=a, variant=v, nranks=nranks, chunks=chunks)
        for a in apps
        for v in variants
    ]
    durs = engine.durations(points)
    by_point = dict(zip(points, durs))
    out: dict[str, dict[str, float]] = {}
    for a in apps:
        base = by_point[GridPoint(app=a, variant="original", nranks=nranks, chunks=chunks)]
        out[a] = {
            "real": base / by_point[GridPoint(app=a, variant="real", nranks=nranks, chunks=chunks)],
            "ideal": base / by_point[GridPoint(app=a, variant="ideal", nranks=nranks, chunks=chunks)],
        }
    return out
