"""Parallel experiment engine: fan grids of replays across processes.

The paper's whole evaluation is a grid of replays — every
bandwidth-bisection step, bus count, chunk count, and app variant
re-runs :func:`repro.dimemas.replay.simulate` on some platform.  This
module turns that grid into a schedulable unit:

* :class:`GridPoint` — one fully-described replay: ``(app, variant,
  bandwidth, buses, latency, chunks, nranks, app_params, machine)``;
* :class:`ExperimentEngine` — runs grids serially (``jobs=1``) or on a
  process pool (``jobs=N``), with per-process experiment reuse and
  optional on-disk caches (:class:`~repro.experiments.cache.TraceCache`
  and :class:`~repro.experiments.cache.SimResultCache`) shared by all
  workers, so repeated points are free across processes *and* sessions;
* :func:`expand_grid` / :func:`speedup_grid` — grid builders for the
  Figure 6 style evaluations.

Replay is deterministic, so a parallel grid returns results identical
to the serial run, point for point; scheduling only changes wall-clock.
The engine also powers *speculative batched bisection*
(:func:`repro.experiments.bandwidth.bisect_bandwidth_batched`): instead
of one sequential midpoint probe per round, the whole midpoint tree of
the next few bisection levels is evaluated concurrently, descending
several levels per round with bitwise-identical thresholds.
"""

from __future__ import annotations

import itertools
import logging
import os
import signal
import threading
import time
import traceback as _tb
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence

from ..dimemas.machine import MachineConfig
from ..dimemas.results import SimResult
from ..obs import (
    collect_worker_payload,
    configure_worker,
    current_run,
    get_registry,
    span as _span,
    worker_config,
)
from .cache import SimResultCache, TraceCache
from .checkpoint import CampaignInterrupted, CheckpointJournal, point_key
from .pipeline import AppExperiment

__all__ = [
    "DegradedBracketError",
    "ExperimentEngine",
    "GridExecutionError",
    "GridPoint",
    "PointFailure",
    "RetryPolicy",
    "WorkerMemoryError",
    "expand_grid",
    "speedup_grid",
]

_log = logging.getLogger("repro.experiments.parallel")


def _normalize_params(params: Mapping | Iterable | None) -> tuple:
    """App parameters as a sorted, hashable, picklable tuple of pairs."""
    if params is None:
        return ()
    items = params.items() if isinstance(params, Mapping) else params
    return tuple(sorted((str(k), v) for k, v in items))


@dataclass(frozen=True)
class GridPoint:
    """One replay of the experiment grid (hashable and picklable).

    ``bandwidth_mbps`` / ``buses`` / ``latency`` override the baseline
    platform exactly like the corresponding
    :meth:`~repro.experiments.pipeline.AppExperiment.simulate` keyword
    arguments (``"default"`` buses = keep the baseline).  ``machine``
    overrides the baseline platform itself; ``None`` uses the
    application's paper test bed.
    """

    app: str
    variant: str = "original"
    nranks: int = 64
    chunks: int = 4
    bandwidth_mbps: float | None = None
    buses: int | None | str = "default"
    latency: float | None = None
    app_params: tuple = ()
    machine: MachineConfig | None = None

    def experiment_key(self) -> tuple:
        """Identity of the underlying traced experiment (platform
        overrides excluded — they share one trace)."""
        return (self.app, self.nranks, self.chunks, self.app_params, self.machine)


def expand_grid(
    apps: Sequence[str],
    variants: Sequence[str] = ("original",),
    bandwidths: Sequence[float | None] = (None,),
    buses: Sequence[int | None | str] = ("default",),
    latencies: Sequence[float | None] = (None,),
    chunks: Sequence[int] = (4,),
    nranks: int = 64,
    app_params: Mapping | None = None,
    machine: MachineConfig | None = None,
) -> list[GridPoint]:
    """Cartesian grid of points, in deterministic iteration order."""
    params = _normalize_params(app_params)
    return [
        GridPoint(
            app=a, variant=v, nranks=nranks, chunks=c,
            bandwidth_mbps=bw, buses=b, latency=lat,
            app_params=params, machine=machine,
        )
        for a, v, c, bw, b, lat in itertools.product(
            apps, variants, chunks, bandwidths, buses, latencies
        )
    ]


# --------------------------------------------------------------------------- #
# Failure handling: retry policy, quarantine sentinel, grid errors.
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class RetryPolicy:
    """How the engine reacts when a grid point fails in a worker.

    ``max_attempts`` bounds how often one point is tried before it is
    quarantined; between attempts the engine sleeps
    ``backoff * backoff_factor ** (attempt - 1)`` seconds.
    ``point_timeout`` (seconds of wall clock per in-flight point,
    ``None`` = unlimited) converts a hung worker into a recoverable
    failure: the pool is recycled and the point charged one attempt.
    """

    max_attempts: int = 3
    backoff: float = 0.05
    backoff_factor: float = 2.0
    point_timeout: float | None = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.point_timeout is not None and self.point_timeout <= 0:
            raise ValueError(
                f"point_timeout must be positive, got {self.point_timeout}"
            )

    def delay(self, attempt: int) -> float:
        """Backoff (seconds) after failed attempt number ``attempt``."""
        return self.backoff * self.backoff_factor ** (attempt - 1)


@dataclass(frozen=True)
class PointFailure:
    """Sentinel standing in for a grid point that exhausted its retries.

    In degraded mode (:class:`ExperimentEngine` with ``degraded=True``)
    these appear in :meth:`ExperimentEngine.run_grid` /
    :meth:`~ExperimentEngine.durations` output slots instead of results;
    in strict mode they ride inside :class:`GridExecutionError`.
    ``kind`` is ``"exception"`` (the replay raised), ``"timeout"`` (the
    point blew its wall-clock budget), or ``"pool_crash"`` (a worker
    process died while the point was in flight).

    ``attempt_history`` keeps one ``(kind, seconds, error)`` triple per
    attempt, in order, and ``traceback`` the formatted traceback of the
    last attempt when one was available (remote tracebacks from pool
    workers included) — :meth:`describe` stays a one-liner,
    :meth:`detail` renders the full post-mortem.
    """

    point: GridPoint
    kind: str
    error: str
    attempts: int
    attempt_history: tuple = field(default=())
    traceback: str = ""

    def describe(self) -> str:
        return (
            f"{self.point.app}/{self.point.variant} "
            f"(bw={self.point.bandwidth_mbps}, buses={self.point.buses}, "
            f"lat={self.point.latency}): {self.kind} after "
            f"{self.attempts} attempt(s): {self.error}"
        )

    def detail(self) -> str:
        """Multi-line account: every attempt's fate plus the traceback."""
        lines = [self.describe()]
        for i, (kind, secs, error) in enumerate(self.attempt_history, 1):
            lines.append(f"  attempt {i}: {kind} after {secs:.3f}s: {error}")
        if self.traceback:
            lines.append("  worker traceback (last attempt):")
            lines.extend(
                "    " + ln for ln in self.traceback.rstrip().splitlines()
            )
        return "\n".join(lines)


class GridExecutionError(RuntimeError):
    """One or more grid points kept failing (strict mode).

    ``failures`` lists one :class:`PointFailure` per dead point; the
    points that did succeed are not reported here — re-run in degraded
    mode to get them alongside the sentinels.
    """

    def __init__(self, failures: Sequence[PointFailure]):
        self.failures = list(failures)
        lines = "\n".join(f"  {f.describe()}" for f in self.failures)
        super().__init__(
            f"{len(self.failures)} grid point(s) failed permanently:\n{lines}"
        )


class DegradedBracketError(RuntimeError):
    """A bisection bracket depends on probes that failed.

    Bisection walks a decision tree: a missing probe answer would
    silently bias the threshold, so a degraded engine refuses the
    bracket outright instead of guessing.
    """

    def __init__(self, failures: Sequence[PointFailure]):
        self.failures = list(failures)
        lines = "\n".join(f"  {f.describe()}" for f in self.failures)
        super().__init__(
            f"bisection bracket degraded — {len(self.failures)} probe(s) "
            f"failed:\n{lines}"
        )


# --------------------------------------------------------------------------- #
# Point execution (shared by the in-process path and pool workers).
# --------------------------------------------------------------------------- #

def _resolve_experiment(
    point: GridPoint,
    cache_dir: str | None,
    store: dict,
) -> AppExperiment:
    """The (process-local) experiment bundle behind a grid point."""
    key = point.experiment_key()
    exp = store.get(key)
    if exp is None:
        trace_cache = sim_cache = None
        if cache_dir is not None:
            trace_cache = TraceCache(Path(cache_dir) / "traces")
            sim_cache = SimResultCache(Path(cache_dir) / "replays")
        exp = AppExperiment(
            point.app,
            nranks=point.nranks,
            chunks=point.chunks,
            app_params=dict(point.app_params),
            machine=point.machine,
            cache=trace_cache,
            sim_cache=sim_cache,
        )
        store[key] = exp
    return exp


def _simulate_point(point: GridPoint, cache_dir: str | None, store: dict) -> SimResult:
    exp = _resolve_experiment(point, cache_dir, store)
    return exp.simulate(
        point.variant,
        bandwidth_mbps=point.bandwidth_mbps,
        buses=point.buses,
        latency=point.latency,
    )


class WorkerMemoryError(MemoryError):
    """The per-worker RSS watchdog tripped before the OOM killer could.

    Raised *inside* a worker (or the serial path) when its resident set
    exceeds the engine's ``rss_limit_mb`` budget — converting an
    impending out-of-memory kill (which would break the whole pool)
    into an ordinary, retryable, journaled point failure.
    """


def _rss_mb() -> float | None:
    """This process's resident set size in MiB (None when unknowable).

    ``$REPRO_TEST_FAKE_RSS_MB`` overrides the reading for deterministic
    watchdog tests.
    """
    fake = os.environ.get("REPRO_TEST_FAKE_RSS_MB")
    if fake:
        try:
            return float(fake)
        except ValueError:
            pass
    try:
        with open("/proc/self/statm") as fh:
            pages = int(fh.read().split()[1])
        return pages * os.sysconf("SC_PAGESIZE") / (1024.0 * 1024.0)
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    except (ImportError, OSError, ValueError):
        return None


def _check_rss_budget(limit_mb: float | None) -> None:
    """Fail the current point when this process is about to OOM."""
    if not limit_mb:
        return
    rss = _rss_mb()
    if rss is not None and rss > limit_mb:
        get_registry().counter("engine.rss_guard_trips").inc()
        raise WorkerMemoryError(
            f"process RSS {rss:.0f} MiB exceeds the {limit_mb:.0f} MiB "
            f"budget; failing this point before the OOM killer fires"
        )


def _maybe_selfkill(env_var: str) -> None:
    """Chaos-test hook: SIGKILL this process when ``env_var`` is set."""
    if os.environ.get(env_var):
        os.kill(os.getpid(), signal.SIGKILL)


def _failure_payload(failure: PointFailure) -> dict:
    """JSON-ready journal payload of a quarantine decision."""
    return {
        "kind": failure.kind,
        "error": failure.error,
        "attempts": failure.attempts,
        "attempt_history": [list(t) for t in failure.attempt_history],
        "traceback": failure.traceback,
    }


def _failure_from_payload(point: GridPoint, payload: dict) -> PointFailure:
    """Rebuild a journaled :class:`PointFailure` for ``point``."""
    return PointFailure(
        point=point,
        kind=payload.get("kind", "exception"),
        error=payload.get("error", ""),
        attempts=int(payload.get("attempts", 1)),
        attempt_history=tuple(
            tuple(t) for t in payload.get("attempt_history", ())
        ),
        traceback=payload.get("traceback", ""),
    )


#: Per-worker-process state, set once by the pool initializer.
_WORKER: dict = {"cache_dir": None, "experiments": {}, "rss_limit_mb": None}


def _worker_init(cache_dir: str | None, obs_spec: dict | None = None,
                 rss_limit_mb: float | None = None) -> None:
    _WORKER["cache_dir"] = cache_dir
    _WORKER["experiments"] = {}
    _WORKER["rss_limit_mb"] = rss_limit_mb
    configure_worker(obs_spec)


def _claim_marker(env_var: str) -> bool:
    """Atomically claim the marker file named by ``env_var`` (test hook).

    The resilience tests arm a fault by creating a file and exporting
    its path; exactly one worker wins the unlink and misbehaves, so a
    "worker dies mid-grid" scenario is deterministic without patching
    multiprocessing internals.
    """
    marker = os.environ.get(env_var)
    if not marker:
        return False
    try:
        os.unlink(marker)
    except FileNotFoundError:
        return False
    return True


def _maybe_fault_for_tests() -> None:
    if _claim_marker("REPRO_TEST_KILL_WORKER_ONCE"):
        os._exit(13)  # hard death: parent sees BrokenProcessPool
    if _claim_marker("REPRO_TEST_RAISE_ONCE"):
        raise RuntimeError("injected worker failure (test hook)")
    if _claim_marker("REPRO_TEST_HANG_ONCE"):
        time.sleep(600.0)


def _worker_result(point: GridPoint) -> tuple[SimResult, dict]:
    """Replay one point; second element is the observability payload.

    The payload (metric deltas, spans, pid) rides the existing result
    pickle back to the parent, which merges it into its registry and —
    when a run is open — the run's event log.  This is how cache
    hit/miss counters and worker spans survive the process boundary.
    """
    _maybe_fault_for_tests()
    _check_rss_budget(_WORKER["rss_limit_mb"])
    res = _simulate_point(point, _WORKER["cache_dir"], _WORKER["experiments"])
    return res, collect_worker_payload()


def _worker_duration(point: GridPoint) -> tuple[float, dict]:
    _maybe_fault_for_tests()
    _check_rss_budget(_WORKER["rss_limit_mb"])
    res = _simulate_point(point, _WORKER["cache_dir"], _WORKER["experiments"])
    return res.duration, collect_worker_payload()


def _absorb_payload(payload: dict | None) -> None:
    """Parent side of the worker funnel.

    With a run open the payload feeds the run (registry + span set +
    event log); without one the metric deltas still merge into the
    process registry so counters like ``cache.replay.hits`` aggregate
    across workers even when nobody asked for a run directory.
    """
    if not payload:
        return
    run = current_run()
    if run is not None:
        run.absorb_worker(payload)
    else:
        get_registry().merge_delta(payload.get("metrics"))


# --------------------------------------------------------------------------- #
# The engine.
# --------------------------------------------------------------------------- #

class ExperimentEngine:
    """Process-pool scheduler for grids of replays.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) runs everything in-process —
        same code path, no pool, useful as the deterministic reference.
    cache_dir:
        Directory for the persistent caches (created on demand):
        ``<cache_dir>/traces`` for :class:`TraceCache` and
        ``<cache_dir>/replays`` for :class:`SimResultCache`.  Shared by
        all workers; ``None`` disables persistence (each process still
        memoizes in memory).
    retry:
        :class:`RetryPolicy` governing worker failures (default: three
        attempts, 50 ms exponential backoff, no per-point timeout).
        A dead worker process (``BrokenProcessPool``) restarts the pool
        and charges every in-flight point one attempt; a hung worker is
        detected via ``retry.point_timeout`` and handled the same way.
    degraded:
        When True, points that exhaust their retries come back as
        :class:`PointFailure` sentinels in the result list (and are
        recorded in :attr:`quarantine`); when False (default) the grid
        raises :class:`GridExecutionError` listing them.
    checkpoint:
        A :class:`~repro.experiments.checkpoint.CheckpointJournal`.
        Every grid-point completion (quarantine decisions included) is
        write-ahead journaled; points already present in the journal
        are served from it without re-execution (the ``--resume``
        path), counted by the ``checkpoint.replayed`` metric.
    rss_limit_mb:
        Per-process resident-set budget (MiB).  A worker (or the
        serial path) whose RSS exceeds it fails the current point with
        :class:`WorkerMemoryError` — a retryable, journalable failure —
        instead of dying to the OOM killer and breaking the pool.
        Defaults to ``$REPRO_WORKER_RSS_LIMIT_MB`` (unset = no budget).

    The engine is a context manager; :meth:`close` shuts the pool down.
    :meth:`request_drain` (wired to SIGTERM/SIGINT by
    :func:`~repro.experiments.checkpoint.graceful_drain`) makes the
    next grid stop dispatching, journal in-flight completions, and
    raise :class:`~repro.experiments.checkpoint.CampaignInterrupted`.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: str | Path | None = None,
        retry: RetryPolicy | None = None,
        degraded: bool = False,
        checkpoint: CheckpointJournal | None = None,
        rss_limit_mb: float | None = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.retry = retry if retry is not None else RetryPolicy()
        self.degraded = bool(degraded)
        self.checkpoint = checkpoint
        if rss_limit_mb is None:
            raw = os.environ.get("REPRO_WORKER_RSS_LIMIT_MB")
            if raw:
                try:
                    rss_limit_mb = float(raw)
                except ValueError:
                    rss_limit_mb = None
        self.rss_limit_mb = rss_limit_mb
        #: Points that exhausted their retry budget, by grid point.
        self.quarantine: dict[GridPoint, PointFailure] = {}
        self._experiments: dict = {}
        self._pool: ProcessPoolExecutor | None = None
        self._drain = threading.Event()

    # -- drain (graceful SIGTERM/SIGINT) -------------------------------------
    def request_drain(self) -> None:
        """Stop dispatching new grid points; journal what completes.

        Async-signal safe (sets an event); the running grid notices at
        its next scheduling step and raises
        :class:`~repro.experiments.checkpoint.CampaignInterrupted`
        after journaling every completion already in flight.
        """
        self._drain.set()

    @property
    def drain_requested(self) -> bool:
        return self._drain.is_set()

    @property
    def mediated(self) -> bool:
        """True when work should route through the engine even for one
        serial process — a parallel pool, degraded bookkeeping, or a
        checkpoint journal all need to see every point."""
        return self.jobs > 1 or self.degraded or self.checkpoint is not None

    def _interrupted(self, remaining: int) -> CampaignInterrupted:
        run_id = self.checkpoint.run_id if self.checkpoint is not None else None
        get_registry().counter("engine.drains").inc()
        run = current_run()
        if run is not None:
            run.record("campaign_drained", remaining=remaining)
        return CampaignInterrupted(run_id, remaining=remaining)

    # -- checkpoint serve/record ---------------------------------------------
    def _serve_checkpoint(self, point: GridPoint, mode: str):
        """The journaled value for ``point`` (result, duration, or —
        in degraded mode — a restored :class:`PointFailure`); None
        when the journal cannot answer and the point must run."""
        if self.checkpoint is None:
            return None
        hit = self.checkpoint.lookup(point_key(point), mode)
        if hit is None:
            return None
        if hit.mode == "failure":
            # Strict engines give journaled failures a fresh chance;
            # degraded engines reproduce the quarantine decision.
            if not self.degraded:
                return None
            failure = _failure_from_payload(point, hit.payload)
            self.quarantine[point] = failure
            get_registry().counter("checkpoint.replayed").inc()
            return failure
        if hit.mode == "result":
            try:
                res = SimResult.from_dict(hit.payload["result"])
            except (KeyError, TypeError, ValueError):
                return None  # corrupt payload: re-run the point
            get_registry().counter("checkpoint.replayed").inc()
            return res if mode == "result" else res.duration
        if mode != "duration" or "duration" not in hit.payload:
            return None
        get_registry().counter("checkpoint.replayed").inc()
        return hit.payload["duration"]

    def _journal_value(self, point: GridPoint, mode: str, value) -> None:
        """Write-ahead journal one completion (results and failures)."""
        if self.checkpoint is None:
            return
        key = point_key(point)
        if isinstance(value, PointFailure):
            self.checkpoint.record(key, "failure", _failure_payload(value))
        elif mode == "result":
            if self.checkpoint.lookup(key, "result") is None:
                self.checkpoint.record(key, "result",
                                       {"result": value.to_dict()})
        elif self.checkpoint.entries.get((key, "duration")) is None:
            self.checkpoint.record(key, "duration", {"duration": value})

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _discard_pool(self, reason: str) -> None:
        """Tear down a broken or hung pool so the next submit rebuilds it.

        Workers are terminated outright: after a crash the survivors
        hold no state worth draining (results travel through futures we
        have already abandoned), and after a hang the stuck worker
        would block a graceful shutdown forever.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        _log.warning("experiment pool %s; recycling workers", reason)
        get_registry().counter("engine.pool_recycles").inc()
        run = current_run()
        if run is not None:
            run.record("pool_recycle", reason=reason)
        procs = getattr(pool, "_processes", None) or {}
        for proc in list(procs.values()):
            if proc.is_alive():
                proc.terminate()
        pool.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "ExperimentEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_worker_init,
                initargs=(self.cache_dir, worker_config(), self.rss_limit_mb),
            )
        return self._pool

    # -- core scheduling ----------------------------------------------------
    def _map_points(self, pool_fn: Callable, points: list[GridPoint]) -> list:
        """Fan ``pool_fn`` over the points via the pool, preserving order.

        Points answerable without execution are resolved directly in
        the parent — first from the checkpoint journal (the resume
        path), then from the persistent cache (warm hits) — and only
        actual misses pay worker dispatch.  The misses are sorted by
        experiment identity so one worker tends to replay all platform
        variations of the same trace (per-process experiment reuse);
        results come back in the input order.

        Worker failures are retried per :attr:`retry`; permanently dead
        points surface per :attr:`degraded` (sentinel or raise).  Every
        completion — warm hits included — is write-ahead journaled when
        a checkpoint is attached.
        """
        mode = "result" if pool_fn is _worker_result else "duration"
        out: list = [None] * len(points)
        miss: list[int] = []
        for i, p in enumerate(points):
            served = self._serve_checkpoint(p, mode)
            if served is not None:
                out[i] = served
                continue
            hit = None
            if self.cache_dir is not None:
                exp = _resolve_experiment(p, self.cache_dir, self._experiments)
                hit = exp.cached_result(
                    p.variant, bandwidth_mbps=p.bandwidth_mbps,
                    buses=p.buses, latency=p.latency,
                )
            if hit is not None:
                out[i] = hit if mode == "result" else hit.duration
                self._journal_value(p, mode, out[i])
            else:
                miss.append(i)
        if not miss:
            return out
        if self._drain.is_set():
            raise self._interrupted(remaining=len(miss))
        order = sorted(miss, key=lambda i: (repr(points[i].experiment_key()), i))
        failures: list[PointFailure] = []
        self._run_resilient(
            pool_fn, mode, [(i, points[i]) for i in order], out, failures,
        )
        if failures and not self.degraded:
            raise GridExecutionError(failures)
        return out

    def _run_resilient(
        self,
        pool_fn: Callable,
        mode: str,
        indexed: list[tuple[int, GridPoint]],
        out: list,
        failures: list[PointFailure],
    ) -> None:
        """Submit every ``(slot, point)`` as its own future and babysit.

        Three failure shapes are recovered: a worker *raising* (retry
        that point), a worker *dying* (``BrokenProcessPool`` poisons
        every in-flight future — recycle the pool, charge each in-flight
        point one attempt, resubmit), and a worker *hanging* (per-point
        wall-clock budget exceeded — same recycle, charge only the
        expired points).  A point that spends its attempt budget is
        quarantined; its slot receives a :class:`PointFailure`.

        A drain request (:meth:`request_drain`) is honored at the next
        scheduling step: queued futures are cancelled, running ones are
        awaited and journaled, and the grid raises
        :class:`~repro.experiments.checkpoint.CampaignInterrupted`.
        """
        retry = self.retry
        reg = get_registry()
        pending: dict[Future, tuple[int, GridPoint, int, float]] = {}
        #: Per-slot (kind, seconds, error) of every failed attempt so
        #: far — becomes PointFailure.attempt_history on quarantine.
        history: dict[int, list[tuple[str, float, str]]] = {}

        def submit(slot: int, point: GridPoint, attempt: int) -> None:
            fut = self._ensure_pool().submit(pool_fn, point)
            pending[fut] = (slot, point, attempt, time.monotonic())

        def settle(slot: int, point: GridPoint, attempt: int,
                   kind: str, error: str, elapsed: float,
                   tb: str = "") -> None:
            history.setdefault(slot, []).append((kind, elapsed, error))
            if attempt < retry.max_attempts and not self._drain.is_set():
                delay = retry.delay(attempt)
                _log.warning(
                    "grid point %s/%s failed (%s, attempt %d/%d): %s; "
                    "retrying in %.3fs",
                    point.app, point.variant, kind, attempt,
                    retry.max_attempts, error, delay,
                )
                reg.counter("engine.retries").inc()
                if delay > 0:
                    time.sleep(delay)
                submit(slot, point, attempt + 1)
                return
            if attempt < retry.max_attempts:
                # Draining: don't burn the point's remaining attempts —
                # leave its slot empty so a resume re-runs it fresh.
                return
            failure = PointFailure(
                point=point, kind=kind, error=error, attempts=attempt,
                attempt_history=tuple(history.get(slot, ())), traceback=tb,
            )
            self.quarantine[point] = failure
            failures.append(failure)
            out[slot] = failure
            self._journal_value(point, mode, failure)
            reg.counter("engine.quarantined").inc()
            run = current_run()
            if run is not None:
                run.record("point_quarantined", app=point.app,
                           variant=point.variant, kind=kind,
                           attempts=attempt, error=error)
            _log.error("grid point quarantined: %s", failure.describe())

        for slot, point in indexed:
            if self._drain.is_set():
                break
            submit(slot, point, 1)

        while pending:
            if self._drain.is_set():
                self._drain_inflight(mode, pending, out)
                remaining = sum(1 for slot, _ in indexed if out[slot] is None)
                raise self._interrupted(remaining=remaining)
            timeout = None
            if retry.point_timeout is not None:
                oldest = min(t0 for (_, _, _, t0) in pending.values())
                timeout = max(
                    0.0, oldest + retry.point_timeout - time.monotonic()
                )
            done, _ = wait(
                list(pending), timeout=timeout, return_when=FIRST_COMPLETED
            )
            if not done:
                # A point blew its wall-clock budget: its worker is
                # stuck, so the pool must go.  Innocent in-flight points
                # are resubmitted without being charged an attempt.
                now = time.monotonic()
                states = list(pending.values())
                pending.clear()
                self._discard_pool("hung (per-point timeout exceeded)")
                for slot, point, attempt, t0 in states:
                    if now - t0 >= retry.point_timeout:
                        settle(
                            slot, point, attempt, "timeout",
                            f"exceeded {retry.point_timeout:.3g}s wall clock",
                            now - t0,
                        )
                    else:
                        submit(slot, point, attempt)
                continue
            for fut in done:
                if fut not in pending:
                    continue  # cleared by a pool-crash recovery below
                slot, point, attempt, t0 = pending.pop(fut)
                elapsed = time.monotonic() - t0
                try:
                    value, payload = fut.result()
                except BrokenProcessPool as exc:
                    # The dead worker poisons every in-flight future and
                    # the parent cannot tell which point killed it, so
                    # each one is charged an attempt (this bounds a
                    # reproducibly-crashing point to max_attempts pool
                    # restarts) and everything is resubmitted.
                    now = time.monotonic()
                    victims = list(pending.values())
                    pending.clear()
                    self._discard_pool("broken (worker process died)")
                    err = f"{type(exc).__name__}: {exc}" if str(exc) else (
                        "worker process died unexpectedly"
                    )
                    settle(slot, point, attempt, "pool_crash", err, elapsed)
                    for v_slot, v_point, v_attempt, v_t0 in victims:
                        settle(v_slot, v_point, v_attempt, "pool_crash", err,
                               now - v_t0)
                except Exception as exc:  # noqa: BLE001 - retried/reported
                    # format_exception includes the _RemoteTraceback the
                    # pool chains in, i.e. the worker-side stack.
                    settle(
                        slot, point, attempt, "exception",
                        f"{type(exc).__name__}: {exc}", elapsed,
                        tb="".join(_tb.format_exception(exc)),
                    )
                else:
                    out[slot] = value
                    self._journal_value(point, mode, value)
                    _absorb_payload(payload)
                    reg.counter("engine.points_executed").inc()
                    reg.histogram("engine.point_wall_seconds").observe(elapsed)

        if self._drain.is_set():
            remaining = sum(1 for slot, _ in indexed if out[slot] is None)
            if remaining:
                raise self._interrupted(remaining=remaining)

    def _drain_inflight(self, mode: str, pending: dict, out: list) -> None:
        """Drain step: cancel what never started, journal what finishes.

        Queued futures are cancelled (their points re-run on resume);
        futures already executing are awaited so their completions are
        journaled — a drain loses no finished work.
        """
        running: dict[Future, tuple[int, GridPoint, int, float]] = {}
        for fut, state in list(pending.items()):
            if not fut.cancel():
                running[fut] = state
        pending.clear()
        reg = get_registry()
        for fut, (slot, point, _attempt, t0) in running.items():
            try:
                value, payload = fut.result(timeout=self.retry.point_timeout)
            except Exception:  # noqa: BLE001 - drained points just re-run
                continue
            out[slot] = value
            self._journal_value(point, mode, value)
            _absorb_payload(payload)
            reg.counter("engine.points_executed").inc()
            reg.histogram("engine.point_wall_seconds").observe(
                time.monotonic() - t0
            )

    def _run_serial(self, points: list[GridPoint], mode: str) -> list:
        """In-process reference path with the same failure contract."""
        out: list = []
        failures: list[PointFailure] = []
        reg = get_registry()
        for p in points:
            if self._drain.is_set():
                raise self._interrupted(remaining=len(points) - len(out))
            served = self._serve_checkpoint(p, mode)
            if served is not None:
                out.append(served)
                continue
            t0 = time.monotonic()
            try:
                _check_rss_budget(self.rss_limit_mb)
                res = _simulate_point(p, self.cache_dir, self._experiments)
                value = res if mode == "result" else res.duration
                out.append(value)
                self._journal_value(p, mode, value)
                reg.counter("engine.points_executed").inc()
                reg.histogram("engine.point_wall_seconds").observe(
                    time.monotonic() - t0
                )
            except Exception as exc:  # noqa: BLE001 - uniform grid contract
                err = f"{type(exc).__name__}: {exc}"
                failure = PointFailure(
                    point=p, kind="exception", error=err, attempts=1,
                    attempt_history=(("exception", time.monotonic() - t0, err),),
                    traceback="".join(_tb.format_exception(exc)),
                )
                self.quarantine[p] = failure
                self._journal_value(p, mode, failure)
                reg.counter("engine.quarantined").inc()
                if not self.degraded:
                    raise GridExecutionError([failure]) from exc
                _log.warning("degraded grid: %s", failure.describe())
                failures.append(failure)
                out.append(failure)
        return out

    def run_grid(self, points: Iterable[GridPoint]) -> list[SimResult]:
        """Replay every grid point; results in input order.

        Deterministic: identical to running the same points serially.
        In degraded mode, slots whose point kept failing hold a
        :class:`PointFailure` instead of a :class:`SimResult`; in
        strict mode such points raise :class:`GridExecutionError`.
        """
        points = list(points)
        _maybe_selfkill("REPRO_TEST_SELFKILL_BEFORE_DISPATCH")
        with _span("engine.run_grid", points=len(points), jobs=self.jobs):
            if self.jobs <= 1 or len(points) <= 1:
                return self._run_serial(points, "result")
            return self._map_points(_worker_result, points)

    def durations(self, points: Iterable[GridPoint]) -> list[float]:
        """Simulated makespans of every grid point, in input order.

        Cheaper than :meth:`run_grid` across a pool: only a float per
        point crosses the process boundary.  Failure contract as in
        :meth:`run_grid`.
        """
        points = list(points)
        _maybe_selfkill("REPRO_TEST_SELFKILL_BEFORE_DISPATCH")
        with _span("engine.durations", points=len(points), jobs=self.jobs):
            if self.jobs <= 1 or len(points) <= 1:
                return self._run_serial(points, "duration")
            return self._map_points(_worker_duration, points)

    # -- experiment interop -------------------------------------------------
    def experiment(self, point: GridPoint) -> AppExperiment:
        """In-process experiment bundle for a point (cached)."""
        return _resolve_experiment(point, self.cache_dir, self._experiments)

    @staticmethod
    def point_for(exp: AppExperiment, variant: str = "original") -> GridPoint:
        """Grid point describing an existing experiment bundle."""
        return GridPoint(
            app=exp.app_name,
            variant=variant,
            nranks=exp.nranks,
            chunks=exp.chunks,
            app_params=_normalize_params(exp.app_params),
            machine=exp.machine,
        )

    def duration_predicate_many(
        self,
        exp: AppExperiment,
        variant: str,
        threshold: float,
    ) -> Callable[[Sequence[float]], list[bool]]:
        """Batched bandwidth predicate for the bisection searches.

        Returns ``predicate_many(bandwidths) -> [duration <= threshold]``
        evaluated through the engine (concurrently when ``jobs > 1``;
        directly on ``exp`` when serial, reusing its memo).

        A degraded engine refuses to guess: when any probe comes back
        as a :class:`PointFailure` the predicate raises
        :class:`DegradedBracketError` instead of returning a bracket
        built on missing answers.
        """
        base = self.point_for(exp, variant)
        # Let the engine's warm-hit and serial paths reuse the caller's
        # already-traced experiment instead of rebuilding it.
        self._experiments.setdefault(base.experiment_key(), exp)

        def predicate_many(bandwidths: Sequence[float]) -> list[bool]:
            if not self.mediated:
                return [
                    exp.duration(variant, bandwidth_mbps=float(bw)) <= threshold
                    for bw in bandwidths
                ]
            pts = [replace(base, bandwidth_mbps=float(bw)) for bw in bandwidths]
            durs = self.durations(pts)
            bad = [d for d in durs if isinstance(d, PointFailure)]
            if bad:
                raise DegradedBracketError(bad)
            return [d <= threshold for d in durs]

        return predicate_many


def speedup_grid(
    engine: ExperimentEngine,
    apps: Sequence[str],
    nranks: int = 64,
    chunks: int = 4,
) -> dict[str, dict[str, float]]:
    """Fig. 6(a) speedups for a pool of applications, engine-scheduled.

    Returns ``{app: {"real": s, "ideal": s}}`` — the same numbers as
    :meth:`AppExperiment.speedups` per app, computed as one grid.
    """
    variants = ("original", "real", "ideal")
    points = [
        GridPoint(app=a, variant=v, nranks=nranks, chunks=chunks)
        for a in apps
        for v in variants
    ]
    durs = engine.durations(points)
    by_point = dict(zip(points, durs))
    out: dict[str, dict[str, float]] = {}
    for a in apps:
        base = by_point[GridPoint(app=a, variant="original", nranks=nranks, chunks=chunks)]
        out[a] = {
            "real": base / by_point[GridPoint(app=a, variant="real", nranks=nranks, chunks=chunks)],
            "ideal": base / by_point[GridPoint(app=a, variant="ideal", nranks=nranks, chunks=chunks)],
        }
    return out
