"""Network-configuration sweeps.

Paper §V: *"Dimemas allows us to simulate various network
configurations, so we can evaluate the impact of overlapping on future
networks."*  These helpers produce the duration-vs-parameter series
behind such studies (and behind Figure 6's searches), plus a small
text renderer so examples and reports can show the curves without a
plotting stack.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..obs import span as _span
from .pipeline import AppExperiment, VARIANTS

__all__ = ["SweepResult", "ascii_series", "bandwidth_sweep", "latency_sweep"]


@dataclass(frozen=True)
class SweepResult:
    """One parameter sweep: x values and per-variant durations."""

    parameter: str
    xs: tuple[float, ...]
    durations: dict[str, tuple[float, ...]]

    def speedups(self, variant: str) -> tuple[float, ...]:
        """Speedup of ``variant`` over the original, per x value."""
        base = self.durations["original"]
        return tuple(b / d for b, d in zip(base, self.durations[variant]))

    def crossover(self, variant: str = "real") -> float | None:
        """First x at which ``variant`` stops beating the original by
        more than 0.1 % (None when it always wins)."""
        for x, s in zip(self.xs, self.speedups(variant)):
            if s < 1.001:
                return x
        return None


def _sweep(
    exp: AppExperiment,
    parameter: str,
    xs: tuple[float, ...],
    variants: tuple[str, ...],
    engine,
) -> SweepResult:
    """Run one (variant x value) grid, engine-fanned when available."""
    with _span("sweep", parameter=parameter, app=exp.app_name,
               points=len(xs) * len(variants)):
        if engine is None or not engine.mediated:
            durations = {
                v: tuple(exp.duration(v, **{parameter: x}) for x in xs)
                for v in variants
            }
            return SweepResult(parameter, xs, durations)
        from dataclasses import replace

        from .parallel import PointFailure
        points = [
            replace(engine.point_for(exp, v), **{parameter: x})
            for v in variants
            for x in xs
        ]
        # A degraded engine hands back PointFailure sentinels for points
        # it had to quarantine; the sweep keeps its shape with NaN holes.
        flat = [
            math.nan if isinstance(d, PointFailure) else d
            for d in engine.durations(points)
        ]
        durations = {
            v: tuple(flat[i * len(xs):(i + 1) * len(xs)])
            for i, v in enumerate(variants)
        }
        return SweepResult(parameter, xs, durations)


def bandwidth_sweep(
    exp: AppExperiment,
    bandwidths: list[float] | None = None,
    variants: tuple[str, ...] = VARIANTS,
    engine=None,
) -> SweepResult:
    """Durations across link bandwidths (MB/s), all variants.

    With a parallel :class:`~repro.experiments.parallel.ExperimentEngine`
    the whole (variant x bandwidth) grid is fanned across workers.
    """
    xs = tuple(bandwidths or (15.625, 31.25, 62.5, 125.0, 250.0, 500.0, 1000.0))
    return _sweep(exp, "bandwidth_mbps", xs, variants, engine)


def latency_sweep(
    exp: AppExperiment,
    latencies: list[float] | None = None,
    variants: tuple[str, ...] = VARIANTS,
    engine=None,
) -> SweepResult:
    """Durations across per-message latencies (seconds), all variants.

    ``engine`` fans the grid across workers as in
    :func:`bandwidth_sweep`.
    """
    xs = tuple(latencies or (1e-6, 2e-6, 4e-6, 8e-6, 16e-6, 32e-6, 64e-6))
    return _sweep(exp, "latency", xs, variants, engine)


def ascii_series(
    sweep: SweepResult,
    width: int = 64,
    height: int = 12,
) -> str:
    """Plain-text plot of the sweep (one mark per variant).

    The y axis is the simulated duration (linear); the x axis follows
    the sweep order.  Marks: ``o`` original, ``r`` real-pattern
    overlap, ``i`` ideal-pattern overlap (later marks overwrite).
    """
    marks = {"original": "o", "real": "r", "ideal": "i"}
    all_vals = np.array([d for series in sweep.durations.values() for d in series])
    lo, hi = float(all_vals.min()), float(all_vals.max())
    if hi <= lo:
        hi = lo + 1e-12
    grid = [[" "] * width for _ in range(height)]
    n = len(sweep.xs)
    for variant, series in sweep.durations.items():
        ch = marks.get(variant, "?")
        for k, d in enumerate(series):
            col = int(round(k * (width - 1) / max(n - 1, 1)))
            row = int(round((hi - d) / (hi - lo) * (height - 1)))
            grid[row][col] = ch
    lines = [f"duration vs {sweep.parameter}  "
             f"[{lo * 1e3:.3f} .. {hi * 1e3:.3f} ms]"]
    lines += ["|" + "".join(row) + "|" for row in grid]
    lines.append("x: " + "  ".join(f"{x:g}" for x in sweep.xs))
    lines.append("legend: o original   r real overlap   i ideal overlap")
    return "\n".join(lines)
