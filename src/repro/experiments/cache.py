"""On-disk caches: traces and replay results.

Tracing a 64-rank application takes seconds and the evaluation replays
the same three traces dozens of times (every bandwidth-bisection step,
every bus count).  Three content-addressed directory caches make both
costs one-time:

* :class:`TraceCache` persists original traces as packed columnar
  ``.rct`` files (:mod:`repro.trace.columnar`) keyed by a content hash
  of (application, parameters, scale, tracer settings, package
  version);
* :class:`TraceStore` is the digest-addressed twin used by the
  parallel engine's zero-copy dispatch: the parent publishes each
  trace's compact encoding once, and every worker decodes it straight
  into the replay plan — no record objects, no re-serialization;
* :class:`SimResultCache` persists replay results as ``.json`` files
  keyed by a content hash of the *trace itself* plus the full
  :class:`~repro.dimemas.machine.MachineConfig`, so a repeated grid
  point is free across processes and sessions.  Each result also
  publishes a one-line ``.dur`` sidecar carrying just the simulated
  makespan, so duration-only consumers (bandwidth bisection, sweeps)
  answer warm hits without parsing the full result envelope.

Both caches publish atomically (write to a per-process unique temp
name, then :meth:`~pathlib.Path.replace`), so concurrent workers of the
parallel experiment engine can share one cache directory: when two
processes build the same key, both writes succeed and the last rename
wins with identical content.

Both caches are also **self-healing**: every entry is published with a
schema version and a content checksum, and anything that fails to load
— truncated by a killed writer, bit-flipped on disk, or written by an
older schema — is *quarantined* (moved into a ``quarantine/``
subdirectory for inspection, with a logged reason) and transparently
rebuilt.  Orphaned ``*.tmp`` staging files left behind by dead writers
are swept when a cache directory is opened (writer identity is PID
*plus* process start time, so a recycled PID cannot protect another
writer's garbage).  A corrupted cache can therefore slow a warm run
down, but never crash it or poison results.

Both caches **degrade instead of dying**: a read-only cache directory,
a full disk (ENOSPC), or any other persistent I/O failure switches the
cache to in-memory operation for the rest of the process — one
structured warning, a ``cache.degraded`` metric, and the campaign
continues without persistence rather than crashing mid-grid.

Traces recorded with ``record_streams=True`` are *not* cacheable (raw
access streams are not serialized) and bypass the trace cache.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import logging
import os
import shutil
import threading
import time
from collections import OrderedDict
from dataclasses import asdict
from pathlib import Path
from typing import Callable

from .. import __version__
from ..dimemas.machine import MachineConfig
from ..dimemas.results import SimResult
from ..obs import get_registry, span as _span
from ..trace.columnar import (
    ColumnarFormatError,
    ColumnarTrace,
    columnar_of,
    decode as _columnar_decode,
    from_traceset as _columnar_from_traceset,
)
from ..trace.records import TraceSet

__all__ = [
    "SimResultCache", "TraceCache", "TraceStore", "content_key",
    "disk_low", "free_disk_bytes", "min_free_bytes", "sweep_cache_dir",
    "trace_digest",
]

_log = logging.getLogger("repro.experiments.cache")

#: Default disk low-water mark (bytes): below this much free space,
#: cache and journal writers degrade instead of running the disk to
#: zero and dying on ENOSPC mid-write.
DEFAULT_MIN_FREE_BYTES = 16 * 1024 * 1024


def free_disk_bytes(path: str | Path) -> int | None:
    """Free bytes on the filesystem holding ``path`` (None: unknowable)."""
    p = Path(path)
    for candidate in (p, *p.parents):
        try:
            return shutil.disk_usage(candidate).free
        except OSError:
            continue
    return None


def min_free_bytes() -> int:
    """The configured low-water mark (``$REPRO_MIN_FREE_MB`` override)."""
    raw = os.environ.get("REPRO_MIN_FREE_MB")
    if raw:
        try:
            return max(0, int(float(raw) * 1024 * 1024))
        except ValueError:
            pass
    return DEFAULT_MIN_FREE_BYTES


def disk_low(path: str | Path, floor: int | None = None) -> bool:
    """True when the filesystem under ``path`` is below the low-water
    mark — the signal for cache/journal writers to degrade gracefully
    rather than die on ENOSPC mid-write."""
    free = free_disk_bytes(path)
    if free is None:
        return False
    return free < (floor if floor is not None else min_free_bytes())

#: On-disk entry schema.  Bumping it quarantines (and rebuilds) every
#: entry written by earlier code instead of misreading it.
SCHEMA_VERSION = 1


def content_key(**fields) -> str:
    """Stable hash of describing fields (JSON-canonicalized, versioned)."""
    blob = json.dumps(
        {"_version": __version__, **fields},
        sort_keys=True, default=repr,
    ).encode()
    return hashlib.sha256(blob).hexdigest()[:24]


def _proc_start_ticks(pid: int) -> int | None:
    """The process's start time in clock ticks since boot, or None.

    Field 22 of ``/proc/<pid>/stat`` — the one writer-identity datum
    the kernel guarantees distinct across PID reuse.  ``comm`` may
    contain spaces and parens, so split after the *last* ``)``.
    """
    try:
        content = Path(f"/proc/{pid}/stat").read_text()
        return int(content.rpartition(")")[2].split()[19])
    except (OSError, ValueError, IndexError):
        return None


def _writer_token() -> str:
    """Staging-file writer identity: ``<pid>-<start-ticks>``.

    PID alone is recyclable — a new process can inherit a dead writer's
    PID and make its garbage look alive forever.  Start ticks break the
    tie.  Falls back to ``<pid>-0`` where /proc is unavailable.
    """
    pid = os.getpid()
    return f"{pid}-{_proc_start_ticks(pid) or 0}"


#: Per-process staging serial: two publisher threads of the same
#: process writing the same entry must not share a staging file, or
#: one thread's rename deletes the file out from under the other.
_stage_seq = itertools.count()


def _stage_and_publish(path: Path, data: str | bytes) -> None:
    """Atomically publish ``data`` (text or bytes) at ``path``.

    The staging name embeds the writer identity (PID + process start
    time) plus a per-process serial, so concurrent writers — in other
    processes *or* other threads of this one — never clobber each
    other's half-written file; the final rename is atomic within a
    filesystem.
    """
    tmp = path.with_name(
        f"{path.name}.{_writer_token()}-{next(_stage_seq)}.tmp")
    if isinstance(data, bytes):
        tmp.write_bytes(data)
    else:
        tmp.write_text(data)
    tmp.replace(path)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True  # exists but not ours (EPERM)
    return True


def _writer_alive(token: str) -> bool:
    """Whether the writer that owns a staging token is still running.

    Tokens are ``<pid>`` (legacy, liveness check only) or
    ``<pid>-<start-ticks>[-<serial>]`` — a live process that does not
    match the recorded start time is a PID recycle, and the token's
    file is an orphan despite the "alive" PID.  The staging serial, if
    any, carries no identity and is ignored.
    """
    pid_part, sep, rest = token.partition("-")
    ticks_part = rest.partition("-")[0]
    if not pid_part.isdigit():
        return False
    pid = int(pid_part)
    if not _pid_alive(pid):
        return False
    if sep and ticks_part.isdigit() and int(ticks_part):
        now = _proc_start_ticks(pid)
        if now is not None and now != int(ticks_part):
            return False  # PID recycled since the writer died
    return True


def _sweep_orphan_tmps(directory: Path) -> int:
    """Remove ``*.tmp`` staging files whose writer process is gone.

    A worker killed mid-write leaves its staging file behind forever
    (the atomic rename never ran).  Files belonging to still-running
    writers — same PID *and* same process start time — are left alone;
    they may be mid-publish right now.  Returns how many orphans were
    removed.
    """
    swept = 0
    for tmp in directory.glob("*.tmp"):
        parts = tmp.name.rsplit(".", 2)  # <entry-name>.<token>.tmp
        alive = len(parts) == 3 and _writer_alive(parts[1])
        if not alive:
            try:
                tmp.unlink()
                swept += 1
            except OSError:
                pass  # another opener swept it first
    if swept:
        _log.info("swept %d orphaned staging file(s) in %s", swept, directory)
    return swept


def sweep_cache_dir(cache_dir: str | Path) -> int:
    """Remove leftover staging files under a cache root (interrupt path).

    Sweeps the ``traces`` and ``replays`` subdirectories for staging
    files of dead writers *and* of the calling process itself — after a
    Ctrl-C or SIGTERM the caller's own half-written staging file is
    garbage too.  Also applies the quarantine retention policy to each
    subdirectory's ``quarantine/``.  Returns how many files were
    removed.
    """
    root = Path(cache_dir)
    removed = 0
    own = {str(os.getpid()), _writer_token()}
    for sub in (root / "traces", root / "replays", root / "dispatch"):
        if not sub.is_dir():
            continue
        qdir = sub / "quarantine"
        if qdir.is_dir():
            removed += _prune_quarantine(qdir)
        for tmp in sub.glob("*.tmp"):
            parts = tmp.name.rsplit(".", 2)  # <entry-name>.<token>.tmp
            token = parts[1] if len(parts) == 3 else ""
            # tokens may carry a trailing staging serial — identity is
            # the <pid>[-<ticks>] prefix
            if token in own or token.rsplit("-", 1)[0] in own:
                try:
                    tmp.unlink()
                    removed += 1
                except OSError:
                    pass
        removed += _sweep_orphan_tmps(sub)
    return removed


def _quarantine_retention() -> tuple[int, float]:
    """(max entries, max age in seconds) for quarantine directories.

    ``REPRO_QUARANTINE_KEEP`` (default 32) bounds the count;
    ``REPRO_QUARANTINE_MAX_AGE_DAYS`` (default 14) bounds the age.
    A value ``<= 0`` disables that bound.
    """
    def _env(name: str, default: float) -> float:
        raw = os.environ.get(name)
        if raw is None or not raw.strip():
            return default
        try:
            return float(raw)
        except ValueError:
            return default

    keep = int(_env("REPRO_QUARANTINE_KEEP", 32))
    age_days = _env("REPRO_QUARANTINE_MAX_AGE_DAYS", 14.0)
    return keep, age_days * 86400.0


def _prune_quarantine(qdir: Path) -> int:
    """Bound a ``quarantine/`` directory by entry count and age.

    Quarantined entries are evidence, not data — without retention a
    long campaign against a flaky disk grows the directory forever.
    Keeps the newest ``REPRO_QUARANTINE_KEEP`` files and drops anything
    older than ``REPRO_QUARANTINE_MAX_AGE_DAYS``; returns how many
    files were removed.
    """
    keep, max_age = _quarantine_retention()
    entries: list[tuple[float, Path]] = []
    try:
        for p in qdir.iterdir():
            if p.is_file():
                try:
                    entries.append((p.stat().st_mtime, p))
                except OSError:
                    pass  # concurrently removed
    except OSError:
        return 0
    entries.sort(reverse=True)  # newest first
    now = time.time()
    removed = 0
    for i, (mtime, p) in enumerate(entries):
        over_count = keep > 0 and i >= keep
        over_age = max_age > 0 and (now - mtime) > max_age
        if over_count or over_age:
            try:
                p.unlink()
                removed += 1
            except OSError:
                pass
    if removed:
        _log.info("pruned %d expired quarantine entr%s in %s",
                  removed, "y" if removed == 1 else "ies", qdir)
        get_registry().counter("cache.quarantine_pruned").inc(removed)
    return removed


def _quarantine(path: Path, reason: str) -> None:
    """Move a bad cache entry aside (``quarantine/``) and log why.

    The entry is preserved for inspection rather than deleted; its new
    name is made unique so repeated quarantines of the same key never
    clobber the evidence.  Losing the race against a concurrent
    quarantine (or rebuild) of the same entry is fine — the file is
    simply gone already.
    """
    qdir = path.parent / "quarantine"
    try:
        qdir.mkdir(exist_ok=True)
        for n in itertools.count():
            target = qdir / (f"{path.name}.{n}" if n else path.name)
            if not target.exists():
                break
        path.replace(target)
    except OSError:
        _log.warning(
            "corrupt cache entry %s (%s): quarantine failed, ignoring entry",
            path, reason,
        )
        return
    _log.warning("quarantined corrupt cache entry %s -> %s (%s)",
                 path, target, reason)
    get_registry().counter("cache.quarantined").inc()
    _prune_quarantine(qdir)


class _DegradableCache:
    """Mixin: degrade to in-memory operation on persistent I/O failure.

    A read-only cache directory, ENOSPC, or free space under the
    low-water mark switches the cache to a process-local dict for the
    rest of the run: one structured warning, a ``cache.degraded``
    metric, and the campaign keeps going without persistence instead of
    crashing mid-grid.  Reads still try the directory (a read-only dir
    serves hits fine); only the write path goes memory-only.
    """

    METRIC_PREFIX = "cache"

    def _init_store(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        #: True once this cache stopped persisting (I/O failure / disk
        #: low); entries built afterwards live in ``_mem`` only.
        self.degraded = False
        self._mem: dict[str, object] = {}
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            _sweep_orphan_tmps(self.directory)
        except OSError as exc:
            self._degrade(f"cache dir unusable: {exc}")

    def _degrade(self, reason: str) -> None:
        if self.degraded:
            return
        self.degraded = True
        _log.warning(
            "%s cache degraded to in-memory operation (%s); entries built "
            "by this process will not be persisted",
            self.METRIC_PREFIX, reason,
        )
        get_registry().counter("cache.degraded").inc()

    def _publish(self, path: Path, data: str | bytes) -> bool:
        """Best-effort atomic publish; False when running in-memory."""
        if self.degraded:
            return False
        if disk_low(self.directory):
            self._degrade("free disk space below low-water mark")
            return False
        try:
            _stage_and_publish(path, data)
        except OSError as exc:
            self._degrade(f"write failed: {exc}")
            return False
        return True


def trace_digest(trace: "TraceSet | ColumnarTrace") -> str:
    """Stable content hash of a trace (its packed columnar encoding).

    Memoized per trace object through :func:`columnar_of`: one packing
    pays for every replay cache lookup against that trace.  The digest
    is the same one :class:`~repro.trace.columnar.ColumnarTrace`
    reports, so the result cache, the replay-plan LRU, and the dispatch
    store all agree on trace identity.
    """
    return columnar_of(trace).digest


class TraceCache(_DegradableCache):
    """A directory of content-addressed ``.rct`` trace files.

    Entries are packed columnar encodings (:mod:`repro.trace.columnar`)
    whose container carries its own magic, schema version, and payload
    checksums; an entry that is truncated, corrupted, or from another
    schema version fails :func:`~repro.trace.columnar.decode` and is
    quarantined and rebuilt instead of crashing the run.
    """

    #: Metric-name prefix of this cache's registry counters.
    METRIC_PREFIX = "cache.trace"

    def __init__(self, directory: str | Path):
        self._init_store(directory)
        #: Diagnostics: how often the cache answered / had to build,
        #: and how many entries had to be quarantined and rebuilt.
        #: Mirrored into the process metrics registry (and funneled to
        #: the parent by pool workers) under ``cache.trace.*``.
        self.hits = 0
        self.misses = 0
        self.rebuilt = 0
        #: Traces built but not yet published by a background thread;
        #: reads consult this first so publication latency is invisible.
        self._pending: dict[str, TraceSet] = {}
        self._pending_lock = threading.Lock()
        self._publishers: list[threading.Thread] = []

    def _count(self, what: str) -> None:
        setattr(self, what, getattr(self, what) + 1)
        get_registry().counter(f"{self.METRIC_PREFIX}.{what}").inc()

    @staticmethod
    def key(**fields) -> str:
        """Stable hash of the describing fields (JSON-canonicalized)."""
        return content_key(**fields)

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.rct"

    def _verified_load(self, path: Path) -> TraceSet | None:
        """Decode an entry; None (after quarantine) when unusable."""
        try:
            data = path.read_bytes()
        except OSError as exc:
            _quarantine(path, f"unreadable: {exc}")
            return None
        try:
            return _columnar_decode(data).to_traceset()
        except ColumnarFormatError as exc:
            _quarantine(path, f"corrupt columnar entry: {exc}")
            return None

    def load_or_build(self, key: str, builder: Callable[[], TraceSet]) -> TraceSet:
        """Return the cached trace for ``key`` or build and store it.

        A bad entry — decode failure, checksum mismatch, stale schema —
        is quarantined and rebuilt; it never propagates to the caller.
        """
        hit = self._mem.get(key)
        if hit is None:
            with self._pending_lock:
                hit = self._pending.get(key)
        if hit is not None:
            self._count("hits")
            return hit
        path = self.path_for(key)
        if path.exists():
            trace = self._verified_load(path)
            if trace is not None:
                self._count("hits")
                return trace
            self._count("rebuilt")
        self._count("misses")
        with _span("cache.trace.build", key=key):
            trace = builder()
        self._publish_async(key, path, trace)
        return trace

    def _publish_async(self, key: str, path: Path, trace: TraceSet) -> None:
        """Publish in a background thread; the encode of a large trace
        (profiles dominate: tens of MB for hundreds of KB of records)
        and its disk write would otherwise sit on the caller's critical
        path — during parallel dispatch, serially in the parent.  Reads
        are served from :attr:`_pending` until the file lands, and
        :meth:`flush` joins stragglers before anything enumerates the
        directory.  Threads are non-daemon, so process exit (and the
        interpreter's thread join) always completes a started publish.
        """
        if self.degraded:
            self._mem[key] = trace
            return
        with self._pending_lock:
            self._pending[key] = trace
            self._publishers = [t for t in self._publishers if t.is_alive()]
            worker = threading.Thread(
                target=self._publish_one, args=(key, path, trace),
                name="trace-cache-publish",
            )
            self._publishers.append(worker)
        worker.start()

    def _publish_one(self, key: str, path: Path, trace: TraceSet) -> None:
        try:
            data = _columnar_from_traceset(trace, with_profiles=True).encode()
            ok = self._publish(path, data)
        except Exception as exc:  # noqa: BLE001 - must not die silently
            _log.warning("background trace publish failed for %s: %s",
                         key, exc)
            ok = False
        if not ok:
            self._mem[key] = trace
        with self._pending_lock:
            self._pending.pop(key, None)

    def flush(self) -> None:
        """Block until every in-flight background publish has landed."""
        with self._pending_lock:
            threads = [t for t in self._publishers if t.is_alive()]
            self._publishers = threads
        for t in threads:
            t.join()

    def clear(self) -> int:
        """Delete all cached traces; returns how many were removed."""
        self.flush()
        n = len(self._mem)
        self._mem.clear()
        if self.directory.is_dir():
            for p in self.directory.glob("*.rct"):
                p.unlink()
                n += 1
        return n

    def __len__(self) -> int:
        self.flush()
        on_disk = (
            sum(1 for _ in self.directory.glob("*.rct"))
            if self.directory.is_dir() else 0
        )
        return on_disk + len(self._mem)


class TraceStore(_DegradableCache):
    """Digest-addressed store of packed columnar traces.

    The dispatch half of the parallel engine's zero-copy path: the
    parent :meth:`put`\\ s each distinct trace's encoding exactly once
    (the name *is* the content digest, so re-publishing is a no-op),
    and workers :meth:`get` it back as a
    :class:`~repro.trace.columnar.ColumnarTrace` ready to replay.
    Decoded traces are held in a small per-process LRU so a worker
    replaying many platform variations of one trace decodes it once.
    """

    METRIC_PREFIX = "cache.dispatch"

    #: Decoded-trace LRU bound — a worker typically cycles through a
    #: handful of (app, variant) traces per campaign.
    LRU_MAX = 16

    def __init__(self, directory: str | Path):
        self._init_store(directory)
        self._lru: "OrderedDict[str, ColumnarTrace]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def _count(self, what: str) -> None:
        setattr(self, what, getattr(self, what) + 1)
        get_registry().counter(f"{self.METRIC_PREFIX}.{what}").inc()

    def path_for(self, digest: str) -> Path:
        return self.directory / f"{digest}.rct"

    def put(self, col: ColumnarTrace) -> str:
        """Publish a packed trace; returns its digest (the address).

        Idempotent and concurrency-safe: equal content encodes to equal
        bytes under equal names, so racing writers are harmless.  When
        the store is degraded the trace is held in memory — only this
        process can read it back, which callers detect via
        :attr:`degraded` and fall back to spec-based dispatch.
        """
        digest = col.digest
        if digest in self._lru or digest in self._mem:
            return digest
        self._lru[digest] = col
        while len(self._lru) > self.LRU_MAX:
            self._lru.popitem(last=False)
        path = self.path_for(digest)
        if not path.exists() and not self._publish(path, col.encode()):
            self._mem[digest] = col
        return digest

    def get(self, digest: str) -> ColumnarTrace | None:
        """The stored trace under ``digest``, or None.

        A corrupt entry is quarantined and reported as absent — the
        caller re-dispatches by spec, so dispatch-store damage costs
        time, never correctness.
        """
        hit = self._lru.get(digest)
        if hit is None:
            hit = self._mem.get(digest)
        if hit is not None:
            self._lru[digest] = hit
            self._lru.move_to_end(digest)
            self._count("hits")
            return hit
        path = self.path_for(digest)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            self._count("misses")
            return None
        except OSError as exc:
            _quarantine(path, f"unreadable: {exc}")
            self._count("misses")
            return None
        try:
            col = _columnar_decode(data)
        except ColumnarFormatError as exc:
            _quarantine(path, f"corrupt columnar entry: {exc}")
            self._count("misses")
            return None
        self._lru[digest] = col
        while len(self._lru) > self.LRU_MAX:
            self._lru.popitem(last=False)
        self._count("hits")
        return col

    def __len__(self) -> int:
        on_disk = (
            sum(1 for _ in self.directory.glob("*.rct"))
            if self.directory.is_dir() else 0
        )
        return on_disk + len(self._mem)


class SimResultCache(_DegradableCache):
    """A directory of content-addressed replay results (``.json``).

    The key covers the trace *content* and every field of the platform
    (plus the package version), so no two distinct simulations can
    alias — unlike a key on selected fields, adding a new
    :class:`MachineConfig` knob can never silently reuse stale results.
    Restored results are bit-identical to freshly simulated ones
    (floats round-trip exactly through JSON ``repr`` encoding).

    Entries are JSON envelopes ``{"schema", "sha256", "result"}``; the
    checksum covers the canonicalized payload, so a truncated or
    bit-flipped entry (or one written by another schema version) is
    quarantined and re-simulated instead of crashing or — worse —
    silently returning garbage numbers.
    """

    #: Metric-name prefix of this cache's registry counters.
    METRIC_PREFIX = "cache.replay"

    def __init__(self, directory: str | Path):
        self._init_store(directory)
        self._mem_digests: dict[str, str] = {}
        #: Mirrored into the metrics registry under ``cache.replay.*``.
        self.hits = 0
        self.misses = 0
        self.rebuilt = 0

    def _count(self, what: str) -> None:
        setattr(self, what, getattr(self, what) + 1)
        get_registry().counter(f"{self.METRIC_PREFIX}.{what}").inc()

    @staticmethod
    def key_for_digest(digest: str, machine: MachineConfig) -> str:
        """Result key from an already-known trace digest."""
        blob = json.dumps(
            {
                "_version": __version__,
                "trace": digest,
                "machine": asdict(machine),
            },
            sort_keys=True, default=repr,
        ).encode()
        return hashlib.sha256(blob).hexdigest()[:24]

    @classmethod
    def key(cls, trace: TraceSet, machine: MachineConfig) -> str:
        """Content hash of (trace, full platform, package version)."""
        return cls.key_for_digest(trace_digest(trace), machine)

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def _dur_path(self, key: str) -> Path:
        return self.directory / f"{key}.dur"

    @staticmethod
    def _canonical(payload: dict) -> str:
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @staticmethod
    def _dur_line(duration: float) -> str:
        body = repr(duration)
        digest = hashlib.sha256(body.encode()).hexdigest()[:16]
        return f"v={SCHEMA_VERSION};sha256={digest};d={body}\n"

    def load(self, key: str) -> SimResult | None:
        """The cached result under ``key``, or None (counts hit/miss).

        A bad entry — unparseable, wrong schema version, checksum
        mismatch — is quarantined and reported as a miss, so the caller
        re-simulates and the rebuilt entry replaces it.
        """
        held = self._mem.get(key)
        if held is not None:
            self._count("hits")
            return SimResult.from_dict(held)
        path = self.path_for(key)
        if path.exists():
            try:
                envelope = json.loads(path.read_text())
            except (OSError, ValueError) as exc:
                _quarantine(path, f"unreadable/unparseable: {exc}")
            else:
                if (
                    not isinstance(envelope, dict)
                    or envelope.get("schema") != SCHEMA_VERSION
                ):
                    _quarantine(path, "unknown or pre-checksum schema")
                elif envelope.get("sha256") != hashlib.sha256(
                    self._canonical(envelope.get("result", {})).encode()
                ).hexdigest():
                    _quarantine(path, "payload checksum mismatch")
                else:
                    self._count("hits")
                    return SimResult.from_dict(envelope["result"])
            self._count("rebuilt")
        self._count("misses")
        return None

    def store(self, key: str, result: SimResult) -> None:
        """Publish a result under ``key`` (atomic, concurrency-safe).

        When the cache is degraded the payload dict is held in memory
        instead — restored results stay bit-identical either way, since
        both paths round-trip through the same ``to_dict`` encoding.
        """
        payload = result.to_dict()
        envelope = {
            "schema": SCHEMA_VERSION,
            "sha256": hashlib.sha256(self._canonical(payload).encode()).hexdigest(),
            "result": payload,
        }
        if not self._publish(
            self.path_for(key),
            json.dumps(envelope, separators=(",", ":")),
        ):
            self._mem[key] = payload
        else:
            # Duration sidecar: one line, parsed without touching the
            # (much larger) result envelope.  Best-effort — a missing
            # sidecar just costs a full load on the next duration-only
            # lookup, which heals it.
            self._publish(self._dur_path(key), self._dur_line(result.duration))

    def load_duration(self, key: str) -> float | None:
        """The cached makespan under ``key``, or None (counts hit/miss).

        Duration-only consumers (bandwidth bisection, sweep grids) call
        this instead of :meth:`load`: the one-line ``.dur`` sidecar is
        ~100x smaller than the result envelope.  Floats round-trip
        exactly through ``repr``, so the value is bit-identical to
        ``load(key).duration``.  A malformed sidecar is quarantined and
        the full entry is consulted (healing the sidecar on success).
        """
        held = self._mem.get(key)
        if held is not None:
            self._count("hits")
            return held["duration"]
        path = self._dur_path(key)
        try:
            line = path.read_text()
        except FileNotFoundError:
            line = None
        except OSError as exc:
            _quarantine(path, f"unreadable duration sidecar: {exc}")
            line = None
        if line is not None:
            fields = dict(
                part.split("=", 1)
                for part in line.strip().split(";")
                if "=" in part
            )
            body = fields.get("d")
            if (
                fields.get("v") == str(SCHEMA_VERSION)
                and body is not None
                and fields.get("sha256")
                == hashlib.sha256(body.encode()).hexdigest()[:16]
            ):
                try:
                    duration = float(body)
                except ValueError:
                    _quarantine(path, f"malformed duration {body[:40]!r}")
                else:
                    self._count("hits")
                    return duration
            else:
                _quarantine(path, "duration sidecar checksum/schema mismatch")
        result = self.load(key)
        if result is None:
            return None
        self._publish(path, self._dur_line(result.duration))
        return result.duration

    def quarantine_entry(self, key: str, reason: str) -> bool:
        """Evict ``key`` as *untrusted*: quarantine its files, drop memory.

        Used by determinism verification (``--verify-sample``) when a
        cached result fails its re-replay digest check: the entry and
        its duration sidecar move to ``quarantine/`` for inspection and
        the in-memory copy is dropped, so the next lookup is a miss and
        the point is re-simulated.  Returns True when anything was
        evicted.
        """
        evicted = self._mem.pop(key, None) is not None
        path = self.path_for(key)
        if path.exists():
            _quarantine(path, reason)
            evicted = True
        dur = self._dur_path(key)
        if dur.exists():
            _quarantine(dur, reason)
            evicted = True
        if evicted:
            get_registry().counter(f"{self.METRIC_PREFIX}.distrusted").inc()
        return evicted

    def load_or_simulate(
        self,
        trace: TraceSet,
        machine: MachineConfig,
        runner: Callable[[TraceSet, MachineConfig], SimResult] | None = None,
    ) -> SimResult:
        """Return the cached result for (trace, machine) or replay.

        ``runner`` overrides the replay callable (testing hook);
        defaults to :func:`repro.dimemas.replay.simulate`.
        """
        key = self.key(trace, machine)
        result = self.load(key)
        if result is not None:
            return result
        if runner is None:
            from ..dimemas.replay import simulate as runner
        result = runner(trace, machine)
        self.store(key, result)
        return result

    # -- spec -> trace-digest index ----------------------------------------
    # A warm cache hit normally still needs the trace (its digest is
    # half of the result key), and rebuilding or re-transforming a
    # trace costs far more than the replay lookup it feeds.  The index
    # persists "experiment spec -> trace digest", so repeated grid
    # points short-circuit to a single JSON read with no trace at all.
    # Spec keys are versioned content hashes (via ``content_key``),
    # and traces/transforms are deterministic functions of the spec,
    # so an index entry can only go stale across a version bump --
    # which changes every key anyway.

    def get_digest(self, spec_key: str) -> str | None:
        """Trace digest recorded for an experiment spec, if any.

        A digest file that does not hold one well-formed hex digest
        (torn write, corruption) is quarantined and treated as absent.
        """
        held = self._mem_digests.get(spec_key)
        if held is not None:
            return held
        path = self.directory / f"{spec_key}.digest"
        try:
            digest = path.read_text().strip()
        except FileNotFoundError:
            return None
        except OSError as exc:
            _quarantine(path, f"unreadable digest file: {exc}")
            return None
        if not digest:
            return None
        if len(digest) != 24 or any(c not in "0123456789abcdef" for c in digest):
            _quarantine(path, f"malformed digest {digest[:40]!r}")
            return None
        return digest

    def put_digest(self, spec_key: str, digest: str) -> None:
        """Record the trace digest of an experiment spec (atomic)."""
        if not self._publish(self.directory / f"{spec_key}.digest", digest):
            self._mem_digests[spec_key] = digest

    def clear(self) -> int:
        """Delete all cached results (and the spec->digest index);
        returns how many results were removed."""
        n = len(self._mem)
        self._mem.clear()
        self._mem_digests.clear()
        if self.directory.is_dir():
            for p in self.directory.glob("*.json"):
                p.unlink()
                n += 1
            for p in self.directory.glob("*.digest"):
                p.unlink()
            for p in self.directory.glob("*.dur"):
                p.unlink()
        return n

    def __len__(self) -> int:
        on_disk = (
            sum(1 for _ in self.directory.glob("*.json"))
            if self.directory.is_dir() else 0
        )
        return on_disk + len(self._mem)
