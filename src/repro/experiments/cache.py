"""On-disk caches: traces and replay results.

Tracing a 64-rank application takes seconds and the evaluation replays
the same three traces dozens of times (every bandwidth-bisection step,
every bus count).  Two content-addressed directory caches make both
costs one-time:

* :class:`TraceCache` persists original traces as ``.dim`` files keyed
  by a content hash of (application, parameters, scale, tracer
  settings, package version);
* :class:`SimResultCache` persists replay results as ``.json`` files
  keyed by a content hash of the *trace itself* plus the full
  :class:`~repro.dimemas.machine.MachineConfig`, so a repeated grid
  point is free across processes and sessions.

Both caches publish atomically (write to a per-process unique temp
name, then :meth:`~pathlib.Path.replace`), so concurrent workers of the
parallel experiment engine can share one cache directory: when two
processes build the same key, both writes succeed and the last rename
wins with identical content.

Traces recorded with ``record_streams=True`` are *not* cacheable (raw
access streams are not serialized) and bypass the trace cache.
"""

from __future__ import annotations

import hashlib
import json
import os
import weakref
from dataclasses import asdict
from pathlib import Path
from typing import Callable

from .. import __version__
from ..dimemas.machine import MachineConfig
from ..dimemas.results import SimResult
from ..trace import dim
from ..trace.records import TraceSet

__all__ = ["SimResultCache", "TraceCache", "content_key", "trace_digest"]


def content_key(**fields) -> str:
    """Stable hash of describing fields (JSON-canonicalized, versioned)."""
    blob = json.dumps(
        {"_version": __version__, **fields},
        sort_keys=True, default=repr,
    ).encode()
    return hashlib.sha256(blob).hexdigest()[:24]


def _stage_and_publish(path: Path, text: str) -> None:
    """Atomically publish ``text`` at ``path``.

    The staging name embeds the PID so concurrent writers in different
    processes never clobber each other's half-written file; the final
    rename is atomic within a filesystem.
    """
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp.write_text(text)
    tmp.replace(path)


#: Per-TraceSet memo of content digests (guarded by record counts, like
#: the matching memo — appends invalidate, in-place edits do not).
_digest_cache: "weakref.WeakKeyDictionary[TraceSet, tuple[tuple[int, ...], str]]" = (
    weakref.WeakKeyDictionary()
)


def trace_digest(trace: TraceSet) -> str:
    """Stable content hash of a trace (its serialized form).

    Memoized per trace object: one serialization pays for every replay
    cache lookup against that trace.
    """
    fingerprint = tuple(len(p.records) for p in trace)
    hit = _digest_cache.get(trace)
    if hit is not None and hit[0] == fingerprint:
        return hit[1]
    digest = hashlib.sha256(dim.dumps(trace).encode()).hexdigest()[:24]
    _digest_cache[trace] = (fingerprint, digest)
    return digest


class TraceCache:
    """A directory of content-addressed ``.dim`` trace files."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: Diagnostics: how often the cache answered / had to build.
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(**fields) -> str:
        """Stable hash of the describing fields (JSON-canonicalized)."""
        return content_key(**fields)

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.dim"

    def load_or_build(self, key: str, builder: Callable[[], TraceSet]) -> TraceSet:
        """Return the cached trace for ``key`` or build and store it."""
        path = self.path_for(key)
        if path.exists():
            self.hits += 1
            return dim.load(path)
        self.misses += 1
        trace = builder()
        _stage_and_publish(path, dim.dumps(trace))
        return trace

    def clear(self) -> int:
        """Delete all cached traces; returns how many were removed."""
        n = 0
        for p in self.directory.glob("*.dim"):
            p.unlink()
            n += 1
        return n

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.dim"))


class SimResultCache:
    """A directory of content-addressed replay results (``.json``).

    The key covers the trace *content* and every field of the platform
    (plus the package version), so no two distinct simulations can
    alias — unlike a key on selected fields, adding a new
    :class:`MachineConfig` knob can never silently reuse stale results.
    Restored results are bit-identical to freshly simulated ones
    (floats round-trip exactly through JSON ``repr`` encoding).
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_for_digest(digest: str, machine: MachineConfig) -> str:
        """Result key from an already-known trace digest."""
        blob = json.dumps(
            {
                "_version": __version__,
                "trace": digest,
                "machine": asdict(machine),
            },
            sort_keys=True, default=repr,
        ).encode()
        return hashlib.sha256(blob).hexdigest()[:24]

    @classmethod
    def key(cls, trace: TraceSet, machine: MachineConfig) -> str:
        """Content hash of (trace, full platform, package version)."""
        return cls.key_for_digest(trace_digest(trace), machine)

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def load(self, key: str) -> SimResult | None:
        """The cached result under ``key``, or None (counts hit/miss)."""
        path = self.path_for(key)
        if path.exists():
            self.hits += 1
            return SimResult.from_dict(json.loads(path.read_text()))
        self.misses += 1
        return None

    def store(self, key: str, result: SimResult) -> None:
        """Publish a result under ``key`` (atomic, concurrency-safe)."""
        _stage_and_publish(
            self.path_for(key),
            json.dumps(result.to_dict(), separators=(",", ":")),
        )

    def load_or_simulate(
        self,
        trace: TraceSet,
        machine: MachineConfig,
        runner: Callable[[TraceSet, MachineConfig], SimResult] | None = None,
    ) -> SimResult:
        """Return the cached result for (trace, machine) or replay.

        ``runner`` overrides the replay callable (testing hook);
        defaults to :func:`repro.dimemas.replay.simulate`.
        """
        key = self.key(trace, machine)
        result = self.load(key)
        if result is not None:
            return result
        if runner is None:
            from ..dimemas.replay import simulate as runner
        result = runner(trace, machine)
        self.store(key, result)
        return result

    # -- spec -> trace-digest index ----------------------------------------
    # A warm cache hit normally still needs the trace (its digest is
    # half of the result key), and rebuilding or re-transforming a
    # trace costs far more than the replay lookup it feeds.  The index
    # persists "experiment spec -> trace digest", so repeated grid
    # points short-circuit to a single JSON read with no trace at all.
    # Spec keys are versioned content hashes (via ``content_key``),
    # and traces/transforms are deterministic functions of the spec,
    # so an index entry can only go stale across a version bump --
    # which changes every key anyway.

    def get_digest(self, spec_key: str) -> str | None:
        """Trace digest recorded for an experiment spec, if any."""
        path = self.directory / f"{spec_key}.digest"
        try:
            return path.read_text().strip() or None
        except OSError:
            return None

    def put_digest(self, spec_key: str, digest: str) -> None:
        """Record the trace digest of an experiment spec (atomic)."""
        _stage_and_publish(self.directory / f"{spec_key}.digest", digest)

    def clear(self) -> int:
        """Delete all cached results (and the spec->digest index);
        returns how many results were removed."""
        n = 0
        for p in self.directory.glob("*.json"):
            p.unlink()
            n += 1
        for p in self.directory.glob("*.digest"):
            p.unlink()
        return n

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))
