"""On-disk trace cache.

Tracing a 64-rank application takes seconds; the evaluation replays the
same three traces dozens of times (every bandwidth-bisection step, every
bus count).  The in-memory memoization of
:class:`~repro.experiments.pipeline.AppExperiment` covers one process;
this cache persists traces across processes and sessions as ``.dim``
files keyed by a content hash of (application, parameters, scale,
tracer settings, package version).

Traces recorded with ``record_streams=True`` are *not* cacheable (raw
access streams are not serialized) and bypass the cache.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Callable

from .. import __version__
from ..trace import dim
from ..trace.records import TraceSet

__all__ = ["TraceCache"]


class TraceCache:
    """A directory of content-addressed ``.dim`` trace files."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: Diagnostics: how often the cache answered / had to build.
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(**fields) -> str:
        """Stable hash of the describing fields (JSON-canonicalized)."""
        blob = json.dumps(
            {"_version": __version__, **fields},
            sort_keys=True, default=repr,
        ).encode()
        return hashlib.sha256(blob).hexdigest()[:24]

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.dim"

    def load_or_build(self, key: str, builder: Callable[[], TraceSet]) -> TraceSet:
        """Return the cached trace for ``key`` or build and store it."""
        path = self.path_for(key)
        if path.exists():
            self.hits += 1
            return dim.load(path)
        self.misses += 1
        trace = builder()
        tmp = path.with_suffix(".tmp")
        dim.dump(trace, tmp)
        tmp.replace(path)  # atomic publish
        return trace

    def clear(self) -> int:
        """Delete all cached traces; returns how many were removed."""
        n = 0
        for p in self.directory.glob("*.dim"):
            p.unlink()
            n += 1
        return n

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.dim"))
