"""Scale studies: overlap benefit as a function of process count.

The paper's motivation is scale (§I: communication delays *"might
substantially decrease the application performance, specially at large
scale"*), and its two data points — CG at 4 processes (Figure 4) and
the pool at 64 (Figure 6) — imply a trend this module makes explicit:
trace the same application at a ladder of process counts and track how
the overlap speedups and the communication share evolve.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dimemas.machine import MachineConfig
from .pipeline import AppExperiment

__all__ = ["ScalePoint", "ScalingStudy", "scaling_study"]


@dataclass(frozen=True)
class ScalePoint:
    """Measurements at one process count."""

    nranks: int
    duration_original: float
    duration_real: float
    duration_ideal: float
    comm_fraction: float      # 1 - parallel efficiency of the original

    @property
    def speedup_real(self) -> float:
        return self.duration_original / self.duration_real

    @property
    def speedup_ideal(self) -> float:
        return self.duration_original / self.duration_ideal


@dataclass(frozen=True)
class ScalingStudy:
    """A ladder of scale points for one application."""

    app: str
    points: tuple[ScalePoint, ...]

    def series(self, attr: str) -> list[float]:
        """One attribute across the ladder (e.g. ``"speedup_ideal"``)."""
        return [getattr(p, attr) for p in self.points]

    def render(self) -> str:
        lines = [
            f"scaling study — {self.app}",
            f"{'ranks':>6} {'T_orig(ms)':>11} {'real':>7} {'ideal':>7} "
            f"{'comm%':>6}",
        ]
        for p in self.points:
            lines.append(
                f"{p.nranks:>6} {p.duration_original * 1e3:>11.3f} "
                f"{p.speedup_real:>7.4f} {p.speedup_ideal:>7.4f} "
                f"{p.comm_fraction * 100:>5.1f}%"
            )
        return "\n".join(lines)


def scaling_study(
    app: str,
    rank_counts: tuple[int, ...] = (4, 16, 64),
    machine: MachineConfig | None = None,
    app_params: dict | None = None,
    engine=None,
) -> ScalingStudy:
    """Measure overlap benefits across a ladder of process counts.

    Uses the application's Table I platform by default.  Returns one
    :class:`ScalePoint` per count (each backed by a fresh trace at that
    scale — problem size is held constant, so this is a strong-scaling
    ladder like the paper's).  With a parallel
    :class:`~repro.experiments.parallel.ExperimentEngine` the whole
    (rank count x variant) ladder runs as one concurrent grid — each
    scale is an independent trace, so this is the best-parallelizing
    study in the harness.
    """
    mach = machine or MachineConfig.paper_testbed(app)
    if engine is not None and engine.mediated:
        from .parallel import GridPoint, _normalize_params
        params = _normalize_params(app_params)
        grid = [
            GridPoint(app=app, variant=v, nranks=n,
                      app_params=params, machine=mach)
            for n in rank_counts
            for v in ("original", "real", "ideal")
        ]
        results = engine.run_grid(grid)
        by_point = dict(zip(grid, results))

        def res(n: int, v: str) -> "object":
            return by_point[GridPoint(app=app, variant=v, nranks=n,
                                      app_params=params, machine=mach)]

        points = []
        for n in rank_counts:
            orig = res(n, "original")
            points.append(ScalePoint(
                nranks=n,
                duration_original=orig.duration,
                duration_real=res(n, "real").duration,
                duration_ideal=res(n, "ideal").duration,
                comm_fraction=1.0 - orig.parallel_efficiency,
            ))
        return ScalingStudy(app=app, points=tuple(points))

    points = []
    for n in rank_counts:
        exp = AppExperiment(
            app, nranks=n, machine=mach, app_params=app_params,
        )
        orig = exp.simulate("original")
        points.append(ScalePoint(
            nranks=n,
            duration_original=orig.duration,
            duration_real=exp.duration("real"),
            duration_ideal=exp.duration("ideal"),
            comm_fraction=1.0 - orig.parallel_efficiency,
        ))
    return ScalingStudy(app=app, points=tuple(points))
