"""Full reproduction report: every table and figure, paper vs measured.

``python -m repro.experiments.report`` regenerates the quantitative
content of EXPERIMENTS.md: Table I (calibration), Table II (patterns),
Figure 4 (CG timelines), Figure 5 (pattern series summaries), and
Figure 6 (speedup / bandwidth relaxation / equivalent bandwidth).
"""

from __future__ import annotations

import io
import math

from pathlib import Path

from ..dimemas.machine import PAPER_BUSES
from ..obs import get_registry, span as _span
from ..paraver.compare import compare
from ..paraver.timeline import iteration_bounds
from .bandwidth import equivalent_bandwidth, relaxation_bandwidth
from .cache import SimResultCache, TraceCache, sweep_cache_dir
from .calibration import saturation_knee
from .checkpoint import CampaignInterrupted, CheckpointJournal, graceful_drain
from .parallel import DegradedBracketError, ExperimentEngine, GridExecutionError
from .pipeline import AppExperiment
from .tables import PAPER_CONSUMPTION, PAPER_PRODUCTION, figure5_series, pattern_row

__all__ = ["full_report", "main"]

#: Scale used for the headline experiments (paper test bed: 64).
DEFAULT_NRANKS = 64


def _fmt_bw(x: float) -> str:
    return "inf" if math.isinf(x) else f"{x:.1f}"


def _fmt_pct(x: float) -> str:
    return "  n/a " if (x != x) else f"{100 * x:6.2f}"


#: Registry counter prefixes behind the report's cache-aggregate line.
_CACHE_KINDS = (("trace", "cache.trace"), ("replay", "cache.replay"))


def _cache_counts() -> dict[str, dict[str, int]]:
    """Current cache hit/miss/rebuilt totals from the metrics registry.

    Includes counts merged back from pool workers, which the in-object
    cache attributes (``TraceCache.hits`` etc.) can never see — those
    live and die in the worker process.
    """
    reg = get_registry()
    return {
        label: {
            what: reg.counter(f"{prefix}.{what}").value
            for what in ("hits", "misses", "rebuilt")
        }
        for label, prefix in _CACHE_KINDS
    }


def _cache_summary_line(before: dict[str, dict[str, int]]) -> str:
    """One-line hit/miss/rebuilt delta since ``before`` (all processes)."""
    after = _cache_counts()
    parts = []
    for label, _ in _CACHE_KINDS:
        d = {k: after[label][k] - before[label][k] for k in after[label]}
        parts.append(
            f"{label} {d['hits']} hits / {d['misses']} misses"
            f" / {d['rebuilt']} rebuilt"
        )
    return "cache: " + ", ".join(parts) + "   (incl. workers)"


def full_report(
    nranks: int = DEFAULT_NRANKS,
    apps: tuple[str, ...] = ("sweep3d", "pop", "alya", "specfem3d", "bt", "cg"),
    include_bandwidth: bool = True,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    degraded: bool = False,
    checkpoint: "CheckpointJournal | None" = None,
    verify_sample: float | None = None,
    explain: bool = False,
) -> str:
    """Build the complete text report (can take a few minutes).

    ``jobs > 1`` fans the replay grids (Table I scans, Figure 6
    speedups and bandwidth searches) across worker processes;
    ``cache_dir`` persists traces and replay results so a re-run is
    nearly free.  Results are identical regardless of ``jobs``.
    ``degraded=True`` lets the report finish with per-app FAILED rows
    when some replays keep dying, instead of aborting the whole run.

    Passing a :class:`~repro.experiments.checkpoint.CheckpointJournal`
    makes the campaign killable/resumable: completions are journaled
    write-ahead, SIGTERM/SIGINT drain gracefully into a resumable
    :class:`~repro.experiments.checkpoint.CampaignInterrupted`, and a
    resumed run serves journaled points without re-execution.

    ``verify_sample`` (0..1, or ``$REPRO_VERIFY_SAMPLE``) re-replays
    that fraction of cache hits and worker-returned grid points
    in-process and quarantines any result whose content digest
    disagrees — the determinism spot-check behind ``--verify-sample``.

    ``explain=True`` appends an overlap-explanation section per app:
    the attributed replay triple's scorecard and verdict from
    :func:`repro.insight.explain_experiment` (serial — attributed
    replays bypass the result caches).
    """
    engine = ExperimentEngine(jobs=jobs, cache_dir=cache_dir,
                              degraded=degraded, checkpoint=checkpoint,
                              verify_sample=verify_sample)
    try:
        with graceful_drain(engine):
            return _full_report(nranks, apps, include_bandwidth, engine,
                                explain=explain)
    except CampaignInterrupted:
        # Graceful drain already journaled in-flight completions; drop
        # half-written staging files so the cache stays clean, then let
        # the CLI map this to the "interrupted, resumable" exit code.
        engine._discard_pool("interrupted (drained)")
        if cache_dir is not None:
            sweep_cache_dir(cache_dir)
        raise
    except KeyboardInterrupt:
        # Fast teardown: a graceful close would wait for busy workers.
        # Kill them and drop the half-written staging files they (and
        # we) leave behind, so the cache stays clean for the next run.
        engine._discard_pool("interrupted (Ctrl-C)")
        if cache_dir is not None:
            sweep_cache_dir(cache_dir)
        raise
    finally:
        engine.close()


def _full_report(
    nranks: int,
    apps: tuple[str, ...],
    include_bandwidth: bool,
    engine: ExperimentEngine,
    explain: bool = False,
) -> str:
    out = io.StringIO()
    trace_cache = sim_cache = None
    if engine.cache_dir is not None:
        trace_cache = TraceCache(Path(engine.cache_dir) / "traces")
        sim_cache = SimResultCache(Path(engine.cache_dir) / "replays")
    cache_before = _cache_counts()
    exps = {
        a: AppExperiment(a, nranks=nranks, cache=trace_cache, sim_cache=sim_cache)
        for a in apps
    }

    # ---- Table I ---------------------------------------------------------- #
    with _span("report.table1"):
        print("== Table I: Dimemas bus counts ==", file=out)
        print(f"{'app':>10} {'paper':>6} {'saturation knee (ours)':>24}", file=out)
        for a in apps:
            knee = saturation_knee(exps[a], tolerance=0.02, engine=engine)
            print(f"{a:>10} {PAPER_BUSES[a]:>6} {knee:>24}", file=out)
        print(file=out)

    # ---- Table II ---------------------------------------------------------- #
    with _span("report.table2"):
        print("== Table II: production/consumption patterns (percent of phase) ==", file=out)
        print(f"{'app':>10} | {'prod 1st':>9} {'prod 1/4':>9} {'prod 1/2':>9} "
              f"{'prod all':>9} | {'cons 0':>8} {'cons 1/4':>9} {'cons 1/2':>9}", file=out)
        for a in apps:
            row = pattern_row(exps[a])
            pp, pc = PAPER_PRODUCTION[a], PAPER_CONSUMPTION[a]
            p, c = row.production, row.consumption
            print(f"{a:>10} | {_fmt_pct(p.first_element):>9} {_fmt_pct(p.quarter):>9} "
                  f"{_fmt_pct(p.half):>9} {_fmt_pct(p.whole):>9} | {_fmt_pct(c.nothing):>8} "
                  f"{_fmt_pct(c.quarter):>9} {_fmt_pct(c.half):>9}   (measured)", file=out)
            print(f"{'':>10} | {_fmt_pct(pp.first_element):>9} {_fmt_pct(pp.quarter):>9} "
                  f"{_fmt_pct(pp.half):>9} {_fmt_pct(pp.whole):>9} | {_fmt_pct(pc.nothing):>8} "
                  f"{_fmt_pct(pc.quarter):>9} {_fmt_pct(pc.half):>9}   (paper)", file=out)
        print(file=out)

    # ---- Figure 4 ---------------------------------------------------------- #
    with _span("report.figure4"):
        print("== Figure 4: NAS-CG, 4 processes, first five iterations ==", file=out)
        cg4 = AppExperiment("cg", nranks=4)
        r0, r1 = cg4.simulate("original"), cg4.simulate("real")
        cmp_ = compare(r0, r1)
        t0, t1 = iteration_bounds(r0, 0, 5)
        print(cmp_.report(width=88, t0=t0, t1=min(t1, max(r0.duration, r1.duration))), file=out)
        print(f"paper: ~8% improvement; measured: {cmp_.timing.improvement_percent:.1f}%", file=out)
        print(file=out)

    # ---- Figure 5 ---------------------------------------------------------- #
    with _span("report.figure5"):
        print("== Figure 5: access-pattern series (summary statistics) ==", file=out)
        for app, kind in (("sweep3d", "production"), ("bt", "consumption"),
                          ("pop", "consumption")):
            x, y = figure5_series(app, kind, nranks=16)
            if x.size:
                print(f"{app:>10} {kind:<12} points={x.size:>7} "
                      f"x-range=[{x.min():.3f}, {x.max():.3f}] "
                      f"buffer-elements={int(y.max()) + 1}", file=out)
        print(file=out)

    # ---- Future work: phase-level headroom --------------------------------- #
    with _span("report.headroom"):
        from ..core.phases import phase_overlap_potential
        print("== Phase-level overlap headroom (paper's future work) ==", file=out)
        for a in apps:
            channel = None if a == "alya" else 0
            pot = phase_overlap_potential(exps[a].trace("original"), channel=channel)
            print(f"{a:>10}: independent consumption "
                  f"{pot.independent_fraction * 100:5.1f}%  pre-production "
                  f"{pot.preproduction_fraction * 100:5.1f}%  reorderable "
                  f"{pot.reorderable_seconds * 1e3:9.3f} ms", file=out)
        print(file=out)

    # ---- Figure 6 ---------------------------------------------------------- #
    with _span("report.figure6"):
        print("== Figure 6: overlap benefits ==", file=out)
        header = f"{'app':>10} {'real':>8} {'ideal':>8}"
        if include_bandwidth:
            header += (f" {'relaxBW(real)':>14} {'relaxBW(ideal)':>15}"
                       f" {'equivBW(real)':>14} {'equivBW(ideal)':>15}")
        print(header, file=out)
        eng = engine if engine.mediated else None
        for a in apps:
            # One dead app must not take the rest of the table with it:
            # its row reports the failure and the loop moves on.
            try:
                e = exps[a]
                s = e.speedups()
                line = f"{a:>10} {s['real']:8.4f} {s['ideal']:8.4f}"
                if include_bandwidth:
                    rr = relaxation_bandwidth(e, "real", engine=eng)
                    ri = relaxation_bandwidth(e, "ideal", engine=eng)
                    er = equivalent_bandwidth(e, "real", engine=eng)
                    ei = equivalent_bandwidth(e, "ideal", engine=eng)
                    line += (f" {_fmt_bw(rr):>14} {_fmt_bw(ri):>15}"
                             f" {_fmt_bw(er):>14} {_fmt_bw(ei):>15}")
            except (DegradedBracketError, GridExecutionError) as exc:
                first = exc.failures[0].describe() if exc.failures else str(exc)
                line = f"{a:>10} {'FAILED':>8} {'FAILED':>8}  [{first}]"
            print(line, file=out)

    # ---- Overlap explanations (--explain) --------------------------------- #
    if explain:
        from ..insight import explain_experiment
        print(file=out)
        with _span("report.explain"):
            print("== Overlap explanations (repro-explain) ==", file=out)
            for a in apps:
                try:
                    ex = explain_experiment(exps[a])
                    sc = ex.scorecards.get("real")
                    if sc is not None:
                        print(f"{a:>10}: attained "
                              f"{sc.attained_fraction * 100:5.1f}%  "
                              f"bound {sc.attainable_bound * 100:5.1f}%  "
                              f"dominant residual "
                              f"{ex.dominant_residual()}", file=out)
                    print(f"{'':>10}  {ex.verdict}", file=out)
                    for w in ex.warnings:
                        print(f"{'':>10}  WARNING: {w}", file=out)
                except Exception as exc:  # pragma: no cover - degraded row
                    print(f"{a:>10}: explanation FAILED [{exc}]", file=out)

    # A blank line terminates the Figure 6 table (consumers parse rows
    # until the first blank line), then the cross-process cache totals.
    if trace_cache is not None or sim_cache is not None:
        print(file=out)
        print(_cache_summary_line(cache_before), file=out)
    if engine.verify_sample > 0.0:
        reg = get_registry()
        sampled = reg.counter("audit.verify.sampled").value
        ok = reg.counter("audit.verify.ok").value
        bad = reg.counter("audit.verify.mismatched").value
        print(f"verify: {sampled} sampled, {ok} ok, {bad} mismatched"
              f" (rate {engine.verify_sample:g})", file=out)
        for m in engine.verify_mismatches:
            print(f"  MISMATCH {m['app']}/{m['variant']} [{m['source']}] "
                  f"{m['mode']}: cached {m['actual']} != fresh {m['expected']}"
                  " (quarantined, re-executed)", file=out)
    return out.getvalue()


def main() -> None:  # pragma: no cover - exercised via CLI
    """Entry point of ``python -m repro.experiments.report``."""
    import argparse
    import sys

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--nranks", type=int, default=DEFAULT_NRANKS)
    ap.add_argument("--no-bandwidth", action="store_true",
                    help="skip the (slow) Figure 6(b)/(c) searches")
    ap.add_argument("-j", "--jobs", type=int, default=1,
                    help="worker processes for the replay grids")
    ap.add_argument("--cache-dir", default=None,
                    help="persist traces and replay results here")
    ap.add_argument("--degraded", action="store_true",
                    help="report FAILED rows instead of aborting when "
                         "replays keep failing")
    ap.add_argument("--verify-sample", type=float, default=None,
                    metavar="P", help="re-replay this fraction of cached/"
                    "worker results and quarantine digest mismatches")
    args = ap.parse_args()
    try:
        sys.stdout.write(full_report(nranks=args.nranks,
                                     include_bandwidth=not args.no_bandwidth,
                                     jobs=args.jobs, cache_dir=args.cache_dir,
                                     degraded=args.degraded,
                                     verify_sample=args.verify_sample) + "\n")
    except CampaignInterrupted as exc:
        sys.stderr.write(f"{exc}\n")
        sys.exit(5 if exc.resumable else 130)


if __name__ == "__main__":  # pragma: no cover
    main()
