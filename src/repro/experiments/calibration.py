"""Bus-count calibration (paper Table I).

Paper §IV: *"The number of buses has to be properly setup in the
Dimemas simulator in order to match the simulated results with the
real results of the application obtained from a real run on the
MareNostrum supercomputer."*  We have no MareNostrum, so the
reproduction demonstrates the *procedure*: simulated time is monotone
non-increasing in the bus count and saturates at a knee; calibration
finds the smallest bus count whose simulated time matches a reference
within a tolerance.  The benchmark uses a synthetic reference (a run
at the paper's Table I bus count) and verifies the procedure recovers
a bus count at or below the knee.
"""

from __future__ import annotations

from dataclasses import replace

from .pipeline import AppExperiment

__all__ = ["bus_sensitivity", "calibrate_buses", "saturation_knee"]


def _bus_durations(
    exp: AppExperiment,
    variant: str,
    buses_list: list,
    engine,
) -> list[float]:
    """Durations for several bus counts, engine-fanned when available."""
    if engine is None or not engine.mediated:
        return [exp.duration(variant, buses=b) for b in buses_list]
    base = engine.point_for(exp, variant)
    return engine.durations([replace(base, buses=b) for b in buses_list])


def bus_sensitivity(
    exp: AppExperiment,
    counts: list[int],
    variant: str = "original",
    engine=None,
) -> dict[int, float]:
    """Simulated duration per bus count (plus ``0`` = unlimited).

    With a parallel :class:`~repro.experiments.parallel.ExperimentEngine`
    the whole scan runs as one concurrent grid.
    """
    buses_list = list(counts) + [None]
    durations = _bus_durations(exp, variant, buses_list, engine)
    out = dict(zip(counts, durations))
    out[0] = durations[-1]
    return out


def calibrate_buses(
    exp: AppExperiment,
    reference_duration: float,
    tolerance: float = 0.02,
    max_buses: int = 64,
    variant: str = "original",
    engine=None,
) -> int | None:
    """Smallest bus count matching the reference duration within tolerance.

    Scans upward (durations are monotone non-increasing in buses), so
    the result is the paper's "properly set up" bus count.  Returns
    ``None`` when even ``max_buses`` cannot reach the reference (the
    reference was faster than the network model allows).  A parallel
    ``engine`` scans speculative batches of counts concurrently; the
    walk over each batch is the sequential one, so the answer never
    changes.
    """
    if reference_duration <= 0:
        raise ValueError("reference duration must be positive")
    step = engine.jobs * 2 if engine is not None and engine.jobs > 1 else 1
    b = 1
    while b <= max_buses:
        chunk = list(range(b, min(b + step, max_buses + 1)))
        for bb, d in zip(chunk, _bus_durations(exp, variant, chunk, engine)):
            if abs(d - reference_duration) <= tolerance * reference_duration:
                return bb
            if d < reference_duration * (1 - tolerance):
                # Already faster than the reference: more buses only widen
                # the gap; this bus count is the best (conservative) match.
                return bb
        b = chunk[-1] + 1
    return None


def saturation_knee(
    exp: AppExperiment,
    tolerance: float = 0.02,
    max_buses: int = 64,
    variant: str = "original",
    engine=None,
) -> int:
    """Smallest bus count within ``tolerance`` of the unlimited-bus time.

    With a parallel ``engine``, candidate counts are probed in
    speculative batches (same result as the sequential upward scan).
    """
    unlimited = _bus_durations(exp, variant, [None], engine)[0]
    step = engine.jobs * 2 if engine is not None and engine.jobs > 1 else 1
    b = 1
    while b <= max_buses:
        chunk = list(range(b, min(b + step, max_buses + 1)))
        for bb, d in zip(chunk, _bus_durations(exp, variant, chunk, engine)):
            if d <= unlimited * (1 + tolerance):
                return bb
        b = chunk[-1] + 1
    return max_buses
