"""Bus-count calibration (paper Table I).

Paper §IV: *"The number of buses has to be properly setup in the
Dimemas simulator in order to match the simulated results with the
real results of the application obtained from a real run on the
MareNostrum supercomputer."*  We have no MareNostrum, so the
reproduction demonstrates the *procedure*: simulated time is monotone
non-increasing in the bus count and saturates at a knee; calibration
finds the smallest bus count whose simulated time matches a reference
within a tolerance.  The benchmark uses a synthetic reference (a run
at the paper's Table I bus count) and verifies the procedure recovers
a bus count at or below the knee.
"""

from __future__ import annotations

from .pipeline import AppExperiment

__all__ = ["bus_sensitivity", "calibrate_buses", "saturation_knee"]


def bus_sensitivity(
    exp: AppExperiment,
    counts: list[int],
    variant: str = "original",
) -> dict[int, float]:
    """Simulated duration per bus count (plus ``0`` = unlimited)."""
    out: dict[int, float] = {}
    for b in counts:
        out[b] = exp.duration(variant, buses=b)
    out[0] = exp.duration(variant, buses=None)
    return out


def calibrate_buses(
    exp: AppExperiment,
    reference_duration: float,
    tolerance: float = 0.02,
    max_buses: int = 64,
    variant: str = "original",
) -> int | None:
    """Smallest bus count matching the reference duration within tolerance.

    Scans upward (durations are monotone non-increasing in buses), so
    the result is the paper's "properly set up" bus count.  Returns
    ``None`` when even ``max_buses`` cannot reach the reference (the
    reference was faster than the network model allows).
    """
    if reference_duration <= 0:
        raise ValueError("reference duration must be positive")
    for b in range(1, max_buses + 1):
        d = exp.duration(variant, buses=b)
        if abs(d - reference_duration) <= tolerance * reference_duration:
            return b
        if d < reference_duration * (1 - tolerance):
            # Already faster than the reference: more buses only widen
            # the gap; this bus count is the best (conservative) match.
            return b
    return None


def saturation_knee(
    exp: AppExperiment,
    tolerance: float = 0.02,
    max_buses: int = 64,
    variant: str = "original",
) -> int:
    """Smallest bus count within ``tolerance`` of the unlimited-bus time."""
    unlimited = exp.duration(variant, buses=None)
    for b in range(1, max_buses + 1):
        if exp.duration(variant, buses=b) <= unlimited * (1 + tolerance):
            return b
    return max_buses
