"""Resilience sweeps: how much injected degradation overlap buys back.

The perturbation layer (:mod:`repro.perturb`) can replay any traced
application on a degraded platform — sagging bandwidth, latency
spikes, link outages, OS noise, stragglers.  This module asks the
paper's question one level up: *when the platform misbehaves, does
communication-computation overlap absorb the damage?*

For every application the sweep measures four makespans per scenario —
original and overlapped ("real" pattern) variants, each on the pristine
and on the perturbed platform — and folds them into a **resilience
index**

    rho = 1 - (D_real / D_orig)

where ``D_v = perturbed_v - baseline_v`` is the absolute slowdown the
scenario inflicts on variant ``v``.  ``rho = 1`` means overlap hid the
entire injected degradation; ``rho = 0`` means overlap bought nothing;
negative means the fault hurts the overlapped code *more* (e.g. a
straggler that overlap cannot route around but whose pipeline it
lengthens).

Every replay routes through the :class:`ExperimentEngine`, so the
sweep inherits the pool, the digest-keyed caches (the perturbation
schedule is a :class:`~repro.dimemas.machine.MachineConfig` field and
therefore part of every cache key), the checkpoint journal, and the
retry policy.  Results are deterministic: same seed, same apps, same
scenario list → identical :meth:`ResilienceReport.result_digest`
regardless of job count.
"""

from __future__ import annotations

import hashlib
import html as _html
import json
import math
from dataclasses import dataclass

from ..obs import span as _span
from ..perturb import PerturbationSchedule
from ..perturb.scenarios import SCENARIO_KINDS, build_scenario
from .parallel import ExperimentEngine, GridPoint, PointFailure

__all__ = [
    "ResilienceReport",
    "ResilienceRow",
    "render_html",
    "render_text",
    "resilience_sweep",
    "to_json",
]

#: JSON document identifier (bump on breaking changes).
SCHEMA_ID = "repro-resilience/1"

#: Variant pair the index compares: the traced original and the
#: real-pattern overlap transform.
_VARIANTS = ("original", "real")


def _isnan(x: float) -> bool:
    return isinstance(x, float) and x != x


@dataclass(frozen=True)
class ResilienceRow:
    """One (application, scenario) cell of the sweep.

    Durations are simulated seconds; ``nan`` marks a replay that was
    quarantined by a degraded engine.  ``resilience_index`` is ``None``
    when the scenario did not slow the original down at all (nothing
    to mask) or when any contributing duration is missing.
    """

    app: str
    scenario: str
    schedule_digest: str
    schedule: str                 # human description of the schedule
    baseline_original: float
    baseline_real: float
    perturbed_original: float
    perturbed_real: float

    # ------------------------------------------------------------------ #
    @property
    def delta_original(self) -> float:
        """Seconds the scenario added to the original's makespan."""
        return self.perturbed_original - self.baseline_original

    @property
    def delta_real(self) -> float:
        """Seconds the scenario added to the overlapped makespan."""
        return self.perturbed_real - self.baseline_real

    @property
    def slowdown_original(self) -> float:
        return self.perturbed_original / self.baseline_original

    @property
    def slowdown_real(self) -> float:
        return self.perturbed_real / self.baseline_real

    @property
    def resilience_index(self) -> float | None:
        """Fraction of the injected degradation overlap masked."""
        vals = (self.baseline_original, self.baseline_real,
                self.perturbed_original, self.perturbed_real)
        if any(_isnan(v) for v in vals):
            return None
        if self.delta_original <= 0.0:
            return None
        return 1.0 - self.delta_real / self.delta_original

    def to_dict(self) -> dict:
        def _num(x):
            return None if _isnan(x) else x
        return {
            "app": self.app,
            "scenario": self.scenario,
            "schedule_digest": self.schedule_digest,
            "schedule": self.schedule,
            "baseline_original": _num(self.baseline_original),
            "baseline_real": _num(self.baseline_real),
            "perturbed_original": _num(self.perturbed_original),
            "perturbed_real": _num(self.perturbed_real),
            "delta_original": _num(self.delta_original),
            "delta_real": _num(self.delta_real),
            "slowdown_original": _num(self.slowdown_original),
            "slowdown_real": _num(self.slowdown_real),
            "resilience_index": self.resilience_index,
        }


@dataclass(frozen=True)
class ResilienceReport:
    """The full sweep: rows plus the knobs that produced them."""

    apps: tuple[str, ...]
    scenarios: tuple[str, ...]
    seed: int
    nranks: int
    chunks: int
    rows: tuple[ResilienceRow, ...]

    # ------------------------------------------------------------------ #
    def row(self, app: str, scenario: str) -> ResilienceRow | None:
        for r in self.rows:
            if r.app == app and r.scenario == scenario:
                return r
        return None

    def mean_index(self, scenario: str | None = None) -> float | None:
        """Mean resilience index over rows (optionally one scenario)."""
        vals = [r.resilience_index for r in self.rows
                if (scenario is None or r.scenario == scenario)
                and r.resilience_index is not None]
        if not vals:
            return None
        return sum(vals) / len(vals)

    def result_digest(self) -> str:
        """Content digest of the whole table (reproducibility pin).

        Floats enter via ``repr`` so the digest is exact: two sweeps
        agree iff every simulated duration is bitwise identical.
        """
        body = json.dumps(
            [
                {
                    "app": r.app,
                    "scenario": r.scenario,
                    "schedule_digest": r.schedule_digest,
                    "durations": [
                        repr(r.baseline_original), repr(r.baseline_real),
                        repr(r.perturbed_original), repr(r.perturbed_real),
                    ],
                }
                for r in self.rows
            ],
            sort_keys=True, separators=(",", ":"),
        )
        return hashlib.sha256(body.encode()).hexdigest()[:24]


# --------------------------------------------------------------------------- #
# The sweep.
# --------------------------------------------------------------------------- #

def resilience_sweep(
    apps: list[str] | tuple[str, ...],
    scenarios: list[str] | tuple[str, ...] | None = None,
    seed: int = 0,
    nranks: int = 8,
    chunks: int = 4,
    engine: ExperimentEngine | None = None,
) -> ResilienceReport:
    """Run the (app x scenario x variant) resilience grid.

    Phase one replays every app's ``original`` and ``real`` variants on
    the pristine platform; the original's makespan becomes the
    scenario *horizon*, so windows land at the same relative position
    in every app.  Phase two replays both variants under every named
    scenario (:data:`~repro.perturb.scenarios.SCENARIO_KINDS`).  Both
    phases fan through ``engine`` when given (pool, caches, journal,
    retries); without one, a private serial engine is used.

    Quarantined points (degraded engines only) surface as ``nan``
    durations and a ``None`` resilience index — the report keeps its
    shape.
    """
    from ..apps import APPS

    apps = tuple(apps)
    for app in apps:
        if app not in APPS:
            raise KeyError(
                f"unknown application {app!r}; pool: {sorted(APPS)}"
            )
    scenario_kinds = tuple(scenarios if scenarios is not None
                           else SCENARIO_KINDS)
    for kind in scenario_kinds:
        if kind not in SCENARIO_KINDS:
            known = ", ".join(sorted(SCENARIO_KINDS))
            raise ValueError(
                f"unknown scenario {kind!r} (known: {known})"
            )
    own_engine = engine is None
    if own_engine:
        engine = ExperimentEngine(jobs=1)
    try:
        with _span("resilience.sweep", apps=len(apps),
                   scenarios=len(scenario_kinds)):
            def _point(app: str, variant: str,
                       pert: PerturbationSchedule | None) -> GridPoint:
                return GridPoint(app=app, variant=variant, nranks=nranks,
                                 chunks=chunks, perturb=pert)

            def _durs(points: list[GridPoint]) -> list[float]:
                return [
                    math.nan if isinstance(d, PointFailure) else d
                    for d in engine.durations(points)
                ]

            # Phase 1: pristine baselines (also the scenario horizons).
            base_points = [_point(a, v, None)
                           for a in apps for v in _VARIANTS]
            base = _durs(base_points)
            baselines = {
                (a, v): base[i * len(_VARIANTS) + j]
                for i, a in enumerate(apps)
                for j, v in enumerate(_VARIANTS)
            }

            # Phase 2: the perturbed grid, one schedule per (app, kind).
            schedules: dict[tuple[str, str], PerturbationSchedule] = {}
            pert_points: list[GridPoint] = []
            slots: list[tuple[str, str, str]] = []
            for a in apps:
                horizon = baselines[(a, "original")]
                if _isnan(horizon) or horizon <= 0:
                    continue  # baseline quarantined: no scenario rows
                for kind in scenario_kinds:
                    schedules[(a, kind)] = build_scenario(kind, horizon, seed)
                    for v in _VARIANTS:
                        pert_points.append(_point(a, v, schedules[(a, kind)]))
                        slots.append((a, kind, v))
            pert = _durs(pert_points)
            perturbed = {slot: d for slot, d in zip(slots, pert)}

            rows = []
            for a in apps:
                for kind in scenario_kinds:
                    sched = schedules.get((a, kind))
                    if sched is None:
                        continue
                    rows.append(ResilienceRow(
                        app=a,
                        scenario=kind,
                        schedule_digest=sched.digest(),
                        schedule=sched.describe(),
                        baseline_original=baselines[(a, "original")],
                        baseline_real=baselines[(a, "real")],
                        perturbed_original=perturbed[(a, kind, "original")],
                        perturbed_real=perturbed[(a, kind, "real")],
                    ))
            return ResilienceReport(
                apps=apps, scenarios=scenario_kinds, seed=seed,
                nranks=nranks, chunks=chunks, rows=tuple(rows),
            )
    finally:
        if own_engine:
            engine.close()


# --------------------------------------------------------------------------- #
# Renderers (the three faces repro-resilience serves).
# --------------------------------------------------------------------------- #

def _fmt_ms(x: float) -> str:
    return "     n/a" if _isnan(x) else f"{x * 1e3:8.3f}"


def _fmt_x(x: float) -> str:
    return "   n/a" if _isnan(x) else f"{x:6.3f}"


def _fmt_rho(x: float | None) -> str:
    return "    - " if x is None else f"{x:+6.2f}"


def render_text(report: ResilienceReport) -> str:
    """The terminal table ``repro-resilience`` prints."""
    out = [
        f"== repro-resilience: {len(report.apps)} app(s), "
        f"{len(report.scenarios)} scenario(s), seed {report.seed}, "
        f"{report.nranks} ranks ==",
        "",
        f"{'app':<10} {'scenario':<15} {'orig ms':>8} {'pert ms':>8} "
        f"{'slow-o':>6} {'real ms':>8} {'pert ms':>8} {'slow-r':>6} "
        f"{'rho':>6}",
    ]
    for r in report.rows:
        out.append(
            f"{r.app:<10} {r.scenario:<15} "
            f"{_fmt_ms(r.baseline_original)} {_fmt_ms(r.perturbed_original)} "
            f"{_fmt_x(r.slowdown_original)} "
            f"{_fmt_ms(r.baseline_real)} {_fmt_ms(r.perturbed_real)} "
            f"{_fmt_x(r.slowdown_real)} {_fmt_rho(r.resilience_index)}"
        )
    out.append("")
    for kind in report.scenarios:
        mean = report.mean_index(kind)
        label = "n/a" if mean is None else f"{mean:+.3f}"
        out.append(f"mean resilience index [{kind}]: {label}")
    overall = report.mean_index()
    out.append("overall mean resilience index: "
               + ("n/a" if overall is None else f"{overall:+.3f}"))
    out.append(f"result digest: {report.result_digest()}")
    out.append("")
    out.append("rho = 1 - delta_real/delta_original: share of the injected "
               "degradation the overlap transform masked.")
    return "\n".join(out)


def to_json(report: ResilienceReport) -> dict:
    """The schema'd machine-readable document (plain data, JSON-safe)."""
    return {
        "schema": SCHEMA_ID,
        "seed": report.seed,
        "nranks": report.nranks,
        "chunks": report.chunks,
        "apps": list(report.apps),
        "scenarios": list(report.scenarios),
        "rows": [r.to_dict() for r in report.rows],
        "mean_index": {
            kind: report.mean_index(kind) for kind in report.scenarios
        },
        "overall_index": report.mean_index(),
        "result_digest": report.result_digest(),
    }


_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em;
       max-width: 1080px; color: #1a1a1a; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
table { border-collapse: collapse; font-size: 0.85em; margin: 0.6em 0; }
th, td { border: 1px solid #ccc; padding: 3px 8px; text-align: right; }
th { background: #f0f0f0; }
td.name, th.name { text-align: left; }
.good { background: #eef6ee; } .bad { background: #fdecec; }
.summary { background: #eef2f6; border-left: 4px solid #2f7ed8;
           padding: 0.8em 1em; margin: 1em 0; }
.small { color: #666; font-size: 0.85em; }
"""


def _rho_bar(rho: float | None, width: int = 120) -> str:
    """Inline SVG bar: resilience index on a [-1, 1] axis."""
    if rho is None:
        return "<span class=small>n/a</span>"
    mid = width / 2
    clamped = max(-1.0, min(1.0, rho))
    span = abs(clamped) * mid
    x = mid if clamped >= 0 else mid - span
    color = "#76b043" if clamped >= 0 else "#d9534f"
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="14"><line x1="{mid}" y1="0" x2="{mid}" y2="14" '
        f'stroke="#999"/><rect x="{x:.1f}" y="2" width="{max(span, 1):.1f}" '
        f'height="10" fill="{color}"><title>{rho:+.3f}</title></rect></svg>'
    )


def render_html(report: ResilienceReport) -> str:
    """Self-contained HTML resilience report."""
    e = _html.escape
    overall = report.mean_index()
    overall_label = "n/a" if overall is None else f"{overall:+.3f}"
    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        "<title>repro-resilience</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>repro-resilience — {len(report.apps)} app(s), "
        f"{len(report.scenarios)} scenario(s), seed {report.seed}, "
        f"{report.nranks} ranks</h1>",
        f"<div class=summary><b>Overall mean resilience index: "
        f"{overall_label}.</b> rho = 1 &minus; "
        "&Delta;<sub>real</sub>/&Delta;<sub>original</sub> — the share of "
        "the injected degradation the overlap transform masked "
        "(1 = fully hidden, 0 = no help, negative = overlap hurt)."
        "</div>",
        "<h2>Per-scenario rows</h2>",
        "<table><tr><th class=name>app</th><th class=name>scenario</th>"
        "<th>baseline ms</th><th>perturbed ms</th><th>slowdown</th>"
        "<th>overlap ms</th><th>perturbed ms</th><th>slowdown</th>"
        "<th>rho</th><th class=name></th></tr>",
    ]
    for r in report.rows:
        rho = r.resilience_index
        cls = "" if rho is None else (" class=good" if rho >= 0
                                      else " class=bad")
        parts.append(
            f"<tr{cls}><td class=name>{e(r.app)}</td>"
            f"<td class=name title='{e(r.schedule)}'>{e(r.scenario)}</td>"
            f"<td>{_fmt_ms(r.baseline_original)}</td>"
            f"<td>{_fmt_ms(r.perturbed_original)}</td>"
            f"<td>{_fmt_x(r.slowdown_original)}</td>"
            f"<td>{_fmt_ms(r.baseline_real)}</td>"
            f"<td>{_fmt_ms(r.perturbed_real)}</td>"
            f"<td>{_fmt_x(r.slowdown_real)}</td>"
            f"<td>{_fmt_rho(rho)}</td>"
            f"<td class=name>{_rho_bar(rho)}</td></tr>"
        )
    parts.append("</table>")
    parts.append("<h2>Mean index per scenario</h2><table>"
                 "<tr><th class=name>scenario</th><th>mean rho</th></tr>")
    for kind in report.scenarios:
        mean = report.mean_index(kind)
        label = "n/a" if mean is None else f"{mean:+.3f}"
        parts.append(f"<tr><td class=name>{e(kind)}</td>"
                     f"<td>{label}</td></tr>")
    parts.append("</table>")
    parts.append(f"<p class=small>result digest {report.result_digest()} "
                 f"— identical across reruns and job counts for the same "
                 f"seed.</p>")
    parts.append("</body></html>")
    return "\n".join(parts)
