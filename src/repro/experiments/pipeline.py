"""End-to-end experiment pipeline: app -> traces -> replays.

One :class:`AppExperiment` owns the three traces of one application
run (original, real-pattern overlapped, ideal-pattern overlapped —
exactly the three traces the paper's tracer emits per run) and replays
them on any platform variation.  Traces are built lazily and cached;
replays are memoized per (variant, bandwidth, buses) so bandwidth
searches stay cheap.
"""

from __future__ import annotations

from typing import Mapping

from ..apps import get_app
from ..core.ideal import ideal_transform
from ..core.transform import OverlapConfig, overlap_transform
from ..dimemas.machine import MachineConfig
from ..dimemas.replay import simulate
from ..dimemas.results import SimResult
from ..obs import span as _span
from ..trace.records import TraceSet

__all__ = ["AppExperiment", "VARIANTS"]

#: The three executions the paper compares.
VARIANTS = ("original", "real", "ideal")


class AppExperiment:
    """Cached trace/transform/replay bundle of one application run.

    Parameters
    ----------
    app:
        Table I application name (``sweep3d``, ``pop``, ``alya``,
        ``specfem3d``, ``bt``, ``cg``).
    nranks:
        Simulated processes (paper test bed: 64).
    chunks:
        Chunk count of the overlap transformation (paper: 4).
    app_params:
        Overrides forwarded to the application constructor.
    machine:
        Baseline platform; defaults to the paper test bed with the
        application's Table I bus count.
    """

    def __init__(
        self,
        app: str,
        nranks: int = 64,
        chunks: int = 4,
        app_params: Mapping | None = None,
        machine: MachineConfig | None = None,
        record_streams: bool = False,
        cache=None,
        sim_cache=None,
    ):
        self.app_name = app
        self.nranks = nranks
        self.chunks = chunks
        self.app_params = dict(app_params or {})
        self.machine = machine or MachineConfig.paper_testbed(app)
        self.record_streams = record_streams
        #: Optional :class:`~repro.experiments.cache.TraceCache` for
        #: persisting original traces across sessions (unused when
        #: ``record_streams`` is on — streams are not serialized).
        self.cache = cache
        #: Optional :class:`~repro.experiments.cache.SimResultCache`
        #: persisting replay results across processes and sessions.
        self.sim_cache = sim_cache
        self._traces: dict[str, TraceSet] = {}
        self._sims: dict[tuple[str, MachineConfig], SimResult] = {}
        self._published_specs: set[str] = set()

    # ------------------------------------------------------------------ #
    def trace(self, variant: str = "original") -> TraceSet:
        """The trace of one execution variant (built and cached lazily)."""
        if variant not in VARIANTS:
            raise ValueError(f"unknown variant {variant!r}; pick from {VARIANTS}")
        if variant not in self._traces:
            if variant == "original":
                def build() -> TraceSet:
                    with _span("trace.build", app=self.app_name,
                               nranks=self.nranks):
                        app = get_app(self.app_name, **self.app_params)
                        return app.trace(
                            nranks=self.nranks,
                            record_streams=self.record_streams,
                        ).trace

                if self.cache is not None and not self.record_streams:
                    key = self.cache.key(
                        app=self.app_name, nranks=self.nranks,
                        params=self.app_params,
                    )
                    self._traces["original"] = self.cache.load_or_build(key, build)
                else:
                    self._traces["original"] = build()
            elif variant == "real":
                cfg = OverlapConfig(chunks=self.chunks, schedule="real")
                self._traces["real"], _ = overlap_transform(self.trace("original"), cfg)
            else:
                self._traces["ideal"], _ = ideal_transform(
                    self.trace("original"), chunks=self.chunks,
                )
        return self._traces[variant]

    def platform(
        self,
        bandwidth_mbps: float | None = None,
        buses: int | None | str = "default",
        latency: float | None = None,
        perturb: object | None = None,
    ) -> MachineConfig:
        """The baseline machine with the standard experiment overrides.

        ``perturb`` attaches a
        :class:`~repro.perturb.PerturbationSchedule` to the platform;
        because it becomes a :class:`MachineConfig` field, every cache
        key and checkpoint identity downstream picks it up for free.
        """
        overrides: dict = {}
        if bandwidth_mbps is not None:
            overrides["bandwidth_mbps"] = bandwidth_mbps
        if buses != "default":
            overrides["buses"] = buses
        if latency is not None:
            overrides["latency"] = latency
        if perturb is not None:
            overrides["perturb"] = perturb
        return self.machine.with_platform(**overrides)

    _platform = platform

    def columnar(self, variant: str = "original"):
        """The packed columnar form of a variant's trace.

        Feeds the parallel engine's zero-copy dispatch: the parent
        encodes each trace once and workers replay straight from the
        columns.  Also publishes the spec->digest index entry so later
        runs can answer warm hits without building the trace at all.
        """
        from ..trace.columnar import columnar_of
        col = columnar_of(self.trace(variant))
        spec = self._spec_key(variant)
        if (
            spec is not None
            and self.sim_cache is not None
            and spec not in self._published_specs
        ):
            self.sim_cache.put_digest(spec, col.digest)
            self._published_specs.add(spec)
        return col

    def simulate(
        self,
        variant: str = "original",
        bandwidth_mbps: float | None = None,
        buses: int | None | str = "default",
        latency: float | None = None,
        perturb: object | None = None,
    ) -> SimResult:
        """Replay a variant on a (possibly modified) platform."""
        cfg = self._platform(bandwidth_mbps, buses, latency, perturb)
        # Keyed on the *full* platform so two configs differing in any
        # machine field (ports, cpu_ratio, eager threshold, ...) never
        # alias to the same memoized result.
        key = (variant, cfg)
        if key not in self._sims:
            with _span("experiment.simulate", app=self.app_name,
                       variant=variant):
                if self.sim_cache is not None:
                    self._sims[key] = self._cached_simulate(variant, cfg)
                else:
                    self._sims[key] = simulate(self.trace(variant), cfg)
        return self._sims[key]

    def cached_result(
        self,
        variant: str = "original",
        bandwidth_mbps: float | None = None,
        buses: int | None | str = "default",
        latency: float | None = None,
        perturb: object | None = None,
    ) -> SimResult | None:
        """This replay's result *if it needs no work*, else None.

        Answers from the in-memory memo or — through the sim cache's
        spec->digest index — from disk, without ever building a trace
        or running a simulation.  The parallel engine uses this to
        short-circuit warm grid points in the parent process instead of
        dispatching them to workers.
        """
        cfg = self._platform(bandwidth_mbps, buses, latency, perturb)
        key = (variant, cfg)
        hit = self._sims.get(key)
        if hit is not None or self.sim_cache is None:
            return hit
        digest = self._known_digest(variant)
        if digest is None:
            return None
        hit = self.sim_cache.load(self.sim_cache.key_for_digest(digest, cfg))
        if hit is not None:
            self._sims[key] = hit
        return hit

    def cached_duration(
        self,
        variant: str = "original",
        bandwidth_mbps: float | None = None,
        buses: int | None | str = "default",
        latency: float | None = None,
        perturb: object | None = None,
    ) -> float | None:
        """This replay's makespan *if it needs no work*, else None.

        The duration-only sibling of :meth:`cached_result`: a warm hit
        is one sidecar line instead of the full result envelope, which
        is what duration-mode grid sweeps actually consume.
        """
        cfg = self._platform(bandwidth_mbps, buses, latency, perturb)
        hit = self._sims.get((variant, cfg))
        if hit is not None:
            return hit.duration
        if self.sim_cache is None:
            return None
        digest = self._known_digest(variant)
        if digest is None:
            return None
        return self.sim_cache.load_duration(
            self.sim_cache.key_for_digest(digest, cfg)
        )

    def _known_digest(self, variant: str) -> str | None:
        """The variant's trace digest, if knowable without building it."""
        if variant in self._traces:
            from .cache import trace_digest
            return trace_digest(self._traces[variant])
        spec = self._spec_key(variant)
        if spec is None or self.sim_cache is None:
            return None
        return self.sim_cache.get_digest(spec)

    def _spec_key(self, variant: str) -> str | None:
        """Versioned content key of (application spec, variant) — the
        identity behind the sim cache's spec->digest shortcut.  None
        when the trace is not reproducible from the spec alone."""
        if self.record_streams:
            return None
        from .cache import content_key
        return content_key(
            kind="experiment", app=self.app_name, nranks=self.nranks,
            chunks=self.chunks, params=self.app_params, variant=variant,
        )

    def _cached_simulate(self, variant: str, cfg: MachineConfig) -> SimResult:
        """Replay through the persistent result cache.

        The spec->digest index lets a warm hit skip trace building and
        transformation entirely: spec key -> trace digest -> result
        key -> one JSON read.
        """
        spec = self._spec_key(variant)
        if spec is not None and variant not in self._traces:
            digest = self.sim_cache.get_digest(spec)
            if digest is not None:
                hit = self.sim_cache.load(
                    self.sim_cache.key_for_digest(digest, cfg)
                )
                if hit is not None:
                    return hit
        trace = self.trace(variant)
        if spec is not None and spec not in self._published_specs:
            from .cache import trace_digest
            self.sim_cache.put_digest(spec, trace_digest(trace))
            self._published_specs.add(spec)
        return self.sim_cache.load_or_simulate(trace, cfg)

    def duration(self, variant: str = "original", **platform) -> float:
        """Simulated makespan of a variant (seconds)."""
        return self.simulate(variant, **platform).duration

    def speedups(self, **platform) -> dict[str, float]:
        """Overlap speedups vs the original execution (paper Fig. 6(a))."""
        base = self.duration("original", **platform)
        return {
            "real": base / self.duration("real", **platform),
            "ideal": base / self.duration("ideal", **platform),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AppExperiment({self.app_name!r}, nranks={self.nranks}, "
            f"chunks={self.chunks})"
        )
