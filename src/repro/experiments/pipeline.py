"""End-to-end experiment pipeline: app -> traces -> replays.

One :class:`AppExperiment` owns the three traces of one application
run (original, real-pattern overlapped, ideal-pattern overlapped —
exactly the three traces the paper's tracer emits per run) and replays
them on any platform variation.  Traces are built lazily and cached;
replays are memoized per (variant, bandwidth, buses) so bandwidth
searches stay cheap.
"""

from __future__ import annotations

from typing import Mapping

from ..apps import get_app
from ..core.ideal import ideal_transform
from ..core.transform import OverlapConfig, overlap_transform
from ..dimemas.machine import MachineConfig
from ..dimemas.replay import simulate
from ..dimemas.results import SimResult
from ..trace.records import TraceSet

__all__ = ["AppExperiment", "VARIANTS"]

#: The three executions the paper compares.
VARIANTS = ("original", "real", "ideal")


class AppExperiment:
    """Cached trace/transform/replay bundle of one application run.

    Parameters
    ----------
    app:
        Table I application name (``sweep3d``, ``pop``, ``alya``,
        ``specfem3d``, ``bt``, ``cg``).
    nranks:
        Simulated processes (paper test bed: 64).
    chunks:
        Chunk count of the overlap transformation (paper: 4).
    app_params:
        Overrides forwarded to the application constructor.
    machine:
        Baseline platform; defaults to the paper test bed with the
        application's Table I bus count.
    """

    def __init__(
        self,
        app: str,
        nranks: int = 64,
        chunks: int = 4,
        app_params: Mapping | None = None,
        machine: MachineConfig | None = None,
        record_streams: bool = False,
        cache=None,
    ):
        self.app_name = app
        self.nranks = nranks
        self.chunks = chunks
        self.app_params = dict(app_params or {})
        self.machine = machine or MachineConfig.paper_testbed(app)
        self.record_streams = record_streams
        #: Optional :class:`~repro.experiments.cache.TraceCache` for
        #: persisting original traces across sessions (unused when
        #: ``record_streams`` is on — streams are not serialized).
        self.cache = cache
        self._traces: dict[str, TraceSet] = {}
        self._sims: dict[tuple, SimResult] = {}

    # ------------------------------------------------------------------ #
    def trace(self, variant: str = "original") -> TraceSet:
        """The trace of one execution variant (built and cached lazily)."""
        if variant not in VARIANTS:
            raise ValueError(f"unknown variant {variant!r}; pick from {VARIANTS}")
        if variant not in self._traces:
            if variant == "original":
                def build() -> TraceSet:
                    app = get_app(self.app_name, **self.app_params)
                    return app.trace(
                        nranks=self.nranks,
                        record_streams=self.record_streams,
                    ).trace

                if self.cache is not None and not self.record_streams:
                    key = self.cache.key(
                        app=self.app_name, nranks=self.nranks,
                        params=self.app_params,
                    )
                    self._traces["original"] = self.cache.load_or_build(key, build)
                else:
                    self._traces["original"] = build()
            elif variant == "real":
                cfg = OverlapConfig(chunks=self.chunks, schedule="real")
                self._traces["real"], _ = overlap_transform(self.trace("original"), cfg)
            else:
                self._traces["ideal"], _ = ideal_transform(
                    self.trace("original"), chunks=self.chunks,
                )
        return self._traces[variant]

    def simulate(
        self,
        variant: str = "original",
        bandwidth_mbps: float | None = None,
        buses: int | None | str = "default",
        latency: float | None = None,
    ) -> SimResult:
        """Replay a variant on a (possibly modified) platform."""
        cfg = self.machine
        if bandwidth_mbps is not None:
            cfg = cfg.with_bandwidth(bandwidth_mbps)
        if buses != "default":
            from dataclasses import replace
            cfg = replace(cfg, buses=buses)
        if latency is not None:
            from dataclasses import replace
            cfg = replace(cfg, latency=latency)
        key = (variant, cfg.bandwidth_mbps, cfg.buses, cfg.latency)
        if key not in self._sims:
            self._sims[key] = simulate(self.trace(variant), cfg)
        return self._sims[key]

    def duration(self, variant: str = "original", **platform) -> float:
        """Simulated makespan of a variant (seconds)."""
        return self.simulate(variant, **platform).duration

    def speedups(self, **platform) -> dict[str, float]:
        """Overlap speedups vs the original execution (paper Fig. 6(a))."""
        base = self.duration("original", **platform)
        return {
            "real": base / self.duration("real", **platform),
            "ideal": base / self.duration("ideal", **platform),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AppExperiment({self.app_name!r}, nranks={self.nranks}, "
            f"chunks={self.chunks})"
        )
