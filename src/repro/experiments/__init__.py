"""Experiment harness: the paper's evaluation, end to end.

* :mod:`repro.experiments.pipeline` — trace/transform/replay bundles;
* :mod:`repro.experiments.parallel` — process-pool experiment engine;
* :mod:`repro.experiments.bandwidth` — Figure 6(b)/(c) searches;
* :mod:`repro.experiments.calibration` — Table I bus calibration;
* :mod:`repro.experiments.cache` — persistent trace/result caches;
* :mod:`repro.experiments.checkpoint` — crash-safe campaign journal,
  graceful drain, and resume;
* :mod:`repro.experiments.tables` — Table II / Figure 5 data;
* :mod:`repro.experiments.resilience` — fault-injection resilience
  sweeps (how much overlap masks a degraded platform);
* :mod:`repro.experiments.report` — the full paper-vs-measured report.
"""

from .bandwidth import (
    NonMonotonePredicateError,
    bisect_bandwidth,
    bisect_bandwidth_batched,
    equivalent_bandwidth,
    relaxation_bandwidth,
)
from .cache import SimResultCache, TraceCache, disk_low, trace_digest
from .calibration import bus_sensitivity, calibrate_buses, saturation_knee
from .checkpoint import (
    CampaignInterrupted,
    CheckpointJournal,
    JournalEntry,
    graceful_drain,
    list_runs,
    point_key,
    replay_journal,
)
from .parallel import (
    DegradedBracketError,
    ExperimentEngine,
    GridExecutionError,
    GridPoint,
    PointFailure,
    RetryPolicy,
    WorkerMemoryError,
    expand_grid,
    speedup_grid,
)
from .pipeline import AppExperiment, VARIANTS
from .tables import (
    PAPER_CONSUMPTION,
    PAPER_PRODUCTION,
    PatternRow,
    figure5_series,
    pattern_row,
)
from .report import full_report
from .resilience import ResilienceReport, ResilienceRow, resilience_sweep
from .scaling import ScalePoint, ScalingStudy, scaling_study
from .sweeps import SweepResult, ascii_series, bandwidth_sweep, latency_sweep

__all__ = [
    "AppExperiment", "CampaignInterrupted", "CheckpointJournal",
    "DegradedBracketError", "ExperimentEngine",
    "GridExecutionError", "GridPoint", "JournalEntry",
    "NonMonotonePredicateError", "PointFailure", "RetryPolicy",
    "WorkerMemoryError",
    "PAPER_CONSUMPTION", "PAPER_PRODUCTION", "PatternRow",
    "VARIANTS", "bisect_bandwidth", "bisect_bandwidth_batched",
    "bus_sensitivity", "calibrate_buses", "disk_low",
    "equivalent_bandwidth", "expand_grid", "figure5_series", "full_report",
    "graceful_drain", "list_runs", "pattern_row", "point_key",
    "relaxation_bandwidth", "replay_journal", "saturation_knee",
    "ResilienceReport", "ResilienceRow", "resilience_sweep",
    "ScalePoint", "ScalingStudy", "SimResultCache", "TraceCache",
    "scaling_study", "speedup_grid", "trace_digest",
    "SweepResult", "ascii_series", "bandwidth_sweep", "latency_sweep",
]
