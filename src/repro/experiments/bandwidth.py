"""Bandwidth searches of paper Figure 6(b) and 6(c).

* **Bandwidth relaxation** (Fig. 6(b)): the minimum bandwidth at which
  the *overlapped* execution still matches the performance of the
  non-overlapped execution on the 250 MB/s baseline — *"in order to
  achieve the performance of the non-overlapped execution on
  250MB/s, the overlapped execution needs much less bandwidth"*
  (Sweep3D: down to 11.75 MB/s).
* **Equivalent bandwidth** (Fig. 6(c)): the bandwidth the
  *non-overlapped* execution would need to match the overlapped
  execution at 250 MB/s — *"what is the overlap's equivalent in
  increased network bandwidth"*.  For Sweep3D this "tends to
  infinity": no bandwidth recovers the benefit, because the remaining
  cost is latency and pipeline serialization, not bytes.

Both are monotone in bandwidth, so bisection on a log scale converges
quickly; replays are memoized by the experiment object.  With a
parallel :class:`~repro.experiments.parallel.ExperimentEngine` the
searches run in *speculative batched* mode: each round evaluates the
whole midpoint tree of the next few bisection levels concurrently and
then walks it, descending several levels per round while returning the
bitwise-identical threshold of the sequential search.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from ..obs import get_registry, span as _span
from .pipeline import AppExperiment

__all__ = [
    "NonMonotonePredicateError",
    "bisect_bandwidth",
    "bisect_bandwidth_batched",
    "equivalent_bandwidth",
    "relaxation_bandwidth",
]

#: Search bracket (MB/s): from slower-than-ethernet to far beyond any
#: bandwidth that can still matter; above the cap we report infinity.
BW_MIN = 0.25
BW_MAX = 128_000.0


def _anchor_duration(
    exp: AppExperiment, variant: str, bandwidth: float, engine,
) -> float:
    """The search's anchor duration, engine-mediated when possible.

    Routing the anchor replay through the engine journals it alongside
    the probe points, so a resumed search re-derives the identical
    threshold without re-execution.  A quarantined anchor cannot anchor
    anything: raise :class:`~repro.experiments.parallel.DegradedBracketError`
    rather than bisect against a missing number.
    """
    if engine is None or not engine.mediated:
        return exp.duration(variant, bandwidth_mbps=bandwidth)
    from dataclasses import replace

    from .parallel import DegradedBracketError, PointFailure
    base = engine.point_for(exp, variant)
    # Reuse the caller's already-traced experiment for warm/serial paths.
    engine._experiments.setdefault(base.experiment_key(), exp)
    point = replace(base, bandwidth_mbps=float(bandwidth))
    dur = engine.durations([point])[0]
    if isinstance(dur, PointFailure):
        raise DegradedBracketError([dur])
    return dur


class NonMonotonePredicateError(ValueError):
    """The bisection predicate changed truth value more than once.

    Bisection assumes ``predicate(bw)`` is monotone (False below one
    threshold, True above it).  The batched search sees speculative
    probes on both sides of the walked path for free, so it can detect
    violations the sequential search silently absorbs.  Only violations
    *wider than* ``rel_tol`` raise: a simulated duration can wobble by
    a fraction of a percent around the threshold (discrete bus
    scheduling, protocol switches), and within one tolerance width the
    search cannot distinguish thresholds anyway — those are absorbed,
    exactly like the sequential search absorbs them.
    """


def bisect_bandwidth(
    predicate,
    lo: float = BW_MIN,
    hi: float = BW_MAX,
    rel_tol: float = 0.01,
    max_iter: int = 60,
) -> float:
    """Smallest bandwidth in ``[lo, hi]`` satisfying a monotone predicate.

    ``predicate(bw)`` must be False below the threshold and True above
    it.  Returns ``inf`` when even ``hi`` fails and ``lo`` when the
    predicate already holds there (so for ``lo == hi`` the single point
    decides: ``lo`` if it satisfies, ``inf`` otherwise).  Log-scale
    bisection until the bracket is within ``rel_tol`` (relative) or
    ``max_iter`` halvings, whichever first; the returned value is the
    upper end of the final bracket, so it always satisfies a monotone
    predicate and overestimates the true threshold by at most
    ``rel_tol``.

    A *non-monotone* predicate is not detected here: the search just
    follows whichever flank each midpoint probe lands on and returns
    the upper end of some sign-change bracket — deterministic, but
    bracket-dependent.  Use :func:`bisect_bandwidth_batched` to get
    detection (its speculative probes cover both flanks).
    """
    if lo <= 0 or hi <= 0:
        raise ValueError(f"bandwidth bracket must be positive, got [{lo}, {hi}]")
    if hi < lo:
        raise ValueError(f"empty bracket: lo={lo} > hi={hi}")
    if rel_tol <= 0:
        raise ValueError(f"rel_tol must be positive, got {rel_tol}")
    probes = get_registry().counter("bisect.probes")
    probes.inc()
    if predicate(lo):
        return lo
    probes.inc()
    if not predicate(hi):
        return math.inf
    llo, lhi = math.log(lo), math.log(hi)
    for _ in range(max_iter):
        if (lhi - llo) <= math.log1p(rel_tol):
            break
        mid = 0.5 * (llo + lhi)
        probes.inc()
        if predicate(math.exp(mid)):
            lhi = mid
        else:
            llo = mid
    return math.exp(lhi)


def _speculation_depth(batch: int, remaining: int) -> int:
    """Bisection levels one batch of ``2**d - 1`` probes can cover."""
    depth = 1
    while (1 << (depth + 1)) - 1 <= batch:
        depth += 1
    return max(1, min(depth, remaining))


def bisect_bandwidth_batched(
    predicate_many: Callable[[Sequence[float]], Sequence[bool]],
    lo: float = BW_MIN,
    hi: float = BW_MAX,
    rel_tol: float = 0.01,
    max_iter: int = 60,
    batch: int = 7,
) -> float:
    """Speculative batched variant of :func:`bisect_bandwidth`.

    ``predicate_many(bandwidths)`` evaluates the predicate at several
    candidate bandwidths at once (the parallel engine fans them across
    workers) and returns one bool per candidate, in order.

    Each round builds the complete midpoint tree of the next ``d``
    bisection levels (``2**d - 1`` nodes, ``d`` chosen so the tree fits
    in ``batch`` probes), evaluates all nodes in one batch, then walks
    the tree exactly as the sequential search would.  Because every
    node's midpoint is computed by the same ``0.5 * (lo + hi)``
    arithmetic on the same bracket values, the walk reproduces the
    sequential iterate sequence exactly and the returned threshold is
    **bitwise identical** to ``bisect_bandwidth`` with the same
    arguments — batching only changes how many probes run per round
    (some speculatively wasted), never the result.

    Raises :class:`NonMonotonePredicateError` when the probes of one
    round contradict monotonicity by more than ``rel_tol`` (a satisfied
    bandwidth more than one tolerance width below a failed one);
    narrower wobble is absorbed like the sequential search absorbs it.
    """
    if lo <= 0 or hi <= 0:
        raise ValueError(f"bandwidth bracket must be positive, got [{lo}, {hi}]")
    if hi < lo:
        raise ValueError(f"empty bracket: lo={lo} > hi={hi}")
    if rel_tol <= 0:
        raise ValueError(f"rel_tol must be positive, got {rel_tol}")
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    tol = math.log1p(rel_tol)
    probes = get_registry().counter("bisect.probes")
    probes.inc(2)
    lo_ok, hi_ok = predicate_many([lo, hi])
    if lo_ok and not hi_ok and math.log(hi) - math.log(lo) > tol:
        raise NonMonotonePredicateError(
            f"predicate holds at lo={lo} but not at hi={hi}"
        )
    if lo_ok:
        return lo
    if not hi_ok:
        return math.inf

    llo, lhi = math.log(lo), math.log(hi)
    iters = 0
    while iters < max_iter and (lhi - llo) > tol:
        depth = _speculation_depth(batch, max_iter - iters)
        # Speculative midpoint tree: node at `path` (tuple of "predicate
        # held?" decisions) is the midpoint sequential bisection would
        # probe after exactly those decisions.
        nodes: dict[tuple[bool, ...], float] = {}

        def _build(a: float, b: float, d: int, path: tuple[bool, ...]) -> None:
            mid = 0.5 * (a + b)
            nodes[path] = mid
            if d > 1:
                _build(a, mid, d - 1, path + (True,))
                _build(mid, b, d - 1, path + (False,))

        _build(llo, lhi, depth, ())
        order = list(nodes)
        probes.inc(len(order))
        answers = list(predicate_many([math.exp(nodes[p]) for p in order]))
        if len(answers) != len(order):
            raise ValueError(
                f"predicate_many returned {len(answers)} answers "
                f"for {len(order)} candidates"
            )
        results = dict(zip(order, answers))

        # Monotonicity check over everything this round observed: a
        # True more than one tolerance width below a False is a real
        # violation; anything narrower is sub-resolution wobble.
        observed = sorted((mid, results[p]) for p, mid in nodes.items())
        seen_true_at = None
        for mid, ok in observed:
            if ok:
                seen_true_at = mid if seen_true_at is None else seen_true_at
            elif seen_true_at is not None and mid - seen_true_at > tol:
                raise NonMonotonePredicateError(
                    f"predicate holds at {math.exp(seen_true_at):.6g} MB/s "
                    f"but fails at {math.exp(mid):.6g} MB/s"
                )

        # Walk the tree exactly as the sequential search would.
        path: tuple[bool, ...] = ()
        for _ in range(depth):
            if iters >= max_iter or (lhi - llo) <= tol:
                break
            mid = nodes[path]
            if results[path]:
                lhi = mid
                path += (True,)
            else:
                llo = mid
                path += (False,)
            iters += 1
    return math.exp(lhi)


def relaxation_bandwidth(
    exp: AppExperiment,
    variant: str = "real",
    baseline_bw: float | None = None,
    slack: float = 1e-9,
    rel_tol: float = 0.01,
    engine=None,
    batch: int = 7,
) -> float:
    """Fig. 6(b): min bandwidth where ``variant`` matches the original
    execution at the baseline bandwidth.

    Pass a :class:`~repro.experiments.parallel.ExperimentEngine` as
    ``engine`` to probe speculative bisection batches concurrently
    (identical result, fewer sequential rounds).
    """
    base_bw = baseline_bw if baseline_bw is not None else exp.machine.bandwidth_mbps
    with _span("bisect.relaxation", app=exp.app_name, variant=variant):
        get_registry().counter("bisect.searches").inc()
        target = _anchor_duration(exp, "original", base_bw, engine)
        threshold = target * (1 + slack)

        if engine is not None:
            predicate_many = engine.duration_predicate_many(
                exp, variant, threshold
            )
            return bisect_bandwidth_batched(
                predicate_many, hi=base_bw, rel_tol=rel_tol, batch=batch,
            )

        def fast_enough(bw: float) -> bool:
            return exp.duration(variant, bandwidth_mbps=bw) <= threshold

        return bisect_bandwidth(fast_enough, hi=base_bw, rel_tol=rel_tol)


def equivalent_bandwidth(
    exp: AppExperiment,
    variant: str = "real",
    baseline_bw: float | None = None,
    slack: float = 1e-9,
    rel_tol: float = 0.01,
    engine=None,
    batch: int = 7,
) -> float:
    """Fig. 6(c): bandwidth the original execution needs to match
    ``variant`` at the baseline bandwidth (``inf`` when unreachable).

    ``engine`` enables speculative batched probing as in
    :func:`relaxation_bandwidth`.
    """
    base_bw = baseline_bw if baseline_bw is not None else exp.machine.bandwidth_mbps
    with _span("bisect.equivalent", app=exp.app_name, variant=variant):
        get_registry().counter("bisect.searches").inc()
        target = _anchor_duration(exp, variant, base_bw, engine)
        threshold = target * (1 + slack)

        if engine is not None:
            predicate_many = engine.duration_predicate_many(
                exp, "original", threshold
            )
            return bisect_bandwidth_batched(
                predicate_many, lo=base_bw * 0.999, rel_tol=rel_tol,
                batch=batch,
            )

        def fast_enough(bw: float) -> bool:
            return exp.duration("original", bandwidth_mbps=bw) <= threshold

        return bisect_bandwidth(fast_enough, lo=base_bw * 0.999,
                                rel_tol=rel_tol)
