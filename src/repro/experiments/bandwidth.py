"""Bandwidth searches of paper Figure 6(b) and 6(c).

* **Bandwidth relaxation** (Fig. 6(b)): the minimum bandwidth at which
  the *overlapped* execution still matches the performance of the
  non-overlapped execution on the 250 MB/s baseline — *"in order to
  achieve the performance of the non-overlapped execution on
  250MB/s, the overlapped execution needs much less bandwidth"*
  (Sweep3D: down to 11.75 MB/s).
* **Equivalent bandwidth** (Fig. 6(c)): the bandwidth the
  *non-overlapped* execution would need to match the overlapped
  execution at 250 MB/s — *"what is the overlap's equivalent in
  increased network bandwidth"*.  For Sweep3D this "tends to
  infinity": no bandwidth recovers the benefit, because the remaining
  cost is latency and pipeline serialization, not bytes.

Both are monotone in bandwidth, so bisection on a log scale converges
quickly; replays are memoized by the experiment object.
"""

from __future__ import annotations

import math

from .pipeline import AppExperiment

__all__ = [
    "bisect_bandwidth",
    "equivalent_bandwidth",
    "relaxation_bandwidth",
]

#: Search bracket (MB/s): from slower-than-ethernet to far beyond any
#: bandwidth that can still matter; above the cap we report infinity.
BW_MIN = 0.25
BW_MAX = 128_000.0


def bisect_bandwidth(
    predicate,
    lo: float = BW_MIN,
    hi: float = BW_MAX,
    rel_tol: float = 0.01,
    max_iter: int = 60,
) -> float:
    """Smallest bandwidth in ``[lo, hi]`` satisfying a monotone predicate.

    ``predicate(bw)`` must be False below the threshold and True above
    it.  Returns ``inf`` when even ``hi`` fails and ``lo`` when the
    predicate already holds there.  Log-scale bisection to ``rel_tol``.
    """
    if predicate(lo):
        return lo
    if not predicate(hi):
        return math.inf
    llo, lhi = math.log(lo), math.log(hi)
    for _ in range(max_iter):
        if (lhi - llo) <= math.log1p(rel_tol):
            break
        mid = 0.5 * (llo + lhi)
        if predicate(math.exp(mid)):
            lhi = mid
        else:
            llo = mid
    return math.exp(lhi)


def relaxation_bandwidth(
    exp: AppExperiment,
    variant: str = "real",
    baseline_bw: float | None = None,
    slack: float = 1e-9,
    rel_tol: float = 0.01,
) -> float:
    """Fig. 6(b): min bandwidth where ``variant`` matches the original
    execution at the baseline bandwidth."""
    base_bw = baseline_bw if baseline_bw is not None else exp.machine.bandwidth_mbps
    target = exp.duration("original", bandwidth_mbps=base_bw)

    def fast_enough(bw: float) -> bool:
        return exp.duration(variant, bandwidth_mbps=bw) <= target * (1 + slack)

    return bisect_bandwidth(fast_enough, hi=base_bw, rel_tol=rel_tol)


def equivalent_bandwidth(
    exp: AppExperiment,
    variant: str = "real",
    baseline_bw: float | None = None,
    slack: float = 1e-9,
    rel_tol: float = 0.01,
) -> float:
    """Fig. 6(c): bandwidth the original execution needs to match
    ``variant`` at the baseline bandwidth (``inf`` when unreachable)."""
    base_bw = baseline_bw if baseline_bw is not None else exp.machine.bandwidth_mbps
    target = exp.duration(variant, bandwidth_mbps=base_bw)

    def fast_enough(bw: float) -> bool:
        return exp.duration("original", bandwidth_mbps=bw) <= target * (1 + slack)

    return bisect_bandwidth(fast_enough, lo=base_bw * 0.999, rel_tol=rel_tol)
