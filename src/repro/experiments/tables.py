"""Paper table/figure data generators (Table II, Figure 5).

These functions reduce traced applications to exactly the rows and
scatter series the paper prints, so benchmarks and the report can
present paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.patterns import (
    ConsumptionStats,
    ProductionStats,
    consumption_table,
    production_table,
    scatter_points,
)
from .pipeline import AppExperiment

__all__ = [
    "PAPER_CONSUMPTION",
    "PAPER_PRODUCTION",
    "PatternRow",
    "pattern_row",
    "figure5_series",
]

#: Paper Table II(a) — percent of production phase (as fractions).
PAPER_PRODUCTION: dict[str, ProductionStats] = {
    "bt": ProductionStats(0.991, 0.9937, 0.9956, 0.9998),
    "cg": ProductionStats(0.0398, 0.2798, 0.5199, 0.9997),
    "sweep3d": ProductionStats(0.663, 0.948, 0.982, 0.998),
    "pop": ProductionStats(0.955, 0.9662, 0.9775, 0.9999),
    "specfem3d": ProductionStats(0.953, 0.9648, 0.9765, 0.9887),
    "alya": ProductionStats(0.988, float("nan"), float("nan"), float("nan")),
}

#: Paper Table II(b) — percent of consumption phase passable.
PAPER_CONSUMPTION: dict[str, ConsumptionStats] = {
    "bt": ConsumptionStats(0.1368, 0.1371, 0.1374),
    "cg": ConsumptionStats(0.02175, 0.1835, 0.3453),
    "sweep3d": ConsumptionStats(0.0002, 0.0003, 0.0004),
    "pop": ConsumptionStats(0.03525, 0.0353, 0.03534),
    "specfem3d": ConsumptionStats(0.00032, 0.00034, 0.00036),
    "alya": ConsumptionStats(0.004, float("nan"), float("nan")),
}


@dataclass(frozen=True)
class PatternRow:
    """Measured Table II row of one application."""

    app: str
    production: ProductionStats
    consumption: ConsumptionStats


def pattern_row(exp: AppExperiment, channel: int | None = "auto") -> PatternRow:
    """Measure an application's Table II row from its original trace.

    By default (``"auto"``) point-to-point application traffic is
    analyzed — except for Alya, whose instrumented kernel communicates
    through reduction collectives (paper Table II note), so its row
    pools all channels.  Pass an explicit channel (or None for all) to
    override.
    """
    if channel == "auto":
        channel = None if exp.app_name == "alya" else 0
    trace = exp.trace("original")
    return PatternRow(
        app=exp.app_name,
        production=production_table(trace, channel=channel),
        consumption=consumption_table(trace, channel=channel),
    )


def figure5_series(
    app: str,
    kind: str,
    nranks: int = 16,
    rank: int | None = None,
    max_points: int = 20000,
    app_params: dict | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Figure 5 scatter data for one application.

    Returns ``(normalized_times, element_offsets)`` pooled from the raw
    access streams — the exact axes of the paper's figure: *"The x axis
    represents the normalized time within the corresponding computation
    interval, while the y axis represents an element's offset within
    the transferred buffer."*
    """
    exp = AppExperiment(
        app, nranks=nranks, app_params=app_params, record_streams=True,
    )
    return scatter_points(
        exp.trace("original"), kind, channel=0, rank=rank, max_points=max_points,
    )
