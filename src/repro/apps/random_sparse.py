"""Randomized unstructured application (fuzzing / irregular topologies).

The pool's six skeletons have regular, hand-modelled topologies.  Real
unstructured-mesh codes talk over irregular neighbour graphs; this app
generates one with :mod:`networkx` (seeded — fully deterministic) and
runs a generic exchange-compute loop over it, with per-edge message
sizes and per-rank work drawn from the same seed.

Used by the property/robustness tests: whatever the graph, the whole
pipeline (trace, transform, replay) must hold its invariants.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from ..smpi.api import Comm
from .base import Application
from .patterns import consumption_batches, production_batches

__all__ = ["RandomSparse"]


class RandomSparse(Application):
    """Exchange-compute loop over a random connected neighbour graph.

    Parameters
    ----------
    seed:
        Seeds the graph, the message sizes, and the work distribution.
    degree:
        Average vertex degree of the neighbour graph.
    iterations:
        Exchange rounds.
    min_elements / max_elements:
        Per-edge message size range (elements, doubles).
    work:
        Mean per-rank instructions per round (±50 % spread by rank).
    late_production / early_consumption:
        Anchor points of the access patterns (defaults: a typical
        unfavourable code).
    """

    name = "randomsparse"
    default_nranks = 16

    def __init__(
        self,
        seed: int = 0,
        degree: int = 3,
        iterations: int = 3,
        min_elements: int = 16,
        max_elements: int = 2048,
        work: int = 1_000_000,
        late_production: float = 0.9,
        early_consumption: float = 0.05,
    ):
        if degree < 1 or iterations < 1 or min_elements < 1:
            raise ValueError("invalid RandomSparse parameters")
        if max_elements < min_elements:
            raise ValueError("max_elements must be >= min_elements")
        if not (0 <= late_production <= 1 and 0 <= early_consumption <= 1):
            raise ValueError("pattern anchors must lie in [0, 1]")
        self.seed = seed
        self.degree = degree
        self.iterations = iterations
        self.min_elements = min_elements
        self.max_elements = max_elements
        self.work = work
        self.late_production = late_production
        self.early_consumption = early_consumption

    def topology(self, nranks: int) -> nx.Graph:
        """The (deterministic) neighbour graph used at this scale."""
        if nranks == 1:
            g = nx.Graph()
            g.add_node(0)
            return g
        edges = max(nranks - 1, (nranks * self.degree) // 2)
        g = nx.gnm_random_graph(nranks, edges, seed=self.seed)
        # ensure connectivity deterministically: chain the components
        comps = [sorted(c) for c in nx.connected_components(g)]
        for a, b in zip(comps, comps[1:]):
            g.add_edge(a[0], b[0])
        return g

    def __call__(self, comm: Comm) -> dict:
        g = self.topology(comm.size)
        rng = np.random.default_rng(self.seed)  # same stream on all ranks
        sizes = {
            tuple(sorted(e)): int(rng.integers(self.min_elements,
                                               self.max_elements + 1))
            for e in sorted(g.edges())
        }
        works = rng.integers(self.work // 2, self.work * 3 // 2 + 1,
                             size=comm.size)

        peers = sorted(g.neighbors(comm.rank))
        sbufs = {p: np.zeros(sizes[tuple(sorted((comm.rank, p)))])
                 for p in peers}
        rbufs = {p: np.zeros_like(b) for p, b in sbufs.items()}
        prod_anchors = [(0.0, self.late_production), (1.0, 1.0)]
        cons_anchors = [(0.0, self.early_consumption),
                        (1.0, min(self.early_consumption + 0.1, 1.0))]

        loads: list = []
        for it in range(self.iterations):
            comm.event("iteration", it)
            stores = [
                (b, o, a) for b in sbufs.values()
                for o, a in production_batches(b.size, prod_anchors)
            ]
            comm.compute(int(works[comm.rank]), loads=loads, stores=stores)
            reqs = [comm.Irecv(rbufs[p], p, tag=2) for p in peers]
            for p in peers:
                comm.send(sbufs[p], p, tag=2)
            comm.waitall(reqs)
            loads = [
                (b, o, a) for b in rbufs.values()
                for o, a in consumption_batches(b.size, cons_anchors)
            ]
        comm.allreduce(1.0)
        return {"degree": len(peers),
                "edges": sum(b.size for b in sbufs.values())}
