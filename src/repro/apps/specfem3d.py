"""SPECFEM3D skeleton: spectral-element seismic wave propagation.

SPECFEM3D (paper input ``test`` with 80 cells) is the pool's
bandwidth-hungry member: each timestep assembles forces on large
unstructured interface buffers and exchanges them with a handful of
mesh neighbours, sandwiched between heavy element-level computation.
The paper finds that although overlap gives SPECFEM3D little raw
speedup, the benefit is *"equivalent to increasing the network
bandwidth almost four times"* (Figure 6(c)) — large messages plus
late production leave a lot of transfer time to hide.

Measured patterns (Table II): production 95.3 % / 96.5 % / 97.7 % /
98.9 % (note: the whole message exists ~1 % before the send — a real,
if small, advancing margin) and near-immediate consumption (0.032 %).
"""

from __future__ import annotations

import numpy as np

from ..smpi.api import Comm
from .base import Application
from .patterns import consumption_batches, production_batches, shift_anchors

__all__ = ["SPECFEM3D"]

#: Paper Table II rows for SPECFEM3D.
PRODUCTION_ANCHORS = [(0.0, 0.953), (0.25, 0.9648), (0.50, 0.9765), (1.0, 0.9887)]
CONSUMPTION_ANCHORS = [(0.0, 0.00032), (0.25, 0.00034), (0.50, 0.00036), (1.0, 0.0006)]


class SPECFEM3D(Application):
    """Spectral-element wave-propagation skeleton.

    Parameters
    ----------
    elements_per_rank:
        Local spectral elements (compute grain).
    interface_dofs:
        Boundary degrees of freedom per neighbour (message elements —
        these are the pool's largest messages).
    neighbors:
        Mesh neighbours per rank (ring distances).
    timesteps:
        Explicit time steps to simulate.
    work_per_element:
        Instructions per spectral element per step.
    """

    name = "specfem3d"

    def __init__(
        self,
        elements_per_rank: int = 80,
        interface_dofs: int = 200,
        neighbors: int = 4,
        timesteps: int = 4,
        work_per_element: int = 120000,
        stagger: float = 0.012,
    ):
        if min(elements_per_rank, interface_dofs, neighbors,
               timesteps, work_per_element) < 1:
            raise ValueError("all SPECFEM3D parameters must be >= 1")
        self.elements_per_rank = elements_per_rank
        self.interface_dofs = interface_dofs
        self.neighbors = neighbors
        self.timesteps = timesteps
        self.work_per_element = work_per_element
        #: Per-neighbour spread of the production anchors (different
        #: interfaces are assembled at different times; symmetric around
        #: the Table II average).
        self.stagger = stagger

    def __call__(self, comm: Comm) -> dict:
        size, rank = comm.size, comm.rank
        half = min(self.neighbors // 2, max((size - 1) // 2, 0))
        offsets = [d for k in range(1, half + 1) for d in (k, -k)]
        peers = sorted({(rank + d) % size for d in offsets} - {rank}) if size > 1 else []

        sbufs = {p: np.zeros(self.interface_dofs) for p in peers}
        rbufs = {p: np.zeros(self.interface_dofs) for p in peers}
        step_work = int(self.elements_per_rank * self.work_per_element)

        prod = {
            p: production_batches(
                b.size,
                shift_anchors(
                    PRODUCTION_ANCHORS,
                    (i - (len(peers) - 1) / 2.0) * self.stagger,
                ),
                revisits=2,
            )
            for i, (p, b) in enumerate(sbufs.items())
        }
        cons = {
            p: consumption_batches(b.size, CONSUMPTION_ANCHORS)
            for p, b in rbufs.items()
        }

        loads: list = []
        for step in range(self.timesteps):
            comm.event("iteration", step)
            stores = [(sbufs[p], o, a) for p in peers for o, a in prod[p]]
            comm.compute(step_work, loads=loads, stores=stores)
            reqs = [comm.Irecv(rbufs[p], p, tag=3) for p in peers]
            for p in peers:
                comm.send(sbufs[p], p, tag=3)
            comm.waitall(reqs)
            loads = [(rbufs[p], o, a) for p in peers for o, a in cons[p]]
        comm.compute(step_work // 4, loads=loads)
        return {"peers": peers, "interface_dofs": self.interface_dofs}
