"""NAS BT skeleton: block-tridiagonal ADI solver (class B).

BT solves three alternating-direction implicit sweeps per iteration
(x, then y, then z) on the *multi-partition* decomposition: every rank
owns one sub-block on each diagonal of the 3-D block grid, so during a
line sweep every rank is busy in every phase — the sweep is a shifted
ring of (solve sub-block, pass boundary to the successor) steps with
no wavefront fill bubble.  Face messages are large (5 solution
components per cell face).

BT is the paper's canonical *unfavourable* consumer (Figure 5(b)):
the received buffer is loaded in four near-instant bursts — the data
is copied out and consumed from elsewhere — so postponing receptions
buys 13.68 % at most, and almost nothing beyond that (13.71 % /
13.74 %).  Production is also extreme: 99.1 % of the interval passes
before the first element's final version exists.
"""

from __future__ import annotations

import numpy as np

from ..smpi.api import Comm
from .base import Application, grid_2d
from .patterns import consumption_batches, production_batches

__all__ = ["NasBT"]

#: Paper Table II rows for NAS-BT.
PRODUCTION_ANCHORS = [(0.0, 0.991), (0.25, 0.9937), (0.50, 0.9956), (1.0, 0.9998)]
CONSUMPTION_ANCHORS = [(0.0, 0.1368), (0.25, 0.1371), (0.50, 0.1374), (1.0, 0.14)]


class NasBT(Application):
    """ADI line-sweep skeleton (x and y pipelines, z local).

    Parameters
    ----------
    grid_points:
        Global cube edge (class B: 102).
    components:
        Solution components per cell (BT: 5).
    iterations:
        ADI outer iterations.
    work_per_cell:
        Instructions per cell per sweep stage.
    rereads:
        Extra copy-burst loads of each received face (Fig. 5(b) shows
        four total).
    """

    name = "bt"

    def __init__(
        self,
        grid_points: int = 102,
        components: int = 5,
        iterations: int = 2,
        work_per_cell: int = 1000,
        rereads: int = 3,
    ):
        if min(grid_points, components, iterations, work_per_cell) < 1:
            raise ValueError("all BT parameters must be >= 1")
        self.grid_points = grid_points
        self.components = components
        self.iterations = iterations
        self.work_per_cell = work_per_cell
        self.rereads = rereads

    def __call__(self, comm: Comm) -> dict:
        px, py = grid_2d(comm.size)
        cx, cy = comm.rank % px, comm.rank // px
        n_l = max(1, self.grid_points // max(px, py))
        nz = self.grid_points

        # A face carries components for every (cell, z) pair on the line cut.
        face = n_l * nz // 4 * self.components
        face = max(face, self.components)
        rbuf, sbuf = np.zeros(face), np.zeros(face)
        stage_work = int(n_l * n_l * nz // 4 * self.work_per_cell)

        prod = production_batches(face, PRODUCTION_ANCHORS, revisits=2)
        cons = consumption_batches(face, CONSUMPTION_ANCHORS, rereads=self.rereads)

        def line_sweep(extent: int, prev_rank: int, next_rank: int) -> None:
            """Multi-partition sweep: ``extent`` phases around the ring.

            Each phase solves one diagonal sub-block and passes its
            boundary to the ring successor; every rank is busy in every
            phase (forward elimination, then back substitution).
            """
            for _direction in (+1, -1):
                for phase in range(extent):
                    loads = []
                    if phase > 0:
                        comm.Recv(rbuf, prev_rank, tag=4)
                        loads = [(rbuf, o, a) for o, a in cons]
                    stores = [(sbuf, o, a) for o, a in prod] if phase < extent - 1 else []
                    comm.compute(stage_work, loads=loads, stores=stores)
                    if phase < extent - 1:
                        comm.send(sbuf, next_rank, tag=4)

        x_prev = cy * px + (cx - 1) % px
        x_next = cy * px + (cx + 1) % px
        y_prev = ((cy - 1) % py) * px + cx
        y_next = ((cy + 1) % py) * px + cx
        for it in range(self.iterations):
            comm.event("iteration", it)
            if px > 1:
                line_sweep(px, x_prev, x_next)              # x sweeps
            if py > 1:
                line_sweep(py, y_prev, y_next)              # y sweeps
            comm.compute(stage_work)                        # z solve: local
            comm.allreduce(1.0)                             # rhs norm check
        return {"face_elements": face}
