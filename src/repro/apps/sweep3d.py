"""Sweep3D skeleton: 3-D discrete-ordinates neutron transport.

Sweep3D (paper §IV, problem 50x50x50 with ``mk=10``) is the pool's
*wavefront* code: the x-y plane is decomposed over a 2-D process grid
and each octant sweep propagates diagonally from a corner — every rank
receives its west and north inflow faces, computes a block of ``mk``
k-planes, and forwards its east and south outflow faces.  The k-block
pipelining makes the code extremely sensitive to message timing, which
is why the paper finds the largest ideal-pattern overlap benefit here
(chunking "causes finer-grain dependencies among processes and
potentially increases parallelism", §V-B).

Measured patterns being reproduced (paper Table II / Figure 5(a)):

* production: the boundary buffer (~600 elements at 64 ranks) is
  revisited many times; the first final version appears at 66.3 % of
  the production interval, the first quarter at 94.8 %;
* consumption: inflow is needed essentially immediately (0.02 %).
"""

from __future__ import annotations

import numpy as np

from ..smpi.api import Comm
from .base import Application, grid_2d
from .patterns import consumption_batches, production_batches

__all__ = ["Sweep3D"]

#: Paper Table II(a) row for Sweep3D.
PRODUCTION_ANCHORS = [(0.0, 0.663), (0.25, 0.948), (0.50, 0.982), (1.0, 0.998)]
#: Paper Table II(b) row (monotonized — inflow needed right away).
CONSUMPTION_ANCHORS = [(0.0, 0.0002), (0.25, 0.0003), (0.50, 0.0004), (1.0, 0.0005)]

#: The four corner octant pairs of the x-y wavefront (the real code's
#: eight octants collapse pairwise onto the 2-D grid).
OCTANTS = ((1, 1), (1, -1), (-1, 1), (-1, -1))


class Sweep3D(Application):
    """Wavefront sweep skeleton.

    Parameters
    ----------
    nx, ny, nz:
        Global problem size (paper: 50x50x50).
    mk:
        k-plane blocking factor (paper: 10) — one message per k-block.
    angle_block:
        Angles batched per k-block; scales the face-message size so a
        64-rank run transfers ~600-element boundaries as in Fig. 5(a).
    iterations:
        Outer timestep count.
    work_per_cell:
        Instructions per (cell, angle) — compute grain of a block.
    """

    name = "sweep3d"

    def __init__(
        self,
        nx: int = 50,
        ny: int = 50,
        nz: int = 50,
        mk: int = 10,
        angle_block: int = 10,
        iterations: int = 2,
        work_per_cell: int = 480,
        revisits: int = 3,
    ):
        if min(nx, ny, nz, mk, angle_block, iterations, work_per_cell) < 1:
            raise ValueError("all Sweep3D parameters must be >= 1")
        self.nx, self.ny, self.nz = nx, ny, nz
        self.mk = mk
        self.angle_block = angle_block
        self.iterations = iterations
        self.work_per_cell = work_per_cell
        self.revisits = revisits

    def __call__(self, comm: Comm) -> dict:
        px, py = grid_2d(comm.size)
        cx, cy = comm.rank % px, comm.rank // px
        nx_l = max(1, self.nx // px)
        ny_l = max(1, self.ny // py)
        nkb = max(1, self.nz // self.mk)

        # Face buffers (doubles): x-faces carry ny_l columns, y-faces nx_l.
        ex = ny_l * self.mk * self.angle_block
        ey = nx_l * self.mk * self.angle_block
        rbuf_x, sbuf_x = np.zeros(ex), np.zeros(ex)
        rbuf_y, sbuf_y = np.zeros(ey), np.zeros(ey)

        block_work = int(nx_l * ny_l * self.mk * self.angle_block * self.work_per_cell)
        prod_x = production_batches(ex, PRODUCTION_ANCHORS, self.revisits)
        prod_y = production_batches(ey, PRODUCTION_ANCHORS, self.revisits)
        cons_x = consumption_batches(ex, CONSUMPTION_ANCHORS)
        cons_y = consumption_batches(ey, CONSUMPTION_ANCHORS)

        blocks = 0
        for it in range(self.iterations):
            comm.event("iteration", it)
            for sx, sy in OCTANTS:
                up_x = (cx - sx, cy) if 0 <= cx - sx < px else None
                up_y = (cx, cy - sy) if 0 <= cy - sy < py else None
                dn_x = (cx + sx, cy) if 0 <= cx + sx < px else None
                dn_y = (cx, cy + sy) if 0 <= cy + sy < py else None
                for _kb in range(nkb):
                    loads = []
                    if up_x is not None:
                        comm.Recv(rbuf_x, up_x[1] * px + up_x[0], tag=0)
                        loads += [(rbuf_x, o, a) for o, a in cons_x]
                    if up_y is not None:
                        comm.Recv(rbuf_y, up_y[1] * px + up_y[0], tag=1)
                        loads += [(rbuf_y, o, a) for o, a in cons_y]
                    stores = []
                    if dn_x is not None:
                        stores += [(sbuf_x, o, a) for o, a in prod_x]
                    if dn_y is not None:
                        stores += [(sbuf_y, o, a) for o, a in prod_y]
                    comm.compute(block_work, loads=loads, stores=stores)
                    if dn_x is not None:
                        comm.send(sbuf_x, dn_x[1] * px + dn_x[0], tag=0)
                    if dn_y is not None:
                        comm.send(sbuf_y, dn_y[1] * px + dn_y[0], tag=1)
                    blocks += 1
        return {"blocks": blocks, "face_elements": ex}
