"""NAS CG skeleton: conjugate gradient (class B).

NPB-CG partitions the sparse matrix over a 2-D process grid; every CG
iteration computes a local sparse matrix-vector product and then sums
the partial results across each process row with a sequence of
pairwise exchanges, finishing with an exchange against the transpose
partner, plus two scalar dot-product reductions.

CG is the one application of the pool whose *real* patterns already
gain from overlap (paper Figure 4: ~8 % at 4 processes): the partial
``q = A.p`` vector is produced almost linearly through the matvec
(3.98 % / 27.98 % / 51.99 % — Table II(a)), and consumption advances
nearly linearly too (2.2 % / 18.4 % / 34.5 %).
"""

from __future__ import annotations

import numpy as np

from ..smpi.api import Comm
from .base import Application
from .patterns import consumption_batches, production_batches

__all__ = ["NasCG"]

#: Paper Table II rows for NAS-CG.
PRODUCTION_ANCHORS = [(0.0, 0.0398), (0.25, 0.2798), (0.50, 0.5199), (1.0, 0.9997)]
CONSUMPTION_ANCHORS = [(0.0, 0.02175), (0.25, 0.1835), (0.50, 0.3453), (1.0, 0.69)]


class NasCG(Application):
    """Conjugate-gradient skeleton on a 2-D process grid.

    Parameters
    ----------
    n:
        Global vector length (class B: 75000).
    iterations:
        CG iterations (the paper's Figure 4 view shows five).
    nonzeros_per_row:
        Sparsity (compute grain of the matvec).
    work_per_nonzero:
        Instructions per nonzero per matvec.
    """

    name = "cg"

    def __init__(
        self,
        n: int = 75000,
        iterations: int = 5,
        nonzeros_per_row: int = 13,
        work_per_nonzero: int = 25,
    ):
        if min(n, iterations, nonzeros_per_row, work_per_nonzero) < 1:
            raise ValueError("all CG parameters must be >= 1")
        self.n = n
        self.iterations = iterations
        self.nonzeros_per_row = nonzeros_per_row
        self.work_per_nonzero = work_per_nonzero

    @staticmethod
    def _grid(size: int) -> tuple[int, int]:
        """NPB CG layout: npcols = 2*nprows for non-square powers of two."""
        import math
        lg = int(math.log2(size)) if size & (size - 1) == 0 else None
        if lg is not None:
            nprows = 1 << (lg // 2)
            npcols = size // nprows
            return nprows, npcols
        from .base import grid_2d
        return grid_2d(size)

    def __call__(self, comm: Comm) -> dict:
        size, rank = comm.size, comm.rank
        nprows, npcols = self._grid(size)
        row, col = rank // npcols, rank % npcols
        # NPB-CG communicates the row sums within row communicators.
        row_comm = comm.split(color=row, key=col)

        seg = max(1, self.n // npcols)           # columns owned per rank
        q_part = np.zeros(seg)                    # partial matvec result
        q_sum = np.zeros(seg)                     # row-summed exchange buffer
        p_new = np.zeros(seg)                     # next direction vector
        dot_s, dot_r = np.zeros(1), np.zeros(1)
        rho_s, rho_r = np.zeros(1), np.zeros(1)

        rows_local = max(1, self.n // nprows)
        matvec_work = int(rows_local // npcols * self.nonzeros_per_row
                          * self.work_per_nonzero * npcols)
        vec_work = int(seg * 12)

        prod = production_batches(seg, PRODUCTION_ANCHORS)
        cons = consumption_batches(seg, CONSUMPTION_ANCHORS)
        one = np.zeros(1, dtype=np.intp)

        # Transpose partner (exchange_proc of NPB-CG).
        t_row = col % nprows
        t_col = row + (col // nprows) * nprows
        transpose = t_row * npcols + t_col

        loads: list = []
        for it in range(self.iterations):
            comm.event("iteration", it)
            # Local matvec: q_part produced near-linearly (Table II).
            comm.compute(
                matvec_work, loads=loads,
                stores=[(q_part, o, a) for o, a in prod],
            )
            loads = []
            # Row reduction: pairwise exchanges across the process row
            # (XOR partners when the row is a power of two, as in NPB),
            # carried by the row communicator.
            if npcols & (npcols - 1) == 0:
                dists = [npcols >> (k + 1) for k in range(npcols.bit_length() - 1)]
                partners = [col ^ d for d in dists if d >= 1]
            else:
                partners = [(col + k) % npcols for k in range(1, npcols)]
            for partner in partners:
                req = row_comm.Irecv(q_sum, partner, tag=11)
                row_comm.send(q_part, partner, tag=11)
                row_comm.wait(req)
                comm.compute(
                    vec_work,
                    loads=[(q_sum, o, a) for o, a in cons],
                    stores=[(q_part, o, a) for o, a in prod],
                )
            # Transpose exchange delivers the summed vector segment.
            if transpose != rank:
                req = comm.Irecv(p_new, transpose, tag=12)
                comm.send(q_part, transpose, tag=12)
                comm.wait(req)
                loads += [(p_new, o, a) for o, a in cons]
            # Two scalar reductions: rho and the step dot product.
            comm.compute(vec_work, loads=loads,
                         stores=[(dot_s, one, np.array([0.97]))])
            loads = []
            comm.Allreduce(dot_s, dot_r)
            comm.compute(vec_work,
                         loads=[(dot_r, one, np.array([0.02]))],
                         stores=[(rho_s, one, np.array([0.97]))])
            comm.Allreduce(rho_s, rho_r)
            loads = [(rho_r, one, np.array([0.02]))]
        return {"segment": seg, "grid": (nprows, npcols), "transpose": transpose}
