"""Common machinery of the application pool.

Every skeleton is a callable object: ``app(comm)`` runs one rank, so an
application instance can be handed directly to the runtime or the
tracer.  :meth:`Application.trace` is the one-stop entry the
experiment harness uses.

The skeletons model the *paper's* application pool (§IV): Sweep3D,
POP, Alya, SPECFEM3D, NAS BT and NAS CG on up to 64 processors of the
MareNostrum test bed.  See DESIGN.md §2 for the substitution argument:
communication structure and message geometry are modelled from the
real codes; access placement inside compute intervals is calibrated to
the paper's Table II measurements via :mod:`repro.apps.patterns`.
"""

from __future__ import annotations

import math
from typing import Any

from ..tracer.tracefile import TraceRun, run_traced
from ..tracer.timestamps import DEFAULT_MIPS

__all__ = ["Application", "grid_2d", "grid_3d"]


def grid_2d(nranks: int) -> tuple[int, int]:
    """Near-square 2-D process grid ``(px, py)`` with ``px * py == nranks``."""
    px = int(math.isqrt(nranks))
    while nranks % px:
        px -= 1
    return px, nranks // px


def grid_3d(nranks: int) -> tuple[int, int, int]:
    """Near-cubic 3-D process grid ``(px, py, pz)``."""
    px = max(1, round(nranks ** (1.0 / 3.0)))
    while nranks % px:
        px -= 1
    py, pz = grid_2d(nranks // px)
    return px, py, pz


class Application:
    """Base class of the pool: a named, parameterized rank function."""

    #: Registry key and default scale of the skeleton.
    name: str = "app"
    default_nranks: int = 64

    def __call__(self, comm) -> Any:  # pragma: no cover - abstract
        raise NotImplementedError

    def params(self) -> dict:
        """Public constructor parameters (recorded in trace metadata)."""
        return {
            k: v for k, v in vars(self).items()
            if not k.startswith("_") and isinstance(v, (int, float, str, bool))
        }

    def trace(
        self,
        nranks: int | None = None,
        mips: float = DEFAULT_MIPS,
        record_streams: bool = False,
        **kwargs,
    ) -> TraceRun:
        """Run this application under the tracer (the Valgrind stage)."""
        n = nranks if nranks is not None else self.default_nranks
        return run_traced(
            self, n, mips=mips, record_streams=record_streams,
            meta={"app": self.name, "params": self.params()},
            **kwargs,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        args = ", ".join(f"{k}={v!r}" for k, v in self.params().items())
        return f"{type(self).__name__}({args})"
