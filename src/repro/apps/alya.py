"""Alya (NASTIN module) skeleton: incompressible Navier-Stokes.

Alya's instrumented kernel (paper §IV/§V) is dominated by its
iterative solver: *"the instrumented kernel of Alya communicates
mainly using MPI reduction collectives of length of one element"* —
dot products and convergence checks in the Krylov loop — plus sparse
neighbour exchanges during assembly.  One-element reductions cannot be
chunked (Table II note), so Alya is the pool's overlap-resistant
member: only whole-message advancing (98.8 % production point) and a
sliver of postponable independent work (0.4 %) remain.
"""

from __future__ import annotations

import numpy as np

from ..smpi.api import Comm
from .base import Application
from .patterns import consumption_batches, production_batches

__all__ = ["Alya"]

#: Paper Table II entries for Alya (single-element transfers).
PRODUCTION_POINT = 0.988
CONSUMPTION_POINT = 0.004

#: Halo patterns for the assembly exchange (not tabulated in the paper;
#: modelled like the other unstructured code, SPECFEM3D).
HALO_PRODUCTION = [(0.0, 0.953), (0.25, 0.9648), (0.50, 0.9765), (1.0, 0.9887)]
HALO_CONSUMPTION = [(0.0, 0.004), (0.25, 0.0042), (0.50, 0.0044), (1.0, 0.006)]


class Alya(Application):
    """Multi-physics FEM skeleton (assembly + scalar-reduction solver).

    Parameters
    ----------
    dofs_per_rank:
        Local degrees of freedom (sets compute grain).
    interface_elems:
        Elements shared with each mesh neighbour (halo message size).
    neighbors:
        Mesh neighbours per rank (ring distance 1..neighbors/2).
    iterations:
        Outer (time/linearization) steps.
    krylov_iters:
        Solver iterations per step — each does two one-element
        allreduces (dot product + norm).
    work_per_dof:
        Instructions per DOF per assembly.
    """

    name = "alya"

    def __init__(
        self,
        dofs_per_rank: int = 4000,
        interface_elems: int = 160,
        neighbors: int = 2,
        iterations: int = 3,
        krylov_iters: int = 8,
        work_per_dof: int = 55,
    ):
        if min(dofs_per_rank, interface_elems, neighbors,
               iterations, krylov_iters, work_per_dof) < 1:
            raise ValueError("all Alya parameters must be >= 1")
        self.dofs_per_rank = dofs_per_rank
        self.interface_elems = interface_elems
        self.neighbors = neighbors
        self.iterations = iterations
        self.krylov_iters = krylov_iters
        self.work_per_dof = work_per_dof

    def __call__(self, comm: Comm) -> dict:
        size, rank = comm.size, comm.rank
        nnbr = min(self.neighbors, max(size - 1, 0))
        dists = [d for k in range(1, nnbr + 1) for d in ((k + 1) // 2 * (-1) ** k,)]
        peers = sorted({(rank + d) % size for d in dists} - {rank}) if size > 1 else []

        sbufs = {p: np.zeros(self.interface_elems) for p in peers}
        rbufs = {p: np.zeros(self.interface_elems) for p in peers}
        dot_s, dot_r = np.zeros(1), np.zeros(1)
        nrm_s, nrm_r = np.zeros(1), np.zeros(1)

        assembly_work = int(self.dofs_per_rank * self.work_per_dof)
        spmv_work = int(self.dofs_per_rank * max(4, self.work_per_dof // 8))
        one = np.zeros(1, dtype=np.intp)

        for it in range(self.iterations):
            comm.event("iteration", it)
            # Assembly: produce interface contributions late in the burst.
            stores = [
                (b, o, a)
                for b in sbufs.values()
                for o, a in production_batches(b.size, HALO_PRODUCTION, revisits=2)
            ]
            comm.compute(assembly_work, stores=stores)
            reqs = [comm.Irecv(b, p, tag=7) for p, b in rbufs.items()]
            for p, b in sbufs.items():
                comm.send(b, p, tag=7)
            comm.waitall(reqs)
            loads = [
                (b, o, a)
                for b in rbufs.values()
                for o, a in consumption_batches(b.size, HALO_CONSUMPTION)
            ]
            # Krylov loop: the paper's dominant communication — scalar
            # allreduces whose operand is produced at 98.8 % of the
            # preceding burst and consumed 0.4 % into the next.
            for _k in range(self.krylov_iters):
                comm.compute(
                    spmv_work,
                    loads=loads,
                    stores=[(dot_s, one, np.array([PRODUCTION_POINT]))],
                )
                loads = []
                comm.Allreduce(dot_s, dot_r)
                comm.compute(
                    spmv_work,
                    loads=[(dot_r, one, np.array([CONSUMPTION_POINT]))],
                    stores=[(nrm_s, one, np.array([PRODUCTION_POINT]))],
                )
                comm.Allreduce(nrm_s, nrm_r)
                loads = [(nrm_r, one, np.array([CONSUMPTION_POINT]))]
        return {"peers": peers, "reductions": 2 * self.iterations * self.krylov_iters}
