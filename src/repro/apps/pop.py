"""POP skeleton: Parallel Ocean Program.

POP (paper input ``test``, 192x128x20 grid) alternates two phases per
timestep on a 2-D domain decomposition:

* **baroclinic** — a large local 3-D computation followed by a
  four-neighbour halo exchange of multi-field boundary strips;
* **barotropic** — an iterative 2-D implicit solver: every inner
  iteration does a thin halo exchange plus a global residual
  reduction.

Measured patterns (Table II / Fig. 5(c)): halo data is produced very
late (95.5 % of the interval), and consumption starts after a short
stretch of *independent work* (~3.5 %) after which everything is
needed at once (the copy-in spike visible in Figure 5(c)).
"""

from __future__ import annotations

import numpy as np

from ..smpi.api import Comm
from .base import Application, grid_2d
from .patterns import consumption_batches, production_batches

__all__ = ["POP"]

#: Paper Table II rows for POP.
PRODUCTION_ANCHORS = [(0.0, 0.955), (0.25, 0.9662), (0.50, 0.9775), (1.0, 0.9999)]
CONSUMPTION_ANCHORS = [(0.0, 0.03525), (0.25, 0.0353), (0.50, 0.03534), (1.0, 0.04)]


class POP(Application):
    """Ocean-model skeleton (halo exchange + reduction solver).

    Parameters
    ----------
    nx, ny, nz:
        Global grid (paper: 192 x 128 x 20).
    steps:
        Timesteps to run.
    solver_iters:
        Barotropic inner iterations per step.
    fields:
        Number of prognostic fields exchanged in the baroclinic halo.
    work_per_point:
        Instructions per grid point per step (baroclinic grain).
    """

    name = "pop"

    def __init__(
        self,
        nx: int = 192,
        ny: int = 128,
        nz: int = 20,
        steps: int = 3,
        solver_iters: int = 4,
        fields: int = 3,
        work_per_point: int = 18,
    ):
        if min(nx, ny, nz, steps, solver_iters, fields, work_per_point) < 1:
            raise ValueError("all POP parameters must be >= 1")
        self.nx, self.ny, self.nz = nx, ny, nz
        self.steps = steps
        self.solver_iters = solver_iters
        self.fields = fields
        self.work_per_point = work_per_point

    def __call__(self, comm: Comm) -> dict:
        px, py = grid_2d(comm.size)
        cx, cy = comm.rank % px, comm.rank // px
        nx_l = max(1, self.nx // px)
        ny_l = max(1, self.ny // py)

        def nbr(dx: int, dy: int) -> int | None:
            x, y = cx + dx, cy + dy
            return y * px + x if 0 <= x < px and 0 <= y < py else None

        neighbors = {
            "e": (nbr(+1, 0), ny_l), "w": (nbr(-1, 0), ny_l),
            "n": (nbr(0, +1), nx_l), "s": (nbr(0, -1), nx_l),
        }
        sbufs = {
            d: np.zeros(edge * self.nz * self.fields)
            for d, (r, edge) in neighbors.items() if r is not None
        }
        rbufs = {d: np.zeros_like(b) for d, b in sbufs.items()}
        solver_sbufs = {
            d: np.zeros(edge) for d, (r, edge) in neighbors.items() if r is not None
        }
        solver_rbufs = {d: np.zeros_like(b) for d, b in solver_sbufs.items()}
        resid_s, resid_r = np.zeros(1), np.zeros(1)

        baroclinic_work = int(nx_l * ny_l * self.nz * self.work_per_point)
        solver_work = int(nx_l * ny_l * max(2, self.work_per_point // 6))
        opposite = {"e": "w", "w": "e", "n": "s", "s": "n"}
        tags = {"e": 0, "w": 1, "n": 2, "s": 3}

        def exchange(sb: dict, rb: dict, loads_into: list) -> None:
            """Halo exchange in the deadlock-free Irecv/Send/Waitall idiom."""
            reqs = [
                comm.Irecv(buf, neighbors[d][0], tag=tags[opposite[d]])
                for d, buf in rb.items()
            ]
            for d, buf in sb.items():
                comm.send(buf, neighbors[d][0], tag=tags[d])
            comm.waitall(reqs)
            loads_into.extend(rb.values())

        for step in range(self.steps):
            comm.event("iteration", step)
            # Baroclinic: big burst producing the halo strips late.
            stores = [
                (buf, o, a)
                for buf in sbufs.values()
                for o, a in production_batches(buf.size, PRODUCTION_ANCHORS, revisits=2)
            ]
            comm.compute(baroclinic_work, stores=stores)
            arrived: list[np.ndarray] = []
            exchange(sbufs, rbufs, arrived)
            # Consume the halos inside the next burst (independent work
            # first, then the copy-in spike).
            loads = [
                (buf, o, a)
                for buf in arrived
                for o, a in consumption_batches(buf.size, CONSUMPTION_ANCHORS, rereads=1)
            ]
            # Barotropic solver iterations.
            for _ in range(self.solver_iters):
                stores = [
                    (buf, o, a)
                    for buf in solver_sbufs.values()
                    for o, a in production_batches(buf.size, PRODUCTION_ANCHORS)
                ] + [(resid_s, np.zeros(1, dtype=np.intp), np.array([0.97]))]
                comm.compute(solver_work, loads=loads, stores=stores)
                loads = []
                arrived2: list[np.ndarray] = []
                exchange(solver_sbufs, solver_rbufs, arrived2)
                comm.Allreduce(resid_s, resid_r)
                loads = [
                    (buf, o, a)
                    for buf in arrived2
                    for o, a in consumption_batches(buf.size, CONSUMPTION_ANCHORS)
                ] + [(resid_r, np.zeros(1, dtype=np.intp), np.array([0.01]))]
            comm.compute(solver_work, loads=loads)
        return {"halo_elements": {d: int(b.size) for d, b in sbufs.items()}}
