"""Access-pattern generators for the application skeletons.

We cannot run the paper's binaries under Valgrind, so the skeletons
reproduce each application's measured production/consumption behaviour
(paper Table II and Figure 5) through parameterized access-stream
generators.  The communication *structure* of each skeleton (who talks
to whom, how much, in what order) is modelled from the real code; the
*placement of accesses inside compute intervals* is calibrated to the
paper's measurements via the anchor profiles below.

Anchors are ``(buffer_fraction, interval_fraction)`` pairs: a monotone
per-element time profile is interpolated through them, which makes the
Table II reductions land exactly on the anchor values:

* production: ``max(last_store[: f*n]) = interp(f)`` and
  ``min(last_store) = interp(0)``;
* consumption: ``min(first_load[f*n :]) = interp(f)``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "anchored_times",
    "burst_touches",
    "consumption_batches",
    "production_batches",
    "shift_anchors",
]


def shift_anchors(
    anchors: list[tuple[float, float]], delta: float,
) -> list[tuple[float, float]]:
    """Shift a profile's interval fractions by ``delta`` (clipped to [0, 1]).

    Real codes produce their different boundary buffers at slightly
    different points of the computation; shifting the anchor profile
    per buffer models that spread while keeping the per-application
    average on the Table II value (use symmetric deltas).
    """
    return [(x, float(np.clip(y + delta, 0.0, 1.0))) for x, y in anchors]


def anchored_times(n: int, anchors: list[tuple[float, float]]) -> np.ndarray:
    """Monotone per-element access fractions through the given anchors.

    ``anchors`` maps buffer fraction -> interval fraction, e.g. the
    paper's Sweep3D production row ``[(0, .663), (.25, .948),
    (.5, .982), (1, .998)]``.  Element ``e`` gets the interpolated time
    at buffer fraction ``e / (n-1)``.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    xs = np.array([a[0] for a in anchors], dtype=float)
    ys = np.array([a[1] for a in anchors], dtype=float)
    if np.any(np.diff(xs) < 0) or np.any(np.diff(ys) < 0):
        raise ValueError("anchors must be non-decreasing in both coordinates")
    if np.any(ys < 0.0) or np.any(ys > 1.0):
        raise ValueError("interval fractions must lie in [0, 1]")
    frac = np.linspace(0.0, 1.0, n) if n > 1 else np.zeros(1)
    return np.interp(frac, xs, ys)


def burst_touches(n: int, at: float) -> tuple[np.ndarray, np.ndarray]:
    """The whole buffer accessed in one instant (``copy-in`` behaviour).

    NAS-BT's consumption looks like this (paper Fig. 5(b)): *"all the
    elements of the received buffer are loaded ..., each time in an
    extremely short interval, implying that the data is copied to some
    other location."*
    """
    return np.arange(n, dtype=np.intp), np.full(n, float(at))


def production_batches(
    n: int,
    anchors: list[tuple[float, float]],
    revisits: int = 0,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Store batches ``(offsets, at)`` for one production interval.

    ``revisits`` adds that many earlier whole-buffer store passes
    (values still being accumulated) before the final-version pass —
    they do not move the last-store statistics but reproduce the dense
    revisit clouds of Figure 5(a) in the recorded streams.
    """
    final = anchored_times(n, anchors)
    batches: list[tuple[np.ndarray, np.ndarray]] = []
    if revisits > 0:
        earliest = float(final.min())
        pass_times = np.linspace(0.05, max(earliest * 0.9, 0.05), revisits)
        offs = np.arange(n, dtype=np.intp)
        for t in pass_times:
            batches.append((offs, np.full(n, float(min(t, 1.0)))))
    batches.append((np.arange(n, dtype=np.intp), final))
    return batches


def consumption_batches(
    n: int,
    anchors: list[tuple[float, float]],
    rereads: int = 0,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Load batches ``(offsets, at)`` for one consumption interval.

    ``rereads`` adds later whole-buffer load passes (e.g. BT's four
    copy bursts); they leave the first-load statistics unchanged.
    """
    first = anchored_times(n, anchors)
    batches = [(np.arange(n, dtype=np.intp), first)]
    if rereads > 0:
        latest = float(first.max())
        lo = min(latest + 0.02, 1.0)
        pass_times = np.linspace(lo, min(lo + 0.1 * rereads, 1.0), rereads)
        offs = np.arange(n, dtype=np.intp)
        for t in pass_times:
            batches.append((offs, np.full(n, float(t))))
    return batches
