"""Parameterized synthetic applications.

Small, fully-controllable codes used by the test suite and the
ablation benchmarks: their communication structure and access anchors
are constructor arguments, so a test can dial in any
production/consumption pattern and check the pipeline's response
(e.g. "a perfectly linear producer must show ideal-level speedup").
"""

from __future__ import annotations

import numpy as np

from ..smpi.api import Comm
from .base import Application, grid_2d
from .patterns import consumption_batches, production_batches

__all__ = ["HaloExchange2D", "PingPong", "Pipeline1D", "ReduceLoop"]

_LINEAR = [(0.0, 0.0), (1.0, 1.0)]


class Pipeline1D(Application):
    """A chain of ranks: compute, forward a buffer, repeat.

    The minimal wavefront: rank r receives from r-1, computes
    (producing its outgoing buffer per the anchors), sends to r+1.
    """

    name = "pipeline1d"
    default_nranks = 8

    def __init__(
        self,
        elements: int = 1000,
        work: int = 1_000_000,
        iterations: int = 4,
        production_anchors: list | None = None,
        consumption_anchors: list | None = None,
        revisits: int = 0,
    ):
        if elements < 1 or work < 0 or iterations < 1:
            raise ValueError("invalid Pipeline1D parameters")
        self.elements = elements
        self.work = work
        self.iterations = iterations
        self.production_anchors = production_anchors or _LINEAR
        self.consumption_anchors = consumption_anchors or _LINEAR
        self.revisits = revisits

    def __call__(self, comm: Comm):
        r, s = comm.rank, comm.size
        out = np.zeros(self.elements)
        inbox = np.zeros(self.elements)
        prod = production_batches(self.elements, self.production_anchors, self.revisits)
        cons = consumption_batches(self.elements, self.consumption_anchors)
        loads: list = []
        for it in range(self.iterations):
            comm.event("iteration", it)
            if r > 0:
                comm.Recv(inbox, r - 1, tag=0)
                loads = [(inbox, o, a) for o, a in cons]
            stores = [(out, o, a) for o, a in prod] if r < s - 1 else []
            comm.compute(self.work, loads=loads, stores=stores)
            loads = []
            if r < s - 1:
                comm.send(out, r + 1, tag=0)
        return True


class HaloExchange2D(Application):
    """Four-neighbour halo exchange on a 2-D grid (generic stencil)."""

    name = "halo2d"
    default_nranks = 16

    def __init__(
        self,
        edge_elements: int = 512,
        work: int = 2_000_000,
        iterations: int = 4,
        production_anchors: list | None = None,
        consumption_anchors: list | None = None,
    ):
        if edge_elements < 1 or work < 0 or iterations < 1:
            raise ValueError("invalid HaloExchange2D parameters")
        self.edge_elements = edge_elements
        self.work = work
        self.iterations = iterations
        self.production_anchors = production_anchors or _LINEAR
        self.consumption_anchors = consumption_anchors or _LINEAR

    def __call__(self, comm: Comm):
        px, py = grid_2d(comm.size)
        cx, cy = comm.rank % px, comm.rank // px
        nbrs = {}
        for tag, (dx, dy) in enumerate(((1, 0), (-1, 0), (0, 1), (0, -1))):
            x, y = cx + dx, cy + dy
            if 0 <= x < px and 0 <= y < py:
                nbrs[tag] = y * px + x
        sbufs = {t: np.zeros(self.edge_elements) for t in nbrs}
        rbufs = {t: np.zeros(self.edge_elements) for t in nbrs}
        prod = production_batches(self.edge_elements, self.production_anchors)
        cons = consumption_batches(self.edge_elements, self.consumption_anchors)
        opp = {0: 1, 1: 0, 2: 3, 3: 2}

        loads: list = []
        for it in range(self.iterations):
            comm.event("iteration", it)
            stores = [(sbufs[t], o, a) for t in nbrs for o, a in prod]
            comm.compute(self.work, loads=loads, stores=stores)
            reqs = [comm.Irecv(rbufs[t], nbrs[t], tag=opp[t]) for t in nbrs]
            for t, peer in nbrs.items():
                comm.send(sbufs[t], peer, tag=t)
            comm.waitall(reqs)
            loads = [(rbufs[t], o, a) for t in nbrs for o, a in cons]
        comm.compute(self.work // 2, loads=loads)
        return True


class ReduceLoop(Application):
    """Alya-style loop of one-element reductions."""

    name = "reduceloop"
    default_nranks = 8

    def __init__(self, work: int = 500_000, iterations: int = 10,
                 produce_at: float = 0.9, consume_at: float = 0.05):
        if work < 0 or iterations < 1:
            raise ValueError("invalid ReduceLoop parameters")
        if not (0 <= produce_at <= 1 and 0 <= consume_at <= 1):
            raise ValueError("produce_at/consume_at must lie in [0, 1]")
        self.work = work
        self.iterations = iterations
        self.produce_at = produce_at
        self.consume_at = consume_at

    def __call__(self, comm: Comm):
        s_buf, r_buf = np.zeros(1), np.zeros(1)
        one = np.zeros(1, dtype=np.intp)
        loads: list = []
        for it in range(self.iterations):
            comm.event("iteration", it)
            comm.compute(self.work, loads=loads,
                         stores=[(s_buf, one, np.array([self.produce_at]))])
            comm.Allreduce(s_buf, r_buf)
            loads = [(r_buf, one, np.array([self.consume_at]))]
        return True


class PingPong(Application):
    """Two ranks bouncing one buffer — the unit test workhorse."""

    name = "pingpong"
    default_nranks = 2

    def __init__(self, elements: int = 256, work: int = 100_000,
                 rounds: int = 3):
        if elements < 1 or work < 0 or rounds < 1:
            raise ValueError("invalid PingPong parameters")
        self.elements = elements
        self.work = work
        self.rounds = rounds

    def __call__(self, comm: Comm):
        if comm.size < 2:
            raise ValueError("PingPong needs at least 2 ranks")
        if comm.rank > 1:
            return False
        buf = np.zeros(self.elements)
        offs = np.arange(self.elements, dtype=np.intp)
        for k in range(self.rounds):
            comm.event("iteration", k)
            if comm.rank == 0:
                comm.compute(self.work, stores=[(buf, offs)])
                comm.send(buf, 1, tag=k)
                comm.Recv(buf, 1, tag=k)
                comm.compute(self.work, loads=[(buf, offs)])
            else:
                comm.Recv(buf, 0, tag=k)
                comm.compute(self.work, loads=[(buf, offs)])
                comm.compute(self.work, stores=[(buf, offs)])
                comm.send(buf, 0, tag=k)
        return True
