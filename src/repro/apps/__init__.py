"""The application pool (paper §IV) plus synthetic test apps.

``APPS`` maps the paper's application names to their skeleton classes;
:func:`get_app` instantiates one with overrides.
"""

from __future__ import annotations

from .alya import Alya
from .base import Application, grid_2d, grid_3d
from .nas_bt import NasBT
from .nas_cg import NasCG
from .pop import POP
from .random_sparse import RandomSparse
from .specfem3d import SPECFEM3D
from .sweep3d import Sweep3D
from .synthetic import HaloExchange2D, PingPong, Pipeline1D, ReduceLoop

__all__ = [
    "APPS", "Alya", "Application", "HaloExchange2D", "NasBT", "NasCG",
    "POP", "PingPong", "Pipeline1D", "RandomSparse", "ReduceLoop", "SPECFEM3D", "Sweep3D",
    "get_app", "grid_2d", "grid_3d",
]

#: The paper's pool, keyed as in Table I.
APPS: dict[str, type[Application]] = {
    "sweep3d": Sweep3D,
    "pop": POP,
    "alya": Alya,
    "specfem3d": SPECFEM3D,
    "bt": NasBT,
    "cg": NasCG,
}


def get_app(name: str, **params) -> Application:
    """Instantiate a pool application by its Table I name."""
    key = name.lower()
    if key not in APPS:
        raise KeyError(f"unknown application {name!r}; known: {sorted(APPS)}")
    return APPS[key](**params)
