"""Top-level tracing driver: run an application, get its trace.

Equivalent of launching ``mpirun -np N valgrind --tool=tracer app``:
executes a simulated application under full instrumentation and
returns the validated original (non-overlapped) trace, enriched with
access profiles, ready for the overlap transformation and the replay
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from ..smpi.runtime import Runtime
from ..trace.records import TraceSet
from ..trace.validate import validate
from .interceptor import TracingObserver
from .timestamps import DEFAULT_MIPS, Clock

__all__ = ["TraceRun", "run_traced"]


@dataclass
class TraceRun:
    """Result of a traced execution."""

    #: The original (non-overlapped) trace with access profiles.
    trace: TraceSet
    #: Per-rank return values of the application functions.
    results: list[Any]


def run_traced(
    fn: Callable | Sequence[Callable],
    nranks: int,
    mips: float = DEFAULT_MIPS,
    decompose_collectives: bool = True,
    meta: Mapping[str, object] | None = None,
    strict: bool = True,
    record_streams: bool = False,
) -> TraceRun:
    """Run ``fn`` on ``nranks`` simulated ranks under the tracer.

    Parameters
    ----------
    fn:
        Rank function ``fn(comm) -> result`` (or one callable per rank).
    mips:
        Instruction-to-time scaling rate (paper §III-C).
    decompose_collectives:
        Paper default True: collectives traced as point-to-point trees.
        False traces them as analytic :class:`GlobalOp` records.
    meta:
        Extra metadata stored in the trace (application name, inputs).
    strict:
        Validate the produced trace and raise on structural problems.
    record_streams:
        Retain every individual access (not only the reduced last-store /
        first-load arrays) for pattern scatter plots (paper Figure 5).
    """
    clock = Clock(mips)
    observers = [TracingObserver(r, clock, record_streams=record_streams) for r in range(nranks)]
    runtime = Runtime(
        nranks, fn, observers=observers,
        decompose_collectives=decompose_collectives,
    )
    results = runtime.run()
    trace = TraceSet(
        [obs.trace for obs in observers],
        meta={
            "mips": mips,
            "nranks": nranks,
            "decompose_collectives": decompose_collectives,
            **(dict(meta) if meta else {}),
        },
    )
    if strict:
        validate(trace, strict=True)
    return TraceRun(trace=trace, results=results)
