"""Shadow-memory tracking of communication buffers.

This is the heart of the Valgrind tool the paper describes: *"the tool
wraps each MPI call to read the parameters of the transfer and tracks
each memory activity to monitor accesses to the transferred data"*,
maintaining *"the time of the last update for every chunk"* (stores)
and noticing *"the point where that chunk is needed for the first
time"* (loads).

We keep, per communication buffer, two dense per-element arrays:

* ``last_store[e]`` — virtual time of the most recent store to element
  ``e`` inside the current *production interval* (between consecutive
  sends of the buffer);
* ``first_load[e]`` — virtual time of the first load of ``e`` inside
  the current *consumption interval* (between consecutive receives).

Access streams arrive as vectorized batches (element offsets + burst
fractions), so both updates are single ``np.fmax.at`` / ``np.fmin.at``
scatter operations — the tracer costs O(accesses) NumPy work, never a
Python-level per-element loop (see the HPC guide: vectorize).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..trace.records import AccessProfile, IRecv, Recv
from .timestamps import Clock

__all__ = ["BufferState", "MemoryTracker"]


@dataclass
class BufferState:
    """Shadow state of one tracked communication buffer."""

    buf: Any                      # strong ref: pins id() for the run
    elements: int
    last_store: np.ndarray        # icount per element, NaN = untouched
    first_load: np.ndarray
    production_start: int = 0     # icount of previous send of this buffer
    consumption_start: int = 0    # icount of previous recv of this buffer
    #: Receive record awaiting its consumption profile (patched when the
    #: consumption interval closes at the next recv / at process end).
    pending_recv: Recv | IRecv | None = None
    #: Raw per-access batches of the open intervals (stream recording).
    store_stream: list = field(default_factory=list)
    load_stream: list = field(default_factory=list)

    @classmethod
    def fresh(cls, buf: Any, elements: int, now: int) -> "BufferState":
        return cls(
            buf=buf,
            elements=elements,
            last_store=np.full(elements, np.nan),
            first_load=np.full(elements, np.nan),
            production_start=now,
            consumption_start=now,
        )


class MemoryTracker:
    """Per-rank shadow memory: buffers, intervals, profile construction."""

    def __init__(self, clock: Clock, record_streams: bool = False):
        self.clock = clock
        #: When True, every access (not only last store / first load) is
        #: retained and attached to profiles as a raw stream — needed for
        #: the pattern scatter plots of paper Figure 5.
        self.record_streams = record_streams
        self._buffers: dict[int, BufferState] = {}

    # ------------------------------------------------------------------ #
    # Buffer registry.
    # ------------------------------------------------------------------ #
    def lookup(self, buf: Any) -> BufferState | None:
        """State of ``buf`` if it is (or becomes) trackable.

        Only ndarray buffers are trackable — scalars and generic
        objects have no element structure to chunk.
        """
        if not isinstance(buf, np.ndarray):
            return None
        key = id(buf)
        st = self._buffers.get(key)
        if st is None:
            st = BufferState.fresh(buf, int(buf.size), 0)
            self._buffers[key] = st
        return st

    # ------------------------------------------------------------------ #
    # Access streams (called from compute bursts).
    # ------------------------------------------------------------------ #
    @staticmethod
    def _batch_times(offsets: np.ndarray, at, start: int, instructions: int,
                     default_kind: str) -> np.ndarray:
        """Absolute icounts of a batch, applying the default placement.

        Stores default to ``(i+1)/n`` of the burst (data exists once
        written), loads to ``i/n`` (data needed as the sweep reaches it).
        """
        n = offsets.shape[0]
        if at is None:
            idx = np.arange(n, dtype=np.float64)
            frac = (idx + 1.0) / n if default_kind == "store" else idx / max(n, 1)
        else:
            frac = np.asarray(at, dtype=np.float64)
            if frac.shape != offsets.shape:
                raise ValueError(
                    f"access batch shape mismatch: {offsets.shape} offsets "
                    f"vs {frac.shape} positions"
                )
            if n and (frac.min() < 0.0 or frac.max() > 1.0):
                raise ValueError("access positions must lie in [0, 1]")
        return start + frac * instructions

    def record_stores(self, buf: Any, offsets, at, start: int, instructions: int) -> None:
        """Register a store batch: keep the latest store per element."""
        st = self.lookup(buf)
        if st is None:
            return
        offs = np.asarray(offsets, dtype=np.intp).reshape(-1)
        if offs.size == 0:
            return
        if offs.min() < 0 or offs.max() >= st.elements:
            raise IndexError(
                f"store offsets out of range for buffer of {st.elements} elements"
            )
        times = self._batch_times(offs, at, start, instructions, "store")
        np.fmax.at(st.last_store, offs, times)
        if self.record_streams:
            st.store_stream.append((offs, times))

    def record_loads(self, buf: Any, offsets, at, start: int, instructions: int) -> None:
        """Register a load batch: keep the earliest load per element."""
        st = self.lookup(buf)
        if st is None:
            return
        offs = np.asarray(offsets, dtype=np.intp).reshape(-1)
        if offs.size == 0:
            return
        if offs.min() < 0 or offs.max() >= st.elements:
            raise IndexError(
                f"load offsets out of range for buffer of {st.elements} elements"
            )
        times = self._batch_times(offs, at, start, instructions, "load")
        np.fmin.at(st.first_load, offs, times)
        if self.record_streams:
            st.load_stream.append((offs, times))

    # ------------------------------------------------------------------ #
    # Interval bookkeeping (called from MPI interception).
    # ------------------------------------------------------------------ #
    def note_send_reads(self, buf: Any, now: int) -> None:
        """A send of ``buf`` happened: the MPI layer reads every element.

        This matters for forwarded buffers (a rank that receives data
        and passes it on): the forward send is the first — and possibly
        only — consumption of the received data, so the overlap
        transformation must not postpone the reception past it.
        """
        if not isinstance(buf, np.ndarray):
            return
        st = self._buffers.get(id(buf))
        if st is None:
            return
        t = float(now)
        np.fmin(st.first_load, t, out=st.first_load)
        if self.record_streams:
            st.load_stream.append(
                (np.arange(st.elements, dtype=np.intp), np.full(st.elements, t))
            )

    def close_production(self, buf: Any, now: int) -> AccessProfile | None:
        """A send of ``buf`` happened: emit and reset its production profile."""
        st = self.lookup(buf)
        if st is None:
            return None
        profile = AccessProfile(
            kind="production",
            times=self.clock.seconds(st.last_store.copy()),
            interval_start=self.clock.seconds(st.production_start),
            interval_end=self.clock.seconds(now),
            stream=self._pack_stream(st.store_stream),
        )
        st.last_store.fill(np.nan)
        st.store_stream = []
        st.production_start = now
        return profile

    def _pack_stream(self, batches: list) -> tuple | None:
        if not self.record_streams:
            return None
        if not batches:
            return (np.empty(0, dtype=np.intp), np.empty(0))
        offs = np.concatenate([b[0] for b in batches])
        times = self.clock.seconds(np.concatenate([b[1] for b in batches]))
        return (offs, times)

    def note_recv(self, buf: Any, record: Recv | IRecv | None, now: int) -> None:
        """A receive of ``buf`` completed: close the previous consumption
        interval (patching the profile onto the previous receive record)
        and open a new one owned by ``record``."""
        st = self.lookup(buf)
        if st is None:
            return
        self._flush_consumption(st, now)
        st.pending_recv = record
        st.consumption_start = now
        st.first_load.fill(np.nan)
        st.load_stream = []

    def _flush_consumption(self, st: BufferState, now: int) -> None:
        if st.pending_recv is not None:
            st.pending_recv.consumption = AccessProfile(
                kind="consumption",
                times=self.clock.seconds(st.first_load.copy()),
                interval_start=self.clock.seconds(st.consumption_start),
                interval_end=self.clock.seconds(now),
                stream=self._pack_stream(st.load_stream),
            )
            st.pending_recv = None

    def finalize(self, now: int) -> None:
        """Process end: close every open consumption interval."""
        for st in self._buffers.values():
            self._flush_consumption(st, now)

    # ------------------------------------------------------------------ #
    # Introspection.
    # ------------------------------------------------------------------ #
    @property
    def tracked_buffers(self) -> int:
        """Number of distinct buffers seen so far."""
        return len(self._buffers)
