"""Instrumentation layer — the framework's Valgrind-tool substitute.

Wraps every MPI call and observes every (virtual) load/store on
communication buffers, producing Dimemas traces enriched with
per-element production/consumption profiles.
"""

from .interceptor import TracingObserver
from .memory import BufferState, MemoryTracker
from .tracefile import TraceRun, run_traced
from .timestamps import DEFAULT_MIPS, Clock

__all__ = [
    "BufferState", "Clock", "DEFAULT_MIPS", "MemoryTracker",
    "TraceRun", "TracingObserver", "run_traced",
]
