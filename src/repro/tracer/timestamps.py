"""Virtual-time bookkeeping: instruction counts to seconds.

Paper §III-C: *"the tracer obtains time-stamps by scaling the number of
executed instruction by the average MIPS rate observed in a real
run."*  We do exactly that: simulated applications report work in
instructions, and a :class:`Clock` converts them to seconds with a
configurable MIPS rate.  The default corresponds to the paper's
test-bed CPU (PowerPC 970 @ 2.3 GHz, ~1 instruction/cycle sustained).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DEFAULT_MIPS", "Clock"]

#: Default MIPS rate: 2.3 GHz at IPC 1 — the MareNostrum PowerPC 970.
DEFAULT_MIPS = 2300.0


@dataclass(frozen=True)
class Clock:
    """Converts between instruction counts and virtual seconds."""

    mips: float = DEFAULT_MIPS

    def __post_init__(self) -> None:
        if self.mips <= 0:
            raise ValueError(f"MIPS rate must be positive, got {self.mips}")

    @property
    def hz(self) -> float:
        """Instructions per second."""
        return self.mips * 1e6

    def seconds(self, instructions: float) -> float:
        """Instruction count -> virtual seconds."""
        return instructions / self.hz

    def instructions(self, seconds: float) -> int:
        """Virtual seconds -> instruction count (rounded)."""
        return int(round(seconds * self.hz))
