"""MPI call interception: builds Dimemas trace records during execution.

One :class:`TracingObserver` rides on each simulated rank (the paper
runs one Valgrind VM per MPI process).  It converts the observed
stream of compute bursts, buffer accesses, and MPI calls into the
*original* (non-overlapped) trace, enriched with the per-element
access profiles that the overlap transformation
(:mod:`repro.core.transform`) consumes to derive the *overlapped*
traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..smpi.runtime import AccessBatch, Observer
from ..trace.records import (
    CollOp,
    CpuBurst,
    Event,
    GlobalOp,
    IRecv,
    ISend,
    ProcessTrace,
    Recv,
    Send,
    Wait,
)
from .memory import MemoryTracker
from .timestamps import Clock

__all__ = ["TracingObserver"]


@dataclass
class _RecvToken:
    """Carries receive context from posting to completion."""

    kind: str                 # "recv" (blocking) or "irecv"
    buf: Any
    channel: int
    sub: int
    context: int
    record: IRecv | None      # the posted record, for irecv patching


class TracingObserver(Observer):
    """Observer that emits one :class:`ProcessTrace` for its rank."""

    def __init__(self, rank: int, clock: Clock, record_streams: bool = False):
        self.rank = rank
        self.clock = clock
        self.trace = ProcessTrace(rank)
        self.memory = MemoryTracker(clock, record_streams=record_streams)
        self._icount = 0  # mirror of the runtime's per-rank virtual clock

    # ------------------------------------------------------------------ #
    # Compute bursts and memory activity.
    # ------------------------------------------------------------------ #
    def on_compute(
        self,
        rank: int,
        start_icount: int,
        instructions: int,
        loads: Sequence[AccessBatch],
        stores: Sequence[AccessBatch],
    ) -> None:
        self._icount = start_icount + instructions
        if instructions > 0:
            # Coalesced at build time: back-to-back compute calls emit
            # one maximal burst, keeping replay's record walk short.
            self.trace.append_coalesced(
                CpuBurst(self.clock.seconds(instructions), instructions=instructions)
            )
        for batch in loads:
            self.memory.record_loads(
                batch.buf, batch.offsets, batch.at, start_icount, instructions
            )
        for batch in stores:
            self.memory.record_stores(
                batch.buf, batch.offsets, batch.at, start_icount, instructions
            )

    # ------------------------------------------------------------------ #
    # Point-to-point interception.
    # ------------------------------------------------------------------ #
    def on_send(
        self, rank: int, buf: Any, dest: int, tag: int, size: int,
        elements: int, channel: int, sub: int, request: int | None,
        context: int = 0,
    ) -> None:
        # The MPI layer reads the buffer at the send: for forwarded
        # (received-then-sent) buffers this is their consumption point.
        self.memory.note_send_reads(buf, self._icount)
        production = self.memory.close_production(buf, self._icount)
        if request is None:
            rec: Send | ISend = Send(
                peer=dest, tag=tag, size=size, channel=channel, sub=sub,
                elements=elements, context=context, production=production,
            )
        else:
            rec = ISend(
                peer=dest, tag=tag, size=size, channel=channel, sub=sub,
                elements=elements, context=context, request=request,
                production=production,
            )
        if buf is not None:
            rec.meta["buf"] = id(buf)
        self.trace.append(rec)

    def on_recv_post(
        self, rank: int, buf: Any, source: int, tag: int, size: int,
        elements: int, channel: int, sub: int, request: int | None,
        context: int = 0,
    ) -> _RecvToken:
        if request is None:
            return _RecvToken("recv", buf, channel, sub, context, None)
        # Wildcards are patched at completion; use placeholders that pass
        # record validation meanwhile.
        rec = IRecv(
            peer=max(source, 0), tag=max(tag, 0), size=0,
            channel=channel, sub=sub, context=context, request=request,
        )
        self.trace.append(rec)
        return _RecvToken("irecv", buf, channel, sub, context, rec)

    def on_recv_complete(
        self, rank: int, token: _RecvToken, source: int, tag: int,
        size: int, elements: int,
    ) -> None:
        if token.kind == "recv":
            rec: Recv | IRecv = Recv(
                peer=source, tag=tag, size=size, elements=elements,
                channel=token.channel, sub=token.sub, context=token.context,
            )
            self.trace.append(rec)
        else:
            rec = token.record
            rec.peer = source
            rec.tag = tag
            rec.size = size
            rec.elements = elements
        if token.buf is not None:
            rec.meta["buf"] = id(token.buf)
        self.memory.note_recv(token.buf, rec, self._icount)

    def on_wait(self, rank: int, requests: Sequence[int]) -> None:
        self.trace.append(Wait(tuple(requests)))

    # ------------------------------------------------------------------ #
    # Collectives (analytic mode only) and events.
    # ------------------------------------------------------------------ #
    def on_collective(
        self, rank: int, op: str, root: int, send_size: int, recv_size: int,
        seq: int, send_buf: Any, recv_buf: Any,
        context: int = 0, members: int = 0,
    ) -> None:
        self.trace.append(
            GlobalOp(
                op=CollOp(op), root=root,
                send_size=send_size, recv_size=recv_size, seq=seq,
                context=context, members=members,
            )
        )

    def on_event(self, rank: int, name: str, value: int) -> None:
        self.trace.append(Event(name=name, value=value))

    def on_finish(self, rank: int) -> None:
        self.memory.finalize(self._icount)
