"""The fault injectors: seeded deterministic trace perturbations.

Each injector deep-copies the input trace (the original is never
mutated), perturbs exactly one site chosen by a ``random.Random(seed)``
stream, and returns ``(mutant, Fault)`` where the :class:`Fault`
records *what* changed and *where* — so tests can assert that the
resulting :class:`~repro.trace.validate.ValidationIssue` or
:class:`~repro.dimemas.postmortem.DeadlockReport` attributes the
failure to the right rank and record.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, field

from ..trace.records import (
    CpuBurst,
    IRecv,
    ISend,
    Recv,
    Send,
    TraceSet,
)

__all__ = [
    "FAULT_KINDS",
    "Fault",
    "FaultInjectionError",
    "corrupt_size",
    "drop_record",
    "duplicate_record",
    "inject",
    "reorder_records",
    "skew_timestamps",
    "truncate_rank",
]

#: Record classes that participate in point-to-point communication.
_COMM_TYPES = (Send, ISend, Recv, IRecv)


class FaultInjectionError(ValueError):
    """The requested fault cannot be injected into this trace (e.g.
    dropping a message record from a communication-free trace)."""


@dataclass(frozen=True)
class Fault:
    """A description of one injected perturbation."""

    #: Injector name ("drop", "duplicate", "reorder", "corrupt_size",
    #: "truncate", "skew").
    kind: str
    #: Rank whose record stream was perturbed.
    rank: int
    #: Record index the perturbation applied at (for "truncate", the
    #: first removed index; for "reorder", the left of the swapped pair).
    index: int
    #: Seed that produced this fault (replays identically).
    seed: int
    #: Kind-specific details (old/new sizes, removed count, factor, ...).
    details: dict = field(default_factory=dict)

    def describe(self) -> str:
        extra = ", ".join(f"{k}={v}" for k, v in sorted(self.details.items()))
        return (
            f"fault[{self.kind}] rank={self.rank} record={self.index} "
            f"seed={self.seed}" + (f" ({extra})" if extra else "")
        )


def _clone(trace: TraceSet) -> TraceSet:
    return copy.deepcopy(trace)


def _comm_sites(trace: TraceSet, types=_COMM_TYPES) -> list[tuple[int, int]]:
    """All ``(rank, index)`` positions holding a record of ``types``."""
    return [
        (proc.rank, i)
        for proc in trace
        for i, rec in enumerate(proc.records)
        if isinstance(rec, types)
    ]


def _pick_site(trace: TraceSet, seed: int, kind: str, types=_COMM_TYPES) -> tuple[int, int]:
    sites = _comm_sites(trace, types)
    if not sites:
        raise FaultInjectionError(
            f"cannot inject {kind!r}: trace has no matching records"
        )
    return random.Random(seed).choice(sites)


def _records(trace: TraceSet, rank: int) -> list:
    """The mutable record list of ``rank`` (injectors edit in place on
    the clone; appends/removals invalidate per-trace memo caches via
    the record-count fingerprint)."""
    return trace[rank].records


# --------------------------------------------------------------------------- #
# Injectors.
# --------------------------------------------------------------------------- #

def drop_record(trace: TraceSet, seed: int = 0) -> tuple[TraceSet, Fault]:
    """Remove one communication record — the classic lost message.

    Leaves the partner endpoint unmatched: validation must flag the
    key, and a replay must end in a diagnosable deadlock (the orphaned
    blocking operation waits forever), never a silent misreport.
    """
    rank, idx = _pick_site(trace, seed, "drop")
    mutant = _clone(trace)
    rec = _records(mutant, rank).pop(idx)
    mutant[rank].invalidate()
    return mutant, Fault(
        kind="drop", rank=rank, index=idx, seed=seed,
        details={"record": type(rec).__name__},
    )


def duplicate_record(trace: TraceSet, seed: int = 0) -> tuple[TraceSet, Fault]:
    """Insert a second copy of one communication record (a replayed
    message: one endpoint now has more operations than its partner)."""
    rank, idx = _pick_site(trace, seed, "duplicate")
    mutant = _clone(trace)
    records = _records(mutant, rank)
    records.insert(idx + 1, copy.deepcopy(records[idx]))
    mutant[rank].invalidate()
    return mutant, Fault(
        kind="duplicate", rank=rank, index=idx, seed=seed,
        details={"record": type(records[idx]).__name__},
    )


def reorder_records(trace: TraceSet, seed: int = 0) -> tuple[TraceSet, Fault]:
    """Swap one communication record with its successor on the same
    rank (an ordering violation; may or may not change the matching)."""
    rng = random.Random(seed)
    sites = [
        (rank, i) for rank, i in _comm_sites(trace)
        if i + 1 < len(trace[rank].records)
    ]
    if not sites:
        raise FaultInjectionError("cannot inject 'reorder': no swappable pair")
    rank, idx = rng.choice(sites)
    mutant = _clone(trace)
    records = _records(mutant, rank)
    records[idx], records[idx + 1] = records[idx + 1], records[idx]
    mutant[rank].invalidate()
    return mutant, Fault(
        kind="reorder", rank=rank, index=idx, seed=seed,
        details={
            "first": type(records[idx]).__name__,
            "second": type(records[idx + 1]).__name__,
        },
    )


def corrupt_size(trace: TraceSet, seed: int = 0) -> tuple[TraceSet, Fault]:
    """Corrupt the byte count of one message endpoint (torn header):
    the send and receive sizes no longer agree."""
    rank, idx = _pick_site(trace, seed, "corrupt_size")
    mutant = _clone(trace)
    rec = _records(mutant, rank)[idx]
    old = rec.size
    # Deterministic, always-different, always-valid (non-negative).
    rec.size = old * 2 + 1 + random.Random(seed).randrange(1024)
    mutant[rank].invalidate()
    return mutant, Fault(
        kind="corrupt_size", rank=rank, index=idx, seed=seed,
        details={"old_size": old, "new_size": rec.size},
    )


def truncate_rank(trace: TraceSet, seed: int = 0) -> tuple[TraceSet, Fault]:
    """Cut one rank's stream short (a crashed writer / torn trace
    file): everything from a random record onward is lost."""
    rng = random.Random(seed)
    candidates = [p.rank for p in trace if len(p.records) > 1]
    if not candidates:
        raise FaultInjectionError("cannot inject 'truncate': streams too short")
    rank = rng.choice(candidates)
    records = trace[rank].records
    cut = rng.randrange(1, len(records))
    mutant = _clone(trace)
    removed = len(records) - cut
    first_removed = type(records[cut]).__name__
    del _records(mutant, rank)[cut:]
    mutant[rank].invalidate()
    return mutant, Fault(
        kind="truncate", rank=rank, index=cut, seed=seed,
        details={"removed": removed, "record": first_removed},
    )


def skew_timestamps(trace: TraceSet, seed: int = 0) -> tuple[TraceSet, Fault]:
    """Scale every compute burst of one rank by a random factor in
    [0.5, 2.0].  Structurally benign — the mutant stays valid and
    replayable — so it exercises determinism and perturbation paths
    rather than error paths."""
    rng = random.Random(seed)
    candidates = [
        p.rank for p in trace
        if any(isinstance(r, CpuBurst) for r in p.records)
    ]
    if not candidates:
        raise FaultInjectionError("cannot inject 'skew': no compute bursts")
    rank = rng.choice(candidates)
    factor = 0.5 + 1.5 * rng.random()
    mutant = _clone(trace)
    first = None
    scaled = 0
    for i, rec in enumerate(_records(mutant, rank)):
        if isinstance(rec, CpuBurst):
            rec.duration *= factor
            scaled += 1
            if first is None:
                first = i
    mutant[rank].invalidate()
    return mutant, Fault(
        kind="skew", rank=rank, index=first if first is not None else 0,
        seed=seed,
        details={"factor": factor, "record": "CpuBurst", "bursts": scaled},
    )


#: Dispatcher table: fault kind -> injector.
FAULT_KINDS: dict = {
    "drop": drop_record,
    "duplicate": duplicate_record,
    "reorder": reorder_records,
    "corrupt_size": corrupt_size,
    "truncate": truncate_rank,
    "skew": skew_timestamps,
}


def inject(trace: TraceSet, kind: str, seed: int = 0) -> tuple[TraceSet, Fault]:
    """Apply one named fault to a copy of ``trace``.

    Deterministic in ``(trace, kind, seed)``; the original trace is
    never modified.  Raises :class:`FaultInjectionError` when the
    trace has no site the fault applies to, and :class:`KeyError` for
    an unknown kind (see :data:`FAULT_KINDS`).
    """
    try:
        injector = FAULT_KINDS[kind]
    except KeyError:
        raise KeyError(
            f"unknown fault kind {kind!r}; pick from {sorted(FAULT_KINDS)}"
        ) from None
    return injector(trace, seed=seed)
