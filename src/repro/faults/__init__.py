"""Seeded, deterministic fault injection for traces.

``repro.faults`` perturbs well-formed traces into the malformed inputs
the robustness layer must survive: dropped, duplicated, or reordered
records, corrupted message sizes, truncated rank streams, and skewed
timestamps.  Every injector is a pure function of ``(trace, seed)`` —
the same seed always produces the same perturbation — so failure
scenarios reproduce exactly in tests and bug reports.

Typical use::

    from repro import faults

    mutant, fault = faults.inject(trace, "drop", seed=7)
    # fault names the rank / record index that was perturbed, so a
    # downstream ValidationIssue or DeadlockReport can be checked
    # against it.

See :data:`FAULT_KINDS` for the menu and :func:`inject` for the
dispatcher; the individual injectors are in
:mod:`repro.faults.injectors`.
"""

from .injectors import (
    FAULT_KINDS,
    Fault,
    FaultInjectionError,
    corrupt_size,
    drop_record,
    duplicate_record,
    inject,
    reorder_records,
    skew_timestamps,
    truncate_rank,
)

__all__ = [
    "FAULT_KINDS",
    "Fault",
    "FaultInjectionError",
    "corrupt_size",
    "drop_record",
    "duplicate_record",
    "inject",
    "reorder_records",
    "skew_timestamps",
    "truncate_rank",
]
