"""Named perturbation scenarios scaled to a run's time horizon.

A schedule's windows live in absolute simulated seconds, so a useful
scenario must know roughly how long the unperturbed run takes — the
*horizon*.  Each builder here takes that horizon (typically the
baseline duration measured first by the resilience sweep) and places
its windows proportionally inside it, so the same scenario name means
the same *relative* degradation for a 50 ms kernel and a 40 s
production run.

The registry (:data:`SCENARIO_KINDS`, :func:`build_scenario`) is what
``repro-resilience --scenarios`` and ``repro-explain --perturb`` parse.
"""

from __future__ import annotations

from .schedule import (
    BandwidthWindow,
    CpuNoise,
    LatencyWindow,
    OutageWindow,
    PerturbationSchedule,
    Straggler,
)

__all__ = ["SCENARIO_KINDS", "build_scenario", "default_scenarios"]


def bandwidth_sag(horizon: float, seed: int = 0) -> PerturbationSchedule:
    """Bandwidth drops to 25% for the middle half of the run."""
    return PerturbationSchedule(
        seed=seed,
        bandwidth=(BandwidthWindow(0.25 * horizon, 0.75 * horizon, 0.25),),
    )


def latency_spike(horizon: float, seed: int = 0) -> PerturbationSchedule:
    """Two windows of sharply increased per-message latency."""
    extra = max(horizon * 0.001, 1e-4)
    return PerturbationSchedule(
        seed=seed,
        latency=(
            LatencyWindow(0.10 * horizon, 0.30 * horizon, extra),
            LatencyWindow(0.60 * horizon, 0.80 * horizon, extra),
        ),
    )


def outage_stall(horizon: float, seed: int = 0) -> PerturbationSchedule:
    """Link down for 10% of the run; in-flight transfers stall/resume."""
    return PerturbationSchedule(
        seed=seed,
        outages=(OutageWindow(0.40 * horizon, 0.50 * horizon, "stall"),),
    )


def outage_restart(horizon: float, seed: int = 0) -> PerturbationSchedule:
    """Link down for 10% of the run; in-flight transfers restart."""
    return PerturbationSchedule(
        seed=seed,
        outages=(OutageWindow(0.40 * horizon, 0.50 * horizon, "restart"),),
    )


def cpu_noise(horizon: float, seed: int = 0) -> PerturbationSchedule:
    """OS jitter: every compute burst stretched by up to 15%."""
    return PerturbationSchedule(seed=seed, cpu_noise=(CpuNoise(0.15),))


def straggler(horizon: float, seed: int = 0) -> PerturbationSchedule:
    """Rank 0 computes at two-thirds speed for the whole run."""
    return PerturbationSchedule(seed=seed, stragglers=(Straggler(0, 1.5),))


SCENARIO_KINDS: dict[str, object] = {
    "bandwidth-sag": bandwidth_sag,
    "latency-spike": latency_spike,
    "outage-stall": outage_stall,
    "outage-restart": outage_restart,
    "cpu-noise": cpu_noise,
    "straggler": straggler,
}


def build_scenario(kind: str, horizon: float, seed: int = 0) -> PerturbationSchedule:
    """Build the named scenario scaled to ``horizon`` seconds."""
    try:
        builder = SCENARIO_KINDS[kind]
    except KeyError:
        known = ", ".join(sorted(SCENARIO_KINDS))
        raise ValueError(f"unknown scenario {kind!r} (known: {known})") from None
    if not horizon > 0:
        raise ValueError(f"scenario horizon must be > 0, got {horizon}")
    return builder(horizon, seed)


def default_scenarios(horizon: float, seed: int = 0) -> dict[str, PerturbationSchedule]:
    """All named scenarios scaled to ``horizon``, keyed by kind."""
    return {kind: build_scenario(kind, horizon, seed) for kind in SCENARIO_KINDS}
