"""Seeded, deterministic platform-perturbation schedules.

A :class:`PerturbationSchedule` describes how a *simulated* platform
degrades over simulated time: bandwidth sagging inside time windows,
latency spikes, bus/link outages (with stall-and-resume or restart
semantics for in-flight transfers), per-rank OS noise on computation
bursts, and persistent straggler ranks.  It is pure data — frozen,
hashable, canonically serializable — and everything derived from it is
a deterministic function of the schedule and its ``seed``: replaying
the same trace under the same schedule is bitwise-reproducible across
processes and job counts.

Where it plugs in
-----------------

``simulate(trace, machine, perturb=schedule)`` — or a
:class:`~repro.dimemas.machine.MachineConfig` carrying the schedule in
its ``perturb`` field, which also keys every result cache and
checkpoint journal entry by the perturbation — replays the trace on
the degraded platform.  The network-facing math (windowed wire-time
integration, outage handling) lives in
:class:`repro.dimemas.network.PerturbedNetwork`; the CPU-facing math
(noise multipliers, straggler ratios) is computed here so the replay
core stays free of any randomness.

This module imports nothing from the simulator — it sits below
``repro.dimemas`` in the dependency order, so ``MachineConfig`` can
carry a schedule without an import cycle.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field, replace

__all__ = [
    "BandwidthWindow",
    "CpuNoise",
    "LatencyWindow",
    "OutageWindow",
    "PerturbationSchedule",
    "Straggler",
    "unit_hash",
]


def unit_hash(seed: int, *key) -> float:
    """Deterministic uniform draw in ``[0, 1)`` from ``(seed, key)``.

    A pure function (sha256 over the rendered key) rather than a
    sequential RNG stream: every consumer — any process, any job
    count, any evaluation order — computes the identical value for the
    same coordinates, which is what makes perturbed replays
    bitwise-reproducible.
    """
    body = f"{seed}:" + ":".join(str(k) for k in key)
    digest = hashlib.sha256(body.encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


def _check_window(kind: str, t0: float, t1: float) -> None:
    if not (math.isfinite(t0) and math.isfinite(t1)):
        raise ValueError(f"{kind} window must have finite bounds, got [{t0}, {t1}]")
    if t0 < 0:
        raise ValueError(f"{kind} window must start at t >= 0, got {t0}")
    if t1 <= t0:
        raise ValueError(f"{kind} window must have t1 > t0, got [{t0}, {t1}]")


@dataclass(frozen=True)
class BandwidthWindow:
    """Bandwidth scaled by ``factor`` while ``t0 <= t < t1``."""

    t0: float
    t1: float
    #: Multiplier on the platform bandwidth inside the window
    #: (``0 < factor``; ``factor < 1`` degrades, ``1.0`` is a no-op —
    #: use an :class:`OutageWindow` for a dead link).
    factor: float

    def __post_init__(self) -> None:
        _check_window("bandwidth", self.t0, self.t1)
        if not (math.isfinite(self.factor) and self.factor > 0):
            raise ValueError(
                f"bandwidth factor must be finite and > 0, got {self.factor}"
            )

    def describe(self) -> str:
        return f"bandwidth x{self.factor:g} during [{self.t0:g}s, {self.t1:g}s)"


@dataclass(frozen=True)
class LatencyWindow:
    """``extra`` seconds added to per-message latency while active."""

    t0: float
    t1: float
    #: Additional latency in seconds (``>= 0``; 0 is a no-op).
    extra: float

    def __post_init__(self) -> None:
        _check_window("latency", self.t0, self.t1)
        if not (math.isfinite(self.extra) and self.extra >= 0):
            raise ValueError(
                f"latency extra must be finite and >= 0, got {self.extra}"
            )

    def describe(self) -> str:
        return f"latency +{self.extra:g}s during [{self.t0:g}s, {self.t1:g}s)"


@dataclass(frozen=True)
class OutageWindow:
    """The interconnect is down while ``t0 <= t < t1``.

    No new transfer can start during the window.  In-flight transfers
    follow ``semantics``:

    * ``"stall"`` — the transfer pauses and resumes where it left off
      when the window ends (link-level flow control);
    * ``"restart"`` — the transfer aborts and re-injects from scratch
      after the window (connection reset).
    """

    t0: float
    t1: float
    semantics: str = "stall"

    def __post_init__(self) -> None:
        _check_window("outage", self.t0, self.t1)
        if self.semantics not in ("stall", "restart"):
            raise ValueError(
                f"outage semantics must be 'stall' or 'restart', "
                f"got {self.semantics!r}"
            )

    def describe(self) -> str:
        return f"outage ({self.semantics}) during [{self.t0:g}s, {self.t1:g}s)"


@dataclass(frozen=True)
class CpuNoise:
    """Per-burst OS jitter on computation: each compute burst of the
    affected ranks is stretched by ``1 + amplitude * u`` where ``u``
    is a deterministic uniform draw per (seed, rank, burst index)."""

    #: Maximum fractional slowdown per burst (``>= 0``; 0 is a no-op).
    amplitude: float
    #: Affected ranks (``None`` = every rank).
    ranks: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if not (math.isfinite(self.amplitude) and self.amplitude >= 0):
            raise ValueError(
                f"noise amplitude must be finite and >= 0, got {self.amplitude}"
            )
        if self.ranks is not None:
            object.__setattr__(self, "ranks", tuple(int(r) for r in self.ranks))
            if any(r < 0 for r in self.ranks):
                raise ValueError(f"noise ranks must be >= 0, got {self.ranks}")

    def describe(self) -> str:
        who = "all ranks" if self.ranks is None else f"ranks {list(self.ranks)}"
        return f"cpu noise amplitude {self.amplitude:g} on {who}"


@dataclass(frozen=True)
class Straggler:
    """One rank computing persistently slower: its effective
    ``cpu_ratio`` is multiplied by ``factor`` for the whole run."""

    rank: int
    #: Multiplier on the rank's cpu_ratio (``> 0``; ``2.0`` =
    #: half-speed CPU, ``1.0`` is a no-op).
    factor: float

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"straggler rank must be >= 0, got {self.rank}")
        if not (math.isfinite(self.factor) and self.factor > 0):
            raise ValueError(
                f"straggler factor must be finite and > 0, got {self.factor}"
            )

    def describe(self) -> str:
        return f"straggler rank {self.rank} cpu x{self.factor:g}"


def _overlapping(windows) -> tuple | None:
    """First overlapping pair among ``(t0, t1, obj)`` triples, or None."""
    ordered = sorted(windows, key=lambda w: (w[0], w[1]))
    for a, b in zip(ordered, ordered[1:]):
        if b[0] < a[1]:
            return a[2], b[2]
    return None


@dataclass(frozen=True)
class PerturbationSchedule:
    """A full degraded-platform scenario in simulated time.

    All windows are in simulated seconds.  Bandwidth and outage
    windows share the wire-time profile, so they must not overlap each
    other; latency windows must not overlap among themselves.  The
    ``seed`` drives every stochastic ingredient (currently the CPU
    noise draws) through :func:`unit_hash` — no sequential RNG state
    exists anywhere.
    """

    seed: int = 0
    bandwidth: tuple[BandwidthWindow, ...] = ()
    latency: tuple[LatencyWindow, ...] = ()
    outages: tuple[OutageWindow, ...] = ()
    cpu_noise: tuple[CpuNoise, ...] = ()
    stragglers: tuple[Straggler, ...] = field(default=())

    def __post_init__(self) -> None:
        for name in ("bandwidth", "latency", "outages", "cpu_noise", "stragglers"):
            object.__setattr__(self, name, tuple(getattr(self, name)))
        wire = [(w.t0, w.t1, w) for w in self.bandwidth]
        wire += [(w.t0, w.t1, w) for w in self.outages]
        clash = _overlapping(wire)
        if clash is not None:
            raise ValueError(
                f"bandwidth/outage windows overlap: "
                f"{clash[0].describe()} vs {clash[1].describe()}"
            )
        clash = _overlapping([(w.t0, w.t1, w) for w in self.latency])
        if clash is not None:
            raise ValueError(
                f"latency windows overlap: "
                f"{clash[0].describe()} vs {clash[1].describe()}"
            )
        seen: set[int] = set()
        for s in self.stragglers:
            if s.rank in seen:
                raise ValueError(f"duplicate straggler for rank {s.rank}")
            seen.add(s.rank)

    # -- canonical forms ---------------------------------------------------- #
    def normalized(self) -> "PerturbationSchedule":
        """Copy with every zero-magnitude ingredient dropped.

        A factor-1.0 bandwidth window, a 0-extra latency window, a
        0-amplitude noise entry, and a factor-1.0 straggler all change
        nothing; dropping them makes "no-op schedule" and "no schedule"
        the same platform — and therefore the same cache key and the
        same bitwise replay.  Windows are kept sorted by start time.
        """
        return replace(
            self,
            bandwidth=tuple(sorted(
                (w for w in self.bandwidth if w.factor != 1.0),
                key=lambda w: (w.t0, w.t1),
            )),
            latency=tuple(sorted(
                (w for w in self.latency if w.extra > 0.0),
                key=lambda w: (w.t0, w.t1),
            )),
            outages=tuple(sorted(self.outages, key=lambda w: (w.t0, w.t1))),
            cpu_noise=tuple(c for c in self.cpu_noise if c.amplitude > 0.0),
            stragglers=tuple(sorted(
                (s for s in self.stragglers if s.factor != 1.0),
                key=lambda s: s.rank,
            )),
        )

    def is_noop(self) -> bool:
        """True when this schedule perturbs nothing."""
        return not (self.bandwidth or self.latency or self.outages
                    or self.cpu_noise or self.stragglers)

    def to_dict(self) -> dict:
        """Canonical JSON-ready form (drives :meth:`digest`)."""
        return {
            "seed": self.seed,
            "bandwidth": [
                {"t0": w.t0, "t1": w.t1, "factor": w.factor}
                for w in self.bandwidth
            ],
            "latency": [
                {"t0": w.t0, "t1": w.t1, "extra": w.extra}
                for w in self.latency
            ],
            "outages": [
                {"t0": w.t0, "t1": w.t1, "semantics": w.semantics}
                for w in self.outages
            ],
            "cpu_noise": [
                {"amplitude": c.amplitude,
                 "ranks": None if c.ranks is None else list(c.ranks)}
                for c in self.cpu_noise
            ],
            "stragglers": [
                {"rank": s.rank, "factor": s.factor} for s in self.stragglers
            ],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "PerturbationSchedule":
        return cls(
            seed=int(doc.get("seed", 0)),
            bandwidth=tuple(
                BandwidthWindow(w["t0"], w["t1"], w["factor"])
                for w in doc.get("bandwidth", ())
            ),
            latency=tuple(
                LatencyWindow(w["t0"], w["t1"], w["extra"])
                for w in doc.get("latency", ())
            ),
            outages=tuple(
                OutageWindow(w["t0"], w["t1"], w.get("semantics", "stall"))
                for w in doc.get("outages", ())
            ),
            cpu_noise=tuple(
                CpuNoise(c["amplitude"],
                         None if c.get("ranks") is None else tuple(c["ranks"]))
                for c in doc.get("cpu_noise", ())
            ),
            stragglers=tuple(
                Straggler(s["rank"], s["factor"])
                for s in doc.get("stragglers", ())
            ),
        )

    def digest(self) -> str:
        """Content hash of the normalized schedule (cache identity)."""
        body = json.dumps(self.normalized().to_dict(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(body.encode()).hexdigest()[:24]

    def describe(self) -> str:
        """One-line human summary."""
        parts = [w.describe() for w in self.outages]
        parts += [w.describe() for w in self.bandwidth]
        parts += [w.describe() for w in self.latency]
        parts += [c.describe() for c in self.cpu_noise]
        parts += [s.describe() for s in self.stragglers]
        if not parts:
            return f"no-op perturbation (seed={self.seed})"
        return f"seed={self.seed}: " + "; ".join(parts)

    # -- replay-facing helpers ---------------------------------------------- #
    def cpu_factor(self, rank: int) -> float:
        """Persistent compute slowdown of ``rank`` (straggler skew)."""
        factor = 1.0
        for s in self.stragglers:
            if s.rank == rank:
                factor *= s.factor
        return factor

    def scale_cpu_durations(self, rank, ops, durs, cpu_op) -> list | None:
        """Noise-stretched copy of ``durs``, or None when no noise
        entry touches ``rank``.

        Entry ``ei`` stretches compute burst ``i`` by
        ``1 + amplitude * unit_hash(seed, "cpu", ei, rank, i)`` — a
        pure function of the schedule and coordinates, so every worker
        process computes the same replay.  Non-compute records are
        untouched; the input list is never mutated.
        """
        entries = [
            (ei, cn) for ei, cn in enumerate(self.cpu_noise)
            if cn.ranks is None or rank in cn.ranks
        ]
        if not entries:
            return None
        seed = self.seed
        out = list(durs)
        for i, op in enumerate(ops):
            if op != cpu_op:
                continue
            mult = 1.0
            for ei, cn in entries:
                mult *= 1.0 + cn.amplitude * unit_hash(seed, "cpu", ei, rank, i)
            out[i] = durs[i] * mult
        return out

    def blocking_window(self, t: float) -> str | None:
        """Description of the window active at (or next after) ``t``.

        Used by the watchdog post-mortem: when a perturbed replay blows
        its simulated-time budget, the report names the perturbation
        window the simulation was stuck in (or heading into) instead of
        shrugging.  Outages take precedence, then bandwidth, then
        latency windows; None when the schedule has no windows at all.
        """
        for group in (self.outages, self.bandwidth, self.latency):
            for w in group:
                if w.t0 <= t < w.t1:
                    return w.describe()
        upcoming = [
            w for group in (self.outages, self.bandwidth, self.latency)
            for w in group if w.t0 >= t
        ]
        if upcoming:
            return min(upcoming, key=lambda w: w.t0).describe()
        past = [
            w for group in (self.outages, self.bandwidth, self.latency)
            for w in group
        ]
        if past:
            return max(past, key=lambda w: w.t1).describe()
        return None
