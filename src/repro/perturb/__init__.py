"""Deterministic platform perturbations applied in simulated time.

Pure data + pure math: schedules (:mod:`repro.perturb.schedule`) and
named scenario builders (:mod:`repro.perturb.scenarios`).  The replay
integration lives in ``repro.dimemas`` (``PerturbedNetwork``, the
``perturb=`` argument of ``simulate``); the sweep/reporting layer in
``repro.experiments.resilience``.
"""

from .schedule import (
    BandwidthWindow,
    CpuNoise,
    LatencyWindow,
    OutageWindow,
    PerturbationSchedule,
    Straggler,
    unit_hash,
)
from .scenarios import SCENARIO_KINDS, build_scenario, default_scenarios

__all__ = [
    "BandwidthWindow",
    "CpuNoise",
    "LatencyWindow",
    "OutageWindow",
    "PerturbationSchedule",
    "SCENARIO_KINDS",
    "Straggler",
    "build_scenario",
    "default_scenarios",
    "unit_hash",
]
