"""Production/consumption pattern analysis (paper §V-A, Table II, Fig. 5).

The tracer defines one *production interval* of a buffer as the time
between two consecutive sends of that buffer and one *consumption
interval* as the period between two consecutive receives of the same
buffer.  Within those intervals it records the per-element last store
and first load.  This module reduces those profiles to the two paper
tables:

* **Potential for advancing sends** (Table II(a)) — the percent of the
  production phase at which the 1st element / first quarter / first
  half / the whole message has reached its final version.  The "1st
  element" column is the earliest final version of *any* element
  (paper: "the first final version of any element is produced at
  66.3 % of the production interval" for Sweep3D); the fractional
  columns use the leading prefix of the buffer, matching the
  contiguous-chunk transfer order.
* **Potential for post-postponing receptions** (Table II(b)) — the
  percent of the consumption phase that can be passed having received
  nothing / the first quarter / the first half of the message: the
  earliest first-load among the elements *not yet received*.

An ideal pattern produces the prefix fraction ``f`` at exactly ``f`` of
the interval and needs it at ``f`` — the "ideal" rows of the tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Iterable, Iterator

import numpy as np

from ..trace.records import AccessProfile, IRecv, ISend, Recv, Send, TraceSet

__all__ = [
    "ConsumptionStats",
    "IDEAL_CONSUMPTION",
    "IDEAL_PRODUCTION",
    "ProductionStats",
    "consumption_stats",
    "consumption_table",
    "iter_profiles",
    "production_stats",
    "production_table",
    "scatter_points",
]


@dataclass(frozen=True)
class ProductionStats:
    """Fractions of the production phase (0..1; NaN = no data)."""

    first_element: float
    quarter: float
    half: float
    whole: float

    def as_percent(self) -> dict[str, float]:
        """Row formatted as percentages (paper Table II units)."""
        return {f.name: 100.0 * getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class ConsumptionStats:
    """Fractions of the consumption phase passable per received part."""

    nothing: float
    quarter: float
    half: float

    def as_percent(self) -> dict[str, float]:
        return {f.name: 100.0 * getattr(self, f.name) for f in fields(self)}


#: Reference rows (paper Table II, "ideal").
IDEAL_PRODUCTION = ProductionStats(0.0, 0.25, 0.50, 1.0)
IDEAL_CONSUMPTION = ConsumptionStats(0.0, 0.25, 0.50)


def production_stats(profile: AccessProfile) -> ProductionStats:
    """Reduce one production profile to its Table II(a) row."""
    if profile.kind != "production":
        raise ValueError("expected a production profile")
    t = profile.normalized()
    n = t.shape[0]
    if n == 0 or np.all(np.isnan(t)):
        return ProductionStats(math.nan, math.nan, math.nan, math.nan)

    def prefix_max(frac: float) -> float:
        k = max(1, int(math.ceil(frac * n)))
        seg = t[:k]
        if np.all(np.isnan(seg)):
            return math.nan
        return float(np.nanmax(seg))

    return ProductionStats(
        first_element=float(np.nanmin(t)),
        quarter=prefix_max(0.25),
        half=prefix_max(0.50),
        whole=prefix_max(1.0),
    )


def consumption_stats(profile: AccessProfile) -> ConsumptionStats:
    """Reduce one consumption profile to its Table II(b) row."""
    if profile.kind != "consumption":
        raise ValueError("expected a consumption profile")
    t = profile.normalized()
    n = t.shape[0]
    if n == 0:
        return ConsumptionStats(math.nan, math.nan, math.nan)

    def passable(frac: float) -> float:
        """Earliest need among elements beyond the received prefix."""
        k = int(math.ceil(frac * n))
        seg = t[k:]
        if seg.size == 0 or np.all(np.isnan(seg)):
            return 1.0  # the remaining elements are never needed
        return float(np.nanmin(seg))

    return ConsumptionStats(
        nothing=passable(0.0),
        quarter=passable(0.25),
        half=passable(0.50),
    )


def iter_profiles(
    trace: TraceSet,
    kind: str,
    channel: int | None = None,
    min_elements: int = 1,
    rank: int | None = None,
) -> Iterator[tuple[int, int, AccessProfile]]:
    """Yield ``(rank, record_index, profile)`` for matching profiles."""
    if kind not in ("production", "consumption"):
        raise ValueError(f"invalid kind {kind!r}")
    for proc in trace:
        if rank is not None and proc.rank != rank:
            continue
        for i, rec in enumerate(proc.records):
            if kind == "production" and isinstance(rec, (Send, ISend)):
                p = rec.production
            elif kind == "consumption" and isinstance(rec, (Recv, IRecv)):
                p = rec.consumption
            else:
                continue
            if p is None or p.elements < min_elements:
                continue
            if channel is not None and rec.channel != channel:
                continue
            yield proc.rank, i, p


def _aggregate(rows: Iterable, cls, weights: Iterable[float] | None):
    rows = list(rows)
    names = [f.name for f in fields(cls)]
    if not rows:
        return cls(**{n: math.nan for n in names})
    mat = np.array([[getattr(r, n) for n in names] for r in rows], dtype=float)
    if weights is None:
        w = np.ones(mat.shape[0])
    else:
        w = np.asarray(list(weights), dtype=float)
    out = {}
    for j, n in enumerate(names):
        col = mat[:, j]
        mask = ~np.isnan(col)
        out[n] = float(np.average(col[mask], weights=w[mask])) if mask.any() else math.nan
    return cls(**out)


def production_table(
    trace: TraceSet,
    channel: int | None = None,
    min_elements: int = 1,
    weight_by_bytes: bool = False,
) -> ProductionStats:
    """Average Table II(a) row over all production profiles of a trace."""
    entries = list(iter_profiles(trace, "production", channel, min_elements))
    rows = [production_stats(p) for _, _, p in entries]
    weights = None
    if weight_by_bytes:
        weights = [
            p.elements for _, _, p in entries
        ]
    return _aggregate(rows, ProductionStats, weights)


def consumption_table(
    trace: TraceSet,
    channel: int | None = None,
    min_elements: int = 1,
    weight_by_bytes: bool = False,
) -> ConsumptionStats:
    """Average Table II(b) row over all consumption profiles of a trace."""
    entries = list(iter_profiles(trace, "consumption", channel, min_elements))
    rows = [consumption_stats(p) for _, _, p in entries]
    weights = None
    if weight_by_bytes:
        weights = [p.elements for _, _, p in entries]
    return _aggregate(rows, ConsumptionStats, weights)


def scatter_points(
    trace: TraceSet,
    kind: str,
    channel: int | None = 0,
    rank: int | None = None,
    min_elements: int = 2,
    max_points: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Figure 5 scatter data: ``(normalized_times, element_offsets)``.

    Pools the raw access streams of every matching profile (the trace
    must have been recorded with ``record_streams=True``).  The x axis
    is the normalized time within the production/consumption interval;
    the y axis the element offset within the transferred buffer —
    exactly the axes of paper Figure 5.
    """
    xs: list[np.ndarray] = []
    ys: list[np.ndarray] = []
    for _, _, p in iter_profiles(trace, kind, channel, min_elements, rank):
        stream = p.normalized_stream()
        if stream is None:
            continue
        offsets, times = stream
        xs.append(times)
        ys.append(offsets)
    if not xs:
        return np.empty(0), np.empty(0, dtype=np.intp)
    x = np.concatenate(xs)
    y = np.concatenate(ys)
    if max_points is not None and x.shape[0] > max_points:
        idx = np.linspace(0, x.shape[0] - 1, max_points).astype(np.intp)
        x, y = x[idx], y[idx]
    return x, y
