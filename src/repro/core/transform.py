"""The automatic overlap transformation (the paper's core contribution).

Rewrites a traced (non-overlapped) execution into the trace of the
*potential* overlapped execution, applying the four mechanisms of
paper §II at the MPI level:

* **Message chunking** — every transformable message is split into
  ``chunks`` contiguous-element chunks (paper setting: 4).
* **Advancing sends** — each chunk is transmitted (as a non-blocking
  send) at the virtual time its final version was produced: *"the
  tracer emits a Dimemas send record of every chunk at the moment of
  the last update of that chunk"* (§III-C).
* **Post-postponing receptions** — the receiver posts non-blocking
  receives for all chunks at the original receive point and waits for
  each chunk only *"at the point where that chunk is needed for the
  first time"* (§III-C).
* **Double buffering** — chunks of the next iteration may arrive while
  the current iteration is still consuming: chunk transfers are eager
  and the sender's completion waits are deferred to the next send of
  the same message stream.  (With ``double_buffering=False`` — the
  single-buffer ablation — chunk sends become rendezvous and complete
  at the original send point.)

The rewriting is purely trace-level: it moves communication records
through the recorded computation bursts (splitting bursts where chunk
boundaries fall) without altering the total computation, which is how
the framework isolates the effect of overlap from cache/locality
side-effects the paper criticizes in code-restructuring studies.

Two schedules are supported (§III-C, "two overlapped traces"):

* ``schedule="real"`` — chunk times taken from the measured
  production/consumption access profiles;
* ``schedule="ideal"`` — chunk transmissions/receptions uniformly
  distributed through the adjacent computation intervals, modelling the
  best possible production/consumption pattern (paper Eq. 1).

Causality rules
---------------

A chunk send may only move to an *earlier* point when there is store
evidence it was fully produced by then.  Chunks without evidence (no
profile, or a never-stored chunk) keep the original send's position in
the record stream — moving them to the same *virtual time* is not
enough, because zero-duration regions (e.g. a reduction-tree relay
that receives and immediately forwards) would let the forward jump
ahead of the receive it depends on.  For the same reason the ideal
schedule distributes chunk events only through the contiguous
computation region bounded by the adjacent communication records: the
data a process forwards right after a receive has no computation in
which it could have been produced earlier.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field, replace

import numpy as np

from ..obs import get_registry, traced
from ..trace.records import (
    CHANNEL_CHUNK,
    CpuBurst,
    Event as EventRec,
    IRecv,
    ISend,
    ProcessTrace,
    Recv,
    Record,
    Send,
    TraceSet,
    Wait,
)
from .chunking import (
    DEFAULT_CHUNKS,
    chunk_needed_times,
    chunk_ready_times,
    plan_chunks,
)
from .matching import MessagePair, match_messages

__all__ = [
    "OverlapConfig",
    "TransformStats",
    "chunk_sub",
    "overlap_transform",
]

_MAX_CHUNKS = 256
_MAX_SUB = 1 << 16


def chunk_sub(channel: int, sub: int, c: int) -> int:
    """Pack an original (channel, sub) and a chunk index into a chunk key.

    Chunked messages travel on :data:`CHANNEL_CHUNK`; the original
    channel and sub id are folded into the new ``sub`` so that chunk
    streams of distinct original messages never collide.
    """
    if not 0 <= c < _MAX_CHUNKS:
        raise ValueError(f"chunk index {c} out of range [0, {_MAX_CHUNKS})")
    if not 0 <= sub < _MAX_SUB:
        raise ValueError(f"sub id {sub} out of range [0, {_MAX_SUB})")
    if channel < 0 or channel > 0xF:
        raise ValueError(f"channel {channel} out of range [0, 15]")
    return (channel << 24) | (sub << 8) | c


@dataclass(frozen=True)
class OverlapConfig:
    """Configuration of the overlap transformation.

    The defaults reproduce the paper's experimental setup; each flag
    disables one mechanism for the ablation benchmarks.
    """

    chunks: int = DEFAULT_CHUNKS
    #: Extension beyond the paper's fixed chunk count: when set, each
    #: message is split into ``ceil(size / chunk_bytes)`` chunks, capped
    #: by ``chunks`` — small messages stay whole, large ones split
    #: finer.  ``None`` (default) reproduces the paper's fixed scheme.
    chunk_bytes: int | None = None
    advance_sends: bool = True
    postpone_receptions: bool = True
    double_buffering: bool = True
    #: "real" uses measured access profiles; "ideal" distributes chunk
    #: events uniformly through the adjacent computation (paper's
    #: second overlapped trace).
    schedule: str = "real"
    #: Also transform the point-to-point messages that collectives were
    #: decomposed into (when their buffers carry profiles).
    transform_collectives: bool = True

    def __post_init__(self) -> None:
        if self.schedule not in ("real", "ideal"):
            raise ValueError(f"schedule must be 'real' or 'ideal', got {self.schedule!r}")
        if self.chunks < 1 or self.chunks > _MAX_CHUNKS:
            raise ValueError(f"chunks must be in [1, {_MAX_CHUNKS}]")
        if self.chunk_bytes is not None and self.chunk_bytes < 1:
            raise ValueError("chunk_bytes must be >= 1 or None")

    def chunks_for(self, size: int) -> int:
        """Chunk count for a message of ``size`` bytes."""
        if self.chunk_bytes is None:
            return self.chunks
        return max(1, min(self.chunks, -(-size // self.chunk_bytes)))


@dataclass
class TransformStats:
    """What the transformation did (reported alongside the new trace)."""

    messages_total: int = 0
    messages_transformed: int = 0
    chunks_created: int = 0
    sends_advanced: int = 0
    waits_postponed: int = 0
    skipped_no_profile: int = 0
    skipped_zero_size: int = 0


# --------------------------------------------------------------------------- #
# Per-rank edit script.
# --------------------------------------------------------------------------- #

@dataclass
class _Edits:
    removed: set[int] = field(default_factory=set)
    before_index: dict[int, list[Record]] = field(default_factory=lambda: defaultdict(list))
    timed: list[tuple[float, int, Record]] = field(default_factory=list)
    at_end: list[Record] = field(default_factory=list)
    wait_strip: dict[int, set[int]] = field(default_factory=lambda: defaultdict(set))
    _seq: int = 0

    def add_timed(self, t: float, rec: Record) -> None:
        self.timed.append((t, self._seq, rec))
        self._seq += 1


def _rebuild(proc: ProcessTrace, edits: _Edits) -> ProcessTrace:
    """Apply an edit script, splitting CPU bursts at timed insertions.

    Burst pieces shorter than 1e-15 s are dropped at split points, so
    total compute is preserved up to one femtosecond per insertion —
    negligible against microsecond-scale bursts, and bounded for tests.
    """
    starts = proc.virtual_starts()
    timed = sorted(edits.timed, key=lambda x: (x[0], x[1]))
    k = 0
    out: list[Record] = []

    for i, rec in enumerate(proc.records):
        t0, t1 = starts[i], starts[i + 1]
        if isinstance(rec, CpuBurst):
            cur = t0
            while k < len(timed) and timed[k][0] < t1 - 1e-15:
                tt = max(timed[k][0], cur)
                if tt > cur + 1e-15:
                    out.append(CpuBurst(tt - cur))
                cur = tt
                out.append(timed[k][2])
                k += 1
            if t1 > cur + 1e-15:
                out.append(CpuBurst(t1 - cur))
            continue
        # Non-burst record: flush timed insertions due up to its time.
        while k < len(timed) and timed[k][0] <= t0 + 1e-15:
            out.append(timed[k][2])
            k += 1
        out.extend(edits.before_index.get(i, ()))
        if i in edits.removed:
            continue
        if isinstance(rec, Wait) and i in edits.wait_strip:
            kept = tuple(q for q in rec.requests if q not in edits.wait_strip[i])
            if kept:
                out.append(Wait(kept, meta=dict(rec.meta)))
            continue
        out.append(replace(rec))

    while k < len(timed):
        out.append(timed[k][2])
        k += 1
    out.extend(edits.at_end)
    return ProcessTrace(proc.rank, out)


# --------------------------------------------------------------------------- #
# Stream context: previous/next records on the same matching key.
# --------------------------------------------------------------------------- #

def _compute_regions(trace: TraceSet) -> list[tuple]:
    """Per rank: for every record, the virtual-time bounds of the
    contiguous computation region around it.

    ``region_prev[i]`` is the virtual time of the nearest non-burst,
    non-event record strictly before ``i`` (0.0 at the stream head);
    ``region_next[i]`` the nearest one strictly after (trace end at the
    tail).  These bound how far the ideal schedule may spread chunk
    events without crossing a communication dependency.
    """
    out = []
    for proc in trace:
        starts = proc.virtual_starts()
        n = len(proc.records)
        prev = np.zeros(n)
        nxt = np.full(n, proc.virtual_duration)
        last = 0.0
        for i, rec in enumerate(proc.records):
            prev[i] = last
            if not isinstance(rec, (CpuBurst, EventRec)):
                last = starts[i]
        upcoming = proc.virtual_duration
        for i in range(n - 1, -1, -1):
            nxt[i] = upcoming
            if not isinstance(proc.records[i], (CpuBurst, EventRec)):
                upcoming = starts[i]
        out.append((prev, nxt))
    return out


def _buffer_lifecycle(trace: TraceSet):
    """Buffer-identity causality bounds (from the ``buf`` record meta).

    For every send record: the virtual time of the last receive into
    the same buffer before it (data arrival — an ideal-schedule send of
    that buffer cannot move before it).  For every receive record: the
    virtual time of the next send of the same buffer after it (the
    forward point — a postponed wait cannot move past it).
    """
    prev_recv: dict[tuple[int, int], float] = {}
    next_send: dict[tuple[int, int], float] = {}
    for proc in trace:
        starts = proc.virtual_starts()
        seen_recv: dict[int, float] = {}
        for i, rec in enumerate(proc.records):
            buf = rec.meta.get("buf") if isinstance(rec, (Send, ISend, Recv, IRecv)) else None
            if buf is None:
                continue
            if isinstance(rec, (Send, ISend)):
                prev_recv[(proc.rank, i)] = seen_recv.get(buf, 0.0)
            else:
                seen_recv[buf] = float(starts[i])
        upcoming: dict[int, float] = {}
        for i in range(len(proc.records) - 1, -1, -1):
            rec = proc.records[i]
            buf = rec.meta.get("buf") if isinstance(rec, (Send, ISend, Recv, IRecv)) else None
            if buf is None:
                continue
            if isinstance(rec, (Recv, IRecv)):
                next_send[(proc.rank, i)] = upcoming.get(buf, math.inf)
            else:
                upcoming[buf] = float(starts[i])
    return prev_recv, next_send


def _stream_neighbors(trace: TraceSet):
    """For every p2p record: the time of the previous same-key send /
    next same-key receive, plus the index of the next same-key send or
    receive record (used for wait anchoring)."""
    prev_send_time: dict[tuple[int, int], float] = {}
    next_send_index: dict[tuple[int, int], int | None] = {}
    next_recv_time: dict[tuple[int, int], float] = {}
    next_recv_index: dict[tuple[int, int], int | None] = {}

    for proc in trace:
        starts = proc.virtual_starts()
        last_send: dict[tuple, tuple[int, float]] = {}
        last_recv: dict[tuple, int] = {}
        for i, rec in enumerate(proc.records):
            t = starts[i]
            if isinstance(rec, (Send, ISend)):
                key = (rec.peer, rec.context, rec.channel, rec.tag, rec.sub)
                prev = last_send.get(key)
                prev_send_time[(proc.rank, i)] = prev[1] if prev else 0.0
                if prev:
                    next_send_index[(proc.rank, prev[0])] = i
                next_send_index[(proc.rank, i)] = None
                last_send[key] = (i, t)
            elif isinstance(rec, (Recv, IRecv)):
                key = (rec.peer, rec.context, rec.channel, rec.tag, rec.sub)
                prev = last_recv.get(key)
                if prev is not None:
                    next_recv_time[(proc.rank, prev)] = t
                    next_recv_index[(proc.rank, prev)] = i
                next_recv_time[(proc.rank, i)] = proc.virtual_duration
                next_recv_index[(proc.rank, i)] = None
                last_recv[key] = i
    return prev_send_time, next_send_index, next_recv_time, next_recv_index


# --------------------------------------------------------------------------- #
# The transformation proper.
# --------------------------------------------------------------------------- #

@traced("transform.overlap")
def overlap_transform(
    trace: TraceSet,
    config: OverlapConfig | None = None,
    **kwargs,
) -> tuple[TraceSet, TransformStats]:
    """Rewrite an original trace into the overlapped-execution trace.

    Parameters may be given as an :class:`OverlapConfig` or as keyword
    arguments (``chunks=4, schedule="ideal", ...``).  Returns the new
    :class:`TraceSet` and a :class:`TransformStats` summary.  The input
    trace is not modified.
    """
    if config is None:
        config = OverlapConfig(**kwargs)
    elif kwargs:
        raise TypeError("pass either an OverlapConfig or keyword arguments, not both")

    for proc in trace:
        for rec in proc.records:
            if isinstance(rec, (Send, ISend, Recv, IRecv)) and rec.channel == CHANNEL_CHUNK:
                raise ValueError(
                    "input trace already contains chunked messages; "
                    "overlap_transform must run on an original trace"
                )

    stats = TransformStats()
    pairs = match_messages(trace)
    stats.messages_total = len(pairs)

    prev_send_t, next_send_i, next_recv_t, next_recv_i = _stream_neighbors(trace)
    regions = _compute_regions(trace)
    lifecycle = _buffer_lifecycle(trace)

    edits = [_Edits() for _ in range(trace.nranks)]
    req_counter = [_max_request_id(p) + 1 for p in trace.processes]

    def new_req(rank: int) -> int:
        req_counter[rank] += 1
        return req_counter[rank]

    # Map (rank, wait-record-index) for request -> Wait position lookup.
    wait_of_request = _index_waits(trace)

    for pair in pairs:
        sproc, rproc = trace[pair.src], trace[pair.dst]
        srec = sproc.records[pair.send_index]
        rrec = rproc.records[pair.recv_index]

        # The point where the original reception *completed*: the Recv
        # record itself, or the Wait record of a non-blocking receive.
        # Chunk waits may never move before it — the original program
        # had no data before that point, and moving synchronization
        # earlier can deadlock the replay (e.g. the IRecv/Send/Waitall
        # halo idiom where posting, sends, and wait share one virtual
        # instant).
        complete_idx = pair.recv_index
        if isinstance(rrec, IRecv):
            wi = wait_of_request.get((pair.dst, rrec.request))
            if wi is not None:
                complete_idx = wi
        t_complete = float(rproc.virtual_starts()[complete_idx])

        decision = _plan_message(
            trace, pair, config, regions, next_recv_t, complete_idx, t_complete,
            lifecycle,
        )
        if decision is None:
            continue
        plan, send_times, wait_times, ts, tr = decision
        wait_times = np.maximum(wait_times, t_complete)
        stats.messages_transformed += 1
        stats.chunks_created += plan.nchunks
        stats.sends_advanced += int(np.sum(send_times < ts - 1e-12))
        stats.waits_postponed += int(np.sum(wait_times > t_complete + 1e-12))

        se, re_ = edits[pair.src], edits[pair.dst]

        # ---- sender side ------------------------------------------------ #
        se.removed.add(pair.send_index)
        if isinstance(srec, ISend):
            wi = wait_of_request.get((pair.src, srec.request))
            if wi is not None:
                se.wait_strip[wi].add(srec.request)
        chunk_reqs: list[int] = []
        for c in range(plan.nchunks):
            req = new_req(pair.src)
            chunk_reqs.append(req)
            isend = ISend(
                peer=pair.dst, tag=pair.tag, size=int(plan.sizes[c]),
                channel=CHANNEL_CHUNK, sub=chunk_sub(pair.channel, pair.sub, c),
                context=pair.context, request=req,
                rendezvous=not config.double_buffering,
            )
            # Only chunks with evidence of earlier production move; the
            # rest keep the original send's position in the stream (see
            # "Causality rules" above).
            if send_times[c] < ts - 1e-15:
                se.add_timed(float(send_times[c]), isend)
            else:
                se.before_index[pair.send_index].append(isend)
        waitall = Wait(tuple(chunk_reqs))
        nsi = next_send_i.get((pair.src, pair.send_index))
        if config.double_buffering and nsi is not None:
            se.before_index[nsi].append(waitall)
        elif config.double_buffering:
            se.at_end.append(waitall)
        else:
            se.before_index[pair.send_index].append(waitall)

        # ---- receiver side ------------------------------------------------ #
        re_.removed.add(pair.recv_index)
        if isinstance(rrec, IRecv):
            wi = wait_of_request.get((pair.dst, rrec.request))
            if wi is not None:
                re_.wait_strip[wi].add(rrec.request)
        immediate_waits: list[Record] = []
        for c in range(plan.nchunks):
            req = new_req(pair.dst)
            re_.before_index[pair.recv_index].append(
                IRecv(
                    peer=pair.src, tag=pair.tag, size=int(plan.sizes[c]),
                    channel=CHANNEL_CHUNK, sub=chunk_sub(pair.channel, pair.sub, c),
                    context=pair.context, request=req,
                )
            )
            # Waits that cannot be postponed keep the original
            # completion point's position in the record stream
            # (index-anchored, after the IRecv postings and any sends in
            # between); only genuinely-postponed waits move by time.
            if wait_times[c] <= t_complete + 1e-15:
                immediate_waits.append(Wait((req,)))
            else:
                re_.add_timed(float(wait_times[c]), Wait((req,)))
        re_.before_index[complete_idx].extend(immediate_waits)

    new_procs = [_rebuild(trace[r], edits[r]) for r in range(trace.nranks)]
    meta = dict(trace.meta)
    meta["overlap"] = {
        "chunks": config.chunks,
        "schedule": config.schedule,
        "advance_sends": config.advance_sends,
        "postpone_receptions": config.postpone_receptions,
        "double_buffering": config.double_buffering,
    }
    stats.skipped_no_profile = stats.messages_total - stats.messages_transformed - stats.skipped_zero_size
    reg = get_registry()
    reg.counter("transform.runs").inc()
    reg.counter("transform.messages_transformed").inc(stats.messages_transformed)
    reg.counter("transform.chunks_created").inc(stats.chunks_created)
    return TraceSet(new_procs, meta=meta), stats


def _max_request_id(proc: ProcessTrace) -> int:
    mx = 0
    for rec in proc.records:
        if isinstance(rec, (ISend, IRecv)):
            mx = max(mx, rec.request)
    return mx


def _index_waits(trace: TraceSet) -> dict[tuple[int, int], int]:
    out: dict[tuple[int, int], int] = {}
    for proc in trace:
        for i, rec in enumerate(proc.records):
            if isinstance(rec, Wait):
                for req in rec.requests:
                    out[(proc.rank, req)] = i
    return out


def _plan_message(trace, pair: MessagePair, config: OverlapConfig,
                  regions, next_recv_t, complete_idx: int, t_complete: float,
                  lifecycle):
    """Decide chunk plan and schedules for one message.

    Returns ``(plan, send_times, wait_times, ts, tr)`` or None when the
    message is left untouched.
    """
    if pair.size <= 0:
        return None
    if pair.channel != 0 and not config.transform_collectives:
        return None

    sproc, rproc = trace[pair.src], trace[pair.dst]
    srec = sproc.records[pair.send_index]
    rrec = rproc.records[pair.recv_index]
    ts = float(sproc.virtual_starts()[pair.send_index])
    tr = float(rproc.virtual_starts()[pair.recv_index])

    production = srec.production
    consumption = rrec.consumption

    elements = None
    if production is not None:
        elements = production.elements
    if consumption is not None:
        if elements is None:
            elements = consumption.elements
        elif consumption.elements != elements:
            consumption = None  # inconsistent view; trust the sender
    if elements is None:
        if config.schedule == "ideal":
            # No profile: fall back to the element count recorded off the
            # MPI call (a one-element reduction stays unchunkable, paper
            # Table II note on Alya), then to byte granularity.
            elements = srec.elements if srec.elements > 0 else pair.size
        else:
            return None
    if elements <= 0:
        return None

    plan = plan_chunks(pair.size, elements, config.chunks_for(pair.size))
    n = plan.nchunks

    # -- sender schedule ------------------------------------------------------
    prev_recv_of_buf, next_send_of_buf = lifecycle
    if config.schedule == "ideal":
        # Uniform production through the production interval (previous
        # send of the buffer -> this send), never before the buffer's
        # own data arrived (forwarded buffers), falling back to the
        # adjacent compute region when no profile exists.
        if production is not None:
            p_start = production.interval_start
        else:
            p_start = regions[pair.src][0][pair.send_index]
        p_start = max(p_start, prev_recv_of_buf.get((pair.src, pair.send_index), 0.0))
        span = max(ts - p_start, 0.0)
        send_times = ts - span + (np.arange(1, n + 1) / n) * span
    else:
        if production is not None and config.advance_sends:
            send_times = chunk_ready_times(production, plan)
            send_times = np.where(np.isnan(send_times), ts, send_times)
        else:
            send_times = np.full(n, ts)
    send_times = np.minimum(send_times, ts)
    if not config.advance_sends:
        send_times = np.full(n, ts)

    # -- receiver schedule ------------------------------------------------------
    t_next = next_recv_t[(pair.dst, pair.recv_index)]
    t_fwd = next_send_of_buf.get((pair.dst, pair.recv_index), math.inf)
    if config.schedule == "ideal":
        # Uniform consumption through the consumption interval (this
        # receive -> next receive of the buffer), never past the point
        # where the buffer is forwarded, falling back to the adjacent
        # compute region when no profile exists.
        if consumption is not None:
            c_end = consumption.interval_end
        else:
            c_end = regions[pair.dst][1][complete_idx]
        c_end = min(c_end, t_fwd)
        span = max(c_end - t_complete, 0.0)
        wait_times = t_complete + (np.arange(n) / n) * span
    else:
        if consumption is not None and config.postpone_receptions:
            wait_times = chunk_needed_times(consumption, plan)
            wait_times = np.where(
                np.isnan(wait_times), consumption.interval_end, wait_times
            )
        else:
            wait_times = np.full(n, t_complete)
    upper = max(min(t_next, t_fwd), t_complete)
    wait_times = np.clip(wait_times, t_complete, upper)
    if not config.postpone_receptions:
        wait_times = np.full(n, t_complete)

    if math.isnan(float(np.sum(send_times))) or math.isnan(float(np.sum(wait_times))):
        return None
    return plan, send_times, wait_times, ts, tr
