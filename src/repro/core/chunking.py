"""Message chunking: splitting MPI messages into independent chunks.

Paper §II: *"Each original MPI message is partitioned into independent
chunks consisting of one or more data elements."*  Chunks are
contiguous element ranges (the transfer order of elements is the buffer
order), and the experimental setup fixes the chunk count at four:
*"the chunking technique in the overlapped case splits every MPI
message in four chunks"* (§IV).

This module computes chunk geometry and the two time series that drive
the transformation:

* **ready times** — when each chunk's final version exists at the
  sender (max of last-store times over the chunk's elements);
* **needed times** — when each chunk is first consumed at the receiver
  (min of first-load times over the chunk's elements).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..trace.records import AccessProfile

__all__ = [
    "DEFAULT_CHUNKS",
    "ChunkPlan",
    "chunk_needed_times",
    "chunk_ready_times",
    "plan_chunks",
]

#: The paper's experimental setting: four chunks per message.
DEFAULT_CHUNKS = 4


@dataclass(frozen=True)
class ChunkPlan:
    """Geometry of one chunked message.

    ``bounds`` has ``nchunks + 1`` element indices (chunk ``c`` covers
    elements ``bounds[c]:bounds[c+1]``); ``sizes`` are per-chunk byte
    counts summing exactly to the message size.
    """

    elements: int
    nchunks: int
    bounds: np.ndarray
    sizes: np.ndarray

    def span(self, c: int) -> tuple[int, int]:
        """Element range ``[start, end)`` of chunk ``c``."""
        return int(self.bounds[c]), int(self.bounds[c + 1])


def plan_chunks(size: int, elements: int, chunks: int = DEFAULT_CHUNKS) -> ChunkPlan:
    """Partition a message of ``size`` bytes / ``elements`` elements.

    The effective chunk count is ``min(chunks, elements, size)`` (a
    message cannot be split finer than its elements or its bytes) and
    at least one.  Element boundaries follow ``np.array_split``
    balance; byte sizes are proportional with the remainder spread over
    the leading chunks so they always sum to ``size`` exactly.
    """
    if size < 0 or elements < 0:
        raise ValueError("size and elements must be >= 0")
    if chunks < 1:
        raise ValueError(f"chunk count must be >= 1, got {chunks}")
    n = max(1, min(chunks, elements if elements > 0 else 1, size if size > 0 else 1))
    bounds = np.linspace(0, max(elements, 1), n + 1).round().astype(np.int64)
    # Byte boundaries proportional to element boundaries.
    byte_bounds = np.linspace(0, size, n + 1).round().astype(np.int64)
    sizes = np.diff(byte_bounds)
    assert int(sizes.sum()) == size
    return ChunkPlan(elements=max(elements, 1), nchunks=n, bounds=bounds, sizes=sizes)


def _segment_reduce(values: np.ndarray, bounds: np.ndarray, how: str) -> np.ndarray:
    """Per-chunk nan-max / nan-min of a per-element array (vectorized)."""
    out = np.full(len(bounds) - 1, np.nan)
    for c in range(len(bounds) - 1):  # nchunks <= 32 in practice: trivial loop
        seg = values[bounds[c]:bounds[c + 1]]
        if seg.size and not np.all(np.isnan(seg)):
            out[c] = np.nanmax(seg) if how == "max" else np.nanmin(seg)
    return out


def chunk_ready_times(profile: AccessProfile, plan: ChunkPlan) -> np.ndarray:
    """When each chunk's final version is produced at the sender.

    ``NaN`` entries (chunk never stored inside the interval) mean "no
    information" — the transformation falls back to the original send
    point for those chunks.  Times are clipped into the production
    interval.
    """
    if profile.kind != "production":
        raise ValueError("chunk_ready_times requires a production profile")
    if profile.elements != plan.elements:
        raise ValueError(
            f"profile has {profile.elements} elements, plan expects {plan.elements}"
        )
    ready = _segment_reduce(profile.clipped(), plan.bounds, "max")
    return ready


def chunk_needed_times(profile: AccessProfile, plan: ChunkPlan) -> np.ndarray:
    """When each chunk is first consumed at the receiver.

    ``NaN`` entries (chunk never loaded) mean the wait can be postponed
    to the end of the consumption interval.  Times are clipped into the
    consumption interval.
    """
    if profile.kind != "consumption":
        raise ValueError("chunk_needed_times requires a consumption profile")
    if profile.elements != plan.elements:
        raise ValueError(
            f"profile has {profile.elements} elements, plan expects {plan.elements}"
        )
    needed = _segment_reduce(profile.clipped(), plan.bounds, "min")
    return needed
