"""Phase-level overlap potential (the paper's future-work direction).

Paper §VII: *"The results of this paper showed us that overlap at the
level of MPI calls is very limited by application's
production/consumption patterns.  Therefore, at first place, we want to
find ways to exploit overlap at the level of the application's
computation phases."*

This module implements the analysis that direction needs (following
Sancho et al., SC'06, whom the paper extends): it decomposes every
consumption interval into *independent work* — computation performed
before any element of the incoming message is first needed — and
*dependent work*, and every production interval into the part before
and after the first final value exists.  The independent/early parts
are exactly the computation a phase-level restructuring could move
across the communication to hide it, beyond what MPI-level chunking
achieves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..trace.records import TraceSet
from .patterns import iter_profiles

__all__ = ["PhasePotential", "phase_overlap_potential"]


@dataclass
class PhasePotential:
    """Aggregate phase-structure of one traced application.

    All quantities are virtual-time seconds summed over all profiled
    intervals of all ranks.
    """

    #: Consumption intervals: compute before the first inbound element
    #: is needed (reorderable across the receive).
    independent_consumption: float = 0.0
    #: Consumption intervals: compute after the first need (dependent).
    dependent_consumption: float = 0.0
    #: Production intervals: compute before the first final value
    #: exists (reorderable across the previous send).
    pre_production: float = 0.0
    #: Production intervals: compute once final values start appearing.
    late_production: float = 0.0
    #: Number of intervals of each kind analyzed.
    consumption_intervals: int = 0
    production_intervals: int = 0

    @property
    def independent_fraction(self) -> float:
        """Share of consumption-phase compute that is independent work."""
        total = self.independent_consumption + self.dependent_consumption
        return self.independent_consumption / total if total > 0 else 0.0

    @property
    def preproduction_fraction(self) -> float:
        """Share of production-phase compute preceding any final value."""
        total = self.pre_production + self.late_production
        return self.pre_production / total if total > 0 else 0.0

    @property
    def reorderable_seconds(self) -> float:
        """Upper bound of compute movable across communication by a
        phase-level restructuring (the future-work headroom)."""
        return self.independent_consumption + self.pre_production

    def __str__(self) -> str:
        return (
            f"phase potential: independent consumption "
            f"{self.independent_consumption * 1e3:.3f} ms "
            f"({self.independent_fraction * 100:.1f}% of consumption phases), "
            f"pre-production {self.pre_production * 1e3:.3f} ms "
            f"({self.preproduction_fraction * 100:.1f}% of production phases)"
        )


def phase_overlap_potential(
    trace: TraceSet,
    channel: int | None = None,
    min_elements: int = 1,
) -> PhasePotential:
    """Measure the phase-level overlap headroom of a traced execution.

    For every consumption profile, the time from the interval start to
    the earliest first-load is independent work; for every production
    profile, the time up to the earliest last-store is pre-production.
    Intervals whose buffers are never accessed contribute their full
    span to the reorderable side (nothing in the phase touches the
    message).
    """
    pot = PhasePotential()
    for _, _, p in iter_profiles(trace, "consumption", channel, min_elements):
        span = p.span
        if span <= 0:
            continue
        t = p.clipped()
        first_need = float(np.nanmin(t)) if not np.all(np.isnan(t)) else p.interval_end
        pot.independent_consumption += first_need - p.interval_start
        pot.dependent_consumption += p.interval_end - first_need
        pot.consumption_intervals += 1
    for _, _, p in iter_profiles(trace, "production", channel, min_elements):
        span = p.span
        if span <= 0:
            continue
        t = p.clipped()
        first_final = float(np.nanmin(t)) if not np.all(np.isnan(t)) else p.interval_end
        pot.pre_production += first_final - p.interval_start
        pot.late_production += p.interval_end - first_final
        pot.production_intervals += 1
    return pot
