"""Ideal-pattern overlapped trace generation.

Paper §III-C: *"in order to stress the influence of
production/consumption patterns, the tool generates the second
overlapped trace which assumes that the application's
production/consumption patterns are ideal ... by uniformly
distributing the chunked transmissions/receptions throughout the
original computation bursts."*

Under the ideal model, for a message of ``n`` chunks:

* chunk ``c`` is fully produced at ``(c+1)/n`` of the production
  interval (so the first quarter of the message exists after 25 % of
  the computation — the "ideal" row of paper Table II(a));
* chunk ``c`` is first needed at ``c/n`` of the consumption interval
  (having received a quarter lets the receiver pass 25 % of the
  phase — the "ideal" row of Table II(b)),

which makes the overlappable computation for chunk ``i`` exactly the
paper's Equation 1: sum of the production times of the later chunks
plus the consumption times of the earlier ones.

This module is a thin, documented front-end over
:func:`repro.core.transform.overlap_transform` with
``schedule="ideal"``.
"""

from __future__ import annotations

from ..obs import traced
from ..trace.records import TraceSet
from .chunking import DEFAULT_CHUNKS
from .transform import OverlapConfig, TransformStats, overlap_transform

__all__ = ["ideal_transform"]


@traced("transform.ideal")
def ideal_transform(
    trace: TraceSet,
    chunks: int = DEFAULT_CHUNKS,
    double_buffering: bool = True,
    transform_collectives: bool = True,
) -> tuple[TraceSet, TransformStats]:
    """Produce the ideal-pattern overlapped trace (paper's second trace)."""
    config = OverlapConfig(
        chunks=chunks,
        schedule="ideal",
        double_buffering=double_buffering,
        transform_collectives=transform_collectives,
    )
    return overlap_transform(trace, config)
