"""The paper's core contribution: automatic overlap at trace level.

* :mod:`repro.core.transform` — chunking + advancing sends + double
  buffering + post-postponed receptions over recorded traces;
* :mod:`repro.core.ideal` — the ideal-pattern overlapped trace;
* :mod:`repro.core.patterns` — production/consumption pattern analysis
  (paper Table II and Figure 5);
* :mod:`repro.core.chunking` / :mod:`repro.core.matching` — chunk
  geometry and offline message matching;
* :mod:`repro.core.metrics` — comparison metrics.
"""

from .chunking import DEFAULT_CHUNKS, ChunkPlan, chunk_needed_times, chunk_ready_times, plan_chunks
from .ideal import ideal_transform
from .matching import MessagePair, UnmatchedMessageError, match_messages
from .metrics import Comparison, improvement_percent, speedup
from .phases import PhasePotential, phase_overlap_potential
from .patterns import (
    IDEAL_CONSUMPTION,
    IDEAL_PRODUCTION,
    ConsumptionStats,
    ProductionStats,
    consumption_stats,
    consumption_table,
    production_stats,
    production_table,
    scatter_points,
)
from .transform import OverlapConfig, TransformStats, chunk_sub, overlap_transform

__all__ = [
    "ChunkPlan", "Comparison", "ConsumptionStats", "DEFAULT_CHUNKS",
    "IDEAL_CONSUMPTION", "IDEAL_PRODUCTION", "MessagePair", "OverlapConfig",
    "ProductionStats", "TransformStats", "UnmatchedMessageError",
    "chunk_needed_times", "chunk_ready_times", "chunk_sub",
    "consumption_stats", "consumption_table", "ideal_transform",
    "improvement_percent", "match_messages", "overlap_transform",
    "plan_chunks", "production_stats", "production_table",
    "PhasePotential", "phase_overlap_potential",
    "scatter_points", "speedup",
]
