"""Static send/receive matching over recorded traces.

The overlap transformation rewrites *both* endpoints of every message
(the sender's chunked transmissions must agree with the receiver's
chunked receptions), so it first needs to know which receive record
each send record pairs with.  Matching replays MPI's non-overtaking
rule offline: records with the same key ``(src, dst, channel, tag,
sub)`` match in record order — the same discipline the runtime matcher
(:mod:`repro.smpi.matching`) and the replay simulator use, so all
three stages agree on pairings.
"""

from __future__ import annotations

import weakref
from collections import defaultdict, deque
from dataclasses import dataclass

from ..trace.records import IRecv, ISend, Recv, Send, TraceSet

__all__ = [
    "MessagePair",
    "match_columnar",
    "match_messages",
    "match_messages_cached",
    "match_messages_lenient",
    "UnmatchedMessageError",
]


class UnmatchedMessageError(ValueError):
    """A send or receive record has no partner (malformed trace)."""


@dataclass(frozen=True)
class MessagePair:
    """One matched point-to-point message.

    Record indices refer to positions in the respective rank's record
    list of the trace the matching ran on.
    """

    src: int
    send_index: int
    dst: int
    recv_index: int
    size: int
    channel: int
    tag: int
    sub: int
    context: int = 0

    @property
    def key(self) -> tuple:
        return (self.src, self.dst, self.context, self.channel, self.tag,
                self.sub)


def match_messages(trace: TraceSet, strict: bool = True) -> list[MessagePair]:
    """Pair every send record with its receive record.

    Returns pairs ordered by (src, send_index).  With ``strict=True``
    (default) raises :class:`UnmatchedMessageError` if any record is
    left unpaired; otherwise unpaired records are silently dropped
    (useful for partial traces).
    """
    pairs, leftovers = match_messages_lenient(trace)
    if leftovers and strict:
        raise UnmatchedMessageError(
            "unmatched point-to-point records:\n" + "\n".join(leftovers[:10])
        )
    return pairs


def match_messages_lenient(trace: TraceSet) -> tuple[list[MessagePair], list[str]]:
    """Pair what can be paired; describe what cannot.

    Returns ``(pairs, leftovers)`` where ``leftovers`` lists every
    matching key with mismatched send/receive counts.  The replay
    simulator uses this on malformed traces so a dropped or corrupted
    record surfaces as a *diagnosable deadlock* (the orphaned endpoint
    blocks forever and the post-mortem names it) instead of an abort
    before the replay even starts.
    """
    sends: dict[tuple, deque] = defaultdict(deque)
    recvs: dict[tuple, deque] = defaultdict(deque)

    for proc in trace:
        for i, rec in enumerate(proc.records):
            if isinstance(rec, (Send, ISend)):
                key = (proc.rank, rec.peer, rec.context, rec.channel,
                       rec.tag, rec.sub)
                sends[key].append((i, rec))
            elif isinstance(rec, (Recv, IRecv)):
                key = (rec.peer, proc.rank, rec.context, rec.channel,
                       rec.tag, rec.sub)
                recvs[key].append((i, rec))

    pairs: list[MessagePair] = []
    leftovers: list[str] = []
    for key in sorted(set(sends) | set(recvs)):
        s, r = sends.get(key, deque()), recvs.get(key, deque())
        for (si, srec), (ri, _rrec) in zip(s, r):
            pairs.append(
                MessagePair(
                    src=key[0], send_index=si, dst=key[1], recv_index=ri,
                    size=srec.size, context=key[2], channel=key[3],
                    tag=key[4], sub=key[5],
                )
            )
        if len(s) != len(r):
            leftovers.append(
                f"src={key[0]} dst={key[1]} context={key[2]} channel={key[3]} "
                f"tag={key[4]} sub={key[5]}: {len(s)} send(s) vs {len(r)} recv(s)"
            )

    pairs.sort(key=lambda p: (p.src, p.send_index))
    return pairs, leftovers


def match_columnar(col) -> tuple[list[MessagePair], list[str]]:
    """:func:`match_messages_lenient` over a packed columnar trace.

    Walks the int columns of a
    :class:`~repro.trace.columnar.ColumnarTrace` directly — no record
    objects, no attribute dispatch — and produces the *identical*
    ``(pairs, leftovers)`` output: same :class:`MessagePair` values in
    the same order, same leftover description strings.  This is the
    matcher of the replay hot path; the record-object variants above
    remain the matchers of the transformation stage.
    """
    from ..trace.columnar import OP_IRECV, OP_ISEND, OP_RECV, OP_SEND

    sends: dict[tuple, deque] = defaultdict(deque)
    recvs: dict[tuple, deque] = defaultdict(deque)

    for rank, rc in enumerate(col.ranks):
        op = rc.op
        peer, tag, sub = rc.peer, rc.tag, rc.sub
        channel, context, size = rc.channel, rc.context, rc.size
        for i in range(rc.n):
            o = op[i]
            if o == OP_SEND or o == OP_ISEND:
                key = (rank, peer[i], context[i], channel[i], tag[i], sub[i])
                sends[key].append((i, size[i]))
            elif o == OP_RECV or o == OP_IRECV:
                key = (peer[i], rank, context[i], channel[i], tag[i], sub[i])
                recvs[key].append(i)

    pairs: list[MessagePair] = []
    leftovers: list[str] = []
    empty: deque = deque()
    for key in sorted(set(sends) | set(recvs)):
        s, r = sends.get(key, empty), recvs.get(key, empty)
        for (si, ssize), ri in zip(s, r):
            pairs.append(
                MessagePair(
                    src=key[0], send_index=si, dst=key[1], recv_index=ri,
                    size=ssize, context=key[2], channel=key[3],
                    tag=key[4], sub=key[5],
                )
            )
        if len(s) != len(r):
            leftovers.append(
                f"src={key[0]} dst={key[1]} context={key[2]} channel={key[3]} "
                f"tag={key[4]} sub={key[5]}: {len(s)} send(s) vs {len(r)} recv(s)"
            )

    pairs.sort(key=lambda p: (p.src, p.send_index))
    return pairs, leftovers


#: Per-TraceSet memo of strict matchings, guarded by per-rank record
#: counts so appends after the first match invalidate the entry.
_match_cache: "weakref.WeakKeyDictionary[TraceSet, tuple[tuple[int, ...], list[MessagePair]]]" = (
    weakref.WeakKeyDictionary()
)


def match_messages_cached(trace: TraceSet) -> list[MessagePair]:
    """Memoized :func:`match_messages` (strict mode) per trace object.

    Replaying the same trace on many platform variations re-derives the
    identical pairing every time; this caches it for the lifetime of the
    ``TraceSet`` object.  The returned list is shared — treat it as
    read-only.  Traces mutated through ``ProcessTrace.append`` /
    ``extend`` are re-matched (the memo keys on per-rank record counts);
    in-place record *edits* that keep counts unchanged are not detected,
    matching the immutable-records convention of :class:`TraceSet`.
    """
    fingerprint = tuple(len(p.records) for p in trace)
    hit = _match_cache.get(trace)
    if hit is not None and hit[0] == fingerprint:
        return hit[1]
    pairs = match_messages(trace)
    _match_cache[trace] = (fingerprint, pairs)
    return pairs
