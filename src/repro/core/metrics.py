"""Comparison metrics between simulated executions.

Small helpers shared by the experiment harness and the benchmarks:
speedups, improvement percentages, and convergence utilities for the
bandwidth searches of paper Figure 6(b)/(c).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Comparison", "improvement_percent", "speedup"]


def speedup(t_baseline: float, t_new: float) -> float:
    """Classic speedup ``T_baseline / T_new`` (>1 means ``new`` is faster)."""
    if t_new <= 0:
        raise ValueError(f"new time must be positive, got {t_new}")
    return t_baseline / t_new


def improvement_percent(t_baseline: float, t_new: float) -> float:
    """Relative runtime reduction in percent (paper's "8% improvement")."""
    if t_baseline <= 0:
        raise ValueError(f"baseline time must be positive, got {t_baseline}")
    return 100.0 * (t_baseline - t_new) / t_baseline


@dataclass(frozen=True)
class Comparison:
    """A non-overlapped vs overlapped timing comparison."""

    t_original: float
    t_overlapped: float

    @property
    def speedup(self) -> float:
        return speedup(self.t_original, self.t_overlapped)

    @property
    def improvement_percent(self) -> float:
        return improvement_percent(self.t_original, self.t_overlapped)

    @property
    def wins(self) -> bool:
        """True when the overlapped execution is at least as fast."""
        return self.t_overlapped <= self.t_original * (1 + 1e-12)

    def __str__(self) -> str:
        return (
            f"original={self.t_original:.6f}s overlapped={self.t_overlapped:.6f}s "
            f"speedup={self.speedup:.4f} ({self.improvement_percent:+.2f}%)"
        )


def finite_or_inf(value: float) -> float:
    """Map NaN to +inf (used by equivalent-bandwidth reporting)."""
    return math.inf if math.isnan(value) else value
