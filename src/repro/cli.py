"""Command-line front-ends of the framework.

Five entry points mirror the tool chain of paper Figure 3:

* ``repro-trace``    — run an application under the tracer and write
  its Dimemas trace (the Valgrind stage);
* ``repro-overlap``  — apply the overlap transformation to a trace
  file (the tracer's second/third output);
* ``repro-simulate`` — replay a trace on a configurable platform and
  print/export the reconstructed timeline (the Dimemas stage);
* ``repro-report``   — regenerate the paper's tables and figures.
* ``repro-verify``   — certify trace integrity: structural validation,
  a fully audited replay, and a double-replay determinism check.
* ``repro-explain``  — deep-analyze why an application does (not)
  benefit from overlap: wait-state attribution, overlap scorecards,
  and a differential original/overlapped/ideal comparison.
* ``repro-resilience`` — replay original vs overlapped variants across
  a grid of injected platform faults (degraded bandwidth, outages,
  OS noise, stragglers) and report how much of the damage overlap
  masks (the resilience index).
"""

from __future__ import annotations

import argparse
import contextlib
import functools
import os
import sys

from .apps import APPS, get_app
from .audit.auditor import IntegrityError
from .core.ideal import ideal_transform
from .core.transform import OverlapConfig, overlap_transform
from .dimemas.machine import MachineConfig
from .dimemas.replay import DeadlockError, SimulationTimeout, simulate
from .experiments.checkpoint import CampaignInterrupted
from .paraver.gantt import render_gantt
from .paraver.stats import comm_stats, profile_table
from .trace import dim, prv

__all__ = ["main_analyze", "main_explain", "main_overlap", "main_report",
           "main_resilience", "main_simulate", "main_trace", "main_verify"]

#: CLI exit codes for diagnosed replay failures (0 ok, 2 argparse).
EXIT_DEADLOCK = 3
EXIT_TIMEOUT = 4
#: The campaign drained gracefully after SIGTERM/SIGINT and left a
#: journal behind: re-run with ``--resume <run-id>`` to continue.
EXIT_RESUMABLE = 5
#: The integrity audit found violations (``--strict-audit`` / a failed
#: ``repro-verify`` certification).
EXIT_INTEGRITY = 6
EXIT_INTERRUPTED = 130


def _interruptible(fn):
    """Turn interrupts into clean exits instead of stack traces.

    Cleanup of pools and staging temp files happens where the resources
    live (``full_report`` tears its engine down on the way out); this
    wrapper only standardizes the user-visible behavior: a gracefully
    drained campaign prints its resume hint and exits with
    :data:`EXIT_RESUMABLE`; a hard Ctrl-C keeps the conventional
    128+SIGINT exit status.
    """

    @functools.wraps(fn)
    def wrapper(argv: list[str] | None = None) -> int:
        try:
            return fn(argv)
        except CampaignInterrupted as exc:
            print(str(exc), file=sys.stderr)
            if exc.resumable:
                print(f"resume with: repro-report --resume {exc.run_id}",
                      file=sys.stderr)
                return EXIT_RESUMABLE
            return EXIT_INTERRUPTED
        except KeyboardInterrupt:
            print("interrupted", file=sys.stderr)
            return EXIT_INTERRUPTED

    return wrapper


def _obs_args(ap: argparse.ArgumentParser) -> None:
    """The shared observability options (every entry point gets them)."""
    g = ap.add_argument_group("observability")
    g.add_argument("--profile", action="store_true",
                   help="trace pipeline spans; writes a Perfetto-loadable "
                        "trace.json into the run directory and prints a "
                        "span summary on stderr")
    g.add_argument("--metrics-out", default=None, metavar="FILE",
                   help="write the final metrics snapshot (counters, "
                        "gauges, histogram percentiles) as JSON")
    g.add_argument("--obs-dir", default=None, metavar="DIR",
                   help="parent directory for run manifests and event "
                        "logs (default: $REPRO_OBS_DIR, else .repro-obs "
                        "next to the cwd when a run is recorded)")
    g.add_argument("-v", "--verbose", action="count", default=0,
                   help="more stderr logging (-vv for debug)")
    g.add_argument("-q", "--quiet", action="store_true",
                   help="errors only; also suppresses the span summary")


def _default_obs_dir(args: argparse.Namespace) -> str:
    return args.obs_dir or os.environ.get("REPRO_OBS_DIR") or ".repro-obs"


@contextlib.contextmanager
def _observed(args: argparse.Namespace, command: str,
              run_id: str | None = None, resume: bool = False):
    """Run-manifest + profiling lifecycle around one CLI invocation.

    Spans are enabled for ``--profile``; a run directory (manifest +
    JSONL event log, plus trace.json when profiling) is created when
    any of ``--profile`` / ``--metrics-out`` / ``--obs-dir`` /
    ``$REPRO_OBS_DIR`` asks for observability.  Without those flags
    this is a no-op apart from logger configuration, so existing
    workflows see no new files.

    ``resume`` re-opens an existing run (``run_id`` required): events
    append to the same log, the run-sequence number increments, and
    the finalized manifest carries counter totals merged across every
    sequence.  A drained campaign finalizes with status
    ``interrupted`` rather than ``error``, marking it resumable.
    """
    from . import obs

    obs.configure_logging(verbosity=args.verbose, quiet=args.quiet)
    obs_dir = args.obs_dir or os.environ.get("REPRO_OBS_DIR")
    observed = bool(args.profile or args.metrics_out or obs_dir or resume)
    if not observed:
        yield None
        return
    if args.profile:
        obs.enable()
    run = obs.RunContext(obs_dir or ".repro-obs", command=command,
                         run_id=run_id, resume=resume)
    status = "ok"
    try:
        yield run
    except CampaignInterrupted:
        status = "interrupted"
        raise
    except BaseException:
        status = "error"
        raise
    finally:
        reg = obs.get_registry()
        spans_ = run.drain_spans()
        if args.profile and spans_:
            obs.write_chrome_trace(run.dir / "trace.json", spans_)
        if args.metrics_out:
            obs.write_metrics(args.metrics_out, reg, run_id=run.run_id)
        run.finalize(status=status)
        if args.profile:
            obs.disable()
            if not args.quiet:
                if spans_:
                    print(obs.span_summary_table(spans_), file=sys.stderr)
                print(f"run {run.run_id}: artifacts in {run.dir}",
                      file=sys.stderr)


def _machine_args(ap: argparse.ArgumentParser) -> None:
    ap.add_argument("--bandwidth", type=float, default=250.0,
                    help="link bandwidth in MB/s (default: 250, the paper's Myrinet)")
    ap.add_argument("--latency", type=float, default=8e-6,
                    help="message latency in seconds (default: 8 us)")
    ap.add_argument("--buses", type=int, default=0,
                    help="global bus count (0 = unlimited)")
    ap.add_argument("--cpu-ratio", type=float, default=1.0,
                    help="CPU time scaling of computation bursts")
    ap.add_argument("--max-events", type=int, default=None,
                    help="watchdog: abort the replay after this many "
                         "simulation events (default: unlimited)")
    ap.add_argument("--max-sim-time", type=float, default=None,
                    help="watchdog: abort when simulated time exceeds "
                         "this many seconds (default: unlimited)")


def _machine(args: argparse.Namespace) -> MachineConfig:
    return MachineConfig(
        bandwidth_mbps=args.bandwidth,
        latency=args.latency,
        buses=args.buses or None,
        cpu_ratio=args.cpu_ratio,
        max_events=args.max_events,
        max_sim_time=args.max_sim_time,
    )


def _audit_args(ap: argparse.ArgumentParser) -> None:
    g = ap.add_argument_group("integrity")
    g.add_argument("--audit", choices=("off", "basic", "full"), default=None,
                   help="run the invariant auditor alongside the replay "
                        "(default: $REPRO_AUDIT, else off)")
    g.add_argument("--strict-audit", action="store_true",
                   help="treat any audit violation as a failure (exit 6)")


def _replay(trace, machine, audit=None, strict=False):
    """Run :func:`simulate`, printing a post-mortem on failure.

    Returns ``(result, exit_code)``; ``result`` is None when the replay
    deadlocked (exit 3), tripped the watchdog (exit 4), or — with
    ``strict`` — failed the integrity audit (exit 6).  A non-strict
    audit prints its report to stderr and keeps the result.
    """
    acfg = None
    if audit is not None or os.environ.get("REPRO_AUDIT"):
        from .audit.auditor import AuditConfig, resolve_level
        level = resolve_level(audit)
        if level != "off":
            acfg = AuditConfig(level=level, strict=strict)
    try:
        result = simulate(trace, machine, audit=acfg)
    except DeadlockError as exc:
        print("replay deadlocked; post-mortem:", file=sys.stderr)
        print(exc.report.render(), file=sys.stderr)
        return None, EXIT_DEADLOCK
    except SimulationTimeout as exc:
        print(f"replay watchdog expired ({exc.reason}); post-mortem:",
              file=sys.stderr)
        print(exc.report.render(), file=sys.stderr)
        return None, EXIT_TIMEOUT
    except IntegrityError as exc:
        print("replay failed the integrity audit:", file=sys.stderr)
        print(exc.report.render(), file=sys.stderr)
        return None, EXIT_INTEGRITY
    if acfg is not None and acfg.report is not None:
        print(acfg.report.render(), file=sys.stderr)
    return result, 0


@_interruptible
def main_trace(argv: list[str] | None = None) -> int:
    """``repro-trace APP -n RANKS -o trace.dim``"""
    ap = argparse.ArgumentParser(
        prog="repro-trace",
        description="Trace a pool application (the Valgrind stage).",
    )
    ap.add_argument("app", choices=sorted(APPS))
    ap.add_argument("-n", "--nranks", type=int, default=16)
    ap.add_argument("-o", "--output", required=True,
                    help="output trace file (.dim)")
    ap.add_argument("--mips", type=float, default=2300.0)
    ap.add_argument("--streams", action="store_true",
                    help="record full access streams (Figure 5 data)")
    _obs_args(ap)
    args = ap.parse_args(argv)

    with _observed(args, "repro-trace"):
        app = get_app(args.app)
        run = app.trace(nranks=args.nranks, mips=args.mips,
                        record_streams=args.streams)
        dim.dump(run.trace, args.output)
        print(f"traced {args.app} on {args.nranks} ranks -> {args.output} "
              f"({run.trace.total_records()} records)")
    return 0


@_interruptible
def main_overlap(argv: list[str] | None = None) -> int:
    """``repro-overlap trace.dim -o overlapped.dim [--ideal]``"""
    ap = argparse.ArgumentParser(
        prog="repro-overlap",
        description="Apply the automatic overlap transformation to a trace.",
    )
    ap.add_argument("trace")
    ap.add_argument("-o", "--output", required=True)
    ap.add_argument("--chunks", type=int, default=4,
                    help="chunks per message (paper: 4)")
    ap.add_argument("--ideal", action="store_true",
                    help="generate the ideal-pattern trace instead")
    ap.add_argument("--no-double-buffering", action="store_true")
    _obs_args(ap)
    args = ap.parse_args(argv)

    with _observed(args, "repro-overlap"):
        trace = dim.load(args.trace)
        if args.ideal:
            out, stats = ideal_transform(
                trace, chunks=args.chunks,
                double_buffering=not args.no_double_buffering,
            )
        else:
            out, stats = overlap_transform(trace, OverlapConfig(
                chunks=args.chunks,
                double_buffering=not args.no_double_buffering,
            ))
        dim.dump(out, args.output)
        print(f"transformed {stats.messages_transformed}/{stats.messages_total} "
              f"messages into {stats.chunks_created} chunks -> {args.output}")
    return 0


@_interruptible
def main_simulate(argv: list[str] | None = None) -> int:
    """``repro-simulate trace.dim [--gantt] [--prv out.prv]``"""
    ap = argparse.ArgumentParser(
        prog="repro-simulate",
        description="Replay a trace on a configurable platform (the Dimemas stage).",
    )
    ap.add_argument("trace")
    _machine_args(ap)
    _audit_args(ap)
    ap.add_argument("--gantt", action="store_true",
                    help="print an ASCII Gantt of the reconstruction")
    ap.add_argument("--state-profile", action="store_true",
                    help="print the per-rank state profile "
                         "(--profile traces the pipeline itself)")
    ap.add_argument("--prv", help="export a Paraver .prv trace to this path")
    ap.add_argument("--svg", help="export an SVG timeline to this path")
    ap.add_argument("--json", help="export the reconstruction as JSON")
    ap.add_argument("--width", type=int, default=100)
    _obs_args(ap)
    args = ap.parse_args(argv)

    with _observed(args, "repro-simulate"):
        trace = dim.load(args.trace)
        result, code = _replay(trace, _machine(args), audit=args.audit,
                               strict=args.strict_audit)
        if result is None:
            return code
        print(f"simulated {result.nranks} ranks: makespan {result.duration * 1e6:.1f} us, "
              f"{len(result.messages)} messages, "
              f"parallel efficiency {result.parallel_efficiency * 100:.1f}%")
        print(f"comm: {comm_stats(result)}")
        if args.gantt:
            print(render_gantt(result, width=args.width))
        if args.state_profile:
            print(profile_table(result))
        if args.prv:
            prv.write_prv(result, args.prv)
            prv.write_pcf(args.prv.rsplit(".", 1)[0] + ".pcf")
            print(f"wrote {args.prv}")
        if args.svg:
            from .paraver.svg import write_svg
            write_svg(result, args.svg)
            print(f"wrote {args.svg}")
        if args.json:
            result.to_json(args.json)
            print(f"wrote {args.json}")
    return 0


@_interruptible
def main_analyze(argv: list[str] | None = None) -> int:
    """``repro-analyze trace.dim`` — patterns, stats, phase headroom.

    The analysis half of the framework without replaying anything:
    Table II rows, per-channel byte accounting, and the phase-level
    overlap potential of a recorded trace.  Add a platform with
    ``--simulate`` to append the replay profile and critical path.
    """
    ap = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Analyze a recorded trace (patterns, stats, bottlenecks).",
    )
    ap.add_argument("trace")
    ap.add_argument("--channel", type=int, default=None,
                    help="restrict pattern tables to one channel "
                         "(default: all channels)")
    ap.add_argument("--simulate", action="store_true",
                    help="also replay and print profile + critical path")
    _machine_args(ap)
    _audit_args(ap)
    _obs_args(ap)
    args = ap.parse_args(argv)

    from .core.patterns import consumption_table, production_table
    from .core.phases import phase_overlap_potential
    from .trace.filters import trace_stats

    with _observed(args, "repro-analyze"):
        trace = dim.load(args.trace)
        st = trace_stats(trace)
        print(f"trace: {st['nranks']} ranks, {st['records']} records, "
              f"{st['messages']} messages, "
              f"{st['virtual_compute_seconds'] * 1e3:.3f} ms compute")
        for ch, nbytes in sorted(st["bytes_per_channel"].items()):
            label = {0: "application", 1: "collective", 2: "chunk"}.get(ch, str(ch))
            print(f"  channel {ch} ({label}): {nbytes} bytes")

        p = production_table(trace, channel=args.channel)
        c = consumption_table(trace, channel=args.channel)
        print("\nproduction pattern  (fraction of phase): "
              f"1st={p.first_element:.4f} 1/4={p.quarter:.4f} "
              f"1/2={p.half:.4f} all={p.whole:.4f}")
        print("consumption pattern (fraction of phase): "
              f"none={c.nothing:.4f} 1/4={c.quarter:.4f} 1/2={c.half:.4f}")
        print(phase_overlap_potential(trace, channel=args.channel))

        if args.simulate:
            from .paraver.critical import critical_path, render_path
            result, code = _replay(trace, _machine(args), audit=args.audit,
                                   strict=args.strict_audit)
            if result is None:
                return code
            print(f"\nreplay: makespan {result.duration * 1e6:.1f} us, "
                  f"efficiency {result.parallel_efficiency * 100:.1f}%")
            print(profile_table(result))
            print()
            print(render_path(critical_path(result)))
    return 0


@_interruptible
def main_explain(argv: list[str] | None = None) -> int:
    """``repro-explain TARGET`` — why does overlap (not) pay here?

    ``TARGET`` is either a paper application name (the skeleton is
    traced, transformed, and replayed on its Table I test bed) or a
    recorded ``.dim`` trace file (the overlapped and ideal variants are
    derived from it).  The analysis replays the triple with the
    wait-attribution channel attached and reports scorecards,
    per-rank/per-phase cause tables, the critical-path breakdown, and
    a §V-style verdict.
    """
    ap = argparse.ArgumentParser(
        prog="repro-explain",
        description="Attribute wait states and explain the overlap "
                    "speedup of an application or trace.",
    )
    ap.add_argument("target",
                    help="application name "
                         f"({', '.join(sorted(APPS))}) or a .dim trace file")
    ap.add_argument("-n", "--nranks", type=int, default=16,
                    help="ranks for application targets (default: 16)")
    ap.add_argument("--chunks", type=int, default=4,
                    help="chunks per message of the transformation "
                         "(paper: 4)")
    ap.add_argument("--channel", type=int, default=None,
                    help="restrict the pattern tables to one channel")
    ap.add_argument("--no-ideal", action="store_true",
                    help="skip the ideal-pattern variant")
    ap.add_argument("--top-ranks", type=int, default=8,
                    help="ranks shown in the attribution tables")
    ap.add_argument("--json", metavar="FILE",
                    help="write the machine-readable report "
                         "(docs/schema/repro-explain.schema.json)")
    ap.add_argument("--html", metavar="FILE",
                    help="write the self-contained HTML deep report")
    ap.add_argument("--perfetto", metavar="FILE",
                    help="write wait-cause overlay tracks as a "
                         "Perfetto-loadable trace JSON")
    g = ap.add_argument_group("fault injection")
    g.add_argument("--perturb", metavar="SCENARIO", default=None,
                   help="replay on a degraded platform: a named scenario "
                        "(see repro-resilience --list-scenarios) scaled to "
                        "the unperturbed makespan; blocked time the faults "
                        "cause shows up under the 'perturbation' cause")
    g.add_argument("--perturb-seed", type=int, default=0,
                   help="seed of the perturbation schedule (default: 0)")
    _machine_args(ap)
    _obs_args(ap)
    args = ap.parse_args(argv)

    from .insight import explain_traces, render_html, render_text, to_json

    with _observed(args, "repro-explain"):
        app = None
        if args.target.lower() in APPS:
            app = args.target.lower()
            run = get_app(app).trace(nranks=args.nranks)
            original = run.trace
            # Table I test bed of the application, with only the
            # machine flags the user actually set overriding it.
            overrides = {}
            if args.bandwidth != ap.get_default("bandwidth"):
                overrides["bandwidth_mbps"] = args.bandwidth
            if args.latency != ap.get_default("latency"):
                overrides["latency"] = args.latency
            if args.buses != ap.get_default("buses"):
                overrides["buses"] = args.buses or None
            if args.cpu_ratio != ap.get_default("cpu_ratio"):
                overrides["cpu_ratio"] = args.cpu_ratio
            machine = MachineConfig.paper_testbed(app, **overrides)
        else:
            if not os.path.exists(args.target):
                ap.error(f"{args.target!r} is neither a known application "
                         f"({', '.join(sorted(APPS))}) nor a trace file")
            original = dim.load(args.target)
            machine = _machine(args)

        traces = {"original": original}
        traces["real"], _ = overlap_transform(
            original, OverlapConfig(chunks=args.chunks)
        )
        if not args.no_ideal:
            traces["ideal"], _ = ideal_transform(original,
                                                 chunks=args.chunks)
        if args.perturb:
            from .perturb.scenarios import SCENARIO_KINDS, build_scenario
            if args.perturb not in SCENARIO_KINDS:
                ap.error(f"unknown scenario {args.perturb!r} "
                         f"(choose from {', '.join(sorted(SCENARIO_KINDS))})")
            # Scenario windows scale to the *unperturbed* makespan, so
            # measure it first with one pristine replay.
            horizon = simulate(original, machine).duration
            machine = machine.with_platform(
                perturb=build_scenario(args.perturb, horizon,
                                       args.perturb_seed))
        try:
            expl = explain_traces(
                traces, machine=machine, app=app, chunks=args.chunks,
                channel=args.channel, max_events=args.max_events,
                max_sim_time=args.max_sim_time,
            )
        except DeadlockError as exc:
            print("replay deadlocked; post-mortem:", file=sys.stderr)
            print(exc.report.render(), file=sys.stderr)
            return EXIT_DEADLOCK
        except SimulationTimeout as exc:
            window = getattr(exc, "window", None)
            if window is not None:
                print(f"replay stalled under active perturbation "
                      f"[{window}] ({exc.reason}); post-mortem:",
                      file=sys.stderr)
            else:
                print(f"replay watchdog expired ({exc.reason}); "
                      "post-mortem:", file=sys.stderr)
            print(exc.report.render(), file=sys.stderr)
            return EXIT_TIMEOUT

        print(render_text(expl, top_ranks=args.top_ranks))
        if args.json:
            import json as _json
            with open(args.json, "w") as fh:
                _json.dump(to_json(expl), fh, indent=1)
                fh.write("\n")
            print(f"wrote {args.json}")
        if args.html:
            with open(args.html, "w") as fh:
                fh.write(render_html(expl))
            print(f"wrote {args.html}")
        if args.perfetto:
            from .obs.export import write_insight_trace
            tracks = [
                (v, expl.attribution[v], expl.collectors.get(v))
                for v in ("original", "real", "ideal")
                if v in expl.attribution
            ]
            write_insight_trace(args.perfetto, tracks)
            print(f"wrote {args.perfetto}")
    return 0


@_interruptible
def main_resilience(argv: list[str] | None = None) -> int:
    """``repro-resilience [APP...]`` — how much overlap buys back.

    Replays every application's original and overlapped variants on
    the pristine platform and under each named fault scenario
    (bandwidth sag, latency spikes, link outages, OS noise,
    stragglers), then reports per-scenario slowdowns and the
    resilience index — the fraction of the injected degradation the
    overlap transform masked.  Deterministic per ``--seed``: the
    result digest is identical across reruns and ``--jobs`` counts.
    """
    ap = argparse.ArgumentParser(
        prog="repro-resilience",
        description="Measure how much of an injected platform "
                    "degradation communication-computation overlap "
                    "masks.",
    )
    ap.add_argument("apps", nargs="*", metavar="APP",
                    help="applications to sweep (default: the full "
                         f"paper pool: {', '.join(sorted(APPS))})")
    ap.add_argument("--scenarios", default=None, metavar="KIND[,KIND...]",
                    help="comma-separated scenario subset "
                         "(default: all)")
    ap.add_argument("--list-scenarios", action="store_true",
                    help="list the named scenarios and exit")
    ap.add_argument("--seed", type=int, default=0,
                    help="perturbation-schedule seed (default: 0)")
    ap.add_argument("-n", "--nranks", type=int, default=8,
                    help="ranks per application (default: 8)")
    ap.add_argument("--chunks", type=int, default=4,
                    help="chunks per message of the overlap transform "
                         "(paper: 4)")
    ap.add_argument("-j", "--jobs", type=int, default=1,
                    help="worker processes for the replay grid "
                         "(default: 1, serial)")
    ap.add_argument("--cache-dir", default=None,
                    help="persist traces and replay results here "
                         "(perturbed replays are cache-keyed by their "
                         "schedule digest; re-runs are nearly free)")
    ap.add_argument("--degraded", action="store_true",
                    help="report n/a cells instead of aborting when "
                         "replays keep failing")
    ap.add_argument("--json", metavar="FILE",
                    help="write the machine-readable report "
                         "(docs/schema/repro-resilience.schema.json)")
    ap.add_argument("--html", metavar="FILE",
                    help="write the self-contained HTML report")
    _obs_args(ap)
    args = ap.parse_args(argv)

    from .experiments.parallel import ExperimentEngine, GridExecutionError
    from .experiments.resilience import (
        render_html, render_text, resilience_sweep, to_json,
    )
    from .perturb.scenarios import SCENARIO_KINDS

    if args.list_scenarios:
        from .perturb.scenarios import build_scenario
        for kind in sorted(SCENARIO_KINDS):
            sched = build_scenario(kind, 1.0, args.seed)
            print(f"{kind:<15} {sched.describe()}")
        return 0
    apps = tuple(a.lower() for a in args.apps) or tuple(sorted(APPS))
    unknown = sorted(set(apps) - set(APPS))
    if unknown:
        ap.error(f"unknown apps: {', '.join(unknown)} "
                 f"(choose from {', '.join(sorted(APPS))})")
    scenarios = None
    if args.scenarios:
        scenarios = tuple(s.strip() for s in args.scenarios.split(",")
                          if s.strip())
        bad = sorted(set(scenarios) - set(SCENARIO_KINDS))
        if bad:
            ap.error(f"unknown scenarios: {', '.join(bad)} "
                     f"(choose from {', '.join(sorted(SCENARIO_KINDS))})")

    with _observed(args, "repro-resilience"):
        engine = ExperimentEngine(jobs=args.jobs, cache_dir=args.cache_dir,
                                  degraded=args.degraded)
        try:
            report = resilience_sweep(
                apps, scenarios=scenarios, seed=args.seed,
                nranks=args.nranks, chunks=args.chunks, engine=engine,
            )
        except GridExecutionError as exc:
            print(str(exc), file=sys.stderr)
            print("re-run with --degraded to keep the surviving cells",
                  file=sys.stderr)
            return EXIT_TIMEOUT if "watchdog" in str(exc) else 1
        finally:
            engine.close()
        print(render_text(report))
        if args.json:
            import json as _json
            with open(args.json, "w") as fh:
                _json.dump(to_json(report), fh, indent=1)
                fh.write("\n")
            print(f"wrote {args.json}")
        if args.html:
            with open(args.html, "w") as fh:
                fh.write(render_html(report))
            print(f"wrote {args.html}")
    return 0


@_interruptible
def main_report(argv: list[str] | None = None) -> int:
    """``repro-report [--nranks N] [--no-bandwidth] [-j N] [--cache-dir D]``"""
    ap = argparse.ArgumentParser(
        prog="repro-report",
        description="Regenerate the paper's tables and figures.",
    )
    ap.add_argument("--nranks", type=int, default=64)
    ap.add_argument("--no-bandwidth", action="store_true")
    ap.add_argument("--apps", default=None, metavar="APP[,APP...]",
                    help="comma-separated subset of the paper pool "
                         "(default: all six applications)")
    ap.add_argument("-j", "--jobs", type=int, default=1,
                    help="worker processes for the replay grids "
                         "(default: 1, serial)")
    ap.add_argument("--cache-dir", default=None,
                    help="persist traces and replay results in this "
                         "directory (shared by all workers; re-runs are "
                         "nearly free)")
    ap.add_argument("--degraded", action="store_true",
                    help="report FAILED rows instead of aborting when "
                         "replays keep failing")
    ap.add_argument("--verify-sample", type=float, default=None, metavar="P",
                    help="determinism spot-check: re-replay this fraction "
                         "(0..1) of cached and worker-returned grid points "
                         "in-process; digest mismatches are quarantined "
                         "and re-executed (default: $REPRO_VERIFY_SAMPLE)")
    ap.add_argument("--explain", action="store_true",
                    help="append per-app overlap explanations (wait-state "
                         "attribution scorecards and verdicts)")
    g = ap.add_argument_group("checkpoint/resume")
    g.add_argument("--resume", default=None, metavar="RUN_ID",
                   help="resume an interrupted campaign: replay its "
                        "journal, re-run only the missing points, and "
                        "continue under the same run manifest")
    g.add_argument("--list-runs", action="store_true",
                   help="list resumable runs under the obs dir (with "
                        "point-completion progress) and exit")
    _obs_args(ap)
    args = ap.parse_args(argv)
    from .experiments.checkpoint import (
        CheckpointJournal, list_runs, render_runs_table,
    )
    from .experiments.report import full_report

    if args.list_runs:
        print(render_runs_table(list_runs(_default_obs_dir(args))))
        return 0
    if args.resume:
        from pathlib import Path
        if not (Path(_default_obs_dir(args)) / args.resume).is_dir():
            ap.error(f"no run {args.resume!r} under "
                     f"{_default_obs_dir(args)} (try --list-runs)")
    kwargs = {}
    if args.apps:
        apps = tuple(a.strip() for a in args.apps.split(",") if a.strip())
        unknown = sorted(set(apps) - set(APPS))
        if unknown:
            ap.error(f"unknown apps: {', '.join(unknown)} "
                     f"(choose from {', '.join(sorted(APPS))})")
        kwargs["apps"] = apps
    with _observed(args, "repro-report", run_id=args.resume,
                   resume=bool(args.resume)) as run:
        journal = None
        if run is not None:
            journal = CheckpointJournal(run.dir / "journal.jsonl",
                                        run_id=run.run_id)
        try:
            print(full_report(nranks=args.nranks,
                              include_bandwidth=not args.no_bandwidth,
                              jobs=args.jobs, cache_dir=args.cache_dir,
                              degraded=args.degraded, checkpoint=journal,
                              verify_sample=args.verify_sample,
                              explain=args.explain,
                              **kwargs))
        finally:
            if journal is not None:
                journal.close()
    return 0


def _verify_targets(paths: list[str], error) -> list:
    """Expand ``repro-verify`` operands into trace file paths."""
    from pathlib import Path

    targets = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            found = sorted(q for q in p.iterdir()
                           if q.suffix in (".dim", ".rct"))
            if not found:
                error(f"no .dim/.rct traces under {raw}")
            targets.extend(found)
        elif p.exists():
            targets.append(p)
        else:
            error(f"no such trace: {raw}")
    return targets


@_interruptible
def main_verify(argv: list[str] | None = None) -> int:
    """``repro-verify TRACE [TRACE...]`` — certify trace integrity.

    For each ``.dim`` / ``.rct`` file (or every one in a directory):
    structural validation, an audited replay, and a double-replay
    determinism check.  Any violation fails the certification and the
    command exits with :data:`EXIT_INTEGRITY`.
    """
    ap = argparse.ArgumentParser(
        prog="repro-verify",
        description="Certify trace integrity: validation, audited replay, "
                    "double-replay determinism check.",
    )
    ap.add_argument("paths", nargs="+", metavar="TRACE",
                    help=".dim/.rct trace files or directories of them")
    ap.add_argument("--level", choices=("basic", "full"), default="full",
                    help="audit depth for the replay pass (default: full)")
    ap.add_argument("--no-double-replay", action="store_true",
                    help="skip the second replay / digest comparison")
    ap.add_argument("--report", action="store_true",
                    help="print the full integrity report for every "
                         "trace, not only the failing ones")
    _machine_args(ap)
    _obs_args(ap)
    args = ap.parse_args(argv)

    from .audit.certify import certify_trace
    from .trace.columnar import ColumnarFormatError, decode
    from .trace.dim import TraceFormatError

    targets = _verify_targets(args.paths, ap.error)
    machine = _machine(args)
    failed = 0
    with _observed(args, "repro-verify"):
        for path in targets:
            try:
                if path.suffix == ".rct":
                    trace = decode(path.read_bytes())
                else:
                    trace = dim.load(str(path))
            except (TraceFormatError, ColumnarFormatError, OSError) as exc:
                failed += 1
                print(f"FAIL {path}: unreadable trace: {exc}")
                continue
            report = certify_trace(
                trace, machine=machine, level=args.level,
                double_replay=not args.no_double_replay,
            )
            verdict = "PASS" if report.ok else "FAIL"
            print(f"{verdict} {path}: {report.nranks} ranks, "
                  f"{len(report.checks)} checks, "
                  f"{len(report.violations)} violations")
            if not report.ok:
                failed += 1
            if not report.ok or args.report:
                print(report.render())
        n = len(targets)
        print(f"verified {n} trace{'s' if n != 1 else ''}: "
              f"{n - failed} passed, {failed} failed")
    return EXIT_INTEGRITY if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main_trace())
