"""Resource caps for trace ingestion.

Trace files cross trust boundaries — they arrive from caches that any
process may have corrupted, from other machines, and (in the fuzz
harness) from an adversarial mutator.  The parsers therefore enforce
hard ceilings *before* allocating: total input bytes, rank count,
record count, and line length.  Exceeding a cap raises the parser's
own typed error (:class:`~repro.trace.dim.TraceFormatError` /
:class:`~repro.trace.columnar.ColumnarFormatError`), never ``MemoryError``.

The caps resolve from the environment on every load (cheap — four
``getenv`` calls per file, not per record):

===========================  =====================================
``REPRO_MAX_TRACE_MB``       total input size in MiB (default 512)
``REPRO_MAX_RANKS``          processes per trace (default 65536)
``REPRO_MAX_RECORDS``        records per trace (default 20 million)
``REPRO_MAX_LINE_LEN``       bytes per text line (default 1 MiB)
===========================  =====================================

A value ``<= 0`` disables that cap.  This module deliberately imports
nothing from the rest of the package, so both trace codecs can depend
on it without cycles.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["IngestLimits", "ingest_limits"]

_UNLIMITED = float("inf")


@dataclass(frozen=True)
class IngestLimits:
    """Hard ceilings one parser invocation enforces."""

    max_trace_bytes: float = 512 * 1024 * 1024
    max_ranks: float = 65536
    max_records: float = 20_000_000
    max_line_len: float = 1024 * 1024


def _env_cap(name: str, default: float, scale: float = 1.0) -> float:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    return value * scale if value > 0 else _UNLIMITED


def ingest_limits() -> IngestLimits:
    """The caps currently in force (environment-resolved)."""
    d = IngestLimits()
    return IngestLimits(
        max_trace_bytes=_env_cap(
            "REPRO_MAX_TRACE_MB", d.max_trace_bytes, scale=1024 * 1024
        ),
        max_ranks=_env_cap("REPRO_MAX_RANKS", d.max_ranks),
        max_records=_env_cap("REPRO_MAX_RECORDS", d.max_records),
        max_line_len=_env_cap("REPRO_MAX_LINE_LEN", d.max_line_len),
    )
