"""The invariant auditor: integrity checks over one replay.

Design constraint: :func:`~repro.dimemas.replay.simulate` is the inner
loop of every experiment, so the audit machinery must cost nothing
when off and stay cheap at ``basic``.  Almost every invariant is
therefore checked *post hoc* on state the replay materializes anyway
(state intervals, transfer slots, the request map, the network's
resource counters) — zero instructions added to the dispatch loop.
The only live hooks are:

* one ``is None`` branch per *started transfer* in the network (the
  occupancy check must see the counters mid-flight, not just at the
  end), and
* ring-buffer capture of block/resume/transfer events at ``full``
  level, attached only to the (rare) blocking paths of the rank
  runner — never to the per-record hot loop.

Violations carry the last-K-events causal ring of every involved rank
(``full`` level), aggregate into an :class:`IntegrityReport`, and are
emitted as ``audit.*`` metrics/events through :mod:`repro.obs`.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass, field

from ..dimemas.postmortem import ReplayError
from ..obs import current_run, get_registry

__all__ = [
    "AUDIT_LEVELS",
    "AuditConfig",
    "IntegrityError",
    "IntegrityReport",
    "InvariantAuditor",
    "Violation",
    "resolve_level",
]

#: Recognized audit levels, in increasing depth.
AUDIT_LEVELS = ("off", "basic", "full")

#: Interval/clock comparisons tolerate accumulated float rounding.
_EPS = 1e-9

#: Causal ring depth (events kept per rank at ``full`` level).
_DEFAULT_RING = 16


def resolve_level(level: "str | AuditConfig | None" = None) -> str:
    """Normalize an audit level (``None`` -> ``$REPRO_AUDIT`` -> off)."""
    if isinstance(level, AuditConfig):
        return level.level
    if level is None:
        level = os.environ.get("REPRO_AUDIT") or "off"
    level = str(level).strip().lower()
    if level not in AUDIT_LEVELS:
        raise ValueError(
            f"unknown audit level {level!r}; pick from {AUDIT_LEVELS}"
        )
    return level


@dataclass
class AuditConfig:
    """How one :func:`~repro.dimemas.replay.simulate` call is audited.

    ``report`` is filled in by the replay on completion, so callers
    passing a config object get the :class:`IntegrityReport` back even
    when ``strict`` is off and no exception fires.
    """

    level: str = "basic"
    #: Raise :class:`IntegrityError` when any violation is found.
    strict: bool = False
    #: Causal ring depth per rank (``full`` level only).
    ring: int = _DEFAULT_RING
    #: The last replay's report (output parameter).
    report: "IntegrityReport | None" = None

    @classmethod
    def coerce(cls, value: "AuditConfig | str | None") -> "AuditConfig | None":
        """``None``/"off" -> None; a level string -> a fresh config."""
        if value is None:
            return None
        if isinstance(value, cls):
            return None if value.level == "off" else value
        level = resolve_level(value)
        return None if level == "off" else cls(level=level)


@dataclass
class Violation:
    """One broken invariant, attributed to the ranks involved."""

    #: Stable machine-readable identifier, e.g. ``clock.monotonicity``.
    code: str
    message: str
    ranks: tuple[int, ...] = ()
    #: Simulated time the violation refers to (None = whole-run).
    time: float | None = None
    #: Last-K causal events per involved rank (``full`` level).
    context: dict[int, list[str]] = field(default_factory=dict)

    def render(self) -> str:
        where = ",".join(str(r) for r in self.ranks) or "-"
        at = f" t={self.time:.9g}" if self.time is not None else ""
        lines = [f"[{self.code}] ranks={where}{at}: {self.message}"]
        for rank in sorted(self.context):
            lines.append(f"  rank {rank} last events:")
            lines.extend(f"    {ev}" for ev in self.context[rank])
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "message": self.message,
            "ranks": list(self.ranks),
            "time": self.time,
            "context": {str(r): list(v) for r, v in self.context.items()},
        }


class IntegrityError(ReplayError):
    """A strict audit found violations; ``report`` carries them all."""

    def __init__(self, report: "IntegrityReport"):
        self.report = report
        head = "; ".join(
            f"[{v.code}] {v.message}" for v in report.violations[:3]
        )
        more = len(report.violations) - 3
        super().__init__(
            f"replay integrity audit failed with "
            f"{len(report.violations)} violation(s): {head}"
            + (f"; and {more} more" if more > 0 else "")
        )


@dataclass
class IntegrityReport:
    """Aggregate outcome of one audited replay (or certification)."""

    level: str
    nranks: int = 0
    #: Names of the invariant checks that actually ran.
    checks: tuple[str, ...] = ()
    violations: list[Violation] = field(default_factory=list)
    #: Content digest of the audited trace, when known.
    trace_digest: str | None = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def for_rank(self, rank: int) -> list[Violation]:
        """Violations attributed to one rank."""
        return [v for v in self.violations if rank in v.ranks]

    def render(self) -> str:
        head = (
            f"integrity audit ({self.level}): "
            f"{len(self.checks)} check(s) on {self.nranks} rank(s)"
        )
        if self.ok:
            return head + " -- clean"
        lines = [head + f" -- {len(self.violations)} violation(s)"]
        lines.extend(v.render() for v in self.violations)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "level": self.level,
            "nranks": self.nranks,
            "checks": list(self.checks),
            "ok": self.ok,
            "trace_digest": self.trace_digest,
            "violations": [v.to_dict() for v in self.violations],
        }


class InvariantAuditor:
    """Collects invariant checks around one :class:`_Simulation`.

    Attach with ``network.auditor = auditor`` (live occupancy checks)
    and pass to the rank runners (ring capture at ``full``); call
    :meth:`finish` once the event loop drains to run the post-hoc
    checks and build the report.
    """

    def __init__(self, config: AuditConfig):
        self.config = config
        self.level = config.level
        self.full = config.level == "full"
        self.violations: list[Violation] = []
        self._checks: list[str] = []
        self._rings: dict[int, deque] = {}
        self._ring_len = max(1, int(config.ring))
        #: Network capacities captured at attach time.
        self._cap_buses: float = float("inf")
        self._cap_in = 1
        self._cap_out = 1

    # -- event ring (full level) ------------------------------------------
    def note(self, rank: int, t: float, text: str) -> None:
        """Append one causal event to ``rank``'s ring buffer."""
        ring = self._rings.get(rank)
        if ring is None:
            ring = self._rings[rank] = deque(maxlen=self._ring_len)
        ring.append(f"t={t:.9g} {text}")

    def _context(self, ranks: tuple[int, ...]) -> dict[int, list[str]]:
        return {
            r: list(self._rings[r]) for r in ranks if r in self._rings
        }

    def _add(
        self,
        code: str,
        message: str,
        ranks: tuple[int, ...] = (),
        time: float | None = None,
    ) -> None:
        self.violations.append(Violation(
            code=code, message=message, ranks=ranks, time=time,
            context=self._context(ranks),
        ))

    # -- live network hooks -------------------------------------------------
    def attach_network(self, network) -> None:
        """Record the capacity the occupancy check enforces."""
        cfg = network.cfg
        self._cap_buses = (
            float(cfg.buses) if cfg.buses is not None else float("inf")
        )
        self._cap_in = cfg.input_ports
        self._cap_out = cfg.output_ports
        network.auditor = self

    def check_occupancy(self, network, transfer) -> None:
        """Called by the network right after a transfer takes resources.

        Free-resource counters dipping below zero mean more concurrent
        occupancy than the machine has buses/ports — the congestion
        model's core promise.
        """
        t = network.loop.now
        if network._free_buses < 0:
            self._add(
                "network.occupancy",
                f"bus occupancy exceeds capacity "
                f"({self._cap_buses:g} buses configured)",
                (transfer.src, transfer.dst), t,
            )
        if network._free_out[transfer.src] < 0:
            self._add(
                "network.occupancy",
                f"output-port occupancy of rank {transfer.src} exceeds "
                f"capacity ({self._cap_out} port(s))",
                (transfer.src,), t,
            )
        if network._free_in[transfer.dst] < 0:
            self._add(
                "network.occupancy",
                f"input-port occupancy of rank {transfer.dst} exceeds "
                f"capacity ({self._cap_in} port(s))",
                (transfer.dst,), t,
            )
        if self.full:
            self.note(
                transfer.src, t,
                f"xfer start -> {transfer.dst} ({transfer.size}B)",
            )
            self.note(
                transfer.dst, t,
                f"xfer start <- {transfer.src} ({transfer.size}B)",
            )

    def check_release(self, network, transfer) -> None:
        """Called after a transfer releases its resources.

        A free counter climbing above capacity means a double release —
        the symmetric bug to over-subscription.
        """
        t = network.loop.now
        if network._free_buses > self._cap_buses:
            self._add(
                "network.occupancy",
                "bus released more often than acquired",
                (transfer.src, transfer.dst), t,
            )
        if network._free_out[transfer.src] > self._cap_out:
            self._add(
                "network.occupancy",
                f"output port of rank {transfer.src} released more often "
                "than acquired",
                (transfer.src,), t,
            )
        if network._free_in[transfer.dst] > self._cap_in:
            self._add(
                "network.occupancy",
                f"input port of rank {transfer.dst} released more often "
                "than acquired",
                (transfer.dst,), t,
            )
        if self.full:
            self.note(
                transfer.dst, t,
                f"xfer injected <- {transfer.src} ({transfer.size}B)",
            )

    # -- post-hoc checks ------------------------------------------------------
    def _check_clocks(self, result) -> None:
        """Per-rank monotone, non-overlapping, non-negative intervals.

        The runner's ``_resume`` clamps a backwards completion time to
        ``now`` (defensive), which would *hide* a causality bug from a
        naive end-time check — the interval lists are the ground truth,
        so overlap/negative-length here catches what the clamp masks.
        """
        self._checks.append("clock.monotonicity")
        for rank, intervals in enumerate(result.states):
            prev_end = 0.0
            for label, t0, t1 in intervals:
                if t0 < -_EPS:
                    self._add(
                        "clock.monotonicity",
                        f"state {label!r} starts before t=0 ({t0:.9g})",
                        (rank,), t0,
                    )
                if t1 < t0 - _EPS:
                    self._add(
                        "duration.negative",
                        f"state {label!r} has negative length "
                        f"({t0:.9g} -> {t1:.9g})",
                        (rank,), t0,
                    )
                if t0 < prev_end - _EPS:
                    self._add(
                        "clock.monotonicity",
                        f"state {label!r} at {t0:.9g} overlaps the previous "
                        f"interval ending {prev_end:.9g}",
                        (rank,), t0,
                    )
                prev_end = max(prev_end, t1)
            end = result.rank_end[rank]
            if end < prev_end - _EPS:
                self._add(
                    "clock.monotonicity",
                    f"rank clock ends at {end:.9g} before its last state "
                    f"interval ({prev_end:.9g})",
                    (rank,), end,
                )

    def _check_transfers(self, sim) -> None:
        """Transfer timing sanity and byte conservation."""
        self._checks.append("bytes.conservation")
        self._checks.append("duration.transfer")
        matched = injected = delivered = 0
        for tr in sim.transfers:
            matched += tr.size
            if tr.injected:
                injected += tr.size
            if tr.arrived:
                delivered += tr.size
            ranks = (tr.src, tr.dst)
            if tr.size < 0:
                self._add(
                    "duration.transfer",
                    f"negative transfer size {tr.size}", ranks,
                )
            if tr.start_time is not None and tr.send_time is not None \
                    and tr.start_time < tr.send_time - _EPS:
                self._add(
                    "duration.transfer",
                    f"transfer hit the wire at {tr.start_time:.9g} before "
                    f"its send at {tr.send_time:.9g}",
                    ranks, tr.start_time,
                )
            if tr.arrival_time is not None and tr.start_time is not None \
                    and tr.arrival_time < tr.start_time - _EPS:
                self._add(
                    "duration.transfer",
                    f"transfer arrived at {tr.arrival_time:.9g} before "
                    f"starting at {tr.start_time:.9g}",
                    ranks, tr.arrival_time,
                )
        if not (matched == injected == delivered):
            self._add(
                "bytes.conservation",
                f"byte conservation broken: {matched} byte(s) matched, "
                f"{injected} injected, {delivered} delivered",
            )

    def _check_requests(self, sim) -> None:
        """Every posted ISend/IRecv request waited exactly once, and
        every waited request completed (arrived) by end of run."""
        self._checks.append("request.lifecycle")
        plan = sim.plan
        for rank in range(sim.nranks):
            counts: dict[int, int] = {}
            for reqs in plan.waits[rank].values():
                for req in reqs:
                    counts[req] = counts.get(req, 0) + 1
            posted = {
                req: entry for (r, req), entry in sim.req_map.items()
                if r == rank
            }
            for req, n in counts.items():
                if n > 1:
                    self._add(
                        "request.lifecycle",
                        f"request {req} waited {n} times", (rank,),
                    )
                entry = posted.get(req)
                if entry is not None:
                    kind, tr = entry
                    # Eager send requests buffer-complete at the call;
                    # everything else must have completed by now for
                    # the wait to have returned.
                    if (kind != "send" or tr.rendezvous) and not tr.arrived:
                        self._add(
                            "request.lifecycle",
                            f"request {req} was waited but its transfer "
                            "never completed",
                            (rank,),
                        )
            for req in posted:
                if counts.get(req, 0) == 0:
                    self._add(
                        "request.lifecycle",
                        f"request {req} posted but never waited", (rank,),
                    )

    def _check_quiescence(self, sim) -> None:
        """End-of-run: empty event queue, no in-flight transfers, all
        network resources returned to capacity."""
        self._checks.append("quiescence")
        net = sim.network
        if sim.loop.pending:
            self._add(
                "quiescence",
                f"{sim.loop.pending} event(s) still queued after the "
                "replay drained",
            )
        if net._queue:
            self._add(
                "quiescence",
                f"{len(net._queue)} transfer(s) still queued for "
                "network resources",
            )
        stuck = [
            tr for tr in sim.transfers
            if tr.send_time is not None and not tr.arrived
        ]
        if stuck:
            ranks = tuple(sorted({r for t in stuck for r in (t.src, t.dst)}))
            self._add(
                "quiescence",
                f"{len(stuck)} submitted transfer(s) never delivered",
                ranks,
            )
        if net._active != 0:
            self._add(
                "quiescence",
                f"{net._active} transfer(s) still hold network resources",
            )
        if net._free_buses != self._cap_buses:
            self._add(
                "network.occupancy",
                f"bus pool ended at {net._free_buses:g} free of "
                f"{self._cap_buses:g} (resource leak)",
            )
        for rank in range(sim.nranks):
            if net._free_out[rank] != self._cap_out:
                self._add(
                    "network.occupancy",
                    f"output ports of rank {rank} ended at "
                    f"{net._free_out[rank]} free of {self._cap_out}",
                    (rank,),
                )
            if net._free_in[rank] != self._cap_in:
                self._add(
                    "network.occupancy",
                    f"input ports of rank {rank} ended at "
                    f"{net._free_in[rank]} free of {self._cap_in}",
                    (rank,),
                )

    def _check_plan_durations(self, sim) -> None:
        """``full`` only: scan every CpuBurst duration in the plan."""
        from ..trace.columnar import OP_CPU
        self._checks.append("duration.burst")
        plan = sim.plan
        for rank in range(sim.nranks):
            ops = plan.ops[rank]
            durs = plan.durs[rank]
            for i, op in enumerate(ops):
                if op == OP_CPU and not durs[i] >= 0.0:
                    self._add(
                        "duration.burst",
                        f"CpuBurst at record {i} has invalid duration "
                        f"{durs[i]!r}",
                        (rank,),
                    )

    def finish(self, sim, result) -> IntegrityReport:
        """Run the post-hoc checks and aggregate the report.

        Also rolls the outcome into the ``audit.*`` metrics and, when a
        run manifest is active, records an ``audit_violations`` event.
        """
        self._checks.append("network.occupancy")  # live hook ran throughout
        self._check_clocks(result)
        self._check_transfers(sim)
        self._check_requests(sim)
        self._check_quiescence(sim)
        if self.full:
            self._check_plan_durations(sim)
        report = IntegrityReport(
            level=self.level,
            nranks=sim.nranks,
            checks=tuple(dict.fromkeys(self._checks)),
            violations=list(self.violations),
            trace_digest=sim.plan.digest,
        )
        reg = get_registry()
        reg.counter("audit.replays").inc()
        reg.counter("audit.checks").inc(len(report.checks))
        if not report.ok:
            reg.counter("audit.violations").inc(len(report.violations))
            run = current_run()
            if run is not None:
                run.record(
                    "audit_violations",
                    count=len(report.violations),
                    codes=sorted({v.code for v in report.violations}),
                    trace_digest=report.trace_digest,
                )
        self.config.report = report
        return report
