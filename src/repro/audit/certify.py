"""Determinism certification: digests, divergence, trace certification.

Three layers of trust checking on top of the invariant auditor:

* :func:`result_digest` — a stable content hash over a
  :class:`~repro.dimemas.results.SimResult`.  Floats are encoded via
  ``repr`` (the same bit-exact round-trip the caches rely on), so two
  results digest equal iff they are value-identical.
* :func:`divergence` — per-rank attribution of *where* two results of
  the same trace differ (state intervals, events, end times, outgoing
  message flights).  This is how a structurally benign perturbation —
  e.g. the ``skew`` fault injector — is pinned to the rank it touched.
* :func:`certify_trace` — the ``repro-verify`` pipeline for one trace:
  structural validation, an audited replay, and (optionally) a second
  replay compared digest-for-digest.  Everything folds into one
  :class:`~repro.audit.auditor.IntegrityReport`.
"""

from __future__ import annotations

import hashlib
import json
from collections import defaultdict

from .auditor import AuditConfig, IntegrityReport, Violation, resolve_level

__all__ = ["certify_trace", "divergence", "result_digest"]


def result_digest(result) -> str:
    """Stable 24-hex content digest of a :class:`SimResult`.

    Canonical JSON over :meth:`~repro.dimemas.results.SimResult.to_dict`
    (sorted keys, ``repr``-exact floats): bit-identical results — and
    only those — share a digest, so comparing digests is comparing
    simulations.
    """
    blob = json.dumps(
        result.to_dict(), sort_keys=True, separators=(",", ":"),
        default=repr,
    ).encode()
    return hashlib.sha256(blob).hexdigest()[:24]


def _rank_fingerprints(result) -> list[tuple]:
    """Per-rank observable behaviour: (end, states, events, out-msgs)."""
    outgoing: dict[int, list] = defaultdict(list)
    for m in result.messages:
        outgoing[m.src].append((m.t_send, m.dst, m.size, m.tag))
    return [
        (
            result.rank_end[r],
            tuple(result.states[r]) if r < len(result.states) else (),
            tuple(result.events[r]) if r < len(result.events) else (),
            tuple(outgoing.get(r, ())),
        )
        for r in range(result.nranks)
    ]


def divergence(baseline, other) -> list[Violation]:
    """Rank-attributed differences between two results of one trace.

    Compares, per rank: end time, state intervals, user events, and
    the outgoing message flights (send time/destination/size/tag).
    Returns one ``determinism.divergence`` violation per differing
    rank — empty when the results describe the same execution.
    """
    if baseline.nranks != other.nranks:
        return [Violation(
            code="determinism.divergence",
            message=(
                f"rank count differs: {baseline.nranks} vs {other.nranks}"
            ),
        )]
    out: list[Violation] = []
    parts = ("end time", "state intervals", "events", "outgoing messages")
    for rank, (a, b) in enumerate(
        zip(_rank_fingerprints(baseline), _rank_fingerprints(other))
    ):
        if a == b:
            continue
        what = [name for name, x, y in zip(parts, a, b) if x != y]
        out.append(Violation(
            code="determinism.divergence",
            message=(
                f"rank {rank} diverges from the baseline replay "
                f"({', '.join(what)})"
            ),
            ranks=(rank,),
        ))
    return out


def _matching_violations(trace) -> list[Violation]:
    """Endpoint-attributed point-to-point matching checks.

    :func:`repro.trace.validate.validate` reports count mismatches as
    *global* issues (no rank); for certification we want the fault
    pinned to the endpoints of the broken key, so both endpoints are
    ranked here — the perturbed rank is always one of the two.
    """
    from ..trace.records import IRecv, ISend, Recv, Send

    sends: dict[tuple, list[int]] = defaultdict(list)
    recvs: dict[tuple, list[int]] = defaultdict(list)
    for proc in trace:
        for rec in proc.records:
            if isinstance(rec, (Send, ISend)):
                key = (proc.rank, rec.peer, rec.context, rec.channel,
                       rec.tag, rec.sub)
                sends[key].append(rec.size)
            elif isinstance(rec, (Recv, IRecv)):
                key = (rec.peer, proc.rank, rec.context, rec.channel,
                       rec.tag, rec.sub)
                recvs[key].append(rec.size)
    out: list[Violation] = []
    for key in sorted(set(sends) | set(recvs)):
        src, dst = key[0], key[1]
        s, r = sends.get(key, []), recvs.get(key, [])
        if len(s) != len(r):
            out.append(Violation(
                code="match.cardinality",
                message=(
                    f"key src={src} dst={dst} tag={key[4]}: "
                    f"{len(s)} send(s) vs {len(r)} recv(s)"
                ),
                ranks=(src, dst),
            ))
        for i, (ssize, rsize) in enumerate(zip(s, r)):
            if ssize != rsize:
                out.append(Violation(
                    code="match.size",
                    message=(
                        f"key src={src} dst={dst} tag={key[4]} pair {i}: "
                        f"send {ssize} byte(s) vs recv {rsize}"
                    ),
                    ranks=(src, dst),
                ))
    return out


def certify_trace(
    trace,
    machine=None,
    level: str = "full",
    baseline=None,
    double_replay: bool = False,
) -> IntegrityReport:
    """Certify one trace: validate, audited replay, determinism check.

    Stages (all folded into the returned report):

    1. structural validation (:func:`repro.trace.validate.validate`),
       rank-attributed issues becoming ``validate.structure``
       violations, plus endpoint-attributed matching checks;
    2. an audited replay at ``level`` — a deadlock or watchdog becomes
       a ``replay.deadlock`` / ``replay.watchdog`` violation naming the
       blocked ranks, otherwise the auditor's violations are folded in;
    3. determinism: with ``double_replay`` the trace replays a second
       time and the two result digests must agree; with ``baseline``
       (a :class:`SimResult` of the *unperturbed* trace) any per-rank
       divergence is attributed via :func:`divergence`.

    ``trace`` may be a :class:`TraceSet` or a ``ColumnarTrace``.
    """
    from ..dimemas.machine import MachineConfig
    from ..dimemas.replay import DeadlockError, SimulationTimeout, simulate
    from ..trace.validate import validate

    level = resolve_level(level)
    cfg = machine or MachineConfig()
    record_form = trace
    if not hasattr(trace, "__iter__") or not hasattr(trace, "meta"):
        record_form = None
    if record_form is None and hasattr(trace, "to_traceset"):
        record_form = trace.to_traceset()

    violations: list[Violation] = []
    checks = ["validate.structure", "match"]
    nranks = trace.nranks

    if record_form is not None:
        report = validate(record_form)
        for issue in report.issues:
            ranks = (issue.rank,) if issue.rank is not None else ()
            violations.append(Violation(
                code="validate.structure", message=str(issue), ranks=ranks,
            ))
        violations.extend(_matching_violations(record_form))

    audit = AuditConfig(
        level=level if level != "off" else "basic", strict=False,
    )
    result = None
    try:
        result = simulate(trace, cfg, audit=audit)
    except DeadlockError as exc:
        blocked = tuple(sorted({
            b.rank for b in exc.report.blocked
        } | {
            b.peer for b in exc.report.blocked if b.peer is not None
        }))
        violations.append(Violation(
            code="replay.deadlock",
            message=f"replay deadlocked: {len(exc.report.blocked)} "
                    "rank(s) blocked",
            ranks=blocked,
            time=exc.report.sim_time,
        ))
    except SimulationTimeout as exc:
        violations.append(Violation(
            code="replay.watchdog",
            message=f"replay watchdog expired ({exc.reason})",
        ))
    else:
        if audit.report is not None:
            checks.extend(audit.report.checks)
            violations.extend(audit.report.violations)
        if double_replay:
            checks.append("determinism.double_replay")
            second = simulate(trace, cfg, audit=None)
            d0, d1 = result_digest(result), result_digest(second)
            if d0 != d1:
                violations.append(Violation(
                    code="determinism.double_replay",
                    message=(
                        f"two replays of the same trace produced "
                        f"different results ({d0} vs {d1})"
                    ),
                ))
        if baseline is not None:
            checks.append("determinism.divergence")
            violations.extend(divergence(baseline, result))

    digest = None
    try:
        from ..trace.columnar import columnar_of
        digest = columnar_of(trace).digest
    except (TypeError, ValueError):
        pass
    return IntegrityReport(
        level=level,
        nranks=nranks,
        checks=tuple(dict.fromkeys(checks)),
        violations=violations,
        trace_digest=digest,
    )
