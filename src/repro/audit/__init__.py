"""Simulation integrity: invariant auditing and determinism certification.

The paper's numbers are only as good as the replay engine behind them —
a silent simulator bug (a dropped flight, a port over-subscription, a
nondeterministic worker result) corrupts every overlap figure
downstream.  This package is the correctness backbone that checks the
engine's *output* rather than trusting it:

* :class:`InvariantAuditor` — runtime/post-hoc invariant checks hooked
  into the replay (:mod:`repro.dimemas.replay`) and the network model
  (:mod:`repro.dimemas.network`): clock monotonicity, non-negative
  durations, bus/port occupancy within :class:`MachineConfig` capacity,
  request lifecycle, byte conservation, end-of-run quiescence.
  Levels ``off``/``basic``/``full`` (``--audit`` / ``$REPRO_AUDIT``);
  violations aggregate into an :class:`IntegrityReport` and, with
  ``strict=True``, raise :class:`IntegrityError`.
* :func:`result_digest` / :func:`certify_trace` / :func:`divergence` —
  determinism certification: content digests over
  :class:`~repro.dimemas.results.SimResult`, double-replay comparison,
  and per-rank attribution of timeline divergence (how the
  ``--verify-sample`` engine option and ``repro-verify`` decide that a
  cached or worker-returned result is *the* result).
* :class:`IngestLimits` — resource caps for the trace parsers
  (``$REPRO_MAX_TRACE_MB`` and friends), so a hostile or corrupt input
  is a typed parse error, never an allocation bomb.
"""

# Submodules resolve lazily (PEP 562): the trace codecs import
# ``repro.audit.limits`` and the replay engine imports
# ``repro.audit.auditor``, while the auditor itself builds on the
# replay's error taxonomy — eager imports here would close that loop.
_EXPORTS = {
    "AUDIT_LEVELS": "auditor",
    "AuditConfig": "auditor",
    "IntegrityError": "auditor",
    "IntegrityReport": "auditor",
    "InvariantAuditor": "auditor",
    "Violation": "auditor",
    "resolve_level": "auditor",
    "certify_trace": "certify",
    "divergence": "certify",
    "result_digest": "certify",
    "IngestLimits": "limits",
    "ingest_limits": "limits",
}


def __getattr__(name):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module
    value = getattr(import_module(f".{module}", __name__), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = [
    "AUDIT_LEVELS",
    "AuditConfig",
    "IngestLimits",
    "IntegrityError",
    "IntegrityReport",
    "InvariantAuditor",
    "Violation",
    "certify_trace",
    "divergence",
    "ingest_limits",
    "resolve_level",
    "result_digest",
]
