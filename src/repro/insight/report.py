"""Renderers of :class:`~repro.insight.explain.Explanation`.

Three faces of one analysis:

* :func:`render_text` — the terminal report ``repro-explain`` prints;
* :func:`to_json` — the machine-readable document (validated against
  ``docs/schema/repro-explain.schema.json`` in CI);
* :func:`render_html` — a self-contained page embedding the SVG
  timelines of every variant, the attribution tables, the scorecard,
  and the critical-path breakdown: the artifact to attach to a ticket
  when arguing about why a code does not overlap.
"""

from __future__ import annotations

import html as _html
import math

from .attribution import CAUSES, WaitAttribution
from .explain import Explanation

__all__ = ["render_html", "render_text", "to_json"]

#: JSON document identifier (bump on breaking changes).
SCHEMA_ID = "repro-explain/1"

#: Short column headers of the cause vocabulary.
_CAUSE_SHORT = {
    "late_sender": "late-snd",
    "dependency_chain": "dep-chain",
    "bus_contention": "bus",
    "injection_port": "port-out",
    "endpoint_port": "port-in",
    "transfer": "transfer",
    "perturbation": "perturb",
    "collective": "collectiv",
    "unresolved": "unresolv",
}


def _fmt_ms(x: float) -> str:
    return f"{x * 1e3:.3f}"


def _fmt_frac(x: float) -> str:
    return "  n/a" if (x != x) else f"{100 * x:5.1f}"


# ---------------------------------------------------------------------- #
# Text
# ---------------------------------------------------------------------- #
def _attribution_table(attr: WaitAttribution, top_ranks: int = 8) -> str:
    """Rank x cause seconds table (worst ``top_ranks`` ranks + total)."""
    header = f"{'rank':>6} " + " ".join(
        f"{_CAUSE_SHORT[c]:>9}" for c in CAUSES
    ) + f" {'total ms':>9}"
    order = sorted(range(attr.nranks), key=attr.rank_total, reverse=True)
    lines = [header]
    for rank in order[:top_ranks]:
        row = attr.per_rank[rank]
        cells = " ".join(f"{row[c] * 1e3:>9.3f}" for c in CAUSES)
        lines.append(f"{rank:>6} {cells} {attr.rank_total(rank) * 1e3:>9.3f}")
    if attr.nranks > top_ranks:
        lines.append(f"{'...':>6} ({attr.nranks - top_ranks} more ranks)")
    totals = attr.totals()
    cells = " ".join(f"{totals[c] * 1e3:>9.3f}" for c in CAUSES)
    lines.append(f"{'all':>6} {cells} {attr.total_wait * 1e3:>9.3f}")
    return "\n".join(lines)


def _phase_table(attr: WaitAttribution, max_phases: int = 12) -> str:
    lines = [f"{'phase':>10} {'dominant cause':>16} {'wait ms':>9}"]
    shown = list(attr.phases.items())[:max_phases]
    for name, row in shown:
        total = sum(row.values())
        dom = (max(row.items(), key=lambda kv: kv[1])[0]
               if row and total > 0 else "none")
        lines.append(f"{name:>10} {dom:>16} {total * 1e3:>9.3f}")
    if len(attr.phases) > max_phases:
        lines.append(f"{'...':>10} ({len(attr.phases) - max_phases} "
                     "more phases)")
    return "\n".join(lines)


def render_text(expl: Explanation, top_ranks: int = 8,
                per_phase: bool = True) -> str:
    """The full terminal report."""
    out: list[str] = []
    name = expl.app or "trace"
    out.append(f"== repro-explain: {name}, {expl.nranks} ranks, "
               f"{expl.chunks} chunks ==")
    durations = ", ".join(
        f"{v} {expl.results[v].duration * 1e3:.3f} ms"
        for v in ("original", "real", "ideal") if v in expl.results
    )
    out.append(f"makespans: {durations}")
    for variant, sc in expl.scorecards.items():
        out.append(
            f"{variant:>8}: speedup {sc.speedup:.4f}  "
            f"attained overlap {_fmt_frac(sc.attained_fraction)}%  "
            f"attainable bound {_fmt_frac(sc.attainable_bound)}%  "
            f"realized {_fmt_frac(sc.realized_share)}%"
        )
    out.append("")
    for variant in ("original", "real", "ideal"):
        attr = expl.attribution.get(variant)
        if attr is None:
            continue
        out.append(f"-- wait attribution ({variant}) "
                   f"[dominant: {attr.dominant_cause()}] --")
        out.append(_attribution_table(attr, top_ranks=top_ranks))
        out.append("")
    if "real" in expl.attribution:
        out.append("-- recovered per cause (original - real, ms) --")
        for cause, delta in sorted(expl.cause_delta.items(),
                                   key=lambda kv: -kv[1]):
            if abs(delta) > 1e-12:
                out.append(f"  {cause:<18} {delta * 1e3:>+10.3f}")
        out.append("")
    if per_phase and "original" in expl.attribution:
        out.append("-- per-phase waits (original) --")
        out.append(_phase_table(expl.attribution["original"]))
        out.append("")
    for variant, bd in expl.critical.items():
        if not bd:
            continue
        total = sum(bd.values()) or 1.0
        parts = "  ".join(
            f"{k} {_fmt_ms(v)}ms ({100 * v / total:.0f}%)"
            for k, v in sorted(bd.items(), key=lambda kv: -kv[1])
        )
        out.append(f"critical path ({variant}): {parts}")
    for w in expl.warnings:
        out.append(f"WARNING: {w}")
    out.append("")
    out.append(f"verdict: {expl.verdict}")
    return "\n".join(out)


# ---------------------------------------------------------------------- #
# JSON
# ---------------------------------------------------------------------- #
def to_json(expl: Explanation) -> dict:
    """The schema'd machine-readable document (plain data, JSON-safe)."""
    m = expl.machine

    def _num(x):
        if x is None:
            return None
        return None if (isinstance(x, float) and (x != x or math.isinf(x))) \
            else x

    doc = {
        "schema": SCHEMA_ID,
        "app": expl.app,
        "nranks": expl.nranks,
        "chunks": expl.chunks,
        "machine": {
            "bandwidth_mbps": m.bandwidth_mbps,
            "latency": m.latency,
            "buses": m.buses,
            "input_ports": m.input_ports,
            "output_ports": m.output_ports,
            "eager_threshold": m.eager_threshold,
        },
        "durations": {
            v: expl.results[v].duration for v in expl.results
        },
        "speedups": {
            v: _num(sc.speedup) for v, sc in expl.scorecards.items()
        },
        "scorecards": {
            v: sc.to_dict() for v, sc in expl.scorecards.items()
        },
        "attribution": {
            v: attr.to_dict() for v, attr in expl.attribution.items()
        },
        "critical": {v: dict(bd) for v, bd in expl.critical.items()},
        "patterns": {},
        "warnings": list(expl.warnings),
        "verdict": expl.verdict,
    }
    sc = expl.scorecards.get("real") or expl.scorecards.get("ideal")
    if sc is not None:
        doc["patterns"] = {
            "production": {k: _num(v) for k, v in
                           vars(sc.production).items()},
            "consumption": {k: _num(v) for k, v in
                            vars(sc.consumption).items()},
        }
    return doc


# ---------------------------------------------------------------------- #
# HTML
# ---------------------------------------------------------------------- #
_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em;
       max-width: 1080px; color: #1a1a1a; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
table { border-collapse: collapse; font-size: 0.85em; margin: 0.6em 0; }
th, td { border: 1px solid #ccc; padding: 3px 8px; text-align: right; }
th { background: #f0f0f0; }
td.name, th.name { text-align: left; }
.verdict { background: #eef6ee; border-left: 4px solid #76b043;
           padding: 0.8em 1em; margin: 1em 0; }
.warning { background: #fdf3e3; border-left: 4px solid #e8b54d;
           padding: 0.5em 1em; margin: 0.5em 0; }
.timeline { overflow-x: auto; border: 1px solid #eee; margin: 0.5em 0; }
.small { color: #666; font-size: 0.85em; }
"""


def _html_attr_table(attr: WaitAttribution, top_ranks: int) -> str:
    rows = ["<tr><th class=name>rank</th>" + "".join(
        f"<th>{_CAUSE_SHORT[c]}</th>" for c in CAUSES
    ) + "<th>total ms</th></tr>"]
    order = sorted(range(attr.nranks), key=attr.rank_total, reverse=True)
    for rank in order[:top_ranks]:
        row = attr.per_rank[rank]
        cells = "".join(f"<td>{row[c] * 1e3:.3f}</td>" for c in CAUSES)
        rows.append(f"<tr><td class=name>{rank}</td>{cells}"
                    f"<td>{attr.rank_total(rank) * 1e3:.3f}</td></tr>")
    totals = attr.totals()
    cells = "".join(f"<td>{totals[c] * 1e3:.3f}</td>" for c in CAUSES)
    rows.append(f"<tr><td class=name><b>all</b></td>{cells}"
                f"<td><b>{attr.total_wait * 1e3:.3f}</b></td></tr>")
    return "<table>" + "".join(rows) + "</table>"


def _occupancy_svg(profile: list[float], width: int = 640,
                   height: int = 60) -> str:
    """Inline bar sparkline of the bus-occupancy profile."""
    if not profile or max(profile) <= 0:
        return "<p class=small>(no network activity)</p>"
    peak = max(profile)
    bar_w = width / len(profile)
    bars = []
    for i, v in enumerate(profile):
        h = v / peak * (height - 12)
        bars.append(
            f'<rect x="{i * bar_w:.1f}" y="{height - h:.1f}" '
            f'width="{max(bar_w - 1, 1):.1f}" height="{h:.1f}" '
            f'fill="#2f7ed8"><title>{v:.2f} active</title></rect>'
        )
    return (f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}">{"".join(bars)}'
            f'<text x="2" y="10" font-size="10">peak {peak:.1f} '
            f'concurrent transfers</text></svg>')


def render_html(expl: Explanation, top_ranks: int = 16,
                timeline_width: int = 860) -> str:
    """Self-contained HTML deep-analysis report."""
    from ..paraver.svg import render_svg

    e = _html.escape
    name = expl.app or "trace"
    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>repro-explain: {e(name)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>repro-explain — {e(name)}, {expl.nranks} ranks, "
        f"{expl.chunks} chunks</h1>",
        f"<div class=verdict><b>Verdict.</b> {e(expl.verdict)}</div>",
    ]
    for w in expl.warnings:
        parts.append(f"<div class=warning>{e(w)}</div>")

    parts.append("<h2>Overlap scorecard</h2><table><tr>"
                 "<th class=name>variant</th><th>makespan ms</th>"
                 "<th>speedup</th><th>attained %</th>"
                 "<th>attainable bound %</th><th>realized %</th></tr>")
    base = expl.results.get("original")
    if base is not None:
        parts.append(f"<tr><td class=name>original</td>"
                     f"<td>{base.duration * 1e3:.3f}</td><td>1.0000</td>"
                     "<td>-</td><td>-</td><td>-</td></tr>")
    for variant, sc in expl.scorecards.items():
        res = expl.results[variant]
        parts.append(
            f"<tr><td class=name>{e(variant)}</td>"
            f"<td>{res.duration * 1e3:.3f}</td><td>{sc.speedup:.4f}</td>"
            f"<td>{_fmt_frac(sc.attained_fraction)}</td>"
            f"<td>{_fmt_frac(sc.attainable_bound)}</td>"
            f"<td>{_fmt_frac(sc.realized_share)}</td></tr>"
        )
    parts.append("</table>")

    for variant in ("original", "real", "ideal"):
        res = expl.results.get(variant)
        if res is None:
            continue
        parts.append(f"<h2>Timeline — {e(variant)}</h2>")
        parts.append('<div class=timeline>')
        parts.append(render_svg(res, width=timeline_width,
                                title=f"{name} / {variant}"))
        parts.append("</div>")
        attr = expl.attribution.get(variant)
        if attr is not None:
            parts.append(
                f"<p class=small>dominant wait cause: "
                f"<b>{e(attr.dominant_cause())}</b>; "
                f"{attr.queued_transfers} transfers queued "
                f"(peak queue {attr.queued_peak})</p>"
            )
            parts.append(_html_attr_table(attr, top_ranks))
        col = expl.collectors.get(variant)
        if col is not None:
            parts.append("<p class=small>bus occupancy over simulated "
                         "time:</p>")
            parts.append(_occupancy_svg(
                col.occupancy_profile(96, res.duration)))

    if any(expl.critical.values()):
        parts.append("<h2>Critical-path breakdown</h2><table><tr>"
                     "<th class=name>variant</th>" + "".join(
                         f"<th>{e(k)} ms</th>" for k in
                         ("compute", "wire", "queue", "latency",
                          "collective", "idle")) + "</tr>")
        for variant, bd in expl.critical.items():
            if not bd:
                continue
            cells = "".join(
                f"<td>{bd.get(k, 0.0) * 1e3:.3f}</td>"
                for k in ("compute", "wire", "queue", "latency",
                          "collective", "idle"))
            parts.append(f"<tr><td class=name>{e(variant)}</td>{cells}</tr>")
        parts.append("</table>")

    if "real" in expl.attribution:
        parts.append("<h2>Recovered wait time per cause "
                     "(original &minus; real)</h2><table>"
                     "<tr><th class=name>cause</th><th>ms</th></tr>")
        for cause, delta in sorted(expl.cause_delta.items(),
                                   key=lambda kv: -kv[1]):
            if abs(delta) > 1e-12:
                parts.append(f"<tr><td class=name>{e(cause)}</td>"
                             f"<td>{delta * 1e3:+.3f}</td></tr>")
        parts.append("</table>")

    parts.append("</body></html>")
    return "\n".join(parts)
