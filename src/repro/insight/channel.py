"""The analysis-event channel: raw material of wait-state attribution.

One :class:`InsightCollector` rides along one :func:`simulate` call.
The replay driver reports every *wait interval* — the span between a
rank blocking on a communication record and the completion that
released it, together with the transfers it was blocked on — and the
network reports *resource transitions*: why a transfer queued (bus
pool exhausted, source injection port busy, destination endpoint port
busy) and how bus occupancy evolved over simulated time.

Cost model (the ``repro.obs.spans`` contract, enforced by
``tests/test_insight.py``): collection is off by default — ``simulate``
takes ``insight=None`` and every hook sits behind one ``is None``
branch on the *blocking* paths only, never in the per-event dispatch
loop — and an attributed replay produces bitwise-identical results,
because the collector only observes; it never schedules.

Classification of the raw intervals into root causes happens post-hoc
in :mod:`repro.insight.attribution`, once every transfer's timing
fields are final.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..dimemas.machine import MachineConfig
    from ..dimemas.network import Transfer
    from ..dimemas.results import SimResult

__all__ = ["InsightCollector", "collect"]

#: Epsilon mirroring ``repro.dimemas.replay._EPS``: wait intervals the
#: replay drops from the state timeline are not recorded either, so
#: attributed wait time sums to exactly the recorded blocked time.
_EPS = 1e-15


class InsightCollector:
    """Accumulates the analysis events of one replay.

    Attributes are plain lists/dicts so the hooks cost appends only;
    nothing here reads the clock or touches the event loop.
    """

    __slots__ = ("waits", "queue_cause", "occupancy", "queued_peak",
                 "queued_total", "perturb_excess")

    def __init__(self) -> None:
        #: Raw wait intervals ``(rank, state_label, t0, t1, transfers)``
        #: where ``transfers`` is a tuple of the
        #: :class:`~repro.dimemas.network.Transfer` objects the rank was
        #: blocked on (empty for collectives / unmatched records).
        self.waits: list[tuple[int, str, float, float, tuple]] = []
        #: ``id(transfer) -> cause`` recorded when the network queued a
        #: transfer instead of starting it: ``"bus_contention"``,
        #: ``"injection_port"``, or ``"endpoint_port"``.
        self.queue_cause: dict[int, str] = {}
        #: Bus-occupancy timeline: ``(t, active_transfers, queued)``
        #: transitions appended at every transfer start and release.
        self.occupancy: list[tuple[float, int, int]] = []
        #: Peak network queue depth observed (diagnostics).
        self.queued_peak = 0
        #: Total number of transfers that had to queue.
        self.queued_total = 0
        #: ``id(transfer) -> seconds`` a platform perturbation added to
        #: that transfer beyond its pristine wire time (degraded
        #: bandwidth, stalled/restarted outages, latency spikes).
        #: Filled by :class:`~repro.dimemas.network.PerturbedNetwork`;
        #: empty on an unperturbed replay.
        self.perturb_excess: dict[int, float] = {}

    # -- replay-side hook ------------------------------------------------- #
    def record_wait(self, rank: int, label: str, t0: float, t1: float,
                    transfers: "tuple[Transfer, ...] | None") -> None:
        """One blocked interval closed by ``_resume`` on ``rank``."""
        if t1 <= t0 + _EPS:
            return
        self.waits.append((rank, label, t0, t1, transfers or ()))

    # -- network-side hooks ------------------------------------------------ #
    def note_queued(self, t: float, transfer: "Transfer", cause: str,
                    queued: int) -> None:
        """``transfer`` could not start at ``t``; ``cause`` blocked it."""
        self.queue_cause[id(transfer)] = cause
        self.queued_total += 1
        if queued > self.queued_peak:
            self.queued_peak = queued

    def note_perturbed(self, transfer: "Transfer", seconds: float) -> None:
        """``transfer`` took ``seconds`` longer than on the pristine
        platform (may fire more than once per transfer — wire excess at
        start, latency excess at delivery; contributions accumulate)."""
        key = id(transfer)
        self.perturb_excess[key] = self.perturb_excess.get(key, 0.0) + seconds

    def note_start(self, t: float, active: int, queued: int) -> None:
        self.occupancy.append((t, active, queued))

    def note_release(self, t: float, active: int, queued: int) -> None:
        self.occupancy.append((t, active, queued))

    # -- summaries --------------------------------------------------------- #
    def occupancy_profile(self, bins: int = 64,
                          duration: float | None = None) -> list[float]:
        """Mean active-transfer count per time bin (for overlays).

        Integrates the step function described by :attr:`occupancy`
        over ``bins`` equal windows of ``[0, duration]``.
        """
        if not self.occupancy or bins < 1:
            return [0.0] * max(bins, 0)
        end = duration if duration is not None else self.occupancy[-1][0]
        if end <= 0:
            return [0.0] * bins
        width = end / bins
        out = [0.0] * bins
        prev_t, prev_active = 0.0, 0
        points = list(self.occupancy) + [(end, 0, 0)]
        for t, active, _q in points:
            t = min(t, end)
            a, b = prev_t, t
            if b > a and prev_active > 0:
                first = min(int(a / width), bins - 1)
                last = min(int(b / width), bins - 1)
                for k in range(first, last + 1):
                    ka, kb = k * width, (k + 1) * width
                    out[k] += prev_active * max(0.0, min(b, kb) - max(a, ka))
            prev_t, prev_active = t, active
        return [v / width for v in out]


def collect(
    trace,
    machine: "MachineConfig | None" = None,
    **simulate_kwargs,
) -> "tuple[SimResult, InsightCollector]":
    """Replay ``trace`` with the analysis channel attached.

    Returns ``(result, collector)``; the result is bitwise-identical
    to an unattributed :func:`~repro.dimemas.replay.simulate` of the
    same trace/platform.  Feed the pair to
    :func:`repro.insight.attribution.attribute`.
    """
    from ..dimemas.replay import simulate

    collector = InsightCollector()
    result = simulate(trace, machine, insight=collector, **simulate_kwargs)
    return result, collector
