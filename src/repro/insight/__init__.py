"""``repro.insight`` — simulated-time attribution and overlap explanation.

The paper's deliverable is not a number but an *explanation*: why a
code overlaps well or badly (production/consumption patterns, bus
serialization, late senders — §V).  The replay reproduces the numbers;
this package answers "where did the simulated time go, and which
resource ate the overlap benefit":

* :mod:`~repro.insight.channel` — the analysis-event channel: a
  collector the replay and network feed wait intervals and resource
  occupancy transitions into.  Off by default; the disabled path is
  one dormant ``is None`` branch per *blocking record*, nothing in the
  per-event dispatch loop (same contract as ``repro.obs.spans`` and
  the invariant auditor).
* :mod:`~repro.insight.attribution` — classifies every recorded wait
  interval by root cause (late sender, rendezvous dependency chain,
  bus/port contention, in-flight transfer, collective sync) and folds
  them into per-rank / per-phase :class:`WaitAttribution` tables.
* :mod:`~repro.insight.scorecard` — the overlap scorecard: attained
  overlap (blocked-time reduction, speedup) against the *attainable*
  bound derived from the trace's production/consumption patterns.
* :mod:`~repro.insight.explain` — the differential explainer over an
  (original, real, ideal) triple: attributes the speedup — or its
  absence — across ranks, phases, and resources, mechanizing the
  paper's §V discussion of why Sweep3D/POP gain little.
* :mod:`~repro.insight.report` — text, JSON (schema:
  ``docs/schema/repro-explain.schema.json``), and self-contained HTML
  renderings; the ``repro-explain`` CLI front-end lives in
  :mod:`repro.cli`.
"""

from .attribution import (
    CAUSES,
    WaitAttribution,
    WaitSegment,
    attribute,
    classify_wait,
)
from .channel import InsightCollector, collect
from .explain import Explanation, explain_experiment, explain_traces
from .scorecard import (
    OverlapScorecard,
    RankScore,
    attainable_overlap_bound,
    scorecard,
)
from .report import render_html, render_text, to_json

__all__ = [
    "CAUSES",
    "Explanation",
    "InsightCollector",
    "OverlapScorecard",
    "RankScore",
    "WaitAttribution",
    "WaitSegment",
    "attainable_overlap_bound",
    "attribute",
    "classify_wait",
    "collect",
    "explain_experiment",
    "explain_traces",
    "render_html",
    "render_text",
    "scorecard",
    "to_json",
]
