"""Root-cause classification of wait intervals into attribution tables.

Every blocked interval the replay records is decomposed against the
timeline of the transfer whose completion released it::

    block ........................................ resume
    |-- late_sender --|-- dependency_chain --|-- contention --|-- transfer --|
    t0           send_time             ready_time        start_time         t1

* **late_sender** — the partner had not even executed its send call
  yet (a dependency the transformation cannot remove);
* **dependency_chain** — the rendezvous handshake: both sides exist
  but the protocol serializes them (send posted, receive not yet, or
  vice versa);
* **bus_contention / injection_port / endpoint_port** — the transfer
  sat in the network queue; the network recorded which resource
  blocked it when it was enqueued;
* **transfer** — in-flight wire occupancy plus latency: irreducible at
  this bandwidth, but *hideable* behind computation by overlap;
* **perturbation** — the slice of blocked time an injected platform
  fault caused: the seconds a degraded-bandwidth window, outage, or
  latency spike added beyond the transfer's pristine wire time
  (reported per transfer by the perturbed network), plus any time a
  transfer sat queued because an outage forbade starts.  Absent on an
  unperturbed replay;
* **collective** — group-communication synchronization;
* **unresolved** — a blocked interval with no releasing transfer
  (malformed traces; complete replays never produce one).

Send-side blocks (rendezvous sends) decompose the same way — there the
``late_sender`` share is zero by construction and the handshake share
is the receiver being late.

The per-rank invariant — attributed wait time sums exactly to the
rank's recorded blocked time — holds because every interval is split
with clamped cut points covering ``[t0, t1]`` with no gaps or overlap
(``tests/test_insight.py`` pins it over every application skeleton).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..dimemas.results import SimResult
from .channel import InsightCollector

__all__ = ["CAUSES", "WaitAttribution", "WaitSegment", "attribute",
           "classify_wait"]

#: Cause vocabulary, roughly ordered from "structural dependency" to
#: "resource pressure" to "inherent cost".
CAUSES = (
    "late_sender",
    "dependency_chain",
    "bus_contention",
    "injection_port",
    "endpoint_port",
    "transfer",
    "perturbation",
    "collective",
    "unresolved",
)

#: Causes a perfect overlap transformation could hide behind compute
#: (resource pressure and in-flight time); structural dependencies and
#: collective synchronization are not hideable at the MPI-call level.
#: Perturbation-injected delay is wire time like any other — overlap
#: can mask it, which is exactly what the resilience index measures.
HIDEABLE_CAUSES = frozenset(
    {"bus_contention", "injection_port", "endpoint_port", "transfer",
     "perturbation"}
)

_EPS = 1e-15


@dataclass(frozen=True, slots=True)
class WaitSegment:
    """One cause-labelled slice of a blocked interval."""

    rank: int
    cause: str
    t0: float
    t1: float
    state: str          # the replay state label of the parent interval
    src: int = -1       # sending rank of the releasing transfer (-1: n/a)
    size: int = 0       # bytes of the releasing transfer

    @property
    def span(self) -> float:
        return self.t1 - self.t0


def classify_wait(
    label: str,
    t0: float,
    t1: float,
    transfers: tuple,
    queue_cause: dict[int, str],
    rank: int,
    perturb_excess: dict[int, float] | None = None,
) -> list[WaitSegment]:
    """Split one blocked interval ``[t0, t1]`` into cause segments.

    ``transfers`` are the transfers the rank was blocked on; the one
    arriving last released the block and defines the decomposition.

    ``perturb_excess`` (``id(transfer) -> seconds``, from a perturbed
    replay's collector) carves the fault-injected share out of the
    tail of the in-flight phase: the releasing transfer arrived
    ``excess`` seconds later than it would have on the pristine
    platform, so exactly that much of the blocked tail — clamped to
    the in-flight phase — is attributed to ``perturbation`` instead of
    ``transfer``.  The cut points still tile ``[t0, t1]``, so per-rank
    conservation is untouched.
    """
    if label == "Group communication":
        return [WaitSegment(rank, "collective", t0, t1, label)]
    done = [tr for tr in transfers if tr.arrival_time is not None]
    if not done:
        return [WaitSegment(rank, "unresolved", t0, t1, label)]
    tr = max(done, key=lambda tr: tr.arrival_time)

    def clamp(t: float | None) -> float:
        if t is None:
            return t1
        return min(max(t, t0), t1)

    send = clamp(tr.send_time)
    ready = max(clamp(tr.ready_time), send)
    start = max(clamp(tr.start_time), ready)
    segments: list[WaitSegment] = []

    def emit(cause: str, a: float, b: float) -> None:
        if b > a + _EPS:
            segments.append(
                WaitSegment(rank, cause, a, b, label, tr.src, tr.size)
            )

    if label == "Send":
        # The blocked rank IS the sender: the pre-handshake share is
        # the receiver being late, a protocol dependency.
        emit("dependency_chain", t0, ready)
    else:
        emit("late_sender", t0, send)
        emit("dependency_chain", send, ready)
    emit(queue_cause.get(id(tr), "bus_contention"), ready, start)
    excess = perturb_excess.get(id(tr), 0.0) if perturb_excess else 0.0
    if excess > _EPS:
        cut = max(start, t1 - excess)
        emit("transfer", start, cut)
        emit("perturbation", cut, t1)
    else:
        emit("transfer", start, t1)
    if not segments:
        # Degenerate interval narrower than every cut: keep the sum
        # invariant by attributing the whole span to the last phase.
        segments.append(WaitSegment(rank, "transfer", t0, t1, label,
                                    tr.src, tr.size))
    return segments


@dataclass
class WaitAttribution:
    """Per-rank / per-phase wait-state attribution of one replay."""

    nranks: int
    #: ``per_rank[r][cause] -> seconds`` (all causes present, zeros kept).
    per_rank: list[dict[str, float]]
    #: Every cause-labelled segment, time-ordered (timeline overlays).
    segments: list[WaitSegment]
    #: ``phases[label][cause] -> seconds`` over all ranks; phase labels
    #: come from ``iteration`` user events when the trace has them
    #: (``"iter 0"``, ...), else one ``"whole run"`` phase.
    phases: dict[str, dict[str, float]] = field(default_factory=dict)
    #: Network pressure summary from the collector.
    queued_transfers: int = 0
    queued_peak: int = 0

    # ------------------------------------------------------------------ #
    def totals(self) -> dict[str, float]:
        """Seconds per cause summed over ranks."""
        out = {c: 0.0 for c in CAUSES}
        for row in self.per_rank:
            for c, v in row.items():
                out[c] += v
        return out

    def rank_total(self, rank: int) -> float:
        """All attributed wait seconds of one rank."""
        return sum(self.per_rank[rank].values())

    @property
    def total_wait(self) -> float:
        return sum(self.rank_total(r) for r in range(self.nranks))

    @property
    def hideable_wait(self) -> float:
        """Wait seconds a perfect overlap could hide behind compute."""
        return sum(v for c, v in self.totals().items()
                   if c in HIDEABLE_CAUSES)

    def dominant_cause(self, rank: int | None = None) -> str:
        """The cause eating the most wait time (one rank or overall)."""
        row = self.per_rank[rank] if rank is not None else self.totals()
        if not row or all(v <= 0 for v in row.values()):
            return "none"
        return max(row.items(), key=lambda kv: kv[1])[0]

    def to_dict(self) -> dict:
        return {
            "nranks": self.nranks,
            "totals": self.totals(),
            "per_rank": [dict(r) for r in self.per_rank],
            "phases": {k: dict(v) for k, v in self.phases.items()},
            "hideable_wait_seconds": self.hideable_wait,
            "total_wait_seconds": self.total_wait,
            "dominant_cause": self.dominant_cause(),
            "queued_transfers": self.queued_transfers,
            "queued_peak": self.queued_peak,
        }


def _phase_windows(result: SimResult) -> list[tuple[str, float, float]]:
    """Phase windows from rank 0's ``iteration`` events (else one)."""
    marks = result.event_times("iteration", rank=0)
    if len(marks) < 1:
        return [("whole run", 0.0, max(result.duration, 0.0))]
    windows = []
    for i, (t, v) in enumerate(marks):
        end = marks[i + 1][0] if i + 1 < len(marks) else result.duration
        windows.append((f"iter {v}", t, end))
    if marks[0][0] > _EPS:
        windows.insert(0, ("startup", 0.0, marks[0][0]))
    return windows


def attribute(result: SimResult, collector: InsightCollector) -> WaitAttribution:
    """Fold one replay's analysis events into attribution tables."""
    nranks = result.nranks
    per_rank: list[dict[str, float]] = [
        {c: 0.0 for c in CAUSES} for _ in range(nranks)
    ]
    segments: list[WaitSegment] = []
    for rank, label, t0, t1, trs in collector.waits:
        for seg in classify_wait(label, t0, t1, trs,
                                 collector.queue_cause, rank,
                                 collector.perturb_excess):
            per_rank[rank][seg.cause] += seg.span
            segments.append(seg)
    segments.sort(key=lambda s: (s.t0, s.rank))

    phases: dict[str, dict[str, float]] = {}
    for name, lo, hi in _phase_windows(result):
        row: dict[str, float] = defaultdict(float)
        for seg in segments:
            a, b = max(seg.t0, lo), min(seg.t1, hi)
            if b > a:
                row[seg.cause] += b - a
        phases[name] = dict(row)

    return WaitAttribution(
        nranks=nranks,
        per_rank=per_rank,
        segments=segments,
        phases=phases,
        queued_transfers=collector.queued_total,
        queued_peak=collector.queued_peak,
    )
