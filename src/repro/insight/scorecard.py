"""Overlap scorecards: attained overlap against the attainable bound.

The *attainable* side comes from the trace's production/consumption
patterns (paper Table II): chunk ``i`` of ``K`` cannot be sent before
the fraction ``p(i/K)`` of the production phase at which its prefix is
final, and its reception can be postponed until the fraction
``c((i-1)/K)`` of the consumption phase at which the not-yet-received
elements are first needed.  The window a chunk's transfer can float in
without blocking either side is therefore ``(1 - p(i/K)) +
c((i-1)/K)`` of a phase; the **attainable overlap bound** is the mean
window over chunks, clamped to ``[0, 1]`` (docs/MODEL.md §7).  An
ideal pattern (``p(f) = f``, ``c(f) = f``) yields per-chunk windows of
``1 - 1/K`` except for the last chunk, whose postponement is capped by
the half-phase consumption sample — with 4 chunks, 0.6875 — while
Sweep3D's late production (first value at 66 % of the phase) and POP's
immediate consumption pin the bound near zero, which is exactly the
paper's §V explanation of their small gains.

The *attained* side compares a baseline replay against its overlapped
counterpart: per-rank blocked-time reduction and the makespan speedup.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.patterns import (
    ConsumptionStats,
    ProductionStats,
    consumption_table,
    production_table,
)
from ..dimemas.results import SimResult

__all__ = ["OverlapScorecard", "RankScore", "attainable_overlap_bound",
           "scorecard"]


def _interp(points: list[tuple[float, float]], x: float) -> float:
    """Piecewise-linear interpolation over NaN-filtered ``points``."""
    pts = [(a, b) for a, b in points if not math.isnan(b)]
    if not pts:
        return math.nan
    pts.sort()
    if x <= pts[0][0]:
        return pts[0][1]
    for (x0, y0), (x1, y1) in zip(pts, pts[1:]):
        if x <= x1:
            if x1 <= x0:
                return y1
            return y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    return pts[-1][1]


def attainable_overlap_bound(
    production: ProductionStats,
    consumption: ConsumptionStats,
    chunks: int = 4,
) -> float:
    """Fraction of communication blocking the patterns allow hiding.

    NaN when the trace carries no access profiles at all (nothing to
    bound against).
    """
    p_pts = [(0.0, production.first_element), (0.25, production.quarter),
             (0.5, production.half), (1.0, production.whole)]
    c_pts = [(0.0, consumption.nothing), (0.25, consumption.quarter),
             (0.5, consumption.half)]
    windows = []
    for i in range(1, chunks + 1):
        p_i = _interp(p_pts, i / chunks)
        c_prev = _interp(c_pts, (i - 1) / chunks)
        if math.isnan(p_i) and math.isnan(c_prev):
            continue
        advance = 0.0 if math.isnan(p_i) else max(0.0, 1.0 - p_i)
        postpone = 0.0 if math.isnan(c_prev) else max(0.0, c_prev)
        windows.append(min(1.0, advance + postpone))
    if not windows:
        return math.nan
    return sum(windows) / len(windows)


@dataclass(frozen=True)
class RankScore:
    """Blocked-time accounting of one rank, baseline vs overlapped."""

    rank: int
    blocked_base: float
    blocked_overlapped: float

    @property
    def attained_fraction(self) -> float:
        """Share of the baseline blocking the overlap removed."""
        if self.blocked_base <= 0:
            return 0.0
        return max(0.0, 1.0 - self.blocked_overlapped / self.blocked_base)


@dataclass
class OverlapScorecard:
    """Attained vs attainable overlap of one (baseline, overlapped) pair."""

    variant: str
    speedup: float
    attainable_bound: float
    per_rank: list[RankScore]
    production: ProductionStats
    consumption: ConsumptionStats
    chunks: int = 4

    @property
    def blocked_base(self) -> float:
        return sum(r.blocked_base for r in self.per_rank)

    @property
    def blocked_overlapped(self) -> float:
        return sum(r.blocked_overlapped for r in self.per_rank)

    @property
    def attained_fraction(self) -> float:
        """Aggregate share of baseline blocked time eliminated."""
        base = self.blocked_base
        if base <= 0:
            return 0.0
        return max(0.0, 1.0 - self.blocked_overlapped / base)

    @property
    def realized_share(self) -> float:
        """Attained / attainable — how much of the pattern-allowed
        headroom the transformation actually converted (NaN when the
        bound is unknown; may exceed 1: the bound is a per-message
        model, chunk pipelining can beat it)."""
        bound = self.attainable_bound
        if math.isnan(bound) or bound <= 0:
            return math.nan
        return self.attained_fraction / bound

    def to_dict(self) -> dict:
        def _f(x: float) -> float | None:
            return None if (x != x) else x

        return {
            "variant": self.variant,
            "speedup": self.speedup,
            "attainable_bound": _f(self.attainable_bound),
            "attained_fraction": self.attained_fraction,
            "realized_share": _f(self.realized_share),
            "blocked_base_seconds": self.blocked_base,
            "blocked_overlapped_seconds": self.blocked_overlapped,
            "chunks": self.chunks,
            "per_rank": [
                {
                    "rank": r.rank,
                    "blocked_base": r.blocked_base,
                    "blocked_overlapped": r.blocked_overlapped,
                    "attained_fraction": r.attained_fraction,
                }
                for r in self.per_rank
            ],
        }


def _blocked_by_rank(result: SimResult) -> list[float]:
    out = []
    for rank in range(result.nranks):
        total = 0.0
        if rank < len(result.states):
            for s, t0, t1 in result.states[rank]:
                if s != "Running":
                    total += t1 - t0
        out.append(total)
    return out


def scorecard(
    trace,
    base: SimResult,
    overlapped: SimResult,
    variant: str = "real",
    chunks: int = 4,
    channel: int | None = None,
) -> OverlapScorecard:
    """Score one overlapped replay against its baseline.

    ``trace`` is the *original* (untransformed) trace whose access
    patterns define the attainable bound; ``channel`` restricts the
    pattern tables (None = all channels, matching ``repro-analyze``).
    """
    production = production_table(trace, channel=channel)
    consumption = consumption_table(trace, channel=channel)
    bound = attainable_overlap_bound(production, consumption, chunks=chunks)
    blocked_b = _blocked_by_rank(base)
    blocked_o = _blocked_by_rank(overlapped)
    nranks = min(base.nranks, overlapped.nranks)
    per_rank = [
        RankScore(r, blocked_b[r], blocked_o[r]) for r in range(nranks)
    ]
    speedup = (base.duration / overlapped.duration
               if overlapped.duration > 0 else math.inf)
    return OverlapScorecard(
        variant=variant,
        speedup=speedup,
        attainable_bound=bound,
        per_rank=per_rank,
        production=production,
        consumption=consumption,
        chunks=chunks,
    )
