"""The differential explainer: where did the speedup go (or come from).

Given the (original, overlapped, ideal) trace triple the paper's
tracer emits per run, replay all three with the analysis channel
attached and attribute the makespan difference across ranks, phases,
and resources.  The output mechanizes the paper's §V discussion: NAS
BT gains because its consumption pattern leaves room for chunked
transfers to hide; Sweep3D gains little because its waits are
late-sender/dependency-chain time that no transformation at the MPI
call level can remove.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..dimemas.machine import MachineConfig
from ..dimemas.results import SimResult
from ..obs import span as _span
from .attribution import CAUSES, HIDEABLE_CAUSES, WaitAttribution, attribute
from .channel import InsightCollector, collect
from .scorecard import OverlapScorecard, scorecard

__all__ = ["Explanation", "explain_experiment", "explain_traces"]

#: Variant order of the paper triple.
TRIPLE = ("original", "real", "ideal")


@dataclass
class Explanation:
    """Everything ``repro-explain`` renders, in plain data."""

    app: str | None
    nranks: int
    machine: MachineConfig
    chunks: int
    #: Replays keyed by variant (``original`` always present).
    results: dict[str, SimResult]
    #: Wait attribution keyed by variant.
    attribution: dict[str, WaitAttribution]
    #: Collectors keyed by variant (occupancy overlays).
    collectors: dict[str, InsightCollector]
    #: Scorecards of each overlapped variant against ``original``.
    scorecards: dict[str, OverlapScorecard]
    #: ``cause -> seconds recovered`` between original and real
    #: (positive: the overlap removed that much of the cause).
    cause_delta: dict[str, float]
    #: Critical-path breakdown per variant (``{} if analysis failed``).
    critical: dict[str, dict[str, float]]
    #: Non-fatal analysis problems surfaced to the user.
    warnings: list[str] = field(default_factory=list)
    #: One-paragraph human verdict.
    verdict: str = ""

    @property
    def speedup_real(self) -> float:
        sc = self.scorecards.get("real")
        return sc.speedup if sc else math.nan

    @property
    def speedup_ideal(self) -> float:
        sc = self.scorecards.get("ideal")
        return sc.speedup if sc else math.nan

    def dominant_recovered(self) -> str:
        """The cause whose reduction contributed most to the gain."""
        positive = {c: v for c, v in self.cause_delta.items() if v > 0}
        if not positive:
            return "none"
        return max(positive.items(), key=lambda kv: kv[1])[0]

    def dominant_residual(self) -> str:
        """The cause still eating the most wait time after overlap."""
        attr = self.attribution.get("real") or self.attribution.get("original")
        return attr.dominant_cause() if attr else "none"


def _cause_delta(base: WaitAttribution, over: WaitAttribution) -> dict[str, float]:
    tb, to = base.totals(), over.totals()
    return {c: tb.get(c, 0.0) - to.get(c, 0.0) for c in CAUSES}


def _critical_breakdown(result: SimResult, warnings: list[str],
                        variant: str) -> dict[str, float]:
    from ..paraver.critical import CriticalPathError, critical_path

    try:
        return critical_path(result).breakdown()
    except CriticalPathError as exc:
        warnings.append(
            f"critical-path analysis of the {variant} replay exhausted "
            f"{exc.max_hops} hops and was truncated "
            f"({exc.path.length * 1e3:.3f} ms walked); breakdown omitted"
        )
        return {}


def _verdict(expl: "Explanation") -> str:
    """The human sentence: why the speedup is what it is."""
    sc = expl.scorecards.get("real")
    if sc is None:
        attr = expl.attribution["original"]
        return (f"no overlapped variant analyzed; baseline waits are "
                f"dominated by {attr.dominant_cause()}")
    name = expl.app or "the application"
    speedup = sc.speedup
    bound = sc.attainable_bound
    bound_txt = ("an unknown pattern bound" if math.isnan(bound)
                 else f"a pattern-attainable bound of {bound * 100:.0f}%")
    recovered = expl.dominant_recovered()
    residual = expl.dominant_residual()
    if speedup >= 1.05:
        return (
            f"{name} gains {100 * (speedup - 1):.1f}% from overlap: the "
            f"production/consumption patterns allow hiding ({bound_txt}), "
            f"and the transformation recovered mostly {recovered} time; "
            f"remaining waits are dominated by {residual}"
        )
    structural = expl.attribution["real"].totals()
    dep = sum(structural.get(c, 0.0)
              for c in ("late_sender", "dependency_chain"))
    total = max(sum(structural.values()), 1e-30)
    return (
        f"{name} gains only {100 * (speedup - 1):.1f}%: with {bound_txt}, "
        f"{100 * dep / total:.0f}% of the residual wait time is "
        f"late-sender/dependency-chain blocking that MPI-level chunking "
        f"cannot remove; the dominant residual cause is {residual}"
    )


def explain_traces(
    traces: dict,
    machine: MachineConfig | None = None,
    app: str | None = None,
    chunks: int = 4,
    channel: int | None = None,
    **simulate_kwargs,
) -> Explanation:
    """Explain an (original[, real][, ideal]) trace set on one platform.

    ``traces`` maps variant names to traces; ``"original"`` is
    required.  Each variant replays once with the analysis channel
    attached (results are bitwise-identical to unattributed replays).
    """
    if "original" not in traces:
        raise ValueError("explain_traces needs an 'original' trace")
    cfg = machine or MachineConfig()
    results: dict[str, SimResult] = {}
    attributions: dict[str, WaitAttribution] = {}
    collectors: dict[str, InsightCollector] = {}
    warnings: list[str] = []
    critical: dict[str, dict[str, float]] = {}
    with _span("insight.explain", app=app or "?"):
        for variant in TRIPLE:
            trace = traces.get(variant)
            if trace is None:
                continue
            with _span("insight.collect", variant=variant):
                res, col = collect(trace, cfg, **simulate_kwargs)
            results[variant] = res
            collectors[variant] = col
            attributions[variant] = attribute(res, col)
            critical[variant] = _critical_breakdown(res, warnings, variant)

        scorecards: dict[str, OverlapScorecard] = {}
        original = traces["original"]
        for variant in ("real", "ideal"):
            if variant in results:
                scorecards[variant] = scorecard(
                    original, results["original"], results[variant],
                    variant=variant, chunks=chunks, channel=channel,
                )
        cause_delta = (
            _cause_delta(attributions["original"], attributions["real"])
            if "real" in attributions else {c: 0.0 for c in CAUSES}
        )
        expl = Explanation(
            app=app,
            nranks=results["original"].nranks,
            machine=cfg,
            chunks=chunks,
            results=results,
            attribution=attributions,
            collectors=collectors,
            scorecards=scorecards,
            cause_delta=cause_delta,
            critical=critical,
            warnings=warnings,
        )
        expl.verdict = _verdict(expl)
        return expl


def explain_experiment(exp, channel: int | None = None,
                       **simulate_kwargs) -> Explanation:
    """Explain one :class:`~repro.experiments.pipeline.AppExperiment`.

    Re-replays the triple with attribution on the experiment's baseline
    platform (attributed runs bypass the result caches — the analysis
    channel records live transfers, which a cached result cannot
    provide).
    """
    traces = {v: exp.trace(v) for v in TRIPLE}
    return explain_traces(
        traces, machine=exp.machine, app=exp.app_name, chunks=exp.chunks,
        channel=channel, **simulate_kwargs,
    )
