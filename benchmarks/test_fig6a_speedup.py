"""Figure 6(a) — overlap speedups, real and ideal patterns.

Paper §V-B: *"Overlap provides a small speedup for the real patterns
and a decent speedup for the ideal patterns.  ...the real patterns
allow speedup only in the case of NAS-CG.  ...The highest speedup is
reached for Sweep3D due to the wavefront behavior"* (ideal patterns).
"""

import pytest

from conftest import POOL, get_experiment, print_block

#: Shape targets: who wins and roughly by how much.
CG_REAL_MIN = 1.04
OTHERS_REAL_MAX = 1.06


@pytest.mark.parametrize("app", POOL)
def test_fig6a_per_app_speedup(benchmark, app):
    exp = get_experiment(app)
    s = benchmark.pedantic(exp.speedups, rounds=1, iterations=1)

    # Overlap at the MPI level never hurts much (paper: "always
    # achieves speedup"; we tolerate sub-percent chunking overhead).
    assert s["real"] >= 0.98, s
    assert s["ideal"] >= 0.98, s
    print_block(f"Figure 6(a) — {app}", [
        f"real  pattern speedup: {s['real']:.4f}",
        f"ideal pattern speedup: {s['ideal']:.4f}",
    ])


def test_fig6a_cross_pool_shape(benchmark):
    def collect():
        return {app: get_experiment(app).speedups() for app in POOL}

    s = benchmark.pedantic(collect, rounds=1, iterations=1)

    # Real patterns: only CG gains visibly.
    assert s["cg"]["real"] >= CG_REAL_MIN
    assert s["cg"]["real"] == max(v["real"] for v in s.values())
    for app in POOL:
        if app != "cg":
            assert s[app]["real"] <= OTHERS_REAL_MAX, (app, s[app])

    # Ideal patterns: Sweep3D on top (wavefront pipelining).
    assert s["sweep3d"]["ideal"] == max(v["ideal"] for v in s.values())
    # Ideal is never worse than real for any application.
    for app in POOL:
        assert s[app]["ideal"] >= s[app]["real"] * 0.98, (app, s[app])

    print_block("Figure 6(a) — cross-pool shape", [
        f"{a:>10}: real={s[a]['real']:.4f}  ideal={s[a]['ideal']:.4f}"
        for a in POOL
    ] + [
        "",
        "paper: real speedup only for NAS-CG (~8%); ideal max for Sweep3D",
        f"measured: CG real={s['cg']['real']:.4f}, "
        f"Sweep3D ideal={s['sweep3d']['ideal']:.4f}",
    ])
