"""Figure 5 — production/consumption pattern scatter plots.

Regenerates the three panels' data (every access with its normalized
interval time and element offset) and checks each panel's described
signature:

* (a) Sweep3D production: elements revisited many times, first final
  version at ~66 % of the interval;
* (b) NAS-BT consumption: whole-buffer loads in a few near-instant
  bursts (copy-out behaviour);
* (c) POP consumption: a stretch of independent work before the loads.
"""

import numpy as np

from repro.experiments.tables import figure5_series

from conftest import NRANKS, print_block

FIG5_RANKS = min(NRANKS, 16)  # stream recording is memory-hungry


def test_fig5a_sweep3d_production(benchmark):
    x, y = benchmark.pedantic(
        figure5_series, args=("sweep3d", "production"),
        kwargs=dict(nranks=FIG5_RANKS), rounds=1, iterations=1,
    )
    assert x.size > 0
    elements = int(y.max()) + 1
    accesses_per_element = x.size / elements
    assert accesses_per_element > 2.0, "Fig 5(a): elements revisited many times"

    # Final versions late: per-element last store concentrated late in
    # the interval (paper: first final version at 66.3 %; pooling over
    # both face buffers and boundary intervals dilutes this slightly).
    last = np.full(elements, -1.0)
    np.maximum.at(last, y, x)
    assert float(last.min()) > 0.55

    print_block("Figure 5(a) — Sweep3D production", [
        f"points={x.size}, buffer elements={elements}, "
        f"revisits/element={accesses_per_element:.1f}",
        f"earliest final version at {last.min() * 100:.1f}% (paper: 66.3%)",
    ])


def test_fig5b_bt_consumption(benchmark):
    x, y = benchmark.pedantic(
        figure5_series, args=("bt", "consumption"),
        kwargs=dict(nranks=FIG5_RANKS), rounds=1, iterations=1,
    )
    assert x.size > 0
    elements = int(y.max()) + 1
    # Four near-instant whole-buffer bursts: few distinct load times,
    # each touching every element.
    rounded = np.round(x, 3)
    distinct = np.unique(rounded)
    # a handful of instants per consumption interval, not a continuum
    assert distinct.size <= 8 * (1 + 3), "Fig 5(b): loads arrive in a few bursts"
    assert x.size >= 4 * elements * 0.5, "each burst touches the whole buffer"
    print_block("Figure 5(b) — NAS-BT consumption", [
        f"points={x.size}, elements={elements}, "
        f"distinct load instants={distinct.size}",
        f"first load at {x.min() * 100:.2f}% of the interval "
        f"(paper: 13.68% of the consumption phase)",
    ])


def test_fig5c_pop_consumption_independent_work(benchmark):
    x, y = benchmark.pedantic(
        figure5_series, args=("pop", "consumption"),
        kwargs=dict(nranks=FIG5_RANKS), rounds=1, iterations=1,
    )
    assert x.size > 0
    # Independent work: nothing is loaded at the very start of the phase.
    assert float(x.min()) > 0.0
    print_block("Figure 5(c) — POP consumption", [
        f"points={x.size}",
        f"independent work before first load: {x.min() * 100:.2f}% "
        f"of the interval (paper: ~3.5% of the consumption phase)",
    ])
