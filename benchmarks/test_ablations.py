"""Ablations of the design choices called out in DESIGN.md §5.

Not figures of the paper — these probe the mechanisms behind them:

* chunk-count sweep (the paper fixes 4 chunks; what if not?);
* disabling each overlap mechanism separately;
* decomposed vs analytic collective replay;
* determinism of the trace-driven methodology.
"""

from repro.core.ideal import ideal_transform
from repro.core.transform import OverlapConfig, overlap_transform
from repro.dimemas.replay import simulate
from repro.tracer import run_traced

from conftest import get_experiment, print_block

CHUNK_COUNTS = (1, 2, 4, 8, 16)


def test_ablation_chunk_count_sweep(benchmark):
    """Ideal-pattern Sweep3D vs chunk count: finer chunks pipeline the
    wavefront deeper until per-chunk latency bites."""
    exp = get_experiment("sweep3d")
    tr = exp.trace("original")
    base = exp.duration("original")

    def sweep():
        out = {}
        for ch in CHUNK_COUNTS:
            t, _ = ideal_transform(tr, chunks=ch)
            out[ch] = simulate(t, exp.machine).duration
        return out

    durs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    speedups = {ch: base / d for ch, d in durs.items()}
    # chunking at all must beat no chunking; 4 chunks (the paper's
    # choice) captures most of the benefit
    assert speedups[4] > speedups[1]
    assert speedups[4] >= 0.7 * max(speedups.values())
    print_block("Ablation — chunk count (sweep3d, ideal)", [
        f"chunks={ch:>2}: speedup {speedups[ch]:.4f}" for ch in CHUNK_COUNTS
    ])


def test_ablation_mechanisms(benchmark):
    """Advancing sends vs postponing receptions vs double buffering."""
    exp = get_experiment("cg")
    tr = exp.trace("original")
    base = exp.duration("original")

    configs = {
        "full": OverlapConfig(),
        "no-advance": OverlapConfig(advance_sends=False),
        "no-postpone": OverlapConfig(postpone_receptions=False),
        "single-buffer": OverlapConfig(double_buffering=False),
        "chunk-only": OverlapConfig(advance_sends=False,
                                    postpone_receptions=False),
    }

    def run_all():
        out = {}
        for name, cfg in configs.items():
            t, _ = overlap_transform(tr, cfg)
            out[name] = base / simulate(t, exp.machine).duration
        return out

    s = benchmark.pedantic(run_all, rounds=1, iterations=1)
    # the full mechanism set is at least as good as any single ablation
    assert s["full"] >= max(v for k, v in s.items() if k != "full") - 0.02
    # disabling everything but chunking loses (almost) all the benefit
    assert s["chunk-only"] <= s["full"]
    print_block("Ablation — overlap mechanisms (cg, real)", [
        f"{name:>14}: speedup {val:.4f}" for name, val in s.items()
    ])


def test_ablation_collective_model(benchmark):
    """Decomposed point-to-point collectives (paper §III-C) vs the
    analytic Dimemas collective model."""
    from repro.apps import get_app

    app = get_app("alya", iterations=2, krylov_iters=4)

    def run_both():
        decomposed = run_traced(app, 16, decompose_collectives=True).trace
        analytic = run_traced(app, 16, decompose_collectives=False).trace
        exp = get_experiment("alya")
        d = simulate(decomposed, exp.machine).duration
        a = simulate(analytic, exp.machine).duration
        return d, a

    d, a = benchmark.pedantic(run_both, rounds=1, iterations=1)
    # Both models must agree on the order of magnitude: the analytic
    # formula approximates the decomposed tree.
    assert 0.2 <= a / d <= 5.0, (a, d)
    print_block("Ablation — collective model (alya)", [
        f"decomposed point-to-point : {d * 1e3:.3f} ms",
        f"analytic Dimemas model    : {a * 1e3:.3f} ms",
        f"ratio                     : {a / d:.3f}",
    ])


def test_ablation_trace_determinism(benchmark):
    """The methodology's premise: tracing is deterministic, so the
    reconstruction is a function of (application, platform) only."""
    from repro.apps import get_app
    from repro.trace import dim

    def trace_twice():
        a = get_app("pop", steps=1).trace(nranks=16).trace
        b = get_app("pop", steps=1).trace(nranks=16).trace
        return dim.dumps(a), dim.dumps(b)

    a, b = benchmark.pedantic(trace_twice, rounds=1, iterations=1)
    assert a == b
    print_block("Ablation — determinism", [
        f"two independent tracer runs: byte-identical "
        f"({len(a)} bytes of trace)"])


def test_ablation_adaptive_chunking(benchmark):
    """Extension: size-adaptive chunk counts vs the paper's fixed 4.

    Small messages avoid per-chunk latency; large ones split finer.
    """
    exp = get_experiment("sweep3d")
    tr = exp.trace("original")
    base = exp.duration("original")

    def run_both():
        fixed, _ = overlap_transform(tr, OverlapConfig(chunks=4))
        adaptive, _ = overlap_transform(
            tr, OverlapConfig(chunks=16, chunk_bytes=2048))
        return (simulate(fixed, exp.machine).duration,
                simulate(adaptive, exp.machine).duration)

    d_fixed, d_adaptive = benchmark.pedantic(run_both, rounds=1, iterations=1)
    # both schemes must stay close to the fixed-4 baseline behaviour
    assert d_adaptive <= d_fixed * 1.1
    print_block("Ablation — adaptive chunking (sweep3d, real)", [
        f"fixed 4 chunks        : speedup {base / d_fixed:.4f}",
        f"adaptive (<=16, 2KiB) : speedup {base / d_adaptive:.4f}",
    ])


def test_ablation_phase_level_headroom(benchmark):
    """The paper's future work: how much compute could phase-level
    restructuring move across communication, per application?"""
    from repro.core.phases import phase_overlap_potential

    def collect():
        out = {}
        for app in ("sweep3d", "bt", "cg"):
            tr = get_experiment(app).trace("original")
            out[app] = phase_overlap_potential(tr, channel=0)
        return out

    pots = benchmark.pedantic(collect, rounds=1, iterations=1)
    # BT's copy-in behaviour leaves phase-level headroom where
    # MPI-level postponing is exhausted; Sweep3D has almost none.
    assert pots["bt"].independent_fraction > pots["sweep3d"].independent_fraction
    print_block("Ablation — phase-level overlap headroom (future work)", [
        f"{app:>10}: independent consumption "
        f"{p.independent_fraction * 100:5.1f}%  "
        f"reorderable {p.reorderable_seconds * 1e3:8.3f} ms"
        for app, p in pots.items()
    ])
