"""Figure 6(c) — the overlap's equivalent in increased bandwidth.

Paper §V-B: *"the benefits achieved by applying automatic overlap
sometimes cannot be reached by simply increasing the network
bandwidth.  The result of Sweep3D shows that for some applications the
performance of the overlapped execution cannot be achieved with
non-overlapped execution on any bandwidth.  ...overlap brings little
speedup in SPECFEM3D, but the benefits achieved by overlap are
equivalent to ... increasing the network bandwidth almost four
times."*
"""

import math

import pytest

from repro.experiments.bandwidth import equivalent_bandwidth

from conftest import POOL, get_experiment, print_block

BASELINE = 250.0


def _fmt(x: float) -> str:
    return "inf" if math.isinf(x) else f"{x:.1f}"


@pytest.mark.parametrize("app", POOL)
def test_fig6c_per_app_equivalent_bandwidth(benchmark, app):
    exp = get_experiment(app)

    def search():
        return (equivalent_bandwidth(exp, "real"),
                equivalent_bandwidth(exp, "ideal"))

    real_bw, ideal_bw = benchmark.pedantic(search, rounds=1, iterations=1)

    # Matching an execution that is at least as fast always needs at
    # least the baseline bandwidth.
    assert math.isinf(real_bw) or real_bw >= BASELINE * 0.99
    assert math.isinf(ideal_bw) or ideal_bw >= BASELINE * 0.99

    print_block(f"Figure 6(c) — {app}", [
        f"equivalent bandwidth (real) : {_fmt(real_bw):>8} MB/s"
        f"  ({'inf' if math.isinf(real_bw) else f'{real_bw / BASELINE:.2f}x'})",
        f"equivalent bandwidth (ideal): {_fmt(ideal_bw):>8} MB/s"
        f"  ({'inf' if math.isinf(ideal_bw) else f'{ideal_bw / BASELINE:.2f}x'})",
    ])


def test_fig6c_headline_claims(benchmark):
    def collect():
        return {
            "sweep3d_ideal": equivalent_bandwidth(get_experiment("sweep3d"), "ideal"),
            "sweep3d_real": equivalent_bandwidth(get_experiment("sweep3d"), "real"),
            "specfem_real": equivalent_bandwidth(get_experiment("specfem3d"), "real"),
        }

    bw = benchmark.pedantic(collect, rounds=1, iterations=1)

    # Sweep3D's ideal-pattern benefit is unreachable by bandwidth alone
    # (paper: tends to infinity for both patterns; our real-pattern
    # equivalent is large but finite — see EXPERIMENTS.md).
    assert math.isinf(bw["sweep3d_ideal"])
    assert bw["sweep3d_real"] > BASELINE * 1.2

    # SPECFEM3D: small speedup worth ~4x bandwidth.
    factor = bw["specfem_real"] / BASELINE
    assert 1.5 <= factor <= 12.0 or math.isinf(bw["specfem_real"])

    print_block("Figure 6(c) — headline claims", [
        f"Sweep3D ideal equivalent : {_fmt(bw['sweep3d_ideal'])} (paper: inf)",
        f"Sweep3D real equivalent  : {_fmt(bw['sweep3d_real'])} (paper: inf; "
        "ours is large but finite)",
        f"SPECFEM3D real equivalent: {_fmt(bw['specfem_real'])} MB/s = "
        f"{bw['specfem_real'] / BASELINE:.2f}x (paper: ~4x)",
    ])
