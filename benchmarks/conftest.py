"""Shared infrastructure of the benchmark suite.

Every benchmark regenerates one table or figure of the paper's
evaluation (see DESIGN.md §4) and prints paper-vs-measured values.
``REPRO_BENCH_NRANKS`` scales the runs (default 64, the paper's test
bed; set e.g. 16 for a quick pass).

Experiments are cached per session: the same traces/replays back all
figures, exactly as one tracer run backs the whole paper.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.pipeline import AppExperiment

#: The paper's six applications (Table I order).
POOL = ("sweep3d", "pop", "alya", "specfem3d", "bt", "cg")

NRANKS = int(os.environ.get("REPRO_BENCH_NRANKS", "64"))

_cache: dict[tuple, AppExperiment] = {}


def get_experiment(app: str, nranks: int | None = None, **kwargs) -> AppExperiment:
    """Session-cached AppExperiment (traces are expensive; share them)."""
    key = (app, nranks or NRANKS, tuple(sorted(kwargs.items())))
    if key not in _cache:
        _cache[key] = AppExperiment(app, nranks=nranks or NRANKS, **kwargs)
    return _cache[key]


@pytest.fixture(scope="session")
def nranks() -> int:
    return NRANKS


def print_block(title: str, lines: list[str]) -> None:
    """Uniform result block in the benchmark log."""
    bar = "=" * max(len(title) + 4, 40)
    print(f"\n{bar}\n| {title}\n{bar}")
    for line in lines:
        print(line)
