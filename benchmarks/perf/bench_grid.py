"""Grid dispatch benchmark: serial cold vs parallel cold vs warm.

The historical failure mode this benchmark guards is the *parallel
cold path*: before columnar dispatch, every worker re-traced and
re-transformed the application per grid point, so ``jobs=4`` on a cold
cache ran ~6x slower than plain serial replay.  With the packed
columnar codec the parent traces once, ships the encoded columns to
the pool, and workers replay straight from the columns — so parallel
cold must now be *at most comparable* to serial cold, and parallel
warm must be a pure cache read.

Four measurements, written to ``BENCH_grid.json``:

* **serial cold** — ``jobs=1``, fresh cache: the reference path, same
  cache configuration as the parallel runs so only ``jobs`` differs;
* **parallel cold** — ``jobs=N``, fresh cache: trace once, ship
  columns, replay in the pool, persist everything;
* **parallel warm** — same cache, second run: spec->digest index plus
  duration sidecars, no tracing and no simulation;
* **dispatch overhead** — what shipping cost: per-point preparation
  seconds and the ship/spec/batch counters from the engine.

Every run must produce bitwise-identical duration lists
(``durations_identical``) — the engine and codec change wall-clock
only, never results.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_grid.py \
        [--nranks 16] [--jobs 4] [--apps cg] [--repeats 3] [-o out.json]

Each timing is the best (minimum) over ``--repeats`` full passes —
wall-clock noise only ever adds time, so the minimum is the cleanest
estimate of the true cost on a shared machine.  Duration identity is
checked across *every* run of every pass.
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))
from bench_history import append_history

from repro import __version__
from repro.experiments.parallel import ExperimentEngine, expand_grid
from repro.obs import get_registry

#: Bandwidth ladder swept per (app, variant) — mirrors bench_replay.
GRID_BANDWIDTHS = (None, 31.25, 62.5, 125.0, 250.0, 500.0)

#: Engine dispatch counters reported as overhead evidence.
DISPATCH_COUNTERS = (
    "engine.dispatch.ship_points",
    "engine.dispatch.spec_points",
    "engine.dispatch.batches",
)


def run_grid(
    apps: list[str],
    nranks: int,
    jobs: int,
    cache_dir: str | None,
) -> tuple[list[float], float]:
    """One sweep over the grid; returns (durations, wall_seconds)."""
    points = expand_grid(
        apps, variants=("original", "real", "ideal"),
        bandwidths=GRID_BANDWIDTHS, nranks=nranks,
    )
    t0 = time.perf_counter()
    with ExperimentEngine(jobs=jobs, cache_dir=cache_dir) as engine:
        durations = engine.durations(points)
    return durations, time.perf_counter() - t0


def dispatch_overhead(before: dict, after: dict) -> dict:
    """Delta of the engine.dispatch.* instruments across one run."""
    out = {}
    for name in DISPATCH_COUNTERS:
        out[name.rsplit(".", 1)[1]] = (
            after["counters"].get(name, 0) - before["counters"].get(name, 0)
        )
    hist_before = before["histograms"].get(
        "engine.dispatch.prep_seconds", {"count": 0})
    hist_after = after["histograms"].get(
        "engine.dispatch.prep_seconds", {"count": 0})
    out["prep_seconds"] = (
        hist_after.get("sum", 0.0) - hist_before.get("sum", 0.0)
    )
    out["prep_count"] = hist_after["count"] - hist_before["count"]
    return out


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--nranks", type=int, default=16)
    ap.add_argument("-j", "--jobs", type=int, default=4)
    ap.add_argument("--apps", default="cg",
                    help="comma-separated pool subset")
    ap.add_argument("--repeats", type=int, default=3,
                    help="full passes; every timing reports the best "
                         "(min) to suppress machine noise")
    ap.add_argument("-o", "--output",
                    default=str(Path(__file__).parent / "BENCH_grid.json"))
    args = ap.parse_args(argv)
    apps = args.apps.split(",")
    reg = get_registry()

    identical = True
    serial_durations = None
    t_serial = t_cold = t_warm = math.inf
    overhead = None
    for rep in range(max(1, args.repeats)):
        print(f"pass {rep + 1}/{args.repeats}", flush=True)
        print("  grid, serial cold (jobs=1, fresh cache) ...", flush=True)
        with tempfile.TemporaryDirectory() as cache_dir:
            ds, ts = run_grid(apps, args.nranks, jobs=1,
                              cache_dir=cache_dir)
        print(f"    {ts:.2f} s")

        with tempfile.TemporaryDirectory() as cache_dir:
            print(f"  grid, parallel cold cache (jobs={args.jobs}) ...",
                  flush=True)
            snap_before = reg.snapshot()
            dc, tc = run_grid(apps, args.nranks, jobs=args.jobs,
                              cache_dir=cache_dir)
            oh = dispatch_overhead(snap_before, reg.snapshot())
            print(f"    {tc:.2f} s "
                  f"(shipped {oh['ship_points']} points in "
                  f"{oh['batches']} batches, prep {oh['prep_seconds']:.2f} s)")

            print(f"  grid, parallel warm cache (jobs={args.jobs}) ...",
                  flush=True)
            dw, tw = run_grid(apps, args.nranks, jobs=args.jobs,
                              cache_dir=cache_dir)
            print(f"    {tw:.2f} s")

        if serial_durations is None:
            serial_durations = ds
        identical = identical and (serial_durations == ds == dc == dw)
        t_serial = min(t_serial, ts)
        if tc < t_cold:
            t_cold, overhead = tc, oh
        t_warm = min(t_warm, tw)
    cold_ratio = t_cold / t_serial
    speedup_warm = t_serial / t_warm
    print(f"durations identical across runs: {identical}")
    print(f"parallel cold / serial cold: {cold_ratio:.2f}x")
    print(f"speedup (serial cold -> jobs={args.jobs} warm): "
          f"{speedup_warm:.1f}x")

    doc = {
        "version": __version__,
        "python": platform.python_version(),
        "nranks": args.nranks,
        "jobs": args.jobs,
        "apps": apps,
        "repeats": max(1, args.repeats),
        "grid_points": len(serial_durations),
        "serial_cold_seconds": t_serial,
        "parallel_cold_seconds": t_cold,
        "parallel_warm_seconds": t_warm,
        "parallel_cold_over_serial_cold": cold_ratio,
        "speedup_parallel_warm": speedup_warm,
        "durations_identical": identical,
        "dispatch_overhead": overhead,
    }
    Path(args.output).write_text(json.dumps(doc, indent=1) + "\n")
    print(f"wrote {args.output}")
    hist = append_history(doc, bench="grid")
    print(f"appended history -> {hist}")

    if not identical:
        print("ERROR: parallel/warm runs diverged from the serial path",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
