"""Replay performance micro-benchmark: throughput + Figure 6 grid.

Measures two things and writes them to ``BENCH_replay.json``:

* **Replay throughput** — simulated events per second of wall-clock on
  a warmed replay plan (the hot path: opcode dispatch, memoized
  matching, coalesced bursts);
* **Audit overhead** — the same warmed replay with the invariant
  auditor off / ``basic`` / ``full``.  The off row *is* the throughput
  path (audit disabled leaves only dormant ``is None`` hooks in the
  hot loop), so its overhead must stay within noise of zero; the
  basic/full rows price the post-hoc integrity battery;
* **Perturbation overhead** — the same warmed replay with platform
  fault injection off / under a bandwidth-sag schedule.  The off row
  builds the plain ``Network`` (no perturbation code on the path), so
  its overhead must stay within noise of zero; the perturbed row
  prices the ``PerturbedNetwork`` piecewise wire integration;
* **Figure 6(a)-(c) grid wall-clock** — the speedup grid plus the
  bandwidth relaxation / equivalent-bandwidth searches, run three
  ways: serial and cold (the reference path), parallel with a cold
  persistent cache (the warming run), and parallel with the warm
  cache.  The warm run must produce *identical* durations and
  thresholds — the engine and the caches change wall-clock only.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_replay.py \
        [--nranks 16] [--jobs 4] [--apps sweep3d,bt,cg] [-o out.json] \
        [--metrics-out metrics.json] [--obs-dir DIR] [--profile]

``--metrics-out`` dumps the final observability-registry snapshot
(cache hit/miss totals including pool workers, per-stage wall-clock
histograms); ``--obs-dir``/``--profile`` additionally record a run
manifest and a Perfetto trace of the benchmark itself.  CI uploads
these as artifacts next to ``BENCH_replay.json``.
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))
from bench_history import append_history

from repro import __version__
from repro.dimemas.machine import MachineConfig
from repro.dimemas.replay import simulate
from repro.experiments.bandwidth import equivalent_bandwidth, relaxation_bandwidth
from repro.experiments.cache import SimResultCache, TraceCache
from repro.experiments.parallel import ExperimentEngine, expand_grid
from repro.experiments.pipeline import AppExperiment

#: Bandwidth ladder replayed per (app, variant) — a miniature of the
#: grids behind Figure 6 (None = the application's baseline platform).
GRID_BANDWIDTHS = (None, 31.25, 62.5, 125.0, 250.0, 500.0)


def bench_throughput(nranks: int, repeats: int = 5, samples: int = 5) -> dict:
    """Events/second of the replay hot loop on a warmed plan.

    Takes ``samples`` independent timings of ``repeats`` replays each
    and reports the best — scheduler noise and CPU throttling only
    ever add time, so the minimum is the cleanest estimate of the hot
    loop's true cost (same policy as ``bench_grid``).
    """
    exp = AppExperiment("cg", nranks=nranks)
    trace = exp.trace("original")
    machine = MachineConfig.paper_testbed("cg")
    result = simulate(trace, machine)  # warm the replay plan
    events = result.network_stats["events_executed"]
    timings = []
    for _ in range(max(1, samples)):
        t0 = time.perf_counter()
        for _ in range(repeats):
            simulate(trace, machine)
        timings.append(time.perf_counter() - t0)
    elapsed = min(timings)
    return {
        "app": "cg",
        "nranks": nranks,
        "events_per_replay": events,
        "replays": repeats,
        "samples": len(timings),
        "wall_seconds": elapsed,
        "events_per_second": events * repeats / elapsed,
    }


def bench_audit_overhead(nranks: int, repeats: int = 5,
                         samples: int = 5) -> dict:
    """Wall-clock of the warmed replay under each audit level.

    Same best-of-``samples`` policy as :func:`bench_throughput`; the
    ``off`` row replays with ``audit=None`` — the default production
    path — and anchors the overhead percentages of ``basic``/``full``.
    """
    exp = AppExperiment("cg", nranks=nranks)
    trace = exp.trace("original")
    machine = MachineConfig.paper_testbed("cg")
    simulate(trace, machine)  # warm the replay plan

    def best(audit) -> float:
        timings = []
        for _ in range(max(1, samples)):
            t0 = time.perf_counter()
            for _ in range(repeats):
                simulate(trace, machine, audit=audit)
            timings.append(time.perf_counter() - t0)
        return min(timings)

    t_off, t_basic, t_full = best(None), best("basic"), best("full")
    return {
        "app": "cg",
        "nranks": nranks,
        "replays": repeats,
        "samples": samples,
        "off_seconds": t_off,
        "basic_seconds": t_basic,
        "full_seconds": t_full,
        "basic_overhead_percent": 100.0 * (t_basic / t_off - 1.0),
        "full_overhead_percent": 100.0 * (t_full / t_off - 1.0),
    }


def bench_insight_overhead(nranks: int, repeats: int = 5,
                           samples: int = 5) -> dict:
    """Wall-clock of the warmed replay with wait attribution off / on.

    The ``off`` row replays with ``insight=None`` — the production
    default, whose only cost is dormant ``is None`` hooks on the
    blocking paths — so its overhead must stay within noise of the
    plain throughput path; the ``collecting`` row prices a fresh
    :class:`repro.insight.InsightCollector` per replay.
    """
    from repro.insight import InsightCollector

    exp = AppExperiment("cg", nranks=nranks)
    trace = exp.trace("original")
    machine = MachineConfig.paper_testbed("cg")
    simulate(trace, machine)  # warm the replay plan

    def best(make_insight) -> float:
        timings = []
        for _ in range(max(1, samples)):
            t0 = time.perf_counter()
            for _ in range(repeats):
                simulate(trace, machine, insight=make_insight())
            timings.append(time.perf_counter() - t0)
        return min(timings)

    t_off = best(lambda: None)
    t_on = best(InsightCollector)
    return {
        "app": "cg",
        "nranks": nranks,
        "replays": repeats,
        "samples": samples,
        "off_seconds": t_off,
        "collecting_seconds": t_on,
        "collecting_overhead_percent": 100.0 * (t_on / t_off - 1.0),
    }


def bench_perturb_overhead(nranks: int, repeats: int = 5,
                           samples: int = 5) -> dict:
    """Wall-clock of the warmed replay with perturbation off / on.

    The ``off`` row replays with ``perturb=None`` — the production
    default, which builds the plain :class:`~repro.dimemas.network.Network`
    and never touches a perturbation code path — so its overhead must
    stay within noise of the plain throughput path; the ``perturbed``
    row replays under a bandwidth-sag scenario on the
    :class:`~repro.dimemas.network.PerturbedNetwork` subclass.
    """
    from repro.perturb import build_scenario

    exp = AppExperiment("cg", nranks=nranks)
    trace = exp.trace("original")
    machine = MachineConfig.paper_testbed("cg")
    horizon = simulate(trace, machine).duration  # warms the replay plan
    schedule = build_scenario("bandwidth-sag", horizon, seed=0)

    def best(pert) -> float:
        timings = []
        for _ in range(max(1, samples)):
            t0 = time.perf_counter()
            for _ in range(repeats):
                simulate(trace, machine, perturb=pert)
            timings.append(time.perf_counter() - t0)
        return min(timings)

    t_off = best(None)
    t_on = best(schedule)
    return {
        "app": "cg",
        "nranks": nranks,
        "replays": repeats,
        "samples": samples,
        "scenario": "bandwidth-sag",
        "off_seconds": t_off,
        "perturbed_seconds": t_on,
        "perturbed_overhead_percent": 100.0 * (t_on / t_off - 1.0),
    }


def run_fig6_grid(
    apps: list[str],
    nranks: int,
    jobs: int,
    cache_dir: str | None,
) -> tuple[dict, float]:
    """One full pass over the Figure 6(a)-(c) workload.

    Returns ``(observations, wall_seconds)`` where observations holds
    every grid-point duration and every search threshold — the identity
    payload compared across serial/parallel/warm runs.
    """
    t0 = time.perf_counter()
    with ExperimentEngine(jobs=jobs, cache_dir=cache_dir) as engine:
        points = expand_grid(
            apps, variants=("original", "real", "ideal"),
            bandwidths=GRID_BANDWIDTHS, nranks=nranks,
        )
        durations = engine.durations(points)

        trace_cache = sim_cache = None
        if cache_dir is not None:
            trace_cache = TraceCache(Path(cache_dir) / "traces")
            sim_cache = SimResultCache(Path(cache_dir) / "replays")
        eng = engine if jobs > 1 else None
        thresholds = {}
        for a in apps:
            exp = AppExperiment(a, nranks=nranks,
                                cache=trace_cache, sim_cache=sim_cache)
            thresholds[a] = {
                "relax_real": relaxation_bandwidth(exp, "real", engine=eng),
                "relax_ideal": relaxation_bandwidth(exp, "ideal", engine=eng),
                "equiv_real": equivalent_bandwidth(exp, "real", engine=eng),
                "equiv_ideal": equivalent_bandwidth(exp, "ideal", engine=eng),
            }
    elapsed = time.perf_counter() - t0
    obs = {"grid_durations": durations, "thresholds": thresholds}
    return obs, elapsed


def same_observations(a: dict, b: dict) -> bool:
    """Exact equality, treating inf == inf as equal."""
    if a["grid_durations"] != b["grid_durations"]:
        return False
    for app in a["thresholds"]:
        for k, va in a["thresholds"][app].items():
            vb = b["thresholds"][app][k]
            if not (va == vb or (math.isinf(va) and math.isinf(vb))):
                return False
    return True


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--nranks", type=int, default=16)
    ap.add_argument("-j", "--jobs", type=int, default=4)
    ap.add_argument("--apps", default="sweep3d,bt,cg",
                    help="comma-separated pool subset")
    ap.add_argument("-o", "--output",
                    default=str(Path(__file__).parent / "BENCH_replay.json"))
    ap.add_argument("--metrics-out", default=None, metavar="FILE",
                    help="write the observability metrics snapshot here")
    ap.add_argument("--obs-dir", default=None, metavar="DIR",
                    help="record a run manifest (and, with --profile, a "
                         "Perfetto trace) under this directory")
    ap.add_argument("--profile", action="store_true",
                    help="span-trace the benchmark itself")
    args = ap.parse_args(argv)
    apps = args.apps.split(",")

    from repro import obs
    run = None
    if args.profile:
        obs.enable()
    if args.obs_dir or args.profile:
        run = obs.RunContext(args.obs_dir or ".repro-obs",
                             command="bench-replay")

    print(f"replay throughput (nranks={args.nranks}) ...", flush=True)
    throughput = bench_throughput(args.nranks)
    print(f"  {throughput['events_per_second']:,.0f} events/s "
          f"({throughput['events_per_replay']} events/replay)")

    print("audit overhead (off / basic / full) ...", flush=True)
    audit = bench_audit_overhead(args.nranks)
    print(f"  off {audit['off_seconds']:.3f} s, "
          f"basic +{audit['basic_overhead_percent']:.1f}%, "
          f"full +{audit['full_overhead_percent']:.1f}%")

    print("insight overhead (off / collecting) ...", flush=True)
    insight = bench_insight_overhead(args.nranks)
    print(f"  off {insight['off_seconds']:.3f} s, "
          f"collecting +{insight['collecting_overhead_percent']:.1f}%")

    print("perturbation overhead (off / bandwidth-sag) ...", flush=True)
    perturb = bench_perturb_overhead(args.nranks)
    print(f"  off {perturb['off_seconds']:.3f} s, "
          f"perturbed +{perturb['perturbed_overhead_percent']:.1f}%")

    print("figure 6 grid, serial cold (jobs=1) ...", flush=True)
    serial_obs, t_serial = run_fig6_grid(apps, args.nranks, jobs=1,
                                         cache_dir=None)
    print(f"  {t_serial:.2f} s")

    with tempfile.TemporaryDirectory() as cache_dir:
        print(f"figure 6 grid, parallel cold cache (jobs={args.jobs}) ...",
              flush=True)
        cold_obs, t_cold = run_fig6_grid(apps, args.nranks, jobs=args.jobs,
                                         cache_dir=cache_dir)
        print(f"  {t_cold:.2f} s")

        print(f"figure 6 grid, parallel warm cache (jobs={args.jobs}) ...",
              flush=True)
        warm_obs, t_warm = run_fig6_grid(apps, args.nranks, jobs=args.jobs,
                                         cache_dir=cache_dir)
        print(f"  {t_warm:.2f} s")

    identical = (same_observations(serial_obs, cold_obs)
                 and same_observations(serial_obs, warm_obs))
    speedup_warm = t_serial / t_warm
    print(f"durations identical across runs: {identical}")
    print(f"speedup (serial cold -> jobs={args.jobs} warm): "
          f"{speedup_warm:.1f}x")

    doc = {
        "version": __version__,
        "python": platform.python_version(),
        "nranks": args.nranks,
        "jobs": args.jobs,
        "apps": apps,
        "grid_points": len(serial_obs["grid_durations"]),
        "throughput": throughput,
        "audit": audit,
        "insight": insight,
        "perturb": perturb,
        "fig6_grid": {
            "serial_cold_seconds": t_serial,
            "parallel_cold_seconds": t_cold,
            "parallel_warm_seconds": t_warm,
            "speedup_parallel_warm": speedup_warm,
            "durations_identical": identical,
        },
    }
    Path(args.output).write_text(json.dumps(doc, indent=1) + "\n")
    print(f"wrote {args.output}")
    hist = append_history(doc, bench="replay")
    print(f"appended history -> {hist}")

    if run is not None:
        spans = run.drain_spans()
        if args.profile and spans:
            obs.write_chrome_trace(run.dir / "trace.json", spans)
        run.finalize(status="ok" if identical else "divergent",
                     bench=doc["fig6_grid"])
        print(f"run manifest: {run.manifest_path}")
    if args.metrics_out:
        obs.write_metrics(args.metrics_out, obs.get_registry(),
                          run_id=run.run_id if run else None)
        print(f"wrote {args.metrics_out}")
    if args.profile:
        obs.disable()

    if not identical:
        print("ERROR: parallel/warm runs diverged from the serial path",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
