"""Figure 6(b) — bandwidth relaxation enabled by overlap.

Paper §V-B: *"in order to achieve the performance of the non-overlapped
execution on 250MB/s, the overlapped execution needs much less
bandwidth.  Again, Sweep3D benefits from overlap the most and allows to
reduce the network bandwidth to 11.75MB/s."*
"""

import pytest

from repro.experiments.bandwidth import relaxation_bandwidth

from conftest import POOL, get_experiment, print_block

BASELINE = 250.0


@pytest.mark.parametrize("app", POOL)
def test_fig6b_per_app_relaxation(benchmark, app):
    exp = get_experiment(app)

    def search():
        return (relaxation_bandwidth(exp, "real"),
                relaxation_bandwidth(exp, "ideal"))

    real_bw, ideal_bw = benchmark.pedantic(search, rounds=1, iterations=1)

    # Overlap can never *require more* than the baseline bandwidth.
    assert real_bw <= BASELINE * 1.01
    assert ideal_bw <= BASELINE * 1.01
    # The ideal schedule relaxes at least as far as the real one.
    assert ideal_bw <= real_bw * 1.05

    print_block(f"Figure 6(b) — {app}", [
        f"relaxation bandwidth (real) : {real_bw:8.2f} MB/s",
        f"relaxation bandwidth (ideal): {ideal_bw:8.2f} MB/s",
        f"baseline                    : {BASELINE:8.2f} MB/s",
    ])


def test_fig6b_sweep3d_relaxes_most(benchmark):
    def collect():
        return {app: relaxation_bandwidth(get_experiment(app), "ideal")
                for app in POOL}

    bw = benchmark.pedantic(collect, rounds=1, iterations=1)
    # Paper: Sweep3D down to 11.75 MB/s — by far the deepest relaxation
    # among the structured-communication codes.
    assert bw["sweep3d"] < 60.0, bw
    assert bw["sweep3d"] <= min(bw[a] for a in ("pop", "cg", "alya")) * 1.05
    print_block("Figure 6(b) — cross-pool", [
        f"{a:>10}: ideal-pattern relaxation to {bw[a]:8.2f} MB/s"
        for a in POOL
    ] + ["", "paper: Sweep3D relaxes to 11.75 MB/s (deepest)"])
