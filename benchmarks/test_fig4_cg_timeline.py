"""Figure 4 — Paraver view of NAS-CG, 4 processes, first five iterations.

Paper §V: *"the overlapped execution achieves 8% performance
improvement with respect the non-overlapped execution ... mostly
attributed to advancing the MPI transfer by sending the associated
chunks earlier ... reducing significantly the Wait phases."*

The benchmark reconstructs both executions, renders the stacked
Gantt the paper shows, and checks all three claims: a single-digit-
to-low-double-digit improvement, earlier transfers, smaller waits.
"""

from repro.paraver.compare import compare
from repro.paraver.timeline import iteration_bounds

from conftest import get_experiment, print_block

ITERATIONS_SHOWN = 5


def test_fig4_cg_overlap_view(benchmark):
    exp = get_experiment("cg", nranks=4)

    def reconstruct():
        return exp.simulate("original"), exp.simulate("real")

    r0, r1 = benchmark.pedantic(reconstruct, rounds=1, iterations=1)
    c = compare(r0, r1)

    improvement = c.timing.improvement_percent
    # Paper: ~8 %. Shape criterion: a clear, single-digit-to-modest win.
    assert 2.0 <= improvement <= 25.0, improvement

    # Advancing sends: chunk transfers leave earlier on average.
    first_sends0 = min(m.t_send for m in r0.messages if m.size > 8)
    first_sends1 = min(m.t_send for m in r1.messages if m.size > 8)
    assert first_sends1 <= first_sends0 + 1e-12

    # Reduced blocked phases: the paper's CG gain comes from advancing
    # chunk transfers, which shrinks the time ranks spend blocked in
    # communication (at 4 ranks mostly the rendezvous Send phases).
    waits0, waits1 = r0.blocked_time, r1.blocked_time
    assert waits1 < waits0

    t0, t1 = iteration_bounds(r0, 0, ITERATIONS_SHOWN)
    print_block("Figure 4 — NAS-CG, 4 processes", [
        c.report(width=88, t0=t0, t1=min(t1, max(r0.duration, r1.duration))),
        "",
        "paper improvement    : ~8%",
        f"measured improvement : {improvement:.1f}%",
        f"blocked time         : {waits0 * 1e3:.2f}ms -> {waits1 * 1e3:.2f}ms",
    ])


def test_fig4_prv_export_roundtrip(benchmark, tmp_path):
    """The same view exports to a Paraver .prv for the real tool."""
    from repro.trace import prv

    exp = get_experiment("cg", nranks=4)
    result = exp.simulate("real")

    def export():
        out = tmp_path / "cg_overlapped.prv"
        prv.write_prv(result, out)
        prv.write_pcf(tmp_path / "cg_overlapped.pcf")
        return out

    out = benchmark.pedantic(export, rounds=1, iterations=1)
    head = out.read_text().splitlines()
    assert head[0].startswith("#Paraver")
    assert len(head) > result.nranks
