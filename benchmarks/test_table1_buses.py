"""Table I — Dimemas bus counts per application.

Paper §IV: bus counts are calibrated so the simulation matches real
MareNostrum runs.  Without the real machine, this benchmark times the
calibration procedure itself and reports, per application, the paper's
value next to the saturation knee of our simulated network (the bus
count beyond which more concurrency no longer helps), verifying the
monotonicity the procedure relies on.
"""

import pytest

from repro.dimemas.machine import PAPER_BUSES
from repro.experiments.calibration import bus_sensitivity, calibrate_buses

from conftest import POOL, get_experiment, print_block

COUNTS = [1, 2, 4, 8, 16, 32]


@pytest.mark.parametrize("app", POOL)
def test_table1_bus_calibration(benchmark, app):
    exp = get_experiment(app)

    sens = benchmark.pedantic(
        bus_sensitivity, args=(exp, COUNTS), rounds=1, iterations=1,
    )

    # Monotone non-increasing in the bus count (calibration premise).
    durs = [sens[c] for c in COUNTS]
    assert all(a >= b - 1e-12 for a, b in zip(durs, durs[1:])), durs

    # The calibration procedure recovers a bus count reproducing a
    # reference made at the paper's Table I setting.
    reference = exp.duration("original", buses=PAPER_BUSES[app])
    recovered = calibrate_buses(exp, reference, tolerance=0.02)
    assert recovered is not None
    assert exp.duration("original", buses=recovered) <= reference * 1.03

    knee = next(
        (c for c in COUNTS if sens[c] <= sens[0] * 1.02), COUNTS[-1]
    )
    print_block(f"Table I — {app}", [
        f"paper bus count     : {PAPER_BUSES[app]}",
        f"calibrated (ours)   : {recovered}",
        f"saturation knee     : {knee}",
        "sensitivity         : " + "  ".join(
            f"{c}:{sens[c] * 1e3:.2f}ms" for c in COUNTS),
    ])
