"""Table II — production/consumption patterns of the pool.

Regenerates both halves of the paper's Table II from the tracer's
access profiles and checks the qualitative structure that drives every
other result:

* CG is the only near-linear producer (low first-element fraction);
* every other code produces late (>60 %, mostly >95 %);
* BT has significant independent work before consuming (~14 %),
  Sweep3D/SPECFEM3D need their data immediately.
"""

import pytest

from repro.experiments.tables import (
    PAPER_CONSUMPTION,
    PAPER_PRODUCTION,
    pattern_row,
)

from conftest import POOL, get_experiment, print_block


@pytest.mark.parametrize("app", POOL)
def test_table2_pattern_row(benchmark, app):
    exp = get_experiment(app)
    row = benchmark.pedantic(pattern_row, args=(exp,), rounds=1, iterations=1)

    p, c = row.production, row.consumption
    pp, pc = PAPER_PRODUCTION[app], PAPER_CONSUMPTION[app]
    print_block(f"Table II — {app}", [
        f"production  1st/quarter/half/whole (measured): "
        f"{p.first_element:6.4f} {p.quarter:6.4f} {p.half:6.4f} {p.whole:6.4f}",
        f"production  1st/quarter/half/whole (paper)   : "
        f"{pp.first_element:6.4f} {pp.quarter:6.4f} {pp.half:6.4f} {pp.whole:6.4f}",
        f"consumption nothing/quarter/half   (measured): "
        f"{c.nothing:6.4f} {c.quarter:6.4f} {c.half:6.4f}",
        f"consumption nothing/quarter/half   (paper)   : "
        f"{pc.nothing:6.4f} {pc.quarter:6.4f} {pc.half:6.4f}",
    ])

    if app == "cg":
        assert p.first_element < 0.15, "CG must be a near-linear producer"
        assert p.quarter < 0.45
    else:
        assert p.first_element > 0.60, f"{app} must produce late"
    if app == "bt":
        assert c.nothing > 0.02, "BT has independent work before consuming"
    if app in ("sweep3d", "specfem3d"):
        assert c.nothing < 0.02, f"{app} consumes immediately"


def test_table2_orderings_across_pool(benchmark):
    """Cross-application structure of the table, in one view."""
    def collect():
        return {app: pattern_row(get_experiment(app)) for app in POOL}

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    first = {a: rows[a].production.first_element for a in POOL}
    assert min(first, key=first.get) == "cg"
    nothing = {a: rows[a].consumption.nothing for a in POOL}
    assert nothing["bt"] == max(nothing.values())
    print_block("Table II — cross-pool orderings", [
        f"earliest producer : cg ({first['cg']:.4f})",
        f"most independent work before consumption: bt ({nothing['bt']:.4f})",
    ])
