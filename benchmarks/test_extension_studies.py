"""Extension studies beyond the paper's figures.

* strong-scaling ladder of the overlap benefit (the paper motivates
  overlap "specially at large scale" — this measures the trend);
* network sweeps with crossover detection;
* SMP node-packing study (Dimemas' multi-core model).
"""

from dataclasses import replace

from repro.experiments.scaling import scaling_study
from repro.experiments.sweeps import ascii_series, bandwidth_sweep

from conftest import get_experiment, print_block


def test_extension_scaling_ladder(benchmark):
    """Sweep3D ideal-pattern benefit grows with scale (deeper wavefront)."""
    def run():
        return scaling_study("sweep3d", rank_counts=(4, 16, 64))

    study = benchmark.pedantic(run, rounds=1, iterations=1)
    ideal = study.series("speedup_ideal")
    # the wavefront is deeper at higher rank counts: monotone trend
    assert ideal[-1] >= ideal[0]
    print_block("Extension — strong scaling (sweep3d)", [study.render()])


def test_extension_bandwidth_sweep_crossover(benchmark):
    """Where does overlap stop paying as bandwidth rises?"""
    exp = get_experiment("cg")

    def run():
        return bandwidth_sweep(exp, [31.25, 62.5, 125.0, 250.0, 500.0, 1000.0])

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    # at very high bandwidth there is little left to hide
    s = sweep.speedups("real")
    assert s[-1] <= max(s) + 1e-9
    print_block("Extension — bandwidth sweep (cg)", [
        ascii_series(sweep, width=48, height=10),
        "",
        "real-pattern speedups: " + "  ".join(
            f"{x:g}:{v:.3f}" for x, v in zip(sweep.xs, s)),
        f"crossover (speedup < 1.001): {sweep.crossover('real')}",
    ])


def test_extension_smp_packing(benchmark):
    """Packing ranks onto SMP nodes shifts the bottleneck off the network."""
    exp = get_experiment("pop")
    trace = exp.trace("original")

    def run():
        from repro.dimemas.replay import simulate
        out = {}
        for cores in (1, 4, 8):
            cfg = replace(exp.machine, cores_per_node=cores,
                          intra_latency=1e-6)
            out[cores] = simulate(trace, cfg).duration
        return out

    durs = benchmark.pedantic(run, rounds=1, iterations=1)
    assert durs[8] <= durs[4] <= durs[1]
    print_block("Extension — SMP packing (pop)", [
        f"{c:>2} cores/node: {d * 1e3:9.3f} ms" for c, d in durs.items()
    ])
