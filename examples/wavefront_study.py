#!/usr/bin/env python
"""Wavefront overlap study: the paper's Sweep3D headline, interactive.

Sweep3D is where the paper finds the largest ideal-pattern benefit:
chunking the k-block boundary messages creates finer-grain
dependencies between the pipeline stages.  This example reproduces
that study end to end:

1. measure the production/consumption patterns (Table II row);
2. sweep the chunk count (ablation of the paper's fixed choice of 4);
3. sweep the network bandwidth to find the relaxation point — how
   cheap a network sustains the original performance once overlap is
   on (paper Figure 6(b): 11.75 MB/s);
4. export an SVG timeline pair for visual inspection.

    python examples/wavefront_study.py [--nranks 16]
"""

import argparse

from repro.core import ideal_transform, overlap_transform
from repro.dimemas import simulate
from repro.experiments import AppExperiment, pattern_row, relaxation_bandwidth
from repro.paraver import write_svg


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--nranks", type=int, default=16)
    args = ap.parse_args()

    exp = AppExperiment("sweep3d", nranks=args.nranks)

    # -- 1. measured patterns ------------------------------------------------
    row = pattern_row(exp)
    print("Sweep3D production pattern (fraction of the production phase):")
    print(f"  first element {row.production.first_element:.3f}  "
          f"quarter {row.production.quarter:.3f}  "
          f"half {row.production.half:.3f}  whole {row.production.whole:.3f}")
    print(f"  (paper Table II: 0.663 / 0.948 / 0.982 / 0.998)")

    # -- 2. chunk-count sweep --------------------------------------------------
    base = exp.duration("original")
    print(f"\noriginal makespan: {base * 1e3:.3f} ms")
    print("ideal-pattern overlap vs chunk count:")
    trace = exp.trace("original")
    for chunks in (1, 2, 4, 8, 16):
        t, _ = ideal_transform(trace, chunks=chunks)
        d = simulate(t, exp.machine).duration
        print(f"  chunks={chunks:>2}: {d * 1e3:8.3f} ms  "
              f"speedup {base / d:.3f}")

    # -- 3. bandwidth relaxation ---------------------------------------------
    relax = relaxation_bandwidth(exp, "ideal")
    print(f"\nbandwidth relaxation (ideal patterns): the overlapped "
          f"execution matches the\noriginal 250 MB/s performance down to "
          f"{relax:.1f} MB/s  (paper: 11.75 MB/s)")

    # -- 4. timelines ------------------------------------------------------------
    write_svg(exp.simulate("original"), "sweep3d_original.svg",
              title="Sweep3D — non-overlapped")
    write_svg(exp.simulate("ideal"), "sweep3d_ideal.svg",
              title="Sweep3D — ideal-pattern overlap")
    print("\nwrote sweep3d_original.svg and sweep3d_ideal.svg")


if __name__ == "__main__":
    main()
