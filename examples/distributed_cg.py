#!/usr/bin/env python
"""A *numerically real* distributed solver on the simulated runtime.

The pool skeletons model timing, not arithmetic.  This example shows
the other side of the runtime: :mod:`repro.smpi` is a complete
message-passing system, so one can write an actually-correct parallel
conjugate-gradient solver against it, verify the numerics against
SciPy, and *then* put the very same program under the tracer to study
its overlap potential — exactly the workflow the paper proposes for
legacy codes ("without the need to know or understand the
application's source code").

    python examples/distributed_cg.py [--n 256] [--nranks 4]
"""

import argparse

import numpy as np
import scipy.sparse as sp

from repro.core import overlap_transform, production_table
from repro.dimemas import MachineConfig, simulate
from repro.tracer import run_traced


def make_problem(n: int, seed: int = 7):
    """A small SPD system (2-D Laplacian plus diagonal shift)."""
    rng = np.random.default_rng(seed)
    lap = sp.diags([-1.0, 2.5, -1.0], [-1, 0, 1], shape=(n, n), format="csr")
    b = rng.normal(size=n)
    return lap, b


def parallel_cg(A: sp.csr_matrix, b: np.ndarray, iterations: int = 60):
    """Block-row parallel CG: every rank owns n/size rows of A.

    Communication per iteration (as in simple parallel CG codes):
    an allgather of the direction vector for the local matvec and two
    scalar allreduces for the dot products.  Compute bursts report the
    matvec's store pattern so the tracer can profile production.
    """
    n = b.shape[0]

    def rank_main(comm):
        size, rank = comm.size, comm.rank
        lo = rank * n // size
        hi = (rank + 1) * n // size
        A_loc = A[lo:hi]
        b_loc = b[lo:hi]

        x_loc = np.zeros(hi - lo)
        r_loc = b_loc.copy()
        # Communication buffers must be *persistent objects*: the
        # tracer links accesses to transfers by buffer identity, like
        # Valgrind links them by address.  Updates are in place.
        p_loc = r_loc.copy()
        q_loc = np.zeros(hi - lo)
        offs = np.arange(hi - lo)
        rs = comm.allreduce(float(r_loc @ r_loc))

        for _ in range(iterations):
            # Assemble the full direction vector, then local matvec.
            p_parts = comm.allgather(p_loc)
            p_full = np.concatenate(p_parts)
            q_loc[:] = A_loc @ p_full
            comm.compute(int(A_loc.nnz * 10), stores=[(q_loc, offs)])
            alpha = rs / comm.allreduce(float(p_loc @ q_loc))
            x_loc += alpha * p_loc
            r_loc -= alpha * q_loc
            rs_new = comm.allreduce(float(r_loc @ r_loc))
            p_loc[:] = r_loc + (rs_new / rs) * p_loc
            comm.compute(int(6 * p_loc.size),
                         stores=[(p_loc, offs, np.linspace(0.5, 1.0, offs.size))])
            rs = rs_new
        return x_loc

    return rank_main


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--n", type=int, default=256)
    ap.add_argument("--nranks", type=int, default=4)
    ap.add_argument("--iterations", type=int, default=60)
    args = ap.parse_args()

    A, b = make_problem(args.n)

    # 1. Run under the tracer: numerics AND instrumentation in one go.
    run = run_traced(parallel_cg(A, b, args.iterations), args.nranks)
    x = np.concatenate(run.results)

    # 2. Verify against SciPy's reference solution.
    x_ref = sp.linalg.spsolve(A.tocsc(), b)
    err = np.linalg.norm(x - x_ref) / np.linalg.norm(x_ref)
    print(f"distributed CG on {args.nranks} ranks: relative error vs "
          f"SciPy {err:.2e}")
    assert err < 1e-6, "the simulated-MPI solver must be numerically correct"

    # 3. Study the traced execution's overlap potential.
    trace = run.trace
    # This solver communicates through collectives (allgather +
    # allreduces), so pool all channels, as for Alya in the paper.
    row = production_table(trace, channel=None)
    print(f"measured production pattern of the direction vector: "
          f"first element at {row.first_element * 100:.1f}% of the phase")

    machine = MachineConfig(bandwidth_mbps=250.0, latency=8e-6)
    base = simulate(trace, machine).duration
    over = simulate(overlap_transform(trace)[0], machine).duration
    print(f"non-overlapped {base * 1e3:.3f} ms -> overlapped "
          f"{over * 1e3:.3f} ms (speedup {base / over:.3f})")


if __name__ == "__main__":
    main()
