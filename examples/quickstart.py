#!/usr/bin/env python
"""Quickstart: trace -> overlap -> simulate -> compare, in 60 lines.

Runs a small halo-exchange application under the tracer (the
framework's Valgrind stage), derives the overlapped execution
automatically (no application changes — the paper's headline feature),
replays both on a configurable platform (the Dimemas stage), and
prints the Paraver-style comparison.

    python examples/quickstart.py
"""

from repro.apps import HaloExchange2D
from repro.core import overlap_transform
from repro.dimemas import MachineConfig, simulate
from repro.paraver import compare

# 1. A 16-rank stencil code whose boundary data is produced late in
#    each step (80 %+) and consumed early — decent overlap potential.
app = HaloExchange2D(
    edge_elements=2048,
    work=4_000_000,
    iterations=4,
    production_anchors=[(0.0, 0.5), (1.0, 1.0)],
    consumption_anchors=[(0.0, 0.1), (1.0, 0.8)],
)

# 2. Trace it (one simulated Valgrind VM per rank).
run = app.trace(nranks=16)
trace = run.trace
print(f"traced {trace.nranks} ranks: {trace.total_records()} records, "
      f"{trace.total_virtual_compute() * 1e3:.2f} ms of computation")

# 3. Apply the automatic overlap transformation: message chunking,
#    advancing sends, double buffering, post-postponed receptions.
overlapped, stats = overlap_transform(trace, chunks=4)
print(f"transformed {stats.messages_transformed}/{stats.messages_total} "
      f"messages; {stats.sends_advanced} chunk sends advanced, "
      f"{stats.waits_postponed} waits postponed")

# 4. Reconstruct both time-behaviours on a Myrinet-class platform.
machine = MachineConfig(bandwidth_mbps=250.0, latency=8e-6, buses=8)
original = simulate(trace, machine)
better = simulate(overlapped, machine)

# 5. Inspect the difference the way the paper does with Paraver.
print()
print(compare(original, better).report(width=100))
