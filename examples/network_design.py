#!/usr/bin/env python
"""Network design study: how much network can overlap save?

The paper's introduction motivates overlap economically: *"as a
parallel machine deploys higher bandwidth, the cost of its network
becomes a significant part of the total cost of the whole system"* —
overlap lets a cheaper network deliver the same application
performance.

This example plays network architect: given an application, it sweeps
candidate (bandwidth, buses) designs, prices them with a simple cost
model, and finds the cheapest design that preserves the reference
performance — first for the legacy code, then for the automatically
overlapped one.

    python examples/network_design.py [--app cg] [--nranks 16]
"""

import argparse

from repro.experiments import AppExperiment

#: Candidate link bandwidths (MB/s) and bus counts.
BANDWIDTHS = (31.25, 62.5, 125.0, 250.0, 500.0)
BUSES = (2, 4, 8, 16, 32)


def network_cost(bandwidth: float, buses: int) -> float:
    """Toy network cost: proportional to aggregate wire capacity."""
    return bandwidth * buses / 1000.0


def cheapest_design(exp: AppExperiment, variant: str, target: float):
    """Cheapest (bandwidth, buses) keeping the makespan under target."""
    best = None
    for bw in BANDWIDTHS:
        for buses in BUSES:
            d = exp.duration(variant, bandwidth_mbps=bw, buses=buses)
            if d <= target * 1.001:
                cost = network_cost(bw, buses)
                if best is None or cost < best[0]:
                    best = (cost, bw, buses, d)
    return best


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--app", default="cg")
    ap.add_argument("--nranks", type=int, default=16)
    args = ap.parse_args()

    exp = AppExperiment(args.app, nranks=args.nranks)
    reference = exp.duration("original")  # Table I platform, 250 MB/s
    print(f"{args.app} on {args.nranks} ranks — reference makespan "
          f"{reference * 1e3:.3f} ms on the paper's platform "
          f"(250 MB/s, {exp.machine.buses or 'unlimited'} buses)\n")

    for variant, label in (("original", "legacy (non-overlapped)"),
                           ("real", "automatically overlapped")):
        best = cheapest_design(exp, variant, reference)
        if best is None:
            print(f"{label:>28}: no candidate design reaches the reference")
            continue
        cost, bw, buses, d = best
        print(f"{label:>28}: {bw:7.2f} MB/s x {buses:>2} buses "
              f"(cost {cost:6.2f}, makespan {d * 1e3:.3f} ms)")

    print("\nThe gap between the two rows is the network budget that")
    print("communication-computation overlap buys back (paper §I, §V-B).")


if __name__ == "__main__":
    main()
