#!/usr/bin/env python
"""SMP cluster study: node packing, overlap, and the bottleneck shift.

A network architect's session with the framework's extension features:

1. replay the same POP trace on flat (1 core/node) and SMP (4 and 8
   cores/node) machines — same 32 processes, different packing;
2. measure how much of each makespan is critical-path communication
   (wire/queue) vs computation;
3. check whether automatic overlap still pays once most halo traffic
   has become intra-node shared-memory copies.

    python examples/smp_cluster_study.py [--nranks 32]
"""

import argparse
from dataclasses import replace

from repro.core import overlap_transform
from repro.dimemas import MachineConfig, simulate
from repro.experiments import AppExperiment
from repro.paraver import critical_path, render_heatmap


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--nranks", type=int, default=32)
    args = ap.parse_args()

    exp = AppExperiment("pop", nranks=args.nranks)
    trace = exp.trace("original")
    overlapped, _ = overlap_transform(trace)

    print(f"POP on {args.nranks} ranks — packing study "
          f"(250 MB/s network, 8 us latency)\n")
    print(f"{'cores/node':>11} {'T_orig(ms)':>11} {'T_ovlp(ms)':>11} "
          f"{'speedup':>8} {'path: compute':>14} {'path: network':>14}")

    base_cfg = exp.machine
    for cores in (1, 4, 8):
        cfg = replace(base_cfg, cores_per_node=cores, intra_latency=1e-6)
        orig = simulate(trace, cfg)
        ovlp = simulate(overlapped, cfg)
        path = critical_path(orig)
        net_share = (path.fraction("wire") + path.fraction("queue")) * 100
        print(f"{cores:>11} {orig.duration * 1e3:>11.3f} "
              f"{ovlp.duration * 1e3:>11.3f} "
              f"{orig.duration / ovlp.duration:>8.4f} "
              f"{path.fraction('compute') * 100:>13.1f}% "
              f"{net_share:>13.1f}%")

    print("\nPacking neighbours onto nodes converts halo wire time into")
    print("shared-memory copies; what overlap can still hide shrinks with it.")

    cfg = replace(base_cfg, cores_per_node=4, intra_latency=1e-6)
    print("\nactivity heatmap (SMP, original execution, first ranks):")
    res = simulate(trace, cfg)
    text = render_heatmap(res, "Running", width=72)
    print("\n".join(text.splitlines()[:10]))


if __name__ == "__main__":
    main()
