"""Minimal JSON Schema validator (no third-party dependencies).

CI validates ``repro-explain --json`` output against
``docs/schema/repro-explain.schema.json`` without pulling in the
``jsonschema`` package.  Supports the draft-07 subset the checked-in
schemas actually use:

``type`` (including union lists), ``properties``, ``required``,
``additionalProperties`` (schema form), ``items``, ``enum``,
``minimum``, ``maximum``, ``minItems``, ``maxItems``.

Anything outside that subset is ignored rather than mis-enforced, so
the validator can only under-approximate, never reject a valid
document.

Usage::

    python tools/validate_schema.py SCHEMA.json DOC.json [DOC.json ...]

Exit status 0 when every document validates; 1 with one
``path: message`` line per violation otherwise.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

__all__ = ["validate"]

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


def _type_ok(value, names) -> bool:
    if isinstance(names, str):
        names = [names]
    for name in names:
        py = _TYPES.get(name)
        if py is None:
            continue
        # bool is an int subclass in Python; JSON keeps them distinct.
        if name in ("integer", "number") and isinstance(value, bool):
            continue
        if isinstance(value, py):
            return True
    return False


def validate(doc, schema: dict, path: str = "$") -> list[str]:
    """All violations of ``doc`` against ``schema`` (empty = valid)."""
    errors: list[str] = []
    t = schema.get("type")
    if t is not None and not _type_ok(doc, t):
        errors.append(f"{path}: expected type {t}, got "
                      f"{type(doc).__name__}")
        return errors  # other keywords assume the right shape

    enum = schema.get("enum")
    if enum is not None and doc not in enum:
        errors.append(f"{path}: {doc!r} not one of {enum}")

    if isinstance(doc, (int, float)) and not isinstance(doc, bool):
        if "minimum" in schema and doc < schema["minimum"]:
            errors.append(f"{path}: {doc} < minimum {schema['minimum']}")
        if "maximum" in schema and doc > schema["maximum"]:
            errors.append(f"{path}: {doc} > maximum {schema['maximum']}")

    if isinstance(doc, dict):
        for key in schema.get("required", ()):
            if key not in doc:
                errors.append(f"{path}: missing required property {key!r}")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, value in doc.items():
            sub = props.get(key)
            if sub is not None:
                errors += validate(value, sub, f"{path}.{key}")
            elif isinstance(extra, dict):
                errors += validate(value, extra, f"{path}.{key}")
            elif extra is False:
                errors.append(f"{path}: unexpected property {key!r}")

    if isinstance(doc, list):
        if "minItems" in schema and len(doc) < schema["minItems"]:
            errors.append(f"{path}: {len(doc)} items < minItems "
                          f"{schema['minItems']}")
        if "maxItems" in schema and len(doc) > schema["maxItems"]:
            errors.append(f"{path}: {len(doc)} items > maxItems "
                          f"{schema['maxItems']}")
        items = schema.get("items")
        if isinstance(items, dict):
            for i, value in enumerate(doc):
                errors += validate(value, items, f"{path}[{i}]")

    return errors


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    if len(args) < 2:
        print("usage: validate_schema.py SCHEMA.json DOC.json "
              "[DOC.json ...]", file=sys.stderr)
        return 2
    schema = json.loads(Path(args[0]).read_text())
    status = 0
    for doc_path in args[1:]:
        doc = json.loads(Path(doc_path).read_text())
        errors = validate(doc, schema)
        if errors:
            status = 1
            for err in errors:
                print(f"{doc_path}: {err}", file=sys.stderr)
        else:
            print(f"{doc_path}: valid", file=sys.stderr)
    return status


if __name__ == "__main__":
    sys.exit(main())
