#!/usr/bin/env python
"""Lint: no bare ``print()`` in library code.

Library modules must report through ``repro.obs`` loggers or write to
an explicit stream; stray ``print()`` calls corrupt machine-readable
stdout (trace dumps, report text consumed by tests) and bypass the
``--quiet``/``-v`` contract.  A print call is *bare* when it has no
``file=`` keyword — ``print(..., file=out)`` report builders and
``print(..., file=sys.stderr)`` diagnostics are fine.

Exempt by design: ``cli.py`` (its stdout IS the user interface) and
``paraver/`` (renderers whose callers capture stdout deliberately).

Usage: ``python tools/check_print.py [root ...]`` (default:
``src/repro``).  Exits 1 with one ``path:line`` diagnostic per offense.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Paths (relative to the scanned root) that may print to stdout.
EXEMPT_PARTS = ("paraver",)
EXEMPT_FILES = ("cli.py",)


def bare_prints(path: Path) -> list[tuple[int, str]]:
    """(line, source) of every print() call without a file= keyword."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    hits = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"):
            continue
        if any(kw.arg == "file" for kw in node.keywords):
            continue
        hits.append((node.lineno, ast.unparse(node)[:80]))
    return hits


def check_tree(root: Path) -> list[str]:
    problems = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root)
        if rel.name in EXEMPT_FILES or any(
            part in EXEMPT_PARTS for part in rel.parts[:-1]
        ):
            continue
        for line, src in bare_prints(path):
            problems.append(f"{path}:{line}: bare print(): {src}")
    return problems


def main(argv: list[str]) -> int:
    roots = [Path(a) for a in argv] or [Path("src/repro")]
    problems = []
    for root in roots:
        if not root.is_dir():
            print(f"check_print: no such directory: {root}", file=sys.stderr)
            return 2
        problems += check_tree(root)
    for p in problems:
        print(p, file=sys.stderr)
    if problems:
        print(f"check_print: {len(problems)} bare print() call(s); "
              f"use repro.obs.get_logger() or pass file=", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
