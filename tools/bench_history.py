"""Rolling benchmark history: append BENCH_*.json runs to HISTORY.jsonl.

Each benchmark script writes its latest results to a ``BENCH_*.json``
snapshot that is committed and overwritten in place — good for "what
is the current number", useless for "when did this regress".  This
module keeps the longitudinal record: :func:`append_history` stamps a
benchmark document with the git revision and a UTC timestamp and
appends it as one line to ``benchmarks/perf/HISTORY.jsonl``.

Used two ways::

    # from a bench script (they call this automatically):
    from bench_history import append_history
    append_history(doc, bench="replay")

    # standalone, to log an existing snapshot:
    python tools/bench_history.py benchmarks/perf/BENCH_replay.json

Lines are self-contained JSON objects, so the history is greppable and
trivially loadable::

    import json, pathlib
    runs = [json.loads(ln) for ln in
            pathlib.Path("benchmarks/perf/HISTORY.jsonl").read_text().splitlines()]
"""

from __future__ import annotations

import json
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path

__all__ = ["append_history", "git_sha"]

#: Default history file, next to the BENCH_*.json snapshots.
HISTORY_PATH = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "perf"
    / "HISTORY.jsonl"
)


def git_sha(cwd: str | Path | None = None) -> str:
    """The current git revision, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd else None,
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def append_history(
    doc: dict,
    bench: str,
    history_path: str | Path | None = None,
) -> Path:
    """Append one benchmark run to the history file; returns its path.

    ``doc`` is the full ``BENCH_*.json`` document; ``bench`` names the
    benchmark (``"replay"``, ``"grid"``, ...).  The line wraps the doc
    with provenance — git sha and UTC timestamp — so regressions can
    be bisected without relying on file mtimes.
    """
    path = Path(history_path) if history_path is not None else HISTORY_PATH
    path.parent.mkdir(parents=True, exist_ok=True)
    line = {
        "bench": bench,
        "git_sha": git_sha(path.parent),
        "timestamp": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "results": doc,
    }
    with path.open("a") as fh:
        fh.write(json.dumps(line, sort_keys=True) + "\n")
    return path


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    if not args or args[0] in ("-h", "--help"):
        print(__doc__, file=sys.stderr)
        return 0 if args else 2
    for snapshot in args:
        p = Path(snapshot)
        doc = json.loads(p.read_text())
        # BENCH_replay.json -> "replay"
        name = p.stem.replace("BENCH_", "").lower() or p.stem
        out = append_history(doc, bench=name)
        print(f"appended {p.name} ({name}) -> {out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
