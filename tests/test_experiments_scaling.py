"""Tests of the rank-scaling study."""

import pytest

from repro.dimemas.machine import MachineConfig
from repro.experiments.scaling import scaling_study


@pytest.fixture(scope="module")
def study():
    return scaling_study(
        "cg", rank_counts=(2, 4, 8),
        machine=MachineConfig.paper_testbed("cg"),
        app_params=dict(n=8000, iterations=2),
    )


class TestScalingStudy:
    def test_one_point_per_count(self, study):
        assert [p.nranks for p in study.points] == [2, 4, 8]

    def test_speedups_positive(self, study):
        for p in study.points:
            assert p.speedup_real > 0.5 and p.speedup_ideal > 0.5

    def test_comm_fraction_in_unit_interval(self, study):
        for p in study.points:
            assert 0.0 <= p.comm_fraction <= 1.0

    def test_strong_scaling_reduces_per_run_time(self, study):
        # fixed problem over more ranks: makespan shrinks (or comm-bound)
        d = study.series("duration_original")
        assert d[-1] < d[0]

    def test_series_accessor(self, study):
        assert len(study.series("speedup_ideal")) == 3

    def test_render(self, study):
        text = study.render()
        assert "scaling study — cg" in text
        assert text.count("\n") == 4
