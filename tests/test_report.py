"""Smoke tests of the full reproduction report (small scale)."""

import pytest

from repro.experiments.report import full_report


@pytest.fixture(scope="module")
def report_text():
    # two apps, no bandwidth searches: seconds, not minutes
    return full_report(nranks=8, apps=("cg", "alya"),
                       include_bandwidth=False)


class TestReportContent:
    def test_all_sections_present(self, report_text):
        for section in ("Table I", "Table II", "Figure 4", "Figure 5",
                        "Figure 6"):
            assert section in report_text

    def test_paper_rows_shown_next_to_measured(self, report_text):
        assert "(paper)" in report_text and "(measured)" in report_text

    def test_apps_listed(self, report_text):
        assert "cg" in report_text and "alya" in report_text

    def test_fig4_improvement_line(self, report_text):
        assert "paper: ~8% improvement" in report_text

    def test_speedups_parse_as_numbers(self, report_text):
        lines = report_text.splitlines()
        idx = next(i for i, l in enumerate(lines) if "Figure 6" in l)
        for line in lines[idx + 2:]:
            if not line.strip():
                break
            parts = line.split()
            float(parts[1]), float(parts[2])  # real/ideal columns
