"""Platform fault injection (``repro.perturb``) and resilience analysis.

Covers, in dependency order:

* the schedule model — validation, normalization, canonical digest,
  round-trip serialization, the seeded ``unit_hash`` draw;
* the named scenario registry that the CLIs parse;
* ``MachineConfig.perturb`` — duck validation and the no-op collapse
  that makes a zero-magnitude schedule *be* the pristine platform;
* perturbed replay semantics on hand-built traces — bandwidth
  windows, latency windows, outage stall vs restart, blocked starts,
  stragglers, CPU noise — plus the two identity contracts (disabled
  path bitwise-identical, machine-carried == explicit kwarg);
* the typed :class:`PerturbationStall` post-mortem naming the window;
* wait-cause attribution of perturbation damage with exact per-rank
  conservation;
* injector ``Fault.describe()`` carrying seed and site (docs §4);
* the resilience sweep, its index math, and all three renderers.
"""

import dataclasses
import json
import math
import sys
from pathlib import Path

import pytest

from repro.dimemas.machine import MachineConfig
from repro.dimemas.postmortem import PerturbationStall, SimulationTimeout
from repro.dimemas.replay import simulate
from repro.experiments.resilience import (
    SCHEMA_ID,
    ResilienceRow,
    render_html,
    render_text,
    resilience_sweep,
    to_json,
)
from repro.perturb import (
    BandwidthWindow,
    CpuNoise,
    LatencyWindow,
    OutageWindow,
    PerturbationSchedule,
    SCENARIO_KINDS,
    Straggler,
    build_scenario,
    default_scenarios,
    unit_hash,
)
from repro.trace.records import (
    CpuBurst,
    ProcessTrace,
    Recv,
    Send,
    TraceSet,
)

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
from validate_schema import validate  # noqa: E402

US = 1e-6

#: 100 MB/s, zero latency: 1000 bytes = 10 us of pure wire time.
CFG = MachineConfig(bandwidth_mbps=100.0, latency=0.0)


def ts(*rank_records) -> TraceSet:
    return TraceSet([ProcessTrace(r, list(recs))
                     for r, recs in enumerate(rank_records)])


def ping(size=1000, pre=0.0):
    """Rank 0 sends ``size`` eager bytes to rank 1 after ``pre`` s of
    compute; rank 1 receives after the same compute."""
    return ts(
        [CpuBurst(pre), Send(peer=1, size=size, tag=0)] if pre else
        [Send(peer=1, size=size, tag=0)],
        [CpuBurst(pre), Recv(peer=0, size=size, tag=0)] if pre else
        [Recv(peer=0, size=size, tag=0)],
    )


def same_result(a, b) -> bool:
    """Bitwise-equality proxy: every reconstructed quantity agrees."""
    return (a.duration == b.duration
            and a.states == b.states
            and [(m.src, m.dst, m.size, m.t_send, m.t_recv)
                 for m in a.messages]
            == [(m.src, m.dst, m.size, m.t_send, m.t_recv)
                for m in b.messages])


# --------------------------------------------------------------------------- #
# unit_hash.
# --------------------------------------------------------------------------- #

class TestUnitHash:
    def test_range_and_determinism(self):
        draws = [unit_hash(s, "cpu", e, r, i)
                 for s in (0, 1, 2**63) for e in (0, 1)
                 for r in (0, 7) for i in (0, 100)]
        assert all(0.0 <= u < 1.0 for u in draws)
        assert unit_hash(7, "cpu", 0, 3, 5) == unit_hash(7, "cpu", 0, 3, 5)

    def test_distinct_coordinates_distinct_draws(self):
        a = unit_hash(0, "cpu", 0, 0, 0)
        assert a != unit_hash(1, "cpu", 0, 0, 0)  # seed
        assert a != unit_hash(0, "cpu", 0, 0, 1)  # coordinate


# --------------------------------------------------------------------------- #
# Schedule validation + canonical forms.
# --------------------------------------------------------------------------- #

class TestScheduleValidation:
    def test_window_bounds(self):
        with pytest.raises(ValueError):
            BandwidthWindow(1.0, 1.0, 0.5)         # empty
        with pytest.raises(ValueError):
            BandwidthWindow(-1.0, 1.0, 0.5)        # negative start
        with pytest.raises(ValueError):
            BandwidthWindow(0.0, math.inf, 0.5)    # non-finite
        with pytest.raises(ValueError):
            BandwidthWindow(0.0, 1.0, 0.0)         # dead link != sag
        with pytest.raises(ValueError):
            LatencyWindow(0.0, 1.0, -1e-6)
        with pytest.raises(ValueError):
            OutageWindow(0.0, 1.0, semantics="retry")
        with pytest.raises(ValueError):
            CpuNoise(-0.1)
        with pytest.raises(ValueError):
            Straggler(-1, 2.0)
        with pytest.raises(ValueError):
            Straggler(0, 0.0)

    def test_wire_windows_must_not_overlap(self):
        with pytest.raises(ValueError, match="overlap"):
            PerturbationSchedule(
                bandwidth=(BandwidthWindow(0.0, 2.0, 0.5),),
                outages=(OutageWindow(1.0, 3.0),),
            )
        with pytest.raises(ValueError, match="latency windows overlap"):
            PerturbationSchedule(latency=(LatencyWindow(0.0, 2.0, 1e-3),
                                          LatencyWindow(1.0, 3.0, 1e-3)))
        with pytest.raises(ValueError, match="duplicate straggler"):
            PerturbationSchedule(stragglers=(Straggler(2, 1.5),
                                             Straggler(2, 2.0)))

    def test_normalized_drops_zero_magnitude(self):
        sched = PerturbationSchedule(
            seed=3,
            bandwidth=(BandwidthWindow(0.0, 1.0, 1.0),),
            latency=(LatencyWindow(0.0, 1.0, 0.0),),
            cpu_noise=(CpuNoise(0.0),),
            stragglers=(Straggler(1, 1.0),),
        )
        assert not sched.is_noop()          # ingredients present ...
        norm = sched.normalized()
        assert norm.is_noop()               # ... but all zero-magnitude
        assert norm.digest() == PerturbationSchedule(seed=3).digest()

    def test_digest_ignores_window_order(self):
        a = PerturbationSchedule(latency=(LatencyWindow(0.0, 1.0, 1e-3),
                                          LatencyWindow(2.0, 3.0, 1e-3)))
        b = PerturbationSchedule(latency=(LatencyWindow(2.0, 3.0, 1e-3),
                                          LatencyWindow(0.0, 1.0, 1e-3)))
        assert a.digest() == b.digest()

    def test_digest_sensitive_to_seed_and_content(self):
        base = build_scenario("cpu-noise", 1.0, seed=0)
        assert base.digest() != build_scenario("cpu-noise", 1.0, 1).digest()
        assert base.digest() != build_scenario("straggler", 1.0, 0).digest()

    def test_roundtrip_and_describe(self):
        sched = PerturbationSchedule(
            seed=9,
            bandwidth=(BandwidthWindow(0.1, 0.2, 0.25),),
            latency=(LatencyWindow(0.3, 0.4, 5e-4),),
            outages=(OutageWindow(0.5, 0.6, "restart"),),
            cpu_noise=(CpuNoise(0.15, ranks=(1, 3)),),
            stragglers=(Straggler(0, 1.5),),
        )
        back = PerturbationSchedule.from_dict(
            json.loads(json.dumps(sched.to_dict())))
        assert back == sched
        text = sched.describe()
        for bit in ("seed=9", "outage (restart)", "bandwidth x0.25",
                    "latency +0.0005s", "cpu noise", "straggler rank 0"):
            assert bit in text


class TestScenarios:
    def test_registry_is_the_documented_six(self):
        assert set(SCENARIO_KINDS) == {
            "bandwidth-sag", "latency-spike", "outage-stall",
            "outage-restart", "cpu-noise", "straggler",
        }

    def test_every_scenario_builds_non_noop(self):
        for kind, sched in default_scenarios(0.05, seed=4).items():
            assert not sched.normalized().is_noop(), kind
            assert sched.seed == 4

    def test_unknown_kind_and_bad_horizon(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            build_scenario("meteor-strike", 1.0)
        with pytest.raises(ValueError, match="horizon"):
            build_scenario("bandwidth-sag", 0.0)


# --------------------------------------------------------------------------- #
# MachineConfig integration.
# --------------------------------------------------------------------------- #

class TestMachinePerturb:
    def test_rejects_non_schedules(self):
        with pytest.raises(ValueError, match="PerturbationSchedule"):
            MachineConfig(perturb="bandwidth-sag")

    def test_noop_schedule_collapses_to_none(self):
        cfg = MachineConfig(perturb=PerturbationSchedule(
            seed=5, bandwidth=(BandwidthWindow(0.0, 1.0, 1.0),)))
        assert cfg.perturb is None
        assert cfg == MachineConfig()       # identical cache identity

    def test_real_schedule_survives_normalized(self):
        sched = PerturbationSchedule(stragglers=(Straggler(0, 1.5),))
        cfg = MachineConfig(perturb=sched)
        assert cfg.perturb == sched.normalized()
        assert dataclasses.asdict(cfg) != dataclasses.asdict(MachineConfig())


# --------------------------------------------------------------------------- #
# Perturbed replay semantics (hand-computed, tiny traces).
# --------------------------------------------------------------------------- #

class TestPerturbedReplay:
    def test_disabled_path_bitwise_identical(self):
        trace = ping(pre=20 * US)
        assert same_result(simulate(trace, CFG), simulate(trace, CFG))
        noop = PerturbationSchedule(
            seed=11, cpu_noise=(CpuNoise(0.0),),
            bandwidth=(BandwidthWindow(0.0, 1.0, 1.0),))
        assert same_result(simulate(trace, CFG),
                           simulate(trace, CFG, perturb=noop))

    def test_window_outside_run_changes_nothing(self):
        trace = ping(pre=20 * US)
        base = simulate(trace, CFG)
        late = PerturbationSchedule(
            bandwidth=(BandwidthWindow(10.0, 20.0, 0.01),),
            outages=(OutageWindow(30.0, 40.0),))
        assert same_result(base, simulate(trace, CFG, perturb=late))

    def test_bandwidth_window_stretches_crossing_transfer(self):
        # 1000 B at 100 MB/s = 10 us of wire; the window halves the
        # rate over the whole flight, so the wire takes exactly 20 us.
        trace = ping()
        base = simulate(trace, CFG)
        sag = PerturbationSchedule(
            bandwidth=(BandwidthWindow(0.0, 1.0, 0.5),))
        slow = simulate(trace, CFG, perturb=sag)
        assert slow.duration == pytest.approx(base.duration + 10 * US)

    def test_partial_window_integrates_piecewise(self):
        # Window covers only the first 5 us of the flight: 5 us at half
        # rate moves 250 B, the remaining 750 B flow at full rate
        # (7.5 us) -> 12.5 us total wire.
        trace = ping()
        sag = PerturbationSchedule(
            bandwidth=(BandwidthWindow(0.0, 5 * US, 0.5),))
        assert simulate(trace, CFG, perturb=sag).duration == (
            pytest.approx(12.5 * US))

    def test_latency_window_adds_extra(self):
        cfg = MachineConfig(bandwidth_mbps=100.0, latency=10 * US)
        trace = ping()
        base = simulate(trace, cfg)
        spike = PerturbationSchedule(
            latency=(LatencyWindow(0.0, 1.0, 40 * US),))
        assert simulate(trace, cfg, perturb=spike).duration == (
            pytest.approx(base.duration + 40 * US))

    def test_outage_blocks_new_starts(self):
        # The send is ready at t=0 but the link is down until 100 us;
        # the 10 us transfer runs entirely after the window.
        trace = ping()
        out = PerturbationSchedule(outages=(OutageWindow(0.0, 100 * US),))
        assert simulate(trace, CFG, perturb=out).duration == (
            pytest.approx(110 * US))

    def test_stall_resumes_where_restart_repeats(self):
        # Wire starts at t=0, outage hits at 5 us (half the flight)
        # and lasts until 50 us.  Stall: the remaining 5 us resume at
        # 50 us -> done 55 us.  Restart: the full 10 us re-inject at
        # 50 us -> done 60 us.
        trace = ping()
        stall = PerturbationSchedule(
            outages=(OutageWindow(5 * US, 50 * US, "stall"),))
        restart = PerturbationSchedule(
            outages=(OutageWindow(5 * US, 50 * US, "restart"),))
        t_stall = simulate(trace, CFG, perturb=stall).duration
        t_restart = simulate(trace, CFG, perturb=restart).duration
        assert t_stall == pytest.approx(55 * US)
        assert t_restart == pytest.approx(60 * US)

    def test_straggler_scales_one_ranks_compute(self):
        trace = ts([CpuBurst(100 * US)], [CpuBurst(100 * US)])
        sched = PerturbationSchedule(stragglers=(Straggler(1, 1.5),))
        r = simulate(trace, CFG, perturb=sched)
        running = {
            rank: sum(t1 - t0 for s, t0, t1 in r.states[rank]
                      if s == "Running")
            for rank in (0, 1)
        }
        assert running[0] == pytest.approx(100 * US)
        assert running[1] == pytest.approx(150 * US)

    def test_cpu_noise_stretches_and_is_seeded(self):
        trace = ts([CpuBurst(100 * US), CpuBurst(100 * US)])
        base = simulate(trace, CFG).duration
        noisy = PerturbationSchedule(seed=1, cpu_noise=(CpuNoise(0.5),))
        d1 = simulate(trace, CFG, perturb=noisy).duration
        assert base < d1 <= base * 1.5 + 1e-12
        assert d1 == simulate(trace, CFG, perturb=noisy).duration
        other = PerturbationSchedule(seed=2, cpu_noise=(CpuNoise(0.5),))
        assert d1 != simulate(trace, CFG, perturb=other).duration

    def test_machine_carried_equals_explicit_kwarg(self):
        trace = ping(pre=20 * US)
        sched = build_scenario("bandwidth-sag", 40 * US, seed=3)
        via_kwarg = simulate(trace, CFG, perturb=sched)
        via_machine = simulate(trace, CFG.with_platform(perturb=sched))
        assert same_result(via_kwarg, via_machine)
        assert not same_result(via_kwarg, simulate(trace, CFG))


class TestPerturbationStall:
    def test_outage_stall_names_the_window(self):
        trace = ping()
        sched = PerturbationSchedule(
            outages=(OutageWindow(5 * US, 10.0, "stall"),))
        with pytest.raises(PerturbationStall) as info:
            simulate(trace, CFG, perturb=sched, max_sim_time=1.0)
        exc = info.value
        assert isinstance(exc, SimulationTimeout)   # handlers keep working
        assert "outage (stall)" in exc.window
        assert exc.window in str(exc)
        assert exc.report.sim_time <= 10.0

    def test_unperturbed_timeout_stays_generic(self):
        with pytest.raises(SimulationTimeout) as info:
            simulate(ping(), CFG, max_sim_time=1e-9)
        assert not isinstance(info.value, PerturbationStall)


# --------------------------------------------------------------------------- #
# Attribution: perturbation damage shows up as a wait cause, exactly.
# --------------------------------------------------------------------------- #

class TestPerturbationAttribution:
    def _attributed(self, trace, cfg, sched):
        from repro.insight import attribute, collect
        result, col = collect(trace, cfg, perturb=sched)
        return result, attribute(result, col)

    def _assert_conservation(self, result, attr):
        for rank in range(result.nranks):
            blocked = sum(t1 - t0 for s, t0, t1 in result.states[rank]
                          if s != "Running")
            assert attr.rank_total(rank) == pytest.approx(
                blocked, abs=1e-9), f"rank {rank}"

    def test_bandwidth_sag_attributed_and_conserved(self):
        trace = ping()
        sag = PerturbationSchedule(
            bandwidth=(BandwidthWindow(0.0, 1.0, 0.25),))
        result, attr = self._attributed(trace, CFG, sag)
        totals = attr.totals()
        # 1000 B at quarter rate: 40 us wire instead of 10 -> 30 us of
        # the receiver's wait is the perturbation's fault.
        assert totals["perturbation"] == pytest.approx(30 * US)
        self._assert_conservation(result, attr)

    def test_outage_wait_attributed(self):
        trace = ping()
        out = PerturbationSchedule(outages=(OutageWindow(0.0, 100 * US),))
        result, attr = self._attributed(trace, CFG, out)
        assert attr.totals()["perturbation"] == pytest.approx(100 * US)
        self._assert_conservation(result, attr)

    def test_app_skeleton_conserves_under_every_scenario(self):
        from repro.experiments import AppExperiment
        exp = AppExperiment("cg", nranks=4)
        trace = exp.trace("original")
        cfg = MachineConfig.paper_testbed("cg")
        horizon = simulate(trace, cfg).duration
        for kind in SCENARIO_KINDS:
            sched = build_scenario(kind, horizon, seed=0)
            result, attr = self._attributed(trace, cfg, sched)
            self._assert_conservation(result, attr)

    def test_unperturbed_replay_attributes_no_perturbation(self):
        trace = ping(pre=20 * US)
        from repro.insight import attribute, collect
        result, col = collect(trace, CFG)
        assert attribute(result, col).totals()["perturbation"] == 0.0


# --------------------------------------------------------------------------- #
# Injector Fault.describe(): seed + site (docs/ROBUSTNESS.md §4).
# --------------------------------------------------------------------------- #

class TestFaultDescribe:
    @pytest.fixture(scope="class")
    def trace(self):
        from repro.experiments import AppExperiment
        return AppExperiment("cg", nranks=4).trace("original")

    def test_describe_pins_seed_and_site(self, trace):
        from repro.faults import inject
        for kind in ("drop", "duplicate", "reorder", "corrupt_size",
                     "truncate", "skew"):
            _, fault = inject(trace, kind, seed=7)
            text = fault.describe()
            assert text.startswith(f"fault[{kind}] rank={fault.rank} "
                                   f"record={fault.index} seed=7"), text
            assert fault.seed == 7

    def test_truncate_names_first_removed_record(self, trace):
        from repro.faults import truncate_rank
        mutant, fault = truncate_rank(trace, seed=7)
        assert fault.details["removed"] == (
            len(trace[fault.rank].records) - fault.index)
        assert fault.details["record"] == type(
            trace[fault.rank].records[fault.index]).__name__
        assert f"record={fault.details['record']}" in fault.describe()

    def test_skew_reports_burst_count_and_factor(self, trace):
        from repro.faults import skew_timestamps
        from repro.trace.records import CpuBurst as Burst
        _, fault = skew_timestamps(trace, seed=7)
        assert fault.details["record"] == "CpuBurst"
        assert fault.details["bursts"] == sum(
            isinstance(r, Burst) for r in trace[fault.rank].records)
        assert 0.5 <= fault.details["factor"] <= 2.0
        assert "bursts=" in fault.describe()
        assert "record=CpuBurst" in fault.describe()

    def test_same_seed_same_fault(self, trace):
        from repro.faults import inject
        a = inject(trace, "drop", seed=13)[1]
        b = inject(trace, "drop", seed=13)[1]
        assert (a.rank, a.index, a.details) == (b.rank, b.index, b.details)


# --------------------------------------------------------------------------- #
# The resilience sweep and its renderers.
# --------------------------------------------------------------------------- #

class TestResilienceIndex:
    def row(self, bo, br, po, pr):
        return ResilienceRow(
            app="cg", scenario="straggler", schedule_digest="d" * 24,
            schedule={}, baseline_original=bo, baseline_real=br,
            perturbed_original=po, perturbed_real=pr)

    def test_index_math(self):
        # Original loses 1.0 s, overlapped only 0.25 s: 75% masked.
        r = self.row(2.0, 1.8, 3.0, 2.05)
        assert r.resilience_index == pytest.approx(0.75)
        assert r.delta_original == pytest.approx(1.0)
        assert r.slowdown_original == pytest.approx(1.5)

    def test_index_none_when_nothing_injected(self):
        assert self.row(2.0, 1.8, 2.0, 1.9).resilience_index is None

    def test_index_none_on_nan(self):
        r = self.row(2.0, math.nan, 3.0, 2.0)
        assert r.resilience_index is None
        assert r.to_dict()["baseline_real"] is None

    def test_negative_index_when_overlap_hurts(self):
        # Overlapped variant loses *more* than the original: rho < 0.
        assert self.row(2.0, 1.8, 3.0, 3.3).resilience_index == (
            pytest.approx(-0.5))


class TestResilienceSweep:
    @pytest.fixture(scope="class")
    def report(self):
        return resilience_sweep(
            ["cg"], scenarios=["straggler", "bandwidth-sag"],
            seed=0, nranks=4, chunks=2)

    def test_rows_and_lookup(self, report):
        assert {(r.app, r.scenario) for r in report.rows} == {
            ("cg", "straggler"), ("cg", "bandwidth-sag")}
        row = report.row("cg", "straggler")
        assert row.perturbed_original > row.baseline_original
        assert report.row("cg", "meteor") is None

    def test_digest_reproducible(self, report):
        again = resilience_sweep(
            ["cg"], scenarios=["straggler", "bandwidth-sag"],
            seed=0, nranks=4, chunks=2)
        assert report.result_digest() == again.result_digest()
        other_seed = resilience_sweep(
            ["cg"], scenarios=["straggler"], seed=1, nranks=4, chunks=2)
        assert report.result_digest() != other_seed.result_digest()

    def test_unknown_inputs_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            resilience_sweep(["cg"], scenarios=["meteor"], nranks=4)
        with pytest.raises(KeyError):
            resilience_sweep(["nosuchapp"], scenarios=["straggler"],
                             nranks=4)

    def test_render_text(self, report):
        text = render_text(report)
        assert "straggler" in text and "bandwidth-sag" in text
        assert report.result_digest() in text
        assert "resilience index" in text.lower()

    def test_json_validates_against_schema(self, report, tmp_path):
        doc = to_json(report)
        assert doc["schema"] == SCHEMA_ID
        schema = json.loads(Path(
            Path(__file__).resolve().parent.parent,
            "docs/schema/repro-resilience.schema.json").read_text())
        assert validate(json.loads(json.dumps(doc)), schema) == []

    def test_render_html(self, report):
        html = render_html(report)
        assert html.lstrip().lower().startswith("<!doctype html")
        assert report.result_digest() in html
        assert "straggler" in html
