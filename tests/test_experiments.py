"""Tests of the experiment harness."""

import math

import pytest

from repro.dimemas.machine import MachineConfig, PAPER_BUSES
from repro.experiments import (
    AppExperiment,
    PAPER_CONSUMPTION,
    PAPER_PRODUCTION,
    bisect_bandwidth,
    bus_sensitivity,
    calibrate_buses,
    equivalent_bandwidth,
    pattern_row,
    relaxation_bandwidth,
    saturation_knee,
)


@pytest.fixture(scope="module")
def cg_small():
    """A small, fast CG experiment shared across tests."""
    return AppExperiment(
        "cg", nranks=4, app_params=dict(n=8000, iterations=3),
        machine=MachineConfig.paper_testbed("cg"),
    )


class TestAppExperiment:
    def test_variants(self, cg_small):
        for v in ("original", "real", "ideal"):
            assert cg_small.trace(v).nranks == 4

    def test_unknown_variant(self, cg_small):
        with pytest.raises(ValueError):
            cg_small.trace("quantum")

    def test_trace_cached(self, cg_small):
        assert cg_small.trace("original") is cg_small.trace("original")

    def test_simulation_memoized(self, cg_small):
        a = cg_small.simulate("original")
        b = cg_small.simulate("original")
        assert a is b

    def test_platform_overrides(self, cg_small):
        slow = cg_small.duration("original", bandwidth_mbps=5.0)
        fast = cg_small.duration("original", bandwidth_mbps=5000.0)
        assert slow > fast

    def test_buses_override(self, cg_small):
        few = cg_small.duration("original", buses=1)
        many = cg_small.duration("original", buses=None)
        assert few >= many

    def test_speedups_keys(self, cg_small):
        s = cg_small.speedups()
        assert set(s) == {"real", "ideal"} and all(v > 0 for v in s.values())

    def test_default_machine_uses_table1(self):
        e = AppExperiment("cg", nranks=4)
        assert e.machine.buses == PAPER_BUSES["cg"]


class TestBisection:
    def test_threshold_found(self):
        f = lambda bw: bw >= 40.0
        got = bisect_bandwidth(f, lo=1.0, hi=1000.0, rel_tol=0.001)
        assert got == pytest.approx(40.0, rel=0.01)

    def test_already_satisfied_at_lo(self):
        assert bisect_bandwidth(lambda bw: True, lo=2.0) == 2.0

    def test_unreachable_is_inf(self):
        assert math.isinf(bisect_bandwidth(lambda bw: False))

    def test_relaxation_below_baseline(self, cg_small):
        bw = relaxation_bandwidth(cg_small, "real")
        assert bw <= cg_small.machine.bandwidth_mbps * 1.01

    def test_equivalent_at_least_baseline(self, cg_small):
        bw = equivalent_bandwidth(cg_small, "real")
        assert math.isinf(bw) or bw >= cg_small.machine.bandwidth_mbps * 0.99

    def test_relaxation_monotone_wrt_variant(self, cg_small):
        """The ideal schedule can always run at most as fast as real,
        so it needs at most as much bandwidth."""
        r = relaxation_bandwidth(cg_small, "real")
        i = relaxation_bandwidth(cg_small, "ideal")
        assert i <= r * 1.1


class TestCalibration:
    def test_bus_sensitivity_monotone(self, cg_small):
        sens = bus_sensitivity(cg_small, [1, 2, 4, 8])
        assert sens[1] >= sens[2] >= sens[4] >= sens[8] >= sens[0] * 0.999

    def test_calibrate_recovers_reference(self, cg_small):
        ref = cg_small.duration("original", buses=3)
        got = calibrate_buses(cg_small, ref, tolerance=0.02)
        assert got is not None
        d = cg_small.duration("original", buses=got)
        assert d <= ref * 1.03

    def test_calibrate_validates_reference(self, cg_small):
        with pytest.raises(ValueError):
            calibrate_buses(cg_small, -1.0)

    def test_saturation_knee_positive(self, cg_small):
        knee = saturation_knee(cg_small)
        assert 1 <= knee <= 64


class TestPatternRow:
    def test_row_fields(self, cg_small):
        row = pattern_row(cg_small)
        assert row.app == "cg"
        assert 0 <= row.production.first_element <= 1

    def test_paper_tables_cover_pool(self):
        assert set(PAPER_PRODUCTION) == set(PAPER_CONSUMPTION) == set(PAPER_BUSES)
