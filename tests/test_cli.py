"""CLI entry point tests (run in-process with argv lists)."""

import pytest

from repro.cli import main_overlap, main_simulate, main_trace
from repro.trace import dim


@pytest.fixture
def traced_file(tmp_path):
    path = tmp_path / "cg.dim"
    rc = main_trace(["cg", "-n", "4", "-o", str(path)])
    assert rc == 0
    return path


class TestTraceCommand:
    def test_writes_parseable_trace(self, traced_file):
        ts = dim.load(traced_file)
        assert ts.nranks == 4
        assert ts.meta["app"] == "cg"

    def test_unknown_app_rejected(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main_trace(["linpack", "-o", str(tmp_path / "x.dim")])

    def test_streams_flag(self, tmp_path):
        path = tmp_path / "s.dim"
        assert main_trace(["alya", "-n", "2", "-o", str(path),
                           "--streams"]) == 0
        assert path.exists()

    def test_custom_mips_recorded(self, tmp_path):
        path = tmp_path / "m.dim"
        main_trace(["alya", "-n", "2", "-o", str(path), "--mips", "1000"])
        assert dim.load(path).meta["mips"] == 1000.0


class TestOverlapCommand:
    def test_real_transform(self, traced_file, tmp_path, capsys):
        out = tmp_path / "ov.dim"
        assert main_overlap([str(traced_file), "-o", str(out)]) == 0
        assert "transformed" in capsys.readouterr().out
        ts = dim.load(out)
        assert ts.meta["overlap"]["schedule"] == "real"

    def test_ideal_transform(self, traced_file, tmp_path):
        out = tmp_path / "id.dim"
        main_overlap([str(traced_file), "-o", str(out), "--ideal",
                      "--chunks", "2"])
        meta = dim.load(out).meta["overlap"]
        assert meta["schedule"] == "ideal" and meta["chunks"] == 2

    def test_no_double_buffering_flag(self, traced_file, tmp_path):
        out = tmp_path / "sb.dim"
        main_overlap([str(traced_file), "-o", str(out),
                      "--no-double-buffering"])
        assert dim.load(out).meta["overlap"]["double_buffering"] is False


class TestSimulateCommand:
    def test_reports_makespan(self, traced_file, capsys):
        assert main_simulate([str(traced_file), "--buses", "6"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out and "parallel efficiency" in out

    def test_gantt_and_profile(self, traced_file, capsys):
        main_simulate([str(traced_file), "--gantt", "--state-profile",
                       "--width", "40"])
        out = capsys.readouterr().out
        assert "rank   0 |" in out and "Running" in out

    def test_prv_and_svg_export(self, traced_file, tmp_path, capsys):
        prv_path = tmp_path / "out.prv"
        svg_path = tmp_path / "out.svg"
        main_simulate([str(traced_file), "--prv", str(prv_path),
                       "--svg", str(svg_path)])
        assert prv_path.read_text().startswith("#Paraver")
        assert (tmp_path / "out.pcf").exists()
        assert svg_path.read_text().startswith("<svg")

    def test_bandwidth_changes_result(self, traced_file, capsys):
        main_simulate([str(traced_file), "--bandwidth", "10"])
        slow = capsys.readouterr().out
        main_simulate([str(traced_file), "--bandwidth", "10000"])
        fast = capsys.readouterr().out
        def makespan(s):
            return float(s.split("makespan ")[1].split(" us")[0])
        assert makespan(slow) > makespan(fast)


class TestEndToEndCli:
    def test_trace_overlap_simulate_chain(self, traced_file, tmp_path, capsys):
        ov = tmp_path / "ov.dim"
        main_overlap([str(traced_file), "-o", str(ov)])
        main_simulate([str(traced_file), "--buses", "6"])
        orig = capsys.readouterr().out
        main_simulate([str(ov), "--buses", "6"])
        over = capsys.readouterr().out
        def makespan(s):
            return float(s.split("makespan ")[1].split(" us")[0])
        assert makespan(over) <= makespan(orig) * 1.1


class TestAnalyzeCommand:
    def test_patterns_and_stats(self, traced_file, capsys):
        from repro.cli import main_analyze
        assert main_analyze([str(traced_file)]) == 0
        out = capsys.readouterr().out
        assert "production pattern" in out
        assert "phase potential" in out
        assert "channel 0" in out

    def test_simulate_adds_profile_and_critical_path(self, traced_file, capsys):
        from repro.cli import main_analyze
        main_analyze([str(traced_file), "--simulate", "--buses", "6"])
        out = capsys.readouterr().out
        assert "critical path" in out and "Running" in out

    def test_channel_filter(self, traced_file, capsys):
        from repro.cli import main_analyze
        main_analyze([str(traced_file), "--channel", "1"])
        out = capsys.readouterr().out
        assert "production pattern" in out

    def test_json_export(self, traced_file, tmp_path, capsys):
        import json
        path = tmp_path / "out.json"
        main_simulate([str(traced_file), "--json", str(path)])
        parsed = json.loads(path.read_text())
        assert parsed["nranks"] == 4 and parsed["duration"] > 0


class TestInterruptUniformity:
    """Every entry point maps Ctrl-C to the conventional 128+SIGINT
    exit status (130), never a stack trace (docs/ROBUSTNESS.md §6)."""

    ENTRY_POINTS = (
        "main_trace", "main_overlap", "main_simulate", "main_analyze",
        "main_explain", "main_resilience", "main_report", "main_verify",
    )

    @pytest.mark.parametrize("name", ENTRY_POINTS)
    def test_sigint_exits_130(self, name, monkeypatch, capsys):
        import argparse

        from repro import cli

        def interrupt(self, *args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(argparse.ArgumentParser, "parse_args",
                            interrupt)
        assert getattr(cli, name)([]) == cli.EXIT_INTERRUPTED == 130
        assert "interrupted" in capsys.readouterr().err


class TestResilienceCommand:
    def test_list_scenarios(self, capsys):
        from repro.cli import main_resilience
        assert main_resilience(["--list-scenarios"]) == 0
        out = capsys.readouterr().out
        for kind in ("bandwidth-sag", "latency-spike", "outage-stall",
                     "outage-restart", "cpu-noise", "straggler"):
            assert kind in out

    def test_unknown_inputs_rejected(self, capsys):
        from repro.cli import main_resilience
        with pytest.raises(SystemExit) as ei:
            main_resilience(["nosuchapp"])
        assert ei.value.code == 2
        with pytest.raises(SystemExit):
            main_resilience(["cg", "--scenarios", "meteor"])

    def test_end_to_end_json(self, tmp_path, capsys):
        import json as _json
        import sys as _sys
        from pathlib import Path as _Path

        from repro.cli import main_resilience
        out = tmp_path / "resilience.json"
        rc = main_resilience(["cg", "-n", "4", "--chunks", "2",
                              "--scenarios", "straggler",
                              "--json", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "straggler" in text and "resilience" in text.lower()
        doc = _json.loads(out.read_text())
        assert doc["schema"] == "repro-resilience/1"
        _sys.path.insert(0, str(
            _Path(__file__).resolve().parent.parent / "tools"))
        from validate_schema import validate
        schema = _json.loads((
            _Path(__file__).resolve().parent.parent
            / "docs/schema/repro-resilience.schema.json").read_text())
        assert validate(doc, schema) == []
